//! The Lemma 27 / Theorem 14 lifting reduction, end to end: a *sensitive*
//! component-stable algorithm is turned into a `D`-diameter `s-t`
//! connectivity solver `B_st-conn` — the step that makes every conditional
//! lower bound in the paper tick.
//!
//! ```sh
//! cargo run --release --example lifting_reduction
//! ```

use component_stability::core::lifting::{
    b_st_conn, planted_levels, run_one_simulation, sim_size_for, LiftingPair,
};
use component_stability::prelude::*;

fn pair(d: usize, tail: usize) -> LiftingPair {
    let (g, c, gp, cp) = ball::identical_ball_path_pair(d, tail);
    LiftingPair {
        g,
        center_g: c,
        gp,
        center_gp: cp,
        d,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let d = 3;
    let pr = pair(d, 4);
    assert!(pr.is_valid());
    println!(
        "pair: two {}-node paths, {d}-radius-identical, IDs diverge beyond distance {d}",
        pr.g.n()
    );

    // Sensitivity of the planted stable algorithm (Definition 24).
    let cpair = CenteredPair {
        g: pr.g.clone(),
        center_g: pr.center_g,
        gp: pr.gp.clone(),
        center_gp: pr.center_gp,
    };
    let eps = estimate_sensitivity(&ComponentMaxId, &cpair, 60, 10, Seed(1))?;
    println!("measured sensitivity of component-max-id: ε = {eps}");

    // YES instance: s-t path with a planted consecutive level assignment.
    let yes_h = generators::path(d + 2);
    let order: Vec<usize> = (0..d + 2).collect();
    let h = planted_levels(&order, d, d + 2).expect("plantable");
    let hit = run_one_simulation(
        &ComponentMaxId,
        &pr,
        &yes_h,
        0,
        d + 1,
        &h,
        sim_size_for(&pr, &yes_h),
        Seed(2),
    )?;
    println!("planted YES simulation detected a difference at v_s: {hit}");

    // Full randomized B_st-conn on YES and NO instances.
    let yes = b_st_conn(&ComponentMaxId, &pr, &yes_h, 0, d + 1, 400, Seed(3))?;
    println!(
        "B_st-conn on a YES instance: verdict {:?} ({} hits / {} simulations)",
        yes.verdict, yes.hits, yes.simulations
    );

    let a = generators::path(3);
    let b = ops::with_fresh_names(&generators::path(3), 50);
    let no_h = ops::disjoint_union(&[&a, &b]);
    let no = b_st_conn(&ComponentMaxId, &pr, &no_h, 0, 5, 400, Seed(4))?;
    println!(
        "B_st-conn on a NO instance:  verdict {:?} ({} hits / {} simulations)",
        no.verdict, no.hits, no.simulations
    );

    println!();
    println!(
        "conclusion: any component-stable algorithm that is sensitive at \
         radius D solves D-diameter s-t connectivity —\nso under the \
         connectivity conjecture no o(log T)-round component-stable \
         algorithm can exist for problems with T-round LOCAL lower bounds."
    );
    Ok(())
}
