//! Graceful degradation under budget exhaustion: crash a machine holding
//! only one component's records, give the recovery policy zero retries,
//! and watch the supervisor hand back a `PartialOutput` instead of an
//! error — the untouched component certified `Healthy` with labels
//! bit-identical to the fault-free run, the struck component `Tainted`
//! and withheld, and the salvage overhead charged to the ledger.
//!
//! ```sh
//! cargo run --release --example degraded_run
//! ```

use component_stability::mpc::{graph_words, MpcError};
use component_stability::prelude::*;

fn run_luby_mis(g: &Graph, cluster: &mut Cluster) -> Result<Vec<u64>, MpcError> {
    let labels = StableOneShotIs.run(g, cluster)?;
    Ok(labels.into_iter().map(u64::from).collect())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small target component next to a larger rest; the tight space
    // floor spreads the records so some machines hold only rest records.
    let target_nodes = 8usize;
    let g = ops::disjoint_union(&[
        &generators::cycle(target_nodes),
        &ops::with_fresh_names(&generators::cycle(40), 500),
    ]);
    let seed = Seed(0xC0DE);
    let cfg = MpcConfig {
        min_space: 48,
        ..Default::default()
    };
    let template = Cluster::new(cfg, g.n(), graph_words(&g), seed);

    // Fault-free baseline: learn the labels and which machine holds only
    // the rest component (provenance tags disjoint from the target).
    let mut baseline_cluster = template.clone();
    let baseline = run_luby_mis(&g, &mut baseline_cluster)?;
    let target: std::collections::BTreeSet<_> = g.component_labels()[..target_nodes]
        .iter()
        .map(|&c| c as u32)
        .collect();
    let victim = (0..baseline_cluster.num_machines())
        .find(|&m| {
            let tags = baseline_cluster.machine_components(m);
            !tags.is_empty() && !tags.iter().any(|c| target.contains(c))
        })
        .expect("no machine holds only foreign records");
    println!(
        "baseline: {} rounds, machine {victim} holds only foreign components",
        baseline_cluster.stats().rounds
    );

    // Crash that machine with a zero-retry budget: recovery is impossible,
    // so the supervisor salvages what the fault never touched.
    let plan = FaultPlan::quiet(seed).crash(victim, 3);
    let run = run_supervised(
        &g,
        &template,
        &plan,
        RecoveryPolicy::restart(0),
        SupervisorConfig::default(),
        run_luby_mis,
    )?;

    match &run.outcome {
        SupervisedOutcome::Complete(_) => println!("run completed (no degradation needed)"),
        SupervisedOutcome::Degraded(partial) => {
            println!(
                "degraded: {} healthy node(s), {} tainted node(s)",
                partial.healthy_nodes, partial.tainted_nodes
            );
            for (&c, verdict) in &partial.verdicts {
                println!("  component {c}: {verdict:?}");
            }
            let identical =
                (0..target_nodes).all(|v| partial.labels[v].as_ref() == Some(&baseline[v]));
            println!(
                "  target labels vs fault-free run: {}",
                if identical {
                    "bit-identical"
                } else {
                    "DIVERGED"
                }
            );
            println!(
                "  salvage overhead: {} recovery round(s), {} recovery word(s)",
                run.stats.recovery_rounds, run.stats.recovery_words
            );
        }
    }
    for ev in &run.recoveries {
        println!("  recovery event: {ev}");
    }
    Ok(())
}
