//! Demonstrate the runtime model-conformance detector: run algorithms on a
//! two-component input with provenance tagging armed and print the
//! violation report each produces.
//!
//! ```sh
//! cargo run --release --example conformance_detector
//! ```
//!
//! Three scenarios:
//!
//! 1. A genuinely component-stable algorithm — conformant.
//! 2. An honest amplifier — its global winner selection crosses component
//!    boundaries, but since it *declares* itself unstable that is not a
//!    violation (Definition 13 only constrains stable-declared algorithms).
//! 3. The same amplifier falsely declaring stability — every
//!    cross-component flow becomes a violation naming the primitive, round,
//!    and component pair.

use component_stability::prelude::*;
use csmpc_graph::Graph;
use csmpc_mpc::MpcError;

/// The amplifier with its `component_stable` declaration flipped to `true`
/// — the lie the provenance detector exists to catch.
struct LyingAmplifier(AmplifiedLargeIs);

impl MpcVertexAlgorithm for LyingAmplifier {
    type Label = bool;
    fn name(&self) -> &str {
        "amplified-large-is (falsely declared stable)"
    }
    fn deterministic(&self) -> bool {
        false
    }
    fn component_stable(&self) -> bool {
        true
    }
    fn run(&self, g: &Graph, cluster: &mut Cluster) -> Result<Vec<bool>, MpcError> {
        self.0.run(g, cluster)
    }
}

fn report<A: MpcVertexAlgorithm>(alg: &A, g: &Graph) -> Result<(), MpcError> {
    let mut cl = cluster_for(g, Seed(11));
    let run = run_with_conformance(alg, g, &mut cl)?;
    println!(
        "{} (declared {}):",
        run.algorithm,
        if run.declared_stable {
            "stable"
        } else {
            "unstable"
        }
    );
    if run.is_conformant() {
        println!("  conformant — no violations");
    } else {
        for v in &run.violations {
            println!("  {v}");
        }
    }
    println!();
    Ok(())
}

fn main() -> Result<(), MpcError> {
    // Two disjoint cycles with well-separated name spaces.
    let a = generators::cycle(12);
    let b = ops::with_fresh_names(&generators::cycle(12), 500);
    let g = ops::disjoint_union(&[&a, &b]);

    report(&StableOneShotIs, &g)?;
    report(&AmplifiedLargeIs { repetitions: 4 }, &g)?;
    report(&LyingAmplifier(AmplifiedLargeIs { repetitions: 4 }), &g)?;
    Ok(())
}
