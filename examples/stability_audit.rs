//! Audit every MPC algorithm in the workspace with the Definition 13
//! stability verifier and print the resulting class landscape — the
//! Section 2.5 picture, computed rather than asserted.
//!
//! ```sh
//! cargo run --release --example stability_audit
//! ```

use component_stability::algorithms::mpc_edge::BallGreedyColoringMpc;
use component_stability::algorithms::path_check::ConsecutivePathCheck;
use component_stability::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let comp = generators::cycle(10);
    println!("{:<56} {:>20} {:>10}", "algorithm", "class", "witnesses");
    println!("{:-<90}", "");

    let placements = vec![
        classify(&StableOneShotIs, &comp, 10, Seed(1))?,
        classify(&AmplifiedLargeIs { repetitions: 8 }, &comp, 14, Seed(2))?,
        classify(&DerandomizedLargeIs, &comp, 14, Seed(3))?,
        classify(&ComponentMaxId, &comp, 10, Seed(4))?,
        classify(&ConsecutivePathCheck, &comp, 10, Seed(5))?,
        classify(&BallGreedyColoringMpc { radius: 10 }, &comp, 10, Seed(6))?,
    ];
    for p in &placements {
        println!(
            "{:<56} {:>20} {:>10}",
            p.algorithm,
            p.class.to_string(),
            p.report.witnesses.len()
        );
    }

    println!();
    println!("containments (Definitions 15–18):");
    for p in &placements {
        println!("  {} ⊆ {}", p.class, p.class.superclass());
    }
    println!();
    println!(
        "reading: every 'unstable' row is an algorithm whose power comes \
         from global coordination\n(amplification argmax, conditional-\
         expectation seed agreement) — the paper's thesis made mechanical."
    );
    Ok(())
}
