//! The Theorem 5 separation, measured: component-stable one-shot Luby vs
//! the unstable amplified algorithm vs the deterministic pairwise-MCE
//! algorithm, on the `Ω(n/Δ)` independent-set problem.
//!
//! Two thresholds make the mechanism visible:
//!
//! * an **aggressive** threshold `(2/3)·n/Δ` (on a cycle: exactly the
//!   one-step expectation `n/3`) — the stable one-shot algorithm fails with
//!   constant probability at every `n`, while the best of `Θ(log n)`
//!   repetitions (component-unstable!) passes essentially always;
//! * the **guarantee** threshold `0.2·n/Δ ≈ n/(4Δ+1)` — which the
//!   deterministic conditional-expectations algorithm (Theorem 53) meets
//!   on every input, with certainty, in `O(1)` rounds.
//!
//! ```sh
//! cargo run --release --example separation_theorem5
//! ```

use component_stability::prelude::*;
use component_stability::problems::mis::LargeIndependentSet;

fn success_rate<A: MpcVertexAlgorithm<Label = bool>>(
    alg: &A,
    g: &Graph,
    problem: &LargeIndependentSet,
    trials: u64,
) -> (f64, usize) {
    let mut ok = 0u64;
    let mut rounds = 0usize;
    for s in 0..trials {
        let mut cluster = cluster_for(g, Seed(s));
        let labels = alg.run(g, &mut cluster).expect("run");
        rounds = cluster.stats().rounds;
        if problem.is_valid(g, &labels) {
            ok += 1;
        }
    }
    (ok as f64 / trials as f64, rounds)
}

fn main() {
    let aggressive = LargeIndependentSet { c: 2.0 / 3.0 };
    let guarantee = LargeIndependentSet { c: 0.2 };
    let trials = 300;

    println!("aggressive threshold (2/3)·n/Δ (success probability @ rounds):");
    println!(
        "{:<8} {:>24} {:>24}",
        "n", "stable one-shot", "unstable amplified"
    );
    println!("{:-<60}", "");
    for n in [60usize, 120, 240, 480] {
        let g = generators::cycle(n);
        let (p_stable, r_stable) = success_rate(&StableOneShotIs, &g, &aggressive, trials);
        let (p_amp, r_amp) = success_rate(
            &AmplifiedLargeIs { repetitions: 0 },
            &g,
            &aggressive,
            trials,
        );
        println!("{n:<8} {p_stable:>17.3} @ {r_stable:>2}r {p_amp:>17.3} @ {r_amp:>2}r");
    }

    println!();
    println!("guarantee threshold 0.2·n/Δ (deterministic, Theorem 53):");
    println!(
        "{:<8} {:>12} {:>10} {:>10}",
        "n", "IS size", "need", "rounds"
    );
    println!("{:-<44}", "");
    for n in [60usize, 120, 240, 480] {
        let g = generators::cycle(n);
        let mut cluster = cluster_for(&g, Seed(0));
        let labels = DerandomizedLargeIs.run(&g, &mut cluster).expect("run");
        let size = labels.iter().filter(|&&b| b).count();
        let need = guarantee.threshold(g.n(), g.max_degree());
        assert!(guarantee.is_valid(&g, &labels));
        println!(
            "{n:<8} {size:>12} {need:>10} {:>10}",
            cluster.stats().rounds
        );
    }

    println!();
    println!(
        "paper claim (Theorem 5): success amplification — inherently \
         component-unstable — turns the\nexpectation-only guarantee of one \
         Luby step into a 1 − 1/n guarantee without extra rounds,\nand \
         Theorem 53 derandomizes it in O(1) rounds; no o(log log* n)-round \
         component-stable\nalgorithm can do this, conditioned on the \
         connectivity conjecture."
    );
}
