//! Sinkless orientation (Theorems 38–39): the constructive-LLL upper bound
//! in randomized and deterministic (seed-searched, component-unstable)
//! form, with MPC round accounting via the edge-algorithm wrapper.
//!
//! ```sh
//! cargo run --release --example sinkless_orientation
//! ```

use component_stability::algorithms::mpc_edge::{DeterministicSinklessMpc, SinklessOrientationMpc};
use component_stability::algorithms::sinkless::sinkless_instance;
use component_stability::core::runner::evaluate_edge;
use component_stability::prelude::*;
use component_stability::problems::sinkless::SinklessOrientation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<8} {:<4} {:>10} {:>12} {:>12} {:>10}",
        "n", "d", "LLL ok", "rand rounds", "det rounds", "valid"
    );
    println!("{:-<62}", "");
    for (n, d) in [(32usize, 4usize), (128, 4), (512, 4), (128, 5)] {
        let g = generators::random_regular(n, d, Seed(n as u64 + d as u64));
        let instance = sinkless_instance(&g);
        let criterion_ok = instance.satisfies_lll_criterion();

        let rand = evaluate_edge(&SinklessOrientationMpc, &SinklessOrientation, &g, Seed(1))?;
        let det = evaluate_edge(
            &DeterministicSinklessMpc { seed_space: 64 },
            &SinklessOrientation,
            &g,
            Seed(2),
        )?;
        println!(
            "{n:<8} {d:<4} {:>10} {:>12} {:>12} {:>10}",
            criterion_ok,
            rand.stats.rounds,
            det.stats.rounds,
            rand.valid() && det.valid()
        );
        assert!(rand.valid() && det.valid());
    }
    println!();
    println!(
        "the deterministic variant agrees globally on one Moser–Tardos seed \
         — the component-unstable step that\nlets it beat the Theorem 38 \
         conditional lower bound for component-stable deterministic \
         algorithms."
    );
    Ok(())
}
