//! Chaos sweep: seeded fault plans (crashes + stragglers) injected into
//! real algorithm runs, with checkpointed recovery. Prints, per algorithm,
//! how many plans fired a crash, the recovery overhead the ledger shows,
//! and whether every replay was bit-identical — determinism under faults,
//! demonstrated rather than asserted.
//!
//! ```sh
//! cargo run --release --example chaos_run
//! ```

use component_stability::algorithms::mpc_edge::BallGreedyColoringMpc;
use component_stability::mpc::{graph_words, DistributedGraph, MpcError};
use component_stability::prelude::*;

/// The swept algorithms, erased to a common label type.
struct Entry {
    name: &'static str,
    run: fn(&Graph, &mut Cluster) -> Result<Vec<u64>, MpcError>,
}

fn run_luby_mis(g: &Graph, cluster: &mut Cluster) -> Result<Vec<u64>, MpcError> {
    let labels = StableOneShotIs.run(g, cluster)?;
    Ok(labels.into_iter().map(u64::from).collect())
}

fn run_coloring(g: &Graph, cluster: &mut Cluster) -> Result<Vec<u64>, MpcError> {
    let labels = BallGreedyColoringMpc { radius: 3 }.run(g, cluster)?;
    Ok(labels.into_iter().map(|c| c as u64).collect())
}

fn run_cc_labels(g: &Graph, cluster: &mut Cluster) -> Result<Vec<u64>, MpcError> {
    let dg = DistributedGraph::distribute(g, cluster)?;
    let (labels, _) = dg.cc_labels(cluster)?;
    Ok(labels)
}

fn chaos_cluster(g: &Graph, seed: Seed) -> Cluster {
    let cfg = MpcConfig {
        min_space: 48,
        ..Default::default()
    };
    Cluster::new(cfg, g.n(), graph_words(g), seed)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = ops::disjoint_union(&[
        &generators::cycle(8),
        &ops::with_fresh_names(&generators::cycle(40), 500),
    ]);
    let shared = Seed(0xC0DE);
    let plans = 20u64;
    let entries = [
        Entry {
            name: "one-shot-luby-mis",
            run: run_luby_mis,
        },
        Entry {
            name: "ball-greedy-coloring",
            run: run_coloring,
        },
        Entry {
            name: "cc-labels",
            run: run_cc_labels,
        },
    ];

    println!(
        "{:<22} {:>6} {:>8} {:>12} {:>12} {:>10}",
        "algorithm", "plans", "crashes", "avg +rounds", "avg +words", "replay"
    );
    println!("{:-<76}", "");
    for entry in &entries {
        let mut baseline_cluster = chaos_cluster(&g, shared);
        let baseline = (entry.run)(&g, &mut baseline_cluster)?;
        let base = baseline_cluster.stats().clone();
        let machines = baseline_cluster.num_machines();

        let mut crashes = 0usize;
        let mut extra_rounds = 0usize;
        let mut extra_words = 0u64;
        let mut replay_ok = true;
        for p in 0..plans {
            let plan = FaultPlan::random(Seed(0xFA57).derive(p), machines, 3, 1, 1);
            let exec = || -> Result<_, MpcError> {
                let mut cluster = chaos_cluster(&g, shared);
                cluster.arm_faults(plan.clone(), RecoveryPolicy::restart(8));
                let labels = (entry.run)(&g, &mut cluster)?;
                Ok((labels, cluster))
            };
            let (la, ca) = exec()?;
            let (lb, cb) = exec()?;
            replay_ok &= la == lb && ca.stats() == cb.stats() && la == baseline;
            if !ca.recovery_log().is_empty() {
                crashes += 1;
                extra_rounds += ca.stats().rounds - base.rounds;
                extra_words += ca.stats().total_words - base.total_words;
            }
        }
        println!(
            "{:<22} {:>6} {:>8} {:>12.1} {:>12.1} {:>10}",
            entry.name,
            plans,
            crashes,
            extra_rounds as f64 / crashes.max(1) as f64,
            extra_words as f64 / crashes.max(1) as f64,
            if replay_ok { "identical" } else { "DIVERGED" }
        );
    }

    println!();
    println!("crash immunity (Definition 13 under the fault model):");
    let comp = generators::cycle(12);
    for (name, report) in [
        (
            "one-shot-luby-mis",
            verify_crash_immunity(&StableOneShotIs, &comp, 20, Seed(21))?,
        ),
        (
            "ball-greedy-coloring",
            verify_crash_immunity(&BallGreedyColoringMpc { radius: 3 }, &comp, 20, Seed(22))?,
        ),
    ] {
        println!(
            "  {:<22} {} crashes recovered, {} witnesses -> {}",
            name,
            report.crashes_recovered,
            report.witnesses.len(),
            if report.immune() {
                "immune"
            } else {
                "UNSTABLE UNDER CRASHES"
            }
        );
    }
    println!();
    println!(
        "reading: recovery is never free (the ledger charges every replayed \
         round and re-shipped\ncheckpoint word), yet the same seed and plan \
         reproduce the identical execution — faults\nare part of the \
         deterministic replay, and foreign-component crashes never leak into \
         a\ncomponent-stable output."
    );
    Ok(())
}
