//! The Section 6 collapse `DetMPC = RandMPC` (Lemmas 54–55, Theorem 22),
//! executed at laptop scale: amplify a randomized algorithm until its
//! failure probability is below `1/|G_{n,Δ}|`, then *exhaustively find one
//! seed that works for every graph in the family* — the non-uniform,
//! non-explicit seed the paper hard-codes into machines.
//!
//! ```sh
//! cargo run --release --example derandomization
//! ```

use component_stability::derand::mce::find_good_seed;
use component_stability::graph::enumerate::family_up_to;
use component_stability::prelude::*;
use component_stability::problems::mis::Mis;

use component_stability::algorithms::luby::{luby_step, random_chi, MisStatus, TruncatedLubyMis};

fn main() {
    // The family G_{n,Δ}: all labeled graphs with ≤ 4 nodes, Δ ≤ 3.
    let family: Vec<Graph> = family_up_to(4, 3).collect();
    println!("|G_{{4,3}}| = {} graphs", family.len());

    // Monte-Carlo algorithm: Luby MIS truncated to a fixed phase budget;
    // it *fails* (leaves ⊥ nodes) on some (graph, seed) pairs. A seed is
    // universal when it fully decides — and validly solves — every family
    // member. Lemma 54's counting argument says: once the per-seed failure
    // probability drops below 1/|family|, universal seeds must exist.
    for phases in [1usize, 2, 3] {
        let alg = TruncatedLubyMis { phases };
        let good_for_all = |s: u64| {
            family.iter().all(|g| {
                let params = LocalParams::exact(g.n(), g.max_degree(), Seed(s));
                let status = alg.statuses(g, &params);
                if status.contains(&MisStatus::Undecided) {
                    return false;
                }
                let labels: Vec<bool> = status.iter().map(|&x| x == MisStatus::In).collect();
                Mis.is_valid(g, &labels)
            })
        };
        let (first, good) = find_good_seed(512, good_for_all);
        match first {
            Some(s) => println!(
                "phase budget {phases}: {good}/512 universal seeds; Lemma 54 \
                 hard-codes seed {s} for n = 4"
            ),
            None => println!(
                "phase budget {phases}: 0/512 universal seeds — failure \
                 probability still above 1/|family|"
            ),
        }
    }

    // Contrast: a *single* Luby step has per-graph success probability
    // below 1; amplification (Lemma 55) drives the failure probability
    // down exponentially in the repetition count.
    let g = generators::cycle(30);
    let threshold = 10; // want an IS of ≥ n/3 = 10 nodes
    for reps in [1usize, 2, 4, 8, 16, 32] {
        let trials = 400u64;
        let ok = (0..trials)
            .filter(|&t| {
                (0..reps).any(|r| {
                    let params =
                        LocalParams::exact(g.n(), g.max_degree(), Seed(t).derive(r as u64));
                    let labels = luby_step(&g, &random_chi(&g, &params));
                    labels.iter().filter(|&&b| b).count() >= threshold
                })
            })
            .count();
        println!(
            "amplification with {reps:>2} repetitions: success {}/{} trials",
            ok, trials
        );
    }
    println!();
    println!(
        "the amplified + seed-fixed algorithm is deterministic but \
         component-UNSTABLE (global seed agreement), which is exactly \
         why Theorem 22 does not contradict the stable-class separations."
    );
}
