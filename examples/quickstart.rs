//! Quickstart: a tour of the workspace in one binary.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use component_stability::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a legal input graph (IDs component-unique, names global).
    let g = generators::cycle(64);
    println!("input: {g}");
    assert!(g.is_legal());

    // 2. Provision a low-space MPC cluster (φ = 0.5) and run the
    //    component-unstable O(1)-round large-IS algorithm of Theorem 5.
    let mut cluster = cluster_for(&g, Seed(42));
    let labels = AmplifiedLargeIs { repetitions: 0 }.run(&g, &mut cluster)?;
    let size = labels.iter().filter(|&&b| b).count();
    println!(
        "amplified IS: size {size} (threshold n/(4Δ+1) = {}), {}",
        64 / 9,
        cluster.stats()
    );

    // 3. The same problem, deterministically, via pairwise hashing + the
    //    method of conditional expectations (Theorem 53).
    let mut cluster = cluster_for(&g, Seed(0));
    let det = DerandomizedLargeIs.run(&g, &mut cluster)?;
    println!(
        "derandomized IS: size {} in {} rounds",
        det.iter().filter(|&&b| b).count(),
        cluster.stats().rounds
    );

    // 4. Certify stability status empirically (Definition 13).
    let comp = generators::cycle(10);
    for placement in [
        classify(&StableOneShotIs, &comp, 8, Seed(1))?,
        classify(&AmplifiedLargeIs { repetitions: 8 }, &comp, 12, Seed(2))?,
        classify(&DerandomizedLargeIs, &comp, 12, Seed(3))?,
    ] {
        println!("{:<50} -> {}", placement.algorithm, placement.class);
    }

    // 5. Validate outputs with the problem framework.
    use component_stability::problems::mis::LargeIndependentSet;
    let problem = LargeIndependentSet { c: 0.2 };
    println!(
        "validator accepts amplified output: {}",
        problem.is_valid(&g, &labels)
    );
    Ok(())
}
