//! Offline stand-in for the `proptest` crate.
//!
//! The real `proptest` cannot be fetched in this build environment, so this
//! crate implements the (small) subset of its API that the workspace's
//! property tests use, with the same semantics the tests rely on:
//!
//! * range strategies (`2usize..30`, `0u64..=100`, …);
//! * tuple strategies of up to four components;
//! * [`Strategy::prop_map`];
//! * [`collection::vec`];
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Generation is **deterministic**: the RNG is seeded from the test's name,
//! so every run explores the same cases. There is no shrinking — a failing
//! case panics with the case index so it can be reproduced directly.

use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator backing all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a raw seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, span)`; `span` must be nonzero.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "empty strategy range");
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }
}

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Seeds a [`TestRng`] from a test name (FNV-1a over the bytes).
#[must_use]
pub fn rng_for_test(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::new(h)
}

/// A generator of random values — the stand-in for proptest's `Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for `Vec`s with length drawn from `len` and elements from
    /// `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vec strategy constructor, mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestRng};
}

/// Asserts a property inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                $body
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (0u32..=5).generate(&mut rng);
            assert!(w <= 5);
        }
    }

    #[test]
    fn determinism_per_name() {
        let a: Vec<u64> = {
            let mut r = rng_for_test("x");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = rng_for_test("x");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn tuple_and_map_compose() {
        let strat = (0u64..10, 1usize..4).prop_map(|(a, n)| vec![a; n]);
        let mut rng = TestRng::new(9);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 4);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let strat = collection::vec(0u64..5, 0..7);
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v.len() < 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_smoke(a in 0u64..50, b in 0usize..3) {
            prop_assert!(a < 50);
            prop_assert_eq!(b * 2 % 2, 0);
        }
    }
}
