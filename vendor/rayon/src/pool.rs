//! Lazily-started persistent worker pool shared by every parallel
//! combinator in this crate.
//!
//! The previous runtime spawned fresh scoped threads for every `map` call;
//! at million-item scale the spawn/join cost dominated the sweep itself.
//! This pool starts `current_num_threads() - 1` daemon workers the first
//! time a parallel call actually needs them and reuses them for the rest
//! of the process.
//!
//! # Execution model
//!
//! A parallel call is a [`Job`]: a chunk count plus a `Fn(usize)` body that
//! executes chunk `c`. Workers (and the submitting caller, which always
//! participates) claim chunk indices from a shared atomic cursor until the
//! job is exhausted. Claiming is dynamic — whichever thread is free takes
//! the next chunk — but the *output* stays deterministic because every
//! chunk writes a fixed, disjoint output range chosen by its index alone;
//! there is no concatenation step whose order could vary.
//!
//! # Why the lifetime-erased pointer is sound
//!
//! `run` stores a raw pointer to the caller's closure in the job so the
//! `'static` worker threads can call it. The caller blocks until the
//! completion count (guarded by a mutex, so it also publishes the workers'
//! writes) reaches the chunk count. Every dereference of the pointer
//! happens inside the execution of a claimed chunk, and every claimed
//! chunk finishes before the count reaches the total — so no worker can
//! touch the closure (or the output buffers it writes) after `run`
//! returns. Workers that lose the race for the final chunks observe
//! `cursor >= chunks` and return without dereferencing anything.
//!
//! # Panics
//!
//! A panic in the closure is caught at chunk granularity, the remaining
//! chunks still run (keeping the completion count honest), and the first
//! payload is re-thrown on the calling thread once the job completes.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Lifetime-erased pointer to the job body. Only dereferenced while the
/// submitting caller is provably still blocked in [`run`] (see module
/// docs), which is what makes the erasure sound.
struct RawFunc(*const (dyn Fn(usize) + Sync + 'static));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and the pointer itself is only a value; validity is guaranteed by the
// caller-blocks-until-done protocol described in the module docs.
unsafe impl Send for RawFunc {}
unsafe impl Sync for RawFunc {}

/// One submitted parallel call.
struct Job {
    func: RawFunc,
    chunks: usize,
    /// Next unclaimed chunk index; claims past `chunks` are no-ops.
    cursor: AtomicUsize,
    /// Number of chunks that have finished executing. Guarded by a mutex
    /// (not an atomic) so the final observation also establishes
    /// happens-before with every chunk's output writes.
    finished: Mutex<usize>,
    done: Condvar,
    /// First panic payload caught while executing a chunk.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

struct Pool {
    queue: Mutex<VecDeque<Arc<Job>>>,
    work: Condvar,
}

/// The process-wide pool, started on first use. `None` when the resolved
/// worker count is 1 — everything runs inline and no threads are spawned.
fn pool() -> Option<&'static Pool> {
    static POOL: OnceLock<Option<&'static Pool>> = OnceLock::new();
    *POOL.get_or_init(|| {
        let workers = crate::current_num_threads();
        if workers <= 1 {
            return None;
        }
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            queue: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
        }));
        // The submitting caller always participates, so `workers` total
        // threads touch a job: `workers - 1` here plus the caller.
        for i in 0..workers - 1 {
            std::thread::Builder::new()
                .name(format!("csmpc-rayon-{i}"))
                .spawn(move || worker_loop(pool))
                .expect("spawn pool worker");
        }
        Some(pool)
    })
}

fn worker_loop(pool: &'static Pool) {
    loop {
        let job = {
            let mut queue = pool.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.front() {
                    break Arc::clone(job);
                }
                queue = pool.work.wait(queue).unwrap();
            }
        };
        work_on(&job);
        // All chunks are claimed; retire the job so the queue front moves
        // on. (The submitting caller also removes it — whichever runs
        // first wins, `retain` is idempotent.)
        let mut queue = pool.queue.lock().unwrap();
        queue.retain(|j| !Arc::ptr_eq(j, &job));
    }
}

/// Claims and executes chunks of `job` until the cursor is exhausted.
fn work_on(job: &Job) {
    loop {
        let idx = job.cursor.fetch_add(1, Ordering::Relaxed);
        if idx >= job.chunks {
            return;
        }
        // SAFETY: idx < chunks, so the submitting caller is still blocked
        // in `run` and the closure is alive (module docs).
        let func = unsafe { &*job.func.0 };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| func(idx))) {
            let mut slot = job.panic.lock().unwrap();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        let mut finished = job.finished.lock().unwrap();
        *finished += 1;
        if *finished == job.chunks {
            job.done.notify_all();
        }
    }
}

/// Executes `f(0), f(1), …, f(chunks - 1)`, distributing the calls over
/// the persistent pool. Returns once every call has finished; re-throws
/// the first panic raised inside `f`. Runs inline when there is nothing to
/// distribute (one chunk, one worker, or the pool is disabled).
pub(crate) fn run(chunks: usize, f: &(dyn Fn(usize) + Sync)) {
    if chunks == 0 {
        return;
    }
    let pool = match pool() {
        Some(pool) if chunks > 1 => pool,
        _ => {
            for c in 0..chunks {
                f(c);
            }
            return;
        }
    };
    // SAFETY: only erases the lifetime bound of the trait object; the
    // pointer is dereferenced exclusively while this frame is blocked
    // below (module docs).
    let func: *const (dyn Fn(usize) + Sync + 'static) =
        unsafe { std::mem::transmute::<*const (dyn Fn(usize) + Sync), _>(f) };
    let job = Arc::new(Job {
        func: RawFunc(func),
        chunks,
        cursor: AtomicUsize::new(0),
        finished: Mutex::new(0),
        done: Condvar::new(),
        panic: Mutex::new(None),
    });
    pool.queue.lock().unwrap().push_back(Arc::clone(&job));
    pool.work.notify_all();
    // Participate instead of idling — this also makes nested parallel
    // calls deadlock-free: every submitter drives its own job forward even
    // if all pool workers are busy elsewhere.
    work_on(&job);
    let mut finished = job.finished.lock().unwrap();
    while *finished < job.chunks {
        finished = job.done.wait(finished).unwrap();
    }
    drop(finished);
    pool.queue.lock().unwrap().retain(|j| !Arc::ptr_eq(j, &job));
    let payload = job.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        std::panic::resume_unwind(payload);
    }
}
