//! Offline stand-in for the `rayon` crate: a deterministic, eager subset.
//!
//! The build environment has no registry access, so — like `vendor/proptest`
//! and `vendor/criterion` — this is a small, self-contained, API-compatible
//! subset of the real crate, sufficient for the workspace's needs.
//!
//! # Determinism contract
//!
//! Unlike real rayon (work-stealing, nondeterministic scheduling), every
//! combinator here is *eager* and *order-preserving*: a parallel map splits
//! the input into `k` contiguous chunks (`k` = worker count), evaluates the
//! chunks on scoped threads, and concatenates the chunk results **in chunk
//! order**. The output is therefore bit-identical to the sequential
//! `iter().map().collect()` regardless of the worker count, which is what
//! lets the simulators expose a `ParallelismMode` toggle whose two settings
//! are observationally equivalent.
//!
//! Worker count: `RAYON_NUM_THREADS` or `CSMPC_WORKERS` (first valid wins),
//! else `std::thread::available_parallelism()`. With one worker, everything
//! runs inline on the calling thread.

#![warn(missing_docs)]

use std::ops::Range;
use std::sync::OnceLock;

/// Number of worker threads parallel combinators may use.
///
/// Resolved once per process: `RAYON_NUM_THREADS`, then `CSMPC_WORKERS`,
/// then [`std::thread::available_parallelism`], else 1.
#[must_use]
pub fn current_num_threads() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        for var in ["RAYON_NUM_THREADS", "CSMPC_WORKERS"] {
            if let Ok(raw) = std::env::var(var) {
                if let Ok(n) = raw.trim().parse::<usize>() {
                    if n >= 1 {
                        return n;
                    }
                }
            }
        }
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    })
}

/// Eagerly maps `items` through `f` on up to `workers` scoped threads,
/// returning results in input order (chunk results concatenated in chunk
/// order). Panics in `f` are propagated to the caller.
fn map_chunked<T, R, F>(items: Vec<T>, f: F, min_len: usize, workers: usize) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let len = items.len();
    let chunks = workers.min(len.div_ceil(min_len.max(1)));
    if chunks <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = len.div_ceil(chunks);
    let mut buckets: Vec<Vec<T>> = Vec::with_capacity(chunks);
    let mut it = items.into_iter();
    for _ in 0..chunks {
        buckets.push(it.by_ref().take(chunk_size).collect());
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| scope.spawn(move || bucket.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out: Vec<R> = Vec::with_capacity(len);
        for handle in handles {
            match handle.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// An eager, order-preserving parallel iterator over already-materialized
/// items. Produced by [`IntoParallelIterator`], [`ParallelSlice`], or
/// [`ParallelSliceMut`].
pub struct ParIter<T> {
    items: Vec<T>,
    min_len: usize,
}

impl<T: Send> ParIter<T> {
    /// Sets the minimum number of items each worker chunk should hold —
    /// cheap per-item closures amortize thread overhead with larger chunks.
    #[must_use]
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Parallel, order-preserving map: output index `i` is `f(items[i])`.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: map_chunked(self.items, f, self.min_len, current_num_threads()),
            min_len: self.min_len,
        }
    }

    /// Pairs each item with its input index.
    #[must_use]
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
            min_len: self.min_len,
        }
    }

    /// Materializes the results in input order.
    pub fn collect<C: FromParallelIterator<T>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Number of items.
    #[must_use]
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Folds the (already order-preserved) items sequentially with `op`,
    /// starting from `identity()`. Deterministic by construction — but the
    /// simulator crates' `determinism` conformance lint still rejects it
    /// there, because under real rayon `reduce` is association-order
    /// nondeterministic; prefer an explicit `collect` + fold.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T,
        OP: Fn(T, T) -> T,
    {
        self.items.into_iter().fold(identity(), op)
    }

    /// Runs `f` on every item (no ordering guarantee under real rayon;
    /// provided for API compatibility — the simulator crates' conformance
    /// lint forbids it there).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        drop(map_chunked(
            self.items,
            f,
            self.min_len,
            current_num_threads(),
        ));
    }

    #[cfg(test)]
    fn map_with_workers<R, F>(self, f: F, workers: usize) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: map_chunked(self.items, f, self.min_len, workers),
            min_len: self.min_len,
        }
    }
}

/// Types a [`ParIter`] can be materialized into (mirror of rayon's trait).
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds `Self` from the iterator's items, preserving input order.
    fn from_par_iter(iter: ParIter<T>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter(iter: ParIter<T>) -> Vec<T> {
        iter.items
    }
}

/// Conversion into a [`ParIter`] (mirror of rayon's trait).
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// Converts `self` into an eager parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self,
            min_len: 1,
        }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
            min_len: 1,
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
            min_len: 1,
        }
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Item = &'a mut T;
    fn into_par_iter(self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
            min_len: 1,
        }
    }
}

/// `par_iter` on shared slices (mirror of rayon's `IntoParallelRefIterator`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T` in index order.
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
            min_len: 1,
        }
    }
}

/// `par_iter_mut` on mutable slices (mirror of rayon's
/// `IntoParallelRefMutIterator`).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `&mut T` in index order.
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter {
            items: self.iter_mut().collect(),
            min_len: 1,
        }
    }
}

/// Runs both closures, potentially concurrently, returning both results.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB,
    RA: Send,
{
    if current_num_threads() <= 1 {
        let a = oper_a();
        let b = oper_b();
        return (a, b);
    }
    std::thread::scope(|scope| {
        let handle = scope.spawn(oper_a);
        let b = oper_b();
        match handle.join() {
            Ok(a) => (a, b),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

/// The traits most callers want in scope.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, ParIter, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_across_worker_counts() {
        let input: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = input.iter().map(|x| x * 3 + 1).collect();
        for workers in [1, 2, 3, 7, 16, 1000, 2000] {
            let got: Vec<u64> = input
                .clone()
                .into_par_iter()
                .map_with_workers(|x| x * 3 + 1, workers)
                .collect();
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.into_par_iter().map(|x| x + 1).collect();
        assert!(out.is_empty());
        let one: Vec<u32> = vec![41].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v: Vec<usize> = (0..256).collect();
        let deltas: Vec<usize> = v
            .par_iter_mut()
            .map_with_workers(
                |slot| {
                    *slot += 10;
                    *slot
                },
                4,
            )
            .collect();
        assert_eq!(v[0], 10);
        assert_eq!(v[255], 265);
        assert_eq!(deltas, v);
    }

    #[test]
    fn enumerate_indexes_match() {
        let pairs: Vec<(usize, char)> = vec!['a', 'b', 'c'].into_par_iter().enumerate().collect();
        assert_eq!(pairs, vec![(0, 'a'), (1, 'b'), (2, 'c')]);
    }

    #[test]
    fn range_and_slice_entry_points() {
        let squares: Vec<usize> = (0..10usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[9], 81);
        let refs: Vec<usize> = [5usize, 6, 7].par_iter().map(|&x| x * 2).collect();
        assert_eq!(refs, vec![10, 12, 14]);
    }

    #[test]
    fn reduce_is_a_fixed_order_fold() {
        let concat = vec!["a", "b", "c"]
            .into_par_iter()
            .map(String::from)
            .reduce(String::new, |a, b| a + &b);
        assert_eq!(concat, "abc");
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    #[test]
    fn with_min_len_still_preserves_order() {
        let input: Vec<u64> = (0..100).collect();
        let got: Vec<u64> = input
            .clone()
            .into_par_iter()
            .with_min_len(17)
            .map_with_workers(|x| x + 1, 8)
            .collect();
        let expected: Vec<u64> = input.iter().map(|x| x + 1).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn worker_count_is_at_least_one() {
        assert!(current_num_threads() >= 1);
    }
}
