//! Offline stand-in for the `rayon` crate: a deterministic, eager subset.
//!
//! The build environment has no registry access, so — like `vendor/proptest`
//! and `vendor/criterion` — this is a small, self-contained, API-compatible
//! subset of the real crate, sufficient for the workspace's needs.
//!
//! # Determinism contract
//!
//! Unlike real rayon (work-stealing, nondeterministic scheduling), every
//! combinator here is *eager* and *order-preserving*: a parallel map splits
//! the input index range into contiguous chunks and writes chunk `c`'s
//! results into the output positions `[c·w, c·w + w)` that its input
//! indices own. Which thread executes which chunk is dynamic (threads claim
//! chunks from a shared cursor), but the output is a pure function of the
//! input order, so it is bit-identical to the sequential
//! `iter().map().collect()` regardless of the worker count — which is what
//! lets the simulators expose a `ParallelismMode` toggle whose two settings
//! are observationally equivalent.
//!
//! # Zero-copy sources
//!
//! `Range`, `&[T]`, `&mut [T]`, and `Vec<T>` become [`Source`]s: chunk
//! descriptors that *produce* items for an index sub-range on demand,
//! straight out of the underlying storage. No intermediate `Vec` of items
//! (or references!) is materialized per call, adapters ([`Map`],
//! [`Enumerate`]) stay lazy, and the terminal `collect` writes each result
//! exactly once into its final slot. Worker threads live in a lazily
//! started persistent pool ([`mod@pool`]) reused across calls.
//!
//! Worker count: `RAYON_NUM_THREADS` or `CSMPC_WORKERS` (first valid wins),
//! else `std::thread::available_parallelism()`. With one worker, everything
//! runs inline on the calling thread.

#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

mod pool;

/// Number of worker threads parallel combinators may use.
///
/// Resolved once per process: `RAYON_NUM_THREADS`, then `CSMPC_WORKERS`,
/// then [`std::thread::available_parallelism`], else 1.
#[must_use]
pub fn current_num_threads() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        for var in ["RAYON_NUM_THREADS", "CSMPC_WORKERS"] {
            if let Ok(raw) = std::env::var(var) {
                if let Ok(n) = raw.trim().parse::<usize>() {
                    if n >= 1 {
                        return n;
                    }
                }
            }
        }
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    })
}

/// A chunk descriptor: produces the items of an index sub-range on demand,
/// directly from the underlying storage (range arithmetic, slice indexing,
/// or `Vec` buffer reads) — never a materialized buffer of items.
pub trait Source: Sync {
    /// The item the source yields.
    type Item: Send;

    /// Total number of items.
    fn len(&self) -> usize;

    /// `true` when the source has no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feeds the items of `[lo, hi)` into `sink`, in index order.
    ///
    /// # Safety
    ///
    /// Across every `produce` call on this value, the produced index
    /// ranges must be pairwise disjoint and within `0..len()`. (Owning
    /// sources move items out by index; exclusive-reference sources hand
    /// out `&mut` by index — either would be unsound to produce twice.)
    unsafe fn produce<K: FnMut(Self::Item)>(&self, lo: usize, hi: usize, sink: &mut K);
}

/// [`Source`] over a `usize` range: pure index arithmetic.
pub struct RangeSource {
    start: usize,
    len: usize,
}

impl Source for RangeSource {
    type Item = usize;
    fn len(&self) -> usize {
        self.len
    }
    unsafe fn produce<K: FnMut(usize)>(&self, lo: usize, hi: usize, sink: &mut K) {
        for i in lo..hi {
            sink(self.start + i);
        }
    }
}

/// [`Source`] over a shared slice: yields `&T` straight from the slice.
pub struct SliceSource<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> Source for SliceSource<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    unsafe fn produce<K: FnMut(&'a T)>(&self, lo: usize, hi: usize, sink: &mut K) {
        for item in &self.slice[lo..hi] {
            sink(item);
        }
    }
}

/// [`Source`] over a mutable slice: yields `&mut T` by index. The
/// disjointness contract of [`Source::produce`] is exactly what makes
/// handing out `&mut` from a shared `&self` sound.
pub struct SliceMutSource<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: stands in for `&mut [T]`; chunked access is disjoint by the
// `produce` contract, so sharing the descriptor across threads is the same
// as `split_at_mut`-ing the slice.
unsafe impl<T: Send> Send for SliceMutSource<'_, T> {}
unsafe impl<T: Send> Sync for SliceMutSource<'_, T> {}

impl<'a, T: Send> Source for SliceMutSource<'a, T> {
    type Item = &'a mut T;
    fn len(&self) -> usize {
        self.len
    }
    unsafe fn produce<K: FnMut(&'a mut T)>(&self, lo: usize, hi: usize, sink: &mut K) {
        for i in lo..hi {
            // SAFETY: i < self.len (produce contract) and no other produce
            // call touches index i, so this `&mut` is unique.
            sink(unsafe { &mut *self.ptr.add(i) });
        }
    }
}

/// Owning [`Source`] over a `Vec<T>`: moves items out of the buffer by
/// index, without materializing anything.
///
/// The buffer's `len` is held at 0 (the logical length lives in `len`), so
/// the `Vec`'s own drop never touches item slots. If the source is dropped
/// without producing, [`Drop`] restores the length and the items drop
/// normally; once any chunk has produced, remaining items are leaked on an
/// unwind rather than risking a double drop.
pub struct VecSource<T> {
    buf: Vec<T>,
    len: usize,
    produced: AtomicBool,
}

// SAFETY: produce moves `T` values out to the calling thread (so `T: Send`
// is required), and the disjointness contract means concurrent produce
// calls read disjoint slots — `T: Sync` is not needed.
unsafe impl<T: Send> Sync for VecSource<T> {}

impl<T: Send> Source for VecSource<T> {
    type Item = T;
    fn len(&self) -> usize {
        self.len
    }
    unsafe fn produce<K: FnMut(T)>(&self, lo: usize, hi: usize, sink: &mut K) {
        self.produced.store(true, Ordering::Relaxed);
        let base = self.buf.as_ptr();
        for i in lo..hi {
            // SAFETY: i < self.len slots are initialized, and the produce
            // contract guarantees each is read (moved out) at most once.
            sink(unsafe { std::ptr::read(base.add(i)) });
        }
    }
}

impl<T> Drop for VecSource<T> {
    fn drop(&mut self) {
        if !self.produced.load(Ordering::Relaxed) {
            // SAFETY: nothing was moved out, so all `self.len` slots are
            // still initialized.
            unsafe { self.buf.set_len(self.len) };
        }
    }
}

/// Lazy mapping adapter: applies `f` at produce time, on the producing
/// thread, with no intermediate storage.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, R> Source for Map<S, F>
where
    S: Source,
    R: Send,
    F: Fn(S::Item) -> R + Sync,
{
    type Item = R;
    fn len(&self) -> usize {
        self.inner.len()
    }
    unsafe fn produce<K: FnMut(R)>(&self, lo: usize, hi: usize, sink: &mut K) {
        // SAFETY: forwards the caller's (disjoint) range unchanged.
        unsafe {
            self.inner.produce(lo, hi, &mut |item| sink((self.f)(item)));
        }
    }
}

/// Lazy enumeration adapter: the index is recovered from the chunk offset
/// by arithmetic — no `(usize, T)` tuples are ever materialized.
pub struct Enumerate<S> {
    inner: S,
}

impl<S: Source> Source for Enumerate<S> {
    type Item = (usize, S::Item);
    fn len(&self) -> usize {
        self.inner.len()
    }
    unsafe fn produce<K: FnMut((usize, S::Item))>(&self, lo: usize, hi: usize, sink: &mut K) {
        let mut i = lo;
        // SAFETY: forwards the caller's (disjoint) range unchanged.
        unsafe {
            self.inner.produce(lo, hi, &mut |item| {
                sink((i, item));
                i += 1;
            });
        }
    }
}

/// `*mut T` wrapper so the output base pointer can be captured by the
/// `Sync` chunk closure; every chunk writes a disjoint offset range.
struct SendPtr<T>(*mut T);
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
// SAFETY: the pointer is only used to write disjoint, chunk-owned ranges.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Splits `len` items into contiguous chunks: `(chunk_size, chunk_count)`.
///
/// `min_len == 0` means size-adaptive: aim for `4 × workers` chunks (a
/// small over-decomposition so the dynamic claimer load-balances uneven
/// chunk costs) but never chunks smaller than one item. An explicit
/// `min_len` caps the chunk count the same way the real rayon's
/// `with_min_len` does.
fn chunk_plan(len: usize, min_len: usize) -> (usize, usize) {
    if len == 0 {
        return (1, 0);
    }
    let workers = current_num_threads();
    let target = 4 * workers;
    let effective_min = if min_len == 0 {
        (len / target).max(1)
    } else {
        min_len
    };
    let chunks = target.min(len.div_ceil(effective_min)).max(1);
    let chunk = len.div_ceil(chunks);
    (chunk, len.div_ceil(chunk))
}

/// An eager, order-preserving parallel iterator: a lazy [`Source`] plus a
/// chunking policy. Produced by [`IntoParallelIterator`],
/// [`ParallelSlice`], or [`ParallelSliceMut`]; nothing is materialized
/// until a terminal method (`collect`, `for_each`, `reduce`) runs.
pub struct ParIter<S> {
    source: S,
    /// 0 = size-adaptive (see [`chunk_plan`]).
    min_len: usize,
}

impl<S: Source> ParIter<S> {
    /// Sets the minimum number of items each worker chunk should hold —
    /// cheap per-item closures amortize scheduling overhead with larger
    /// chunks. Without it the chunk size adapts to the input length and
    /// worker count automatically.
    #[must_use]
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Lazy, order-preserving map: output index `i` is `f(item_i)`.
    pub fn map<R, F>(self, f: F) -> ParIter<Map<S, F>>
    where
        R: Send,
        F: Fn(S::Item) -> R + Sync,
    {
        ParIter {
            source: Map {
                inner: self.source,
                f,
            },
            min_len: self.min_len,
        }
    }

    /// Pairs each item with its input index, by chunk-offset arithmetic.
    #[must_use]
    pub fn enumerate(self) -> ParIter<Enumerate<S>> {
        ParIter {
            source: Enumerate { inner: self.source },
            min_len: self.min_len,
        }
    }

    /// Materializes the results in input order.
    pub fn collect<C: FromParallelIterator<S::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Materializes the results in input order into `out`, reusing its
    /// allocation (`out` is cleared first). The workhorse terminal: each
    /// result is written exactly once into its final slot by the chunk
    /// that owns its index range.
    pub fn collect_into_vec(self, out: &mut Vec<S::Item>) {
        let len = self.source.len();
        out.clear();
        out.reserve(len);
        if len == 0 {
            return;
        }
        let (chunk, chunks) = chunk_plan(len, self.min_len);
        let base = out.as_mut_ptr();
        if chunks <= 1 {
            let mut cursor = base;
            // SAFETY: one produce call over the full range; each item is
            // written once to a reserved slot, then the length is set.
            unsafe {
                self.source.produce(0, len, &mut |item| {
                    std::ptr::write(cursor, item);
                    cursor = cursor.add(1);
                });
                out.set_len(len);
            }
            return;
        }
        let base = SendPtr(base);
        let source = &self.source;
        pool::run(chunks, &|c| {
            // Rebind the whole wrapper (not the `.0` field, which edition
            // 2021 would precise-capture as a bare `*mut T`) so the closure
            // captures the `Sync` `SendPtr` itself.
            #[allow(clippy::redundant_locals)]
            let base = base;
            let lo = c * chunk;
            let hi = len.min(lo + chunk);
            // SAFETY: chunk `c` exclusively owns input and output indices
            // `[lo, hi)` — produce ranges are disjoint across chunks, and
            // each output slot (reserved above) is written exactly once.
            // `pool::run` blocks until every chunk completes, so `source`
            // and `base` outlive all uses.
            unsafe {
                let mut cursor = base.0.add(lo);
                source.produce(lo, hi, &mut |item| {
                    std::ptr::write(cursor, item);
                    cursor = cursor.add(1);
                });
            }
        });
        // SAFETY: all `len` slots were initialized by the chunks above
        // (pool::run re-throws chunk panics before reaching here).
        unsafe { out.set_len(len) };
    }

    /// Number of items (known from the source — nothing is executed).
    #[must_use]
    pub fn count(self) -> usize {
        self.source.len()
    }

    /// Folds the items sequentially, in index order, with `op`, starting
    /// from `identity()` — no intermediate buffer. Deterministic by
    /// construction — but the simulator crates' `determinism` conformance
    /// lint still rejects it there, because under real rayon `reduce` is
    /// association-order nondeterministic; prefer an explicit `collect` +
    /// fold.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> S::Item
    where
        ID: Fn() -> S::Item,
        OP: Fn(S::Item, S::Item) -> S::Item,
    {
        let len = self.source.len();
        let mut acc = Some(identity());
        // SAFETY: one produce call over the full range.
        unsafe {
            self.source.produce(0, len, &mut |item| {
                let cur = acc.take().expect("reduce accumulator");
                acc = Some(op(cur, item));
            });
        }
        acc.expect("reduce accumulator")
    }

    /// Runs `f` on every item (no ordering guarantee under real rayon;
    /// provided for API compatibility — the simulator crates' conformance
    /// lint forbids it there).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(S::Item) + Sync,
    {
        let len = self.source.len();
        if len == 0 {
            return;
        }
        let (chunk, chunks) = chunk_plan(len, self.min_len);
        let source = &self.source;
        pool::run(chunks, &|c| {
            let lo = c * chunk;
            let hi = len.min(lo + chunk);
            // SAFETY: chunk `c` exclusively owns indices `[lo, hi)`.
            unsafe {
                source.produce(lo, hi, &mut |item| f(item));
            }
        });
    }
}

/// Types a [`ParIter`] can be materialized into (mirror of rayon's trait).
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds `Self` from the iterator's items, preserving input order.
    fn from_par_iter<S: Source<Item = T>>(iter: ParIter<S>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<S: Source<Item = T>>(iter: ParIter<S>) -> Vec<T> {
        let mut out = Vec::new();
        iter.collect_into_vec(&mut out);
        out
    }
}

/// Conversion into a [`ParIter`] (mirror of rayon's trait).
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// The zero-copy source backing the iterator.
    type Source: Source<Item = Self::Item>;
    /// Converts `self` into a lazy parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Source>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Source = VecSource<T>;
    fn into_par_iter(mut self) -> ParIter<VecSource<T>> {
        let len = self.len();
        // SAFETY: 0 <= len; the `len` items stay initialized in the buffer
        // and are tracked by `VecSource::len` from here on.
        unsafe { self.set_len(0) };
        ParIter {
            source: VecSource {
                buf: self,
                len,
                produced: AtomicBool::new(false),
            },
            min_len: 0,
        }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Source = RangeSource;
    fn into_par_iter(self) -> ParIter<RangeSource> {
        ParIter {
            source: RangeSource {
                start: self.start,
                len: self.end.saturating_sub(self.start),
            },
            min_len: 0,
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Source = SliceSource<'a, T>;
    fn into_par_iter(self) -> ParIter<SliceSource<'a, T>> {
        ParIter {
            source: SliceSource { slice: self },
            min_len: 0,
        }
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Item = &'a mut T;
    type Source = SliceMutSource<'a, T>;
    fn into_par_iter(self) -> ParIter<SliceMutSource<'a, T>> {
        ParIter {
            source: SliceMutSource {
                ptr: self.as_mut_ptr(),
                len: self.len(),
                _marker: PhantomData,
            },
            min_len: 0,
        }
    }
}

/// `par_iter` on shared slices (mirror of rayon's `IntoParallelRefIterator`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T` in index order.
    fn par_iter(&self) -> ParIter<SliceSource<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<SliceSource<'_, T>> {
        self.into_par_iter()
    }
}

/// `par_iter_mut` on mutable slices (mirror of rayon's
/// `IntoParallelRefMutIterator`).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `&mut T` in index order.
    fn par_iter_mut(&mut self) -> ParIter<SliceMutSource<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<SliceMutSource<'_, T>> {
        self.into_par_iter()
    }
}

/// Runs both closures, potentially concurrently, returning both results.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB,
    RA: Send,
{
    if current_num_threads() <= 1 {
        let a = oper_a();
        let b = oper_b();
        return (a, b);
    }
    std::thread::scope(|scope| {
        let handle = scope.spawn(oper_a);
        let b = oper_b();
        match handle.join() {
            Ok(a) => (a, b),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

/// The traits most callers want in scope.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, ParIter, ParallelSlice, ParallelSliceMut,
        Source,
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn map_preserves_order_across_chunk_plans() {
        let input: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = input.iter().map(|x| x * 3 + 1).collect();
        // min_len sweeps the chunk count from "one huge chunk" to "one
        // item per chunk" — order must be preserved under every plan.
        for min_len in [1, 2, 3, 7, 16, 100, 1000, 2000] {
            let got: Vec<u64> = input
                .clone()
                .into_par_iter()
                .with_min_len(min_len)
                .map(|x| x * 3 + 1)
                .collect();
            assert_eq!(got, expected, "min_len = {min_len}");
        }
        // Size-adaptive default plan.
        let got: Vec<u64> = input.clone().into_par_iter().map(|x| x * 3 + 1).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.into_par_iter().map(|x| x + 1).collect();
        assert!(out.is_empty());
        let one: Vec<u32> = vec![41].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v: Vec<usize> = (0..256).collect();
        let deltas: Vec<usize> = v
            .par_iter_mut()
            .with_min_len(64)
            .map(|slot| {
                *slot += 10;
                *slot
            })
            .collect();
        assert_eq!(v[0], 10);
        assert_eq!(v[255], 265);
        assert_eq!(deltas, v);
    }

    #[test]
    fn enumerate_indexes_match() {
        let pairs: Vec<(usize, char)> = vec!['a', 'b', 'c'].into_par_iter().enumerate().collect();
        assert_eq!(pairs, vec![(0, 'a'), (1, 'b'), (2, 'c')]);
        // Large enough to split into many chunks: the arithmetic indices
        // must agree with the sequential enumeration in every chunk.
        let big: Vec<(usize, u64)> = (0..10_000usize)
            .into_par_iter()
            .with_min_len(13)
            .map(|i| i as u64 * 7)
            .enumerate()
            .collect();
        for (i, (idx, val)) in big.iter().enumerate() {
            assert_eq!((*idx, *val), (i, i as u64 * 7));
        }
    }

    #[test]
    fn range_and_slice_entry_points() {
        let squares: Vec<usize> = (0..10usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[9], 81);
        let refs: Vec<usize> = [5usize, 6, 7].par_iter().map(|&x| x * 2).collect();
        assert_eq!(refs, vec![10, 12, 14]);
    }

    #[test]
    fn reduce_is_a_fixed_order_fold() {
        let concat = vec!["a", "b", "c"]
            .into_par_iter()
            .map(String::from)
            .reduce(String::new, |a, b| a + &b);
        assert_eq!(concat, "abc");
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    #[test]
    fn collect_into_vec_reuses_allocation() {
        let mut out: Vec<usize> = Vec::with_capacity(4096);
        let ptr_before = out.as_ptr();
        (0..4096usize)
            .into_par_iter()
            .map(|i| i * 2)
            .collect_into_vec(&mut out);
        assert_eq!(out.len(), 4096);
        assert_eq!(out[1234], 2468);
        assert_eq!(ptr_before, out.as_ptr(), "reserve must reuse the buffer");
        // Second fill at the same size: still the same buffer.
        (0..4096usize)
            .into_par_iter()
            .map(|i| i + 1)
            .collect_into_vec(&mut out);
        assert_eq!(ptr_before, out.as_ptr());
        assert_eq!(out[0], 1);
    }

    #[test]
    fn vec_source_drops_items_when_unconsumed() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let items: Vec<Counted> = (0..10).map(|_| Counted(Arc::clone(&drops))).collect();
        let iter = items.into_par_iter();
        drop(iter);
        assert_eq!(
            drops.load(Ordering::SeqCst),
            10,
            "unconsumed items must drop"
        );

        // And a consumed source drops every item exactly once (moved into
        // the map closure, dropped there).
        let drops2 = Arc::new(AtomicUsize::new(0));
        let items2: Vec<Counted> = (0..100).map(|_| Counted(Arc::clone(&drops2))).collect();
        let lens: Vec<usize> = items2.into_par_iter().with_min_len(7).map(|_c| 1).collect();
        assert_eq!(lens.len(), 100);
        assert_eq!(drops2.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        let caught = std::panic::catch_unwind(|| {
            let _: Vec<u32> = (0..1000usize)
                .into_par_iter()
                .with_min_len(10)
                .map(|i| {
                    assert!(i != 517, "boom");
                    i as u32
                })
                .collect();
        });
        assert!(caught.is_err(), "panic in a chunk must reach the caller");
        // The pool must still be serviceable after a panicked job.
        let sum: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i).collect();
        assert_eq!(sum.iter().sum::<usize>(), 499_500);
    }

    #[test]
    fn nested_parallel_calls_do_not_deadlock() {
        let out: Vec<usize> = (0..64usize)
            .into_par_iter()
            .with_min_len(4)
            .map(|i| {
                let inner: Vec<usize> = (0..32usize)
                    .into_par_iter()
                    .with_min_len(4)
                    .map(move |j| i * j)
                    .collect();
                inner.iter().sum()
            })
            .collect();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * (31 * 32 / 2));
        }
    }

    #[test]
    fn repeated_calls_reuse_the_pool() {
        // Smoke: a long sequence of small parallel calls must not
        // accumulate resources or wedge (the old runtime spawned fresh
        // scoped threads per call; the pool reuses daemon workers).
        for round in 0..200usize {
            let v: Vec<usize> = (0..257usize)
                .into_par_iter()
                .map(move |i| i + round)
                .collect();
            assert_eq!(v[0], round);
            assert_eq!(v[256], 256 + round);
        }
    }

    #[test]
    fn worker_count_is_at_least_one() {
        assert!(current_num_threads() >= 1);
    }
}
