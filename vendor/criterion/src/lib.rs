//! Offline stand-in for the `criterion` crate.
//!
//! The real `criterion` cannot be fetched in this build environment. This
//! crate implements the subset of its API the workspace's benches use —
//! enough to compile them under `cargo clippy --all-targets` and to run them
//! with `cargo bench` for a quick wall-clock reading (median of a few
//! iterations, no statistical machinery).

use std::fmt::Display;
use std::hint;
use std::time::Instant;

/// Number of timed iterations per benchmark.
const ITERATIONS: u32 = 5;

/// Opaque value barrier, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Times one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    nanos: Vec<u128>,
}

impl Bencher {
    /// Runs `f` a few times and records the median wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..ITERATIONS {
            let start = Instant::now();
            let out = f();
            self.nanos.push(start.elapsed().as_nanos());
            drop(black_box(out));
        }
    }

    fn median_nanos(&self) -> u128 {
        if self.nanos.is_empty() {
            return 0;
        }
        let mut v = self.nanos.clone();
        v.sort_unstable();
        v[v.len() / 2]
    }
}

/// A benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An ID naming a parameterized case by its parameter value.
    pub fn from_parameter<D: Display>(p: D) -> Self {
        BenchmarkId {
            label: p.to_string(),
        }
    }

    /// An ID with a function name and a parameter.
    pub fn new<D: Display>(function: &str, p: D) -> Self {
        BenchmarkId {
            label: format!("{function}/{p}"),
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is fixed in this stand-in.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` against `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.label), &b);
        self
    }

    /// Benchmarks `f` under `id` with no input.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

fn report(name: &str, b: &Bencher) {
    let ns = b.median_nanos();
    if ns >= 1_000_000 {
        println!("bench {name}: {:.3} ms", ns as f64 / 1e6);
    } else {
        println!("bench {name}: {:.3} µs", ns as f64 / 1e3);
    }
}

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(id, &b);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.bench_function("tiny/sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        let mut group = c.benchmark_group("tiny/group");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &x| {
            b.iter(|| x * 2);
        });
        group.finish();
    }

    criterion_group!(benches, tiny);

    #[test]
    fn group_macro_runs() {
        benches();
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(41) + 1, 42);
    }
}
