#!/usr/bin/env bash
# Full local CI: format, lint, build, test, model-conformance scan.
# Mirrors what a hosted pipeline would run; fails fast on the first error.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> chaos suite (fault injection + recovery, pinned seeds)"
cargo test -q -p csmpc-mpc --test chaos

echo "==> supervision suite (transport faults, speculation, quarantine, backoff)"
cargo test -q -p csmpc-mpc --test supervision

echo "==> degradation theorem gate (PartialOutput contract, pinned seeds)"
cargo test -q --test degradation

echo "==> model-conformance scan (token lints + interprocedural passes)"
# Machine-readable output goes to files under target/conformance/, never
# through a pipe: some runner images print shell-init noise on login
# shells (this one emits "WARNING conda.cli.condarc:set_key(484): Key
# auto_activate_base is an alias of auto_activate" because ~/.bashrc runs
# `conda config --set auto_activate_base false` on every init — that file
# is outside this repository, so it cannot be fixed at source here).
# Writing artifacts directly keeps the JSON/SARIF byte-clean regardless.
# The baseline gate fails the build on any finding not recorded in the
# checked-in conformance-baseline.json (exit 1 = new findings, 2 = tool
# error); the SARIF log is the CI-uploadable artifact form.
mkdir -p target/conformance
cargo run -q --release -p csmpc-conformance --bin conformance -- \
    --format json --baseline conformance-baseline.json \
    --sarif-out target/conformance/conformance.sarif \
    > target/conformance/conformance.json
test -s target/conformance/conformance.json
test -s target/conformance/conformance.sarif
echo "    JSON artifact:  target/conformance/conformance.json"
echo "    SARIF artifact: target/conformance/conformance.sarif"

echo "==> parallel equivalence suite (forced worker threads)"
# Force real worker threads even on single-core runners so the parallel
# code path is exercised for the bit-identity assertions.
RAYON_NUM_THREADS=4 cargo test -q --test parallel_equivalence

echo "==> routing-equivalence suite (counting-sort fabric vs sort oracle)"
# Property proof that the engine's counting-sort scatter groups messages
# element-for-element identically to the retired sort-based router, over
# random machine counts and message multisets.
cargo test -q -p csmpc-mpc --test routing_equivalence

echo "==> bench smoke + perf-regression gate (vs committed BENCH_mpc_smoke.json)"
# Writes BENCH_mpc_smoke.json (the committed full-size BENCH_mpc.json is
# left untouched) and fails on gross per-workload regressions against the
# committed smoke baseline. The gate is phase-aware: each row's route
# phase is compared against the baseline's (warn above 1.5x, fail above
# 3x past the noise floor), so a fabric regression trips even when step
# time hides it in the wall-time tolerance. Threads are forced to 4 so
# the run exercises the parallel dispatch path; per-row accounting books
# effective workers as min(threads, cores), the sequential column (whose
# wall time and phases do the gating) always runs one worker, and the
# speedup gates still arm themselves only on genuinely multi-core
# runners.
RAYON_NUM_THREADS=4 cargo run -q --release -p csmpc-bench --bin perf -- \
    --smoke --gate BENCH_mpc_smoke.json
test -s BENCH_mpc_smoke.json

echo "==> steady-state allocation gate (alloc-count build)"
# Rebuilds perf with the counting allocator installed and replays a warm
# ball-coloring repetition at fixed topology: the second repetition must
# perform ZERO heap allocations, or the zero-copy hot-path contract has
# regressed. The feature must be enabled through the bench crate
# (`--features alloc-count`) so perf's own cfg-gated gate code compiles;
# enabling csmpc-mpc/alloc-count directly would leave it stubbed out.
cargo run -q --release -p csmpc-bench --features alloc-count --bin perf -- \
    --alloc-gate --smoke

echo "==> job-service soak smoke + determinism + crash-recovery gates"
# Pushes a 1200-job mixed batch (faults, poison jobs, shedding) through
# the multi-tenant scheduler, writes BENCH_service_smoke.json (the
# committed full-size BENCH_service.json is left untouched), and asserts
# zero wedged queue states. --check-determinism then runs the SAME batch
# with the SAME seeds through two services CONCURRENTLY and fails unless
# every per-job output digest and Stats ledger is bit-identical — the
# scheduler-interleaving-independence contract. --crash-every 400 then
# re-runs the batch through a JOURNALED service that is killed after
# every 400 journal records and recovered from the write-ahead log until
# the batch completes (~10 recoveries): the gate fails unless the
# crash-riddled run's fingerprint is bit-identical to the uninterrupted
# run's — recovery is replay, not re-guessing. Threads are forced so
# both gates exercise real worker contention even on small runners.
RAYON_NUM_THREADS=4 cargo run -q --release -p csmpc-bench --bin soak -- \
    --smoke --check-determinism --crash-every 400
test -s BENCH_service_smoke.json

echo "CI green."
