//! # component-stability
//!
//! A full reproduction of *"Component Stability in Low-Space Massively
//! Parallel Computation"* (Artur Czumaj, Peter Davies, Merav Parter;
//! PODC 2021) as a Rust workspace. This facade crate re-exports the public
//! API of every subsystem:
//!
//! * [`graph`] (`csmpc-graph`) — legal graphs (IDs vs names), generators,
//!   normal families, centered balls, `D`-radius-identical pairs;
//! * [`local`] (`csmpc-local`) — the LOCAL model (message passing + ball
//!   semantics, shared randomness);
//! * [`mpc`] (`csmpc-mpc`) — the low-space MPC simulator (space and
//!   bandwidth enforcement, round accounting, graph primitives);
//! * [`problems`] (`csmpc-problems`) — the problem framework: `r`-radius
//!   checkability, `R`-replicability, MIS/matching/coloring/sinkless
//!   orientation/large-IS validators;
//! * [`derand`] (`csmpc-derand`) — k-wise hash families, conditional
//!   expectations, exhaustive seed search;
//! * [`algorithms`] (`csmpc-algorithms`) — both sides of every separation
//!   (Luby, amplification, derandomized Luby, LLL, Cole–Vishkin,
//!   connectivity, extendable simulation);
//! * [`core`] (`csmpc-core`) — the component-stability framework itself
//!   (Definition 13 verifier, sensitivity, the `B_st-conn` lifting
//!   reduction, the class landscape).
//!
//! ## Quickstart
//!
//! ```
//! use component_stability::prelude::*;
//!
//! // The Theorem 5 separation in three lines: the unstable amplified
//! // algorithm finds a large independent set in O(1) rounds...
//! let g = generators::cycle(64);
//! let mut cluster = cluster_for(&g, Seed(1));
//! let labels = AmplifiedLargeIs { repetitions: 0 }.run(&g, &mut cluster)?;
//! assert!(labels.iter().filter(|&&b| b).count() >= 64 / 9);
//!
//! // ...and the stability verifier certifies it is NOT component-stable.
//! let report = verify_component_stability(
//!     &AmplifiedLargeIs { repetitions: 8 }, &generators::cycle(10), 12, Seed(2))?;
//! assert!(!report.looks_stable());
//! # Ok::<(), component_stability::mpc::MpcError>(())
//! ```

#![warn(missing_docs)]

pub use csmpc_algorithms as algorithms;
pub use csmpc_core as core;
pub use csmpc_derand as derand;
pub use csmpc_graph as graph;
pub use csmpc_local as local;
pub use csmpc_mpc as mpc;
pub use csmpc_problems as problems;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use csmpc_algorithms::amplify::{AmplifiedLargeIs, StableOneShotIs};
    pub use csmpc_algorithms::api::{cluster_for, roomy_cluster_for, MpcVertexAlgorithm};
    pub use csmpc_algorithms::det_is::DerandomizedLargeIs;
    pub use csmpc_core::classes::{classify, MpcClass};
    pub use csmpc_core::conformance::{run_with_conformance, ConformanceRun, RuntimeViolation};
    pub use csmpc_core::lifting::{b_st_conn, LiftingPair, StVerdict};
    pub use csmpc_core::runner::{
        evaluate_vertex_supervised, evaluate_vertex_with_faults, FaultEvaluation,
        SupervisedEvaluation,
    };
    pub use csmpc_core::sensitivity::{estimate_sensitivity, CenteredPair, ComponentMaxId};
    pub use csmpc_core::stability::{
        verify_component_stability, verify_crash_immunity, verify_degraded_immunity,
        CrashImmunityReport, DegradedImmunityReport,
    };
    pub use csmpc_graph::rng::Seed;
    pub use csmpc_graph::{ball, generators, ops, Graph, GraphBuilder, NodeId, NodeName};
    pub use csmpc_local::LocalParams;
    pub use csmpc_mpc::{
        run_supervised, Cluster, ComponentVerdict, FaultPlan, MpcConfig, PartialOutput,
        RecoveryPolicy, SupervisedOutcome, SupervisorConfig,
    };
    pub use csmpc_problems::problem::GraphProblem;
}
