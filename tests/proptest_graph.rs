//! Property-based tests on the graph substrate.

use component_stability::graph::ball::{ball, radius_identical};
use component_stability::graph::ops;
use component_stability::graph::rng::Seed;
use component_stability::graph::{generators, Graph};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..30, 0u64..1000, 0..=100u32)
        .prop_map(|(n, seed, pct)| generators::random_gnp(n, f64::from(pct) / 100.0, Seed(seed)))
}

proptest! {
    #[test]
    fn handshake_lemma(g in arb_graph()) {
        let degree_sum: usize = (0..g.n()).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.m());
    }

    #[test]
    fn components_partition_nodes(g in arb_graph()) {
        let comps = g.components();
        let total: usize = comps.iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.n());
        let mut seen = vec![false; g.n()];
        for comp in &comps {
            for &v in comp {
                prop_assert!(!seen[v], "node in two components");
                seen[v] = true;
            }
        }
    }

    #[test]
    fn induced_subgraph_is_subgraph(g in arb_graph(), mask_seed in 0u64..500) {
        let mut rng = component_stability::graph::rng::SplitMix64::new(Seed(mask_seed));
        let keep: Vec<usize> = (0..g.n()).filter(|_| rng.bit()).collect();
        let (sub, back) = ops::induced(&g, &keep);
        prop_assert_eq!(sub.n(), keep.len());
        for (u, v) in sub.edges() {
            prop_assert!(g.has_edge(back[u], back[v]));
        }
        // Every g-edge inside the kept set must appear.
        let pos: std::collections::HashMap<usize, usize> =
            back.iter().enumerate().map(|(i, &o)| (o, i)).collect();
        for (u, v) in g.edges() {
            if let (Some(&a), Some(&b)) = (pos.get(&u), pos.get(&v)) {
                prop_assert!(sub.has_edge(a, b));
            }
        }
    }

    #[test]
    fn disjoint_union_counts(a in arb_graph(), b in arb_graph()) {
        let b2 = ops::with_fresh_names(&b, 1_000_000);
        let u = ops::disjoint_union(&[&a, &b2]);
        prop_assert_eq!(u.n(), a.n() + b.n());
        prop_assert_eq!(u.m(), a.m() + b.m());
        prop_assert!(u.is_legal());
        prop_assert_eq!(u.component_count(), a.component_count() + b.component_count());
    }

    #[test]
    fn line_graph_handshake(g in arb_graph()) {
        let (lg, edge_of) = ops::line_graph(&g);
        prop_assert_eq!(lg.n(), g.m());
        prop_assert_eq!(edge_of.len(), g.m());
        // Whitney: |E(L(G))| = Σ C(deg v, 2).
        let expected: usize = (0..g.n()).map(|v| {
            let d = g.degree(v);
            d * d.saturating_sub(1) / 2
        }).sum();
        prop_assert_eq!(lg.m(), expected);
    }

    #[test]
    fn ball_monotone_in_radius(g in arb_graph(), v_seed in 0u64..100) {
        let v = (v_seed as usize) % g.n();
        let mut last = 0usize;
        for r in 0..5 {
            let (b, c, _) = ball(&g, v, r);
            prop_assert!(b.n() >= last);
            prop_assert_eq!(b.id(c), g.id(v));
            last = b.n();
        }
    }

    #[test]
    fn radius_identical_is_reflexive_and_symmetric(
        g in arb_graph(), v_seed in 0u64..100, r in 0usize..4
    ) {
        let v = (v_seed as usize) % g.n();
        prop_assert!(radius_identical(&g, v, &g, v, r));
        let renamed = ops::with_fresh_names(&g, 5_000_000);
        prop_assert_eq!(
            radius_identical(&g, v, &renamed, v, r),
            radius_identical(&renamed, v, &g, v, r)
        );
        prop_assert!(radius_identical(&g, v, &renamed, v, r));
    }

    #[test]
    fn fingerprint_invariant_under_renaming(g in arb_graph()) {
        let renamed = ops::with_fresh_names(&g, 9_000_000);
        prop_assert_eq!(g.id_fingerprint(), renamed.id_fingerprint());
    }

    #[test]
    fn bfs_distances_triangle_inequality(g in arb_graph(), s in 0u64..100) {
        let src = (s as usize) % g.n();
        let dist = g.bfs_distances(src);
        for (u, v) in g.edges() {
            if dist[u] != usize::MAX && dist[v] != usize::MAX {
                prop_assert!(dist[u].abs_diff(dist[v]) <= 1);
            } else {
                prop_assert_eq!(dist[u], dist[v], "edge spans reachability boundary");
            }
        }
    }

    #[test]
    fn random_tree_properties(n in 1usize..60, seed in 0u64..500) {
        let t = generators::random_tree(n, Seed(seed));
        prop_assert_eq!(t.n(), n);
        prop_assert_eq!(t.m(), n - 1);
        prop_assert!(t.is_connected());
    }

    #[test]
    fn random_regular_properties(k in 1usize..5, seed in 0u64..100) {
        let n = 4 * k + 8;
        let d = 3;
        let g = generators::random_regular(n, d, Seed(seed));
        prop_assert!((0..n).all(|v| g.degree(v) == d));
    }

    #[test]
    fn shuffle_identity_preserves_structure(g in arb_graph(), seed in 0u64..100) {
        let h = generators::shuffle_identity(&g, 0, 0, Seed(seed));
        prop_assert_eq!(h.n(), g.n());
        prop_assert_eq!(h.m(), g.m());
        prop_assert!(h.is_legal());
        for (u, v) in g.edges() {
            prop_assert!(h.has_edge(u, v));
        }
    }
}
