//! Property-based tests on algorithms and derandomization invariants.

use component_stability::algorithms::det_is::{derandomized_is, PairwiseLuby};
use component_stability::algorithms::luby::{
    extend_partial_mis, luby_mis, luby_step, random_chi, TruncatedLubyMis,
};
use component_stability::derand::field::{is_prime, next_prime};
use component_stability::derand::intervals::{
    count_difference, count_difference_naive, CyclicInterval,
};
use component_stability::graph::rng::{Seed, SplitMix64};
use component_stability::graph::{generators, Graph};
use component_stability::local::LocalParams;
use component_stability::problems::mis::{is_independent_set, Mis};
use component_stability::problems::problem::GraphProblem;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..24, 0u64..500, 0..=60u32)
        .prop_map(|(n, seed, pct)| generators::random_gnp(n, f64::from(pct) / 100.0, Seed(seed)))
}

proptest! {
    #[test]
    fn luby_step_always_independent(g in arb_graph(), seed in 0u64..1000) {
        let params = LocalParams::exact(g.n(), g.max_degree(), Seed(seed));
        let labels = luby_step(&g, &random_chi(&g, &params));
        prop_assert!(is_independent_set(&g, &labels));
        // Non-empty on non-empty graphs: the global χ-minimum always joins.
        prop_assert!(labels.iter().any(|&b| b));
    }

    #[test]
    fn luby_mis_always_valid(g in arb_graph(), seed in 0u64..300) {
        let params = LocalParams::exact(g.n(), g.max_degree(), Seed(seed));
        let (labels, phases) = luby_mis(&g, &params);
        prop_assert!(Mis.is_valid(&g, &labels));
        prop_assert!(phases >= 1);
    }

    #[test]
    fn truncated_plus_extension_is_valid_mis(
        g in arb_graph(), seed in 0u64..200, phases in 0usize..4
    ) {
        let params = LocalParams::exact(g.n(), g.max_degree(), Seed(seed));
        let status = TruncatedLubyMis { phases }.statuses(&g, &params);
        let full = extend_partial_mis(&g, &status);
        prop_assert!(Mis.is_valid(&g, &full));
    }

    #[test]
    fn pairwise_selection_independent_for_all_seeds(
        g in arb_graph(), a in 0u64..50, b in 0u64..50
    ) {
        let inst = PairwiseLuby::for_graph(&g);
        let labels = inst.select(&g, a % inst.p, b % inst.p);
        prop_assert!(is_independent_set(&g, &labels));
    }

    #[test]
    fn interval_oracle_matches_brute_force(g in arb_graph(), a in 0u64..30) {
        let inst = PairwiseLuby::for_graph(&g);
        let a = a % inst.p;
        let analytic = inst.expected_size_given_a(&g, a);
        let brute: f64 = (0..inst.p)
            .map(|b| inst.select(&g, a, b).iter().filter(|&&x| x).count() as f64)
            .sum::<f64>() / inst.p as f64;
        prop_assert!((analytic - brute).abs() < 1e-9);
    }

    #[test]
    fn mce_achieves_expectation(g in arb_graph()) {
        let run = derandomized_is(&g);
        prop_assert!(run.achieved as f64 + 1e-9 >= run.prior_expectation);
        prop_assert!(is_independent_set(&g, &run.labels));
    }

    #[test]
    fn cyclic_intervals_match_naive(
        p in 2u64..40,
        base_start in 0u64..40,
        base_len in 0u64..41,
        cuts in proptest::collection::vec((0u64..40, 0u64..41), 0..4)
    ) {
        let base = CyclicInterval::new(base_start % p, base_len.min(p), p);
        let others: Vec<CyclicInterval> = cuts
            .into_iter()
            .map(|(s, l)| CyclicInterval::new(s % p, l.min(p), p))
            .collect();
        prop_assert_eq!(
            count_difference(base, &others),
            count_difference_naive(base, &others)
        );
    }

    #[test]
    fn next_prime_is_prime_and_minimal(n in 2u64..5000) {
        let p = next_prime(n);
        prop_assert!(is_prime(p));
        prop_assert!(p >= n);
        for q in n..p {
            prop_assert!(!is_prime(q));
        }
    }

    #[test]
    fn shared_seed_reproducibility(g in arb_graph(), seed in 0u64..500) {
        // Identical seeds must give identical executions everywhere.
        let params = LocalParams::exact(g.n(), g.max_degree(), Seed(seed));
        let (l1, p1) = luby_mis(&g, &params);
        let (l2, p2) = luby_mis(&g, &params);
        prop_assert_eq!(l1, l2);
        prop_assert_eq!(p1, p2);
    }

    #[test]
    fn splitmix_range_uniform_enough(seed in 0u64..200, span in 1u64..50) {
        let mut rng = SplitMix64::new(Seed(seed));
        for _ in 0..100 {
            let v = rng.range(0, span);
            prop_assert!(v < span);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn stable_one_shot_component_invariance(
        comp_n in 4usize..10, sib_seed in 0u64..50, shared in 0u64..50
    ) {
        // Property form of the Definition 13 check for the stable one-shot
        // algorithm: the component's labels are independent of the sibling.
        use component_stability::prelude::*;
        let comp = generators::cycle(comp_n.max(3));
        let sib_a = ops::with_fresh_names(
            &generators::cycle(comp_n.max(3)), 10_000);
        let sib_b = ops::with_fresh_names(
            &generators::shuffle_identity(
                &generators::cycle(comp_n.max(3)), 50, 0, Seed(sib_seed)),
            10_000,
        );
        let ga = ops::disjoint_union(&[&comp, &sib_a]);
        let gb = ops::disjoint_union(&[&comp, &sib_b]);
        let la = StableOneShotIs.run(&ga, &mut cluster_for(&ga, Seed(shared))).unwrap();
        let lb = StableOneShotIs.run(&gb, &mut cluster_for(&gb, Seed(shared))).unwrap();
        prop_assert_eq!(&la[..comp.n()], &lb[..comp.n()]);
    }
}
