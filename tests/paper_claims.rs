//! The paper's headline claims as direct integration assertions — the
//! executable abstract of the reproduction.

use component_stability::algorithms::coloring;
use component_stability::algorithms::connectivity::{distinguish_cycles, CycleVerdict};
use component_stability::algorithms::det_is::derandomized_is;
use component_stability::core::runner::success_probability;
use component_stability::local::indistinguishability::LowerBoundWitness;
use component_stability::prelude::*;
use component_stability::problems::mis::LargeIndependentSet;

/// Theorem 5, upper-bound side: the unstable amplified algorithm succeeds
/// w.h.p. where the stable one-shot fails with constant probability — at
/// identical O(1) round counts.
#[test]
fn theorem5_separation_is_measurable() {
    let g = generators::cycle(240);
    let threshold = LargeIndependentSet { c: 2.0 / 3.0 };
    let p_stable = success_probability(&StableOneShotIs, &threshold, &g, 120, Seed(1)).unwrap();
    let p_amplified = success_probability(
        &AmplifiedLargeIs { repetitions: 0 },
        &threshold,
        &g,
        120,
        Seed(2),
    )
    .unwrap();
    assert!(
        p_stable < 0.9,
        "one-shot at the expectation threshold must fail sometimes: {p_stable}"
    );
    assert!(
        p_amplified > 0.99,
        "amplification must succeed essentially always: {p_amplified}"
    );
}

/// Theorem 53: the deterministic algorithm's guarantee is unconditional —
/// across structurally different families.
#[test]
fn theorem53_guarantee_everywhere() {
    let cases = [
        generators::cycle(80),
        generators::random_regular(48, 4, Seed(1)),
        generators::random_tree(60, Seed(2)),
        generators::caterpillar(8, 4),
        generators::random_bipartite(40, 0.2, Seed(3)),
    ];
    for (i, g) in cases.iter().enumerate() {
        let run = derandomized_is(g);
        assert!(
            run.achieved as f64 + 1e-9 >= run.prior_expectation,
            "case {i}: MCE fell below its expectation"
        );
        let delta = g.max_degree().max(1);
        // The paper's Ω(n/Δ) shape with the Claim 52 constant regime.
        let loose = (g.n() as f64 / (6 * delta) as f64).floor() as usize;
        assert!(
            run.achieved >= loose.saturating_sub(1),
            "case {i}: {} below n/6Δ ≈ {loose}",
            run.achieved
        );
    }
}

/// The connectivity-conjecture baseline: iterations scale as log₂ n and
/// verdicts are always correct (the calibration every conditional bound
/// rests on).
#[test]
fn connectivity_baseline_scales_logarithmically() {
    let mut iters = Vec::new();
    for k in [6u32, 8, 10, 12] {
        let n = 1usize << k;
        let g = generators::cycle(n);
        let mut cl = cluster_for(&g, Seed(1));
        let (v, it) = distinguish_cycles(&g, &mut cl).unwrap();
        assert_eq!(v, CycleVerdict::OneCycle);
        let g2 = generators::two_cycles(n);
        let mut cl2 = cluster_for(&g2, Seed(1));
        let (v2, _) = distinguish_cycles(&g2, &mut cl2).unwrap();
        assert_eq!(v2, CycleVerdict::TwoCycles);
        iters.push(it as i64);
    }
    // Consecutive doublings add a constant number of iterations (≈1 each).
    for w in iters.windows(2) {
        let diff = w[1] - w[0];
        assert!((0..=3).contains(&diff), "non-logarithmic growth: {iters:?}");
    }
}

/// Section 2.1: the consecutive-ID-path problem certifies an (n−1)-round
/// LOCAL lower bound while the MPC checker answers in O(1) rounds — the
/// reason replicability must gate the lifting.
#[test]
fn section21_counterexample_certified() {
    for n in [8usize, 32, 128] {
        let w = LowerBoundWitness::measure(
            generators::consecutive_id_path(n),
            0,
            generators::consecutive_id_path_broken(n),
            0,
        )
        .unwrap();
        assert_eq!(w.certified_rounds(), n - 1);

        let g = generators::consecutive_id_path(n);
        let mut cl = cluster_for(&g, Seed(0));
        let labels = component_stability::algorithms::path_check::ConsecutivePathCheck
            .run(&g, &mut cl)
            .unwrap();
        assert!(labels.iter().all(|&b| b));
        assert!(
            cl.stats().rounds <= 8,
            "rounds {} not O(1)",
            cl.stats().rounds
        );
    }
}

/// The log* regime of Theorem 5's LOCAL bound: Cole–Vishkin needs Θ(log* n)
/// steps and its step count is *extremely* flat in n.
#[test]
fn log_star_regime_visible() {
    let steps = |n: usize| {
        let g = generators::shuffle_identity(&generators::cycle(n), 0, 0, Seed(n as u64));
        coloring::cole_vishkin_cycle(&g).rounds
    };
    let small = steps(64);
    let huge = steps(1 << 17);
    assert!(
        huge <= small + 3,
        "log* flatness violated: {small} -> {huge}"
    );
}

/// Definitions 15–18 containments, witnessed: stable implies its unstable
/// superclass accepts the same algorithm trivially, and the measured
/// landscape matches the declared determinism.
#[test]
fn class_landscape_consistency() {
    let comp = generators::cycle(10);
    let placements = vec![
        classify(&StableOneShotIs, &comp, 8, Seed(1)).unwrap(),
        classify(&AmplifiedLargeIs { repetitions: 8 }, &comp, 12, Seed(2)).unwrap(),
        classify(&DerandomizedLargeIs, &comp, 12, Seed(3)).unwrap(),
        classify(&ComponentMaxId, &comp, 8, Seed(4)).unwrap(),
    ];
    use component_stability::core::classes::MpcClass::*;
    let classes: Vec<_> = placements.iter().map(|p| p.class).collect();
    assert_eq!(
        classes,
        vec![
            StableRandomized,
            UnstableRandomized,
            UnstableDeterministic,
            StableDeterministic
        ]
    );
    for p in &placements {
        assert!(["DetMPC", "RandMPC"].contains(&p.class.superclass()));
    }
}
