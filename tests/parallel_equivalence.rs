//! Sequential-vs-parallel bit-identity gate.
//!
//! The deterministic parallel execution engine promises that
//! [`ParallelismMode`] changes *only* wall-clock time: outputs, the
//! `Stats` ledger, the provenance log, and the recovery history are all
//! bit-identical between modes for the same seed — including under an
//! armed fault plan with message drops, duplications, and recovered
//! crashes. This suite pins that contract across every parallelized layer:
//! the exact message-moving engine, the accounted graph primitives, the
//! LOCAL simulators, and the repetition harnesses in `csmpc-core`.
//!
//! Run it with `RAYON_NUM_THREADS=4` (as `ci.sh` does) to force real
//! worker threads even on single-core runners.

use csmpc_algorithms::amplify::StableOneShotIs;
use csmpc_algorithms::api::MpcVertexAlgorithm;
use csmpc_algorithms::luby::TruncatedLubyMis;
use csmpc_algorithms::mpc_edge::BallGreedyColoringMpc;
use csmpc_core::runner::success_probability_with_mode;
use csmpc_graph::rng::Seed;
use csmpc_graph::{generators, ops, Graph};
use csmpc_local::{run_ball_algorithm_with_mode, run_local_with_mode, LocalParams};
use csmpc_mpc::{
    exact_aggregate_sum_with_faults, Cluster, DistributedGraph, FaultPlan, MpcConfig, MpcError,
    ParallelismMode, RecoveryPolicy, Stats,
};
use csmpc_problems::mis::LargeIndependentSet;

const MODES: [ParallelismMode; 2] = [ParallelismMode::Sequential, ParallelismMode::Parallel];

/// The chaos-harness input: a small target component next to a larger one,
/// big enough that the sweeps clear the parallel inline cutoff.
fn two_component_graph() -> Graph {
    let target = generators::cycle(8);
    let rest = ops::with_fresh_names(&generators::cycle(40), 500);
    ops::disjoint_union(&[&target, &rest])
}

/// A tight cluster in the given mode (the chaos-harness shape: small space
/// floor so records spread over several machines).
fn cluster_in_mode(g: &Graph, seed: Seed, mode: ParallelismMode) -> Cluster {
    let cfg = MpcConfig {
        min_space: 48,
        parallelism: mode,
        ..Default::default()
    };
    Cluster::new(cfg, g.n(), csmpc_mpc::graph_words(g), seed)
}

/// Everything observable about one run.
#[derive(Debug, PartialEq)]
struct Observed {
    labels: Vec<u64>,
    stats: Stats,
    provenance: csmpc_mpc::ProvenanceLog,
    recoveries: Vec<csmpc_mpc::RecoveryEvent>,
}

fn observe(
    run: impl Fn(&Graph, &mut Cluster) -> Result<Vec<u64>, MpcError>,
    g: &Graph,
    seed: Seed,
    mode: ParallelismMode,
    plan: Option<&FaultPlan>,
) -> Observed {
    let mut cluster = cluster_in_mode(g, seed, mode);
    if let Some(plan) = plan {
        cluster.arm_faults(plan.clone(), RecoveryPolicy::restart(8));
    }
    let labels = run(g, &mut cluster).expect("run failed");
    Observed {
        labels,
        stats: cluster.stats().clone(),
        provenance: cluster.provenance().clone(),
        recoveries: cluster.recovery_log().to_vec(),
    }
}

#[test]
fn luby_mis_is_mode_independent() {
    let g = two_component_graph();
    let run = |g: &Graph, cl: &mut Cluster| {
        StableOneShotIs
            .run(g, cl)
            .map(|ls| ls.into_iter().map(u64::from).collect())
    };
    let seq = observe(run, &g, Seed(0xC0DE), ParallelismMode::Sequential, None);
    let par = observe(run, &g, Seed(0xC0DE), ParallelismMode::Parallel, None);
    assert_eq!(seq, par, "Luby MIS diverged between modes");
}

#[test]
fn coloring_and_cc_labels_are_mode_independent() {
    let g = two_component_graph();
    let coloring = |g: &Graph, cl: &mut Cluster| {
        BallGreedyColoringMpc { radius: 3 }
            .run(g, cl)
            .map(|ls| ls.into_iter().map(|c| c as u64).collect())
    };
    let cc = |g: &Graph, cl: &mut Cluster| {
        let dg = DistributedGraph::distribute(g, cl)?;
        let (labels, _) = dg.cc_labels(cl)?;
        Ok(labels)
    };
    for seed in [Seed(0xC0DE), Seed(0xBEEF)] {
        let seq = observe(coloring, &g, seed, ParallelismMode::Sequential, None);
        let par = observe(coloring, &g, seed, ParallelismMode::Parallel, None);
        assert_eq!(seq, par, "ball-greedy coloring diverged between modes");
        let seq = observe(cc, &g, seed, ParallelismMode::Sequential, None);
        let par = observe(cc, &g, seed, ParallelismMode::Parallel, None);
        assert_eq!(seq, par, "cc-labels diverged between modes");
    }
}

#[test]
fn faulted_chaos_plans_are_mode_independent() {
    // The full chaos recipe: randomized crash/straggle plans over a tight
    // cluster, recovered from checkpoints. Both modes must agree on every
    // observable — and at least one plan must actually recover a crash, or
    // the test is vacuous.
    let g = two_component_graph();
    let shared = Seed(0xC0DE);
    let machines = cluster_in_mode(&g, shared, ParallelismMode::Sequential).num_machines();
    let run = |g: &Graph, cl: &mut Cluster| {
        StableOneShotIs
            .run(g, cl)
            .map(|ls| ls.into_iter().map(u64::from).collect())
    };
    let mut recoveries_seen = 0usize;
    for p in 0..10u64 {
        let plan = FaultPlan::random(Seed(0xFA57).derive(p), machines, 3, 1, 1);
        let seq = observe(run, &g, shared, ParallelismMode::Sequential, Some(&plan));
        let par = observe(run, &g, shared, ParallelismMode::Parallel, Some(&plan));
        assert_eq!(seq, par, "plan {p}: faulted run diverged between modes");
        recoveries_seen += usize::from(!seq.recoveries.is_empty());
    }
    assert!(recoveries_seen > 0, "no plan recovered a crash; vacuous");
}

#[test]
fn exact_engine_transport_faults_are_mode_independent() {
    // The exact engine under message drops + duplications + crashes: the
    // transport coin stream is consumed in machine-index order during the
    // sequential merge phase, so the fault pattern must be identical in
    // both modes.
    let values: Vec<u64> = (1..=100).collect();
    let expected: u64 = values.iter().sum();
    let mut per_mode: Vec<(u64, Stats, usize)> = Vec::new();
    for mode in MODES {
        let cfg = MpcConfig {
            parallelism: mode,
            ..MpcConfig::with_phi(0.5)
        };
        let mut cl = Cluster::new(cfg, 400, 800, Seed(7));
        let plan = FaultPlan::random(Seed(0x5EED).derive(3), cl.num_machines(), 3, 1, 1)
            .with_message_faults(100, 100);
        let (sum, rounds) =
            exact_aggregate_sum_with_faults(&mut cl, &values, &plan, RecoveryPolicy::restart(8))
                .expect("faulted sum failed");
        assert_eq!(sum, expected);
        per_mode.push((rounds as u64, cl.stats().clone(), cl.recovery_log().len()));
    }
    assert_eq!(
        per_mode[0], per_mode[1],
        "exact engine diverged under faults"
    );
}

#[test]
fn adversarial_transport_faults_are_mode_independent() {
    // The adversarial transport classes — payload corruption, in-round
    // reordering, and a round-scoped partition — on top of the classic
    // drop/dup faults. Corruption detection counts, retransmission costs,
    // and partition stalls must replay identically in both modes.
    let values: Vec<u64> = (1..=100).collect();
    let expected: u64 = values.iter().sum();
    let mut per_mode: Vec<(u64, Stats, usize)> = Vec::new();
    for mode in MODES {
        let cfg = MpcConfig {
            parallelism: mode,
            ..MpcConfig::with_phi(0.5)
        };
        let mut cl = Cluster::new(cfg, 400, 800, Seed(7));
        let plan = FaultPlan::random(Seed(0x5EED).derive(9), cl.num_machines(), 3, 1, 1)
            .with_message_faults(100, 100)
            .with_corruption(200)
            .with_reordering(250)
            .partition(1, 2, vec![0]);
        let (sum, rounds) =
            exact_aggregate_sum_with_faults(&mut cl, &values, &plan, RecoveryPolicy::restart(8))
                .expect("adversarial sum failed");
        assert_eq!(sum, expected, "transport faults changed the output");
        per_mode.push((rounds as u64, cl.stats().clone(), cl.recovery_log().len()));
    }
    assert_eq!(
        per_mode[0], per_mode[1],
        "exact engine diverged under adversarial transport"
    );
    assert!(
        per_mode[0].1.corrupted_detected > 0,
        "no corruption fired; vacuous"
    );
}

#[test]
fn supervised_recovery_is_mode_independent() {
    // Supervision (speculative re-execution of stragglers, exponential
    // backoff before retries, quarantine after repeated failures) drives
    // the recovery and supervision logs; both must be bit-identical
    // across modes, as must the overlay counters in Stats.
    let g = two_component_graph();
    let shared = Seed(0xC0DE);
    let run = |g: &Graph, cl: &mut Cluster| {
        StableOneShotIs
            .run(g, cl)
            .map(|ls| ls.into_iter().map(u64::from).collect::<Vec<u64>>())
    };
    let mut per_mode = Vec::new();
    for mode in MODES {
        let mut cluster = cluster_in_mode(&g, shared, mode);
        cluster.supervise(csmpc_mpc::SupervisorConfig {
            deadline_rounds: 2,
            failure_threshold: 1,
        });
        let plan = FaultPlan::quiet(shared)
            .straggle(1, 2, 9)
            .crash(2, 3)
            .crash(2, 5)
            .crash(2, 7);
        cluster.arm_faults(plan, RecoveryPolicy::restart_with_backoff(4, 2));
        let labels = run(&g, &mut cluster).expect("supervised run failed");
        per_mode.push((
            labels,
            cluster.stats().clone(),
            cluster.recovery_log().to_vec(),
            cluster.supervision_log().to_vec(),
            cluster.quarantined_machines().clone(),
        ));
    }
    assert_eq!(
        per_mode[0], per_mode[1],
        "supervised run diverged between modes"
    );
    let (_, stats, _, supervision, quarantined) = &per_mode[0];
    assert!(
        stats.speculative_rounds > 0,
        "no speculation fired; vacuous"
    );
    assert!(!supervision.is_empty(), "supervision log empty; vacuous");
    assert!(!quarantined.is_empty(), "no quarantine fired; vacuous");
}

#[test]
fn scale_workloads_are_mode_independent_at_one_hundred_thousand() {
    // The million-vertex scale path (streaming CSR ingestion, identity
    // names, workspace-backed sweeps) under an armed fault plan whose
    // straggler stalls must replay identically: labels, Stats ledger, and
    // iteration counts all bit-identical between modes at n = 10⁵. ci.sh
    // runs this under forced RAYON_NUM_THREADS=4.
    use csmpc_graph::StreamFamily;
    use csmpc_mpc::{scale, ScaleWorkspace};

    let family = StreamFamily::TwoCycles { n: 100_000 };
    let words = 2 * family.n() + 2 * family.m();
    let mut per_mode = Vec::new();
    for mode in MODES {
        let cfg = MpcConfig {
            parallelism: mode,
            ..Default::default()
        };
        let mut cluster = Cluster::new(cfg, family.n(), words, Seed(0xC0DE));
        cluster.arm_faults(
            FaultPlan::quiet(Seed(0xC0DE)).straggle(1, 3, 5),
            RecoveryPolicy::restart(8),
        );
        let mut ws = ScaleWorkspace::new();
        let csr = scale::ingest(family, &mut cluster).expect("scale ingest");
        let iterations = scale::cc_labels(&mut cluster, &csr, &mut ws).expect("scale cc-labels");
        per_mode.push((ws.label.clone(), iterations, cluster.stats().clone()));
    }
    assert_eq!(
        per_mode[0], per_mode[1],
        "scale cc-labels diverged between modes at n = 100000"
    );
    // Both components must actually be labeled by their minimum index.
    let (labels, _, _) = &per_mode[0];
    assert_eq!(labels[0], 0);
    assert_eq!(labels[99_999], 50_000);

    // The streaming ingestion itself must be bit-identical to the
    // materialized Graph -> CSR path at this scale too.
    let oracle = csmpc_graph::CsrAdjacency::from_graph(&family.materialize());
    let streamed = family.stream_csr();
    assert_eq!(streamed, oracle, "streamed CSR diverged at n = 100000");
}

#[test]
fn local_simulators_are_mode_independent() {
    let g = generators::random_tree(64, Seed(11));
    let params = LocalParams::exact(g.n(), g.max_degree(), Seed(3));

    let alg = TruncatedLubyMis { phases: 2 };
    let seq = run_ball_algorithm_with_mode(&g, &alg, &params, ParallelismMode::Sequential);
    let par = run_ball_algorithm_with_mode(&g, &alg, &params, ParallelismMode::Parallel);
    assert_eq!(seq, par, "ball evaluation diverged between modes");

    // Message-passing engine: flood the max ID for a few rounds. The halt
    // pattern and message counts must match exactly.
    struct MaxIdFlood;
    impl csmpc_local::LocalAlgorithm for MaxIdFlood {
        type State = u64;
        type Message = u64;
        type Output = u64;
        fn init(&self, view: &csmpc_local::NodeView<'_>) -> u64 {
            view.id.0
        }
        fn round(
            &self,
            state: &mut u64,
            _view: &csmpc_local::NodeView<'_>,
            round: usize,
            inbox: &[csmpc_local::Incoming<u64>],
        ) -> csmpc_local::Action<u64, u64> {
            for m in inbox {
                *state = (*state).max(m.msg);
            }
            if round > 3 {
                csmpc_local::Action::Halt(*state)
            } else {
                csmpc_local::Action::Broadcast(*state)
            }
        }
    }
    let seq = run_local_with_mode(&g, &MaxIdFlood, &params, 100, ParallelismMode::Sequential)
        .expect("sequential run");
    let par = run_local_with_mode(&g, &MaxIdFlood, &params, 100, ParallelismMode::Parallel)
        .expect("parallel run");
    assert_eq!(seq.outputs, par.outputs, "LOCAL outputs diverged");
    assert_eq!(seq.rounds, par.rounds, "LOCAL round counts diverged");
    assert_eq!(
        seq.messages_sent, par.messages_sent,
        "LOCAL message counts diverged"
    );
}

#[test]
fn success_probability_is_mode_independent() {
    let g = generators::cycle(60);
    let p = LargeIndependentSet { c: 0.5 };
    let seq = success_probability_with_mode(
        &StableOneShotIs,
        &p,
        &g,
        24,
        Seed(4),
        ParallelismMode::Sequential,
    )
    .unwrap();
    let par = success_probability_with_mode(
        &StableOneShotIs,
        &p,
        &g,
        24,
        Seed(4),
        ParallelismMode::Parallel,
    )
    .unwrap();
    assert_eq!(
        seq.to_bits(),
        par.to_bits(),
        "success probability diverged: {seq} vs {par}"
    );
}
