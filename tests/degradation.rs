//! The degradation theorem gate (Definition 13 as a production behavior).
//!
//! For each of three `component_stable()` algorithms, under pinned seeds:
//! a run whose recovery budget is exhausted by faults confined to one
//! component must come back as a [`SupervisedOutcome::Degraded`] partial
//! output in which
//!
//! * the untouched component's verdict is `Healthy` and its labels are
//!   **bit-identical** to the fault-free run,
//! * the tainted components' labels are withheld (`None`), and
//! * the recovery/salvage overhead is visible in `Stats`
//!   (`recovery_rounds`/`recovery_words` — degrading is never free).
//!
//! On top of that: corrupted messages are *always* detected (the output
//! never silently differs), and the whole construction replays
//! bit-identically under [`ParallelismMode::Sequential`] and
//! [`ParallelismMode::Parallel`].

use csmpc_algorithms::amplify::StableOneShotIs;
use csmpc_algorithms::api::MpcVertexAlgorithm;
use csmpc_algorithms::mpc_edge::BallGreedyColoringMpc;
use csmpc_graph::rng::Seed;
use csmpc_graph::{generators, ops, Graph};
use csmpc_mpc::{
    exact_aggregate_sum_with_faults, run_supervised, Cluster, ComponentId, ComponentVerdict,
    DistributedGraph, FaultPlan, MpcConfig, MpcError, ParallelismMode, RecoveryPolicy,
    SupervisedOutcome, SupervisedRun, SupervisorConfig,
};
use std::collections::BTreeSet;

const TARGET_NODES: usize = 8;

/// Small target component next to a larger rest (the chaos-harness shape).
fn two_component_graph() -> Graph {
    let target = generators::cycle(TARGET_NODES);
    let rest = ops::with_fresh_names(&generators::cycle(40), 500);
    ops::disjoint_union(&[&target, &rest])
}

/// Tight cluster so records spread across machines, in the given mode.
fn degradation_cluster(g: &Graph, seed: Seed, mode: ParallelismMode) -> Cluster {
    let cfg = MpcConfig {
        min_space: 48,
        parallelism: mode,
        ..Default::default()
    };
    Cluster::new(cfg, g.n(), csmpc_mpc::graph_words(g), seed)
}

/// The three component-stable algorithms under test, erased to `u64`.
struct StableAlgo {
    name: &'static str,
    run: fn(&Graph, &mut Cluster) -> Result<Vec<u64>, MpcError>,
}

fn run_luby_mis(g: &Graph, cluster: &mut Cluster) -> Result<Vec<u64>, MpcError> {
    let labels = StableOneShotIs.run(g, cluster)?;
    Ok(labels.into_iter().map(u64::from).collect())
}

fn run_coloring(g: &Graph, cluster: &mut Cluster) -> Result<Vec<u64>, MpcError> {
    let labels = BallGreedyColoringMpc { radius: 3 }.run(g, cluster)?;
    Ok(labels.into_iter().map(|c| c as u64).collect())
}

fn run_cc_labels(g: &Graph, cluster: &mut Cluster) -> Result<Vec<u64>, MpcError> {
    let dg = DistributedGraph::distribute(g, cluster)?;
    let (labels, _) = dg.cc_labels(cluster)?;
    Ok(labels)
}

const ALGORITHMS: &[StableAlgo] = &[
    StableAlgo {
        name: "one-shot-luby-mis",
        run: run_luby_mis,
    },
    StableAlgo {
        name: "ball-greedy-coloring",
        run: run_coloring,
    },
    StableAlgo {
        name: "cc-labels",
        run: run_cc_labels,
    },
];

/// Fault-free baseline: labels plus a machine whose provenance tags are
/// disjoint from the target component (the machine whose faults must not
/// touch the target).
fn baseline_and_foreign(
    algo: &StableAlgo,
    g: &Graph,
    seed: Seed,
) -> (Vec<u64>, usize, BTreeSet<ComponentId>) {
    let mut cluster = degradation_cluster(g, seed, ParallelismMode::Sequential);
    let labels = (algo.run)(g, &mut cluster)
        .unwrap_or_else(|e| panic!("{}: baseline failed: {e}", algo.name));
    let target: BTreeSet<ComponentId> = g.component_labels()[..TARGET_NODES]
        .iter()
        .map(|&c| c as ComponentId)
        .collect();
    let foreign = (0..cluster.num_machines())
        .find(|&m| {
            let tags = cluster.machine_components(m);
            !tags.is_empty() && !tags.iter().any(|c| target.contains(c))
        })
        .unwrap_or_else(|| panic!("{}: no foreign-tagged machine", algo.name));
    (labels, foreign, target)
}

fn degraded_run(
    algo: &StableAlgo,
    g: &Graph,
    seed: Seed,
    victim: usize,
    mode: ParallelismMode,
) -> SupervisedRun<u64> {
    // Zero retries: the foreign machine's crash exhausts the budget
    // immediately, forcing the degraded path. Round 3 lands after
    // distribution, so the victim's tags identify its components.
    let plan = FaultPlan::quiet(seed).crash(victim, 3);
    let template = degradation_cluster(g, seed, mode);
    run_supervised(
        g,
        &template,
        &plan,
        RecoveryPolicy::restart(0),
        SupervisorConfig::default(),
        algo.run,
    )
    .unwrap_or_else(|e| {
        panic!(
            "{}: supervised run errored instead of degrading: {e}",
            algo.name
        )
    })
}

#[test]
fn degradation_theorem_certifies_untouched_components() {
    let g = two_component_graph();
    let shared = Seed(0xDE6A);
    for algo in ALGORITHMS {
        let (baseline, victim, target) = baseline_and_foreign(algo, &g, shared);
        let run = degraded_run(algo, &g, shared, victim, ParallelismMode::Sequential);
        let SupervisedOutcome::Degraded(partial) = &run.outcome else {
            panic!("{}: budget exhaustion did not degrade", algo.name);
        };

        // The untouched component is certified Healthy with labels
        // bit-identical to the fault-free run.
        for &c in &target {
            assert_eq!(
                partial.verdicts.get(&c),
                Some(&ComponentVerdict::Healthy),
                "{}: target component {c} not certified healthy",
                algo.name
            );
        }
        for (v, expected) in baseline.iter().enumerate().take(TARGET_NODES) {
            assert_eq!(
                partial.labels[v].as_ref(),
                Some(expected),
                "{}: node {v} label differs from the fault-free run",
                algo.name
            );
        }

        // The victim's components are tainted and withheld.
        assert!(
            partial.tainted_nodes > 0,
            "{}: the crash tainted nothing; the probe is vacuous",
            algo.name
        );
        let comp_of = g.component_labels();
        for (v, label) in partial.labels.iter().enumerate() {
            let c = comp_of[v] as ComponentId;
            match partial.verdicts.get(&c) {
                Some(&ComponentVerdict::Healthy) => {
                    assert!(label.is_some(), "{}: healthy node {v} withheld", algo.name);
                }
                Some(&ComponentVerdict::Tainted) => {
                    assert!(label.is_none(), "{}: tainted node {v} leaked", algo.name);
                }
                None => panic!("{}: component {c} has no verdict", algo.name),
            }
        }

        // Degrading is never free, and the overhead is attributed.
        assert!(
            run.stats.recovery_rounds > 0 && run.stats.recovery_words > 0,
            "{}: salvage overhead invisible in Stats ({})",
            algo.name,
            run.stats
        );

        // Pinned seeds: the whole degraded construction replays exactly.
        let again = degraded_run(algo, &g, shared, victim, ParallelismMode::Sequential);
        assert_eq!(run, again, "{}: degraded run diverged on replay", algo.name);
    }
}

#[test]
fn degraded_runs_are_mode_independent() {
    let g = two_component_graph();
    let shared = Seed(0xDE6A);
    for algo in ALGORITHMS {
        let (_, victim, _) = baseline_and_foreign(algo, &g, shared);
        let seq = degraded_run(algo, &g, shared, victim, ParallelismMode::Sequential);
        let par = degraded_run(algo, &g, shared, victim, ParallelismMode::Parallel);
        assert_eq!(
            seq, par,
            "{}: degraded run diverged between parallelism modes",
            algo.name
        );
        assert!(seq.is_degraded(), "{}: vacuous mode comparison", algo.name);
    }
}

#[test]
fn corruption_is_always_detected_never_silently_applied() {
    // The transport-fault side of the theorem: with every message
    // corrupted in flight *and* the supervisor armed, the exact engine
    // still produces the exact sum — corrupted payloads are detected,
    // discarded, and retransmitted, with every strike counted.
    let values: Vec<u64> = (1..=100).collect();
    let expected: u64 = values.iter().sum();
    let plan = FaultPlan::quiet(Seed(0xBAD))
        .with_corruption(1000)
        .crash(1, 2);
    let run = |mode: ParallelismMode| {
        let cfg = MpcConfig {
            parallelism: mode,
            ..MpcConfig::with_phi(0.5)
        };
        let mut cl = Cluster::new(cfg, 400, 800, Seed(7));
        cl.supervise(SupervisorConfig::default());
        let (sum, _) =
            exact_aggregate_sum_with_faults(&mut cl, &values, &plan, RecoveryPolicy::restart(8))
                .expect("corrupted run failed");
        (sum, cl.stats().clone(), cl.recovery_log().len())
    };
    let (seq_sum, seq_stats, seq_recs) = run(ParallelismMode::Sequential);
    let (par_sum, par_stats, par_recs) = run(ParallelismMode::Parallel);
    assert_eq!(seq_sum, expected, "corruption silently changed the output");
    assert!(seq_stats.corrupted_detected > 0, "no corruption detected");
    assert_eq!(
        (seq_sum, &seq_stats, seq_recs),
        (par_sum, &par_stats, par_recs),
        "corrupted run diverged between modes"
    );
}
