//! Property-based cross-validation of the two computation models: the
//! LOCAL engine vs ball semantics, and the MPC accounted primitives vs
//! direct computation / the exact engine.

use component_stability::algorithms::api::roomy_cluster_for;
use component_stability::algorithms::local_engine::BallCollector;
use component_stability::algorithms::luby::TruncatedLubyMis;
use component_stability::graph::rng::Seed;
use component_stability::graph::{generators, Graph};
use component_stability::local::ball_eval::run_ball_algorithm;
use component_stability::local::engine::run_local;
use component_stability::local::LocalParams;
use component_stability::mpc::{exact_aggregate_sum, prefix_sums, sort_keys, DistributedGraph};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..20, 0u64..300, 0..=50u32)
        .prop_map(|(n, seed, pct)| generators::random_gnp(n, f64::from(pct) / 100.0, Seed(seed)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The flooding BallCollector inside the message engine computes the
    /// same outputs as direct ball evaluation, on arbitrary graphs.
    #[test]
    fn engine_equals_ball_semantics(g in arb_graph(), seed in 0u64..200, phases in 0usize..3) {
        let params = LocalParams::exact(g.n(), g.max_degree(), Seed(seed));
        let alg = TruncatedLubyMis { phases };
        let engine = run_local(&g, &BallCollector { algorithm: alg }, &params, 100)
            .unwrap();
        let direct = run_ball_algorithm(&g, &alg, &params);
        prop_assert_eq!(engine.outputs, direct);
    }

    /// MPC connected-component labels agree with the graph's components.
    #[test]
    fn cc_labels_match_components(g in arb_graph(), seed in 0u64..100) {
        let mut cl = roomy_cluster_for(&g, Seed(seed), 1 << 12);
        let dg = DistributedGraph::distribute(&g, &mut cl).unwrap();
        let (labels, _) = dg.cc_labels(&mut cl).unwrap();
        let reference = g.component_labels();
        for u in 0..g.n() {
            for v in u + 1..g.n() {
                prop_assert_eq!(
                    labels[u] == labels[v],
                    reference[u] == reference[v],
                    "nodes {} and {} disagree", u, v
                );
            }
        }
    }

    /// Neighbor reductions agree with direct computation.
    #[test]
    fn neighbor_reduce_matches_direct(g in arb_graph(), seed in 0u64..100) {
        let mut cl = roomy_cluster_for(&g, Seed(seed), 1 << 12);
        let dg = DistributedGraph::distribute(&g, &mut cl).unwrap();
        let vals: Vec<u64> = (0..g.n() as u64).map(|v| v * 31 + 7).collect();
        let mins = dg.neighbor_reduce(&mut cl, &vals, std::cmp::min).unwrap();
        for (v, &got) in mins.iter().enumerate() {
            let expect = g.neighbors(v).iter().map(|&w| vals[w as usize]).min();
            prop_assert_eq!(got, expect);
        }
    }

    /// The exact message-by-message aggregation tree computes correct sums
    /// within its bandwidth/space envelope.
    #[test]
    fn exact_aggregation_sums(values in proptest::collection::vec(0u64..1000, 0..60)) {
        let g = generators::cycle(64);
        let mut cl = roomy_cluster_for(&g, Seed(1), 64);
        let (sum, rounds) = exact_aggregate_sum(&mut cl, &values).unwrap();
        prop_assert_eq!(sum, values.iter().sum::<u64>());
        prop_assert!(rounds >= 1);
    }

    /// Accounted sort matches std sort; ranks are a permutation.
    #[test]
    fn sort_keys_correct(keys in proptest::collection::vec(0u64..500, 0..50)) {
        let g = generators::cycle(32);
        let mut cl = roomy_cluster_for(&g, Seed(2), 1 << 10);
        let (sorted, ranks) = sort_keys(&mut cl, &keys).unwrap();
        let mut reference = keys.clone();
        reference.sort_unstable();
        prop_assert_eq!(&sorted, &reference);
        let mut seen = vec![false; keys.len()];
        for (&k, &r) in keys.iter().zip(&ranks) {
            prop_assert!(!seen[r]);
            seen[r] = true;
            prop_assert_eq!(sorted[r], k);
        }
    }

    /// Prefix sums are exclusive and consistent.
    #[test]
    fn prefix_sums_correct(values in proptest::collection::vec(0u64..100, 0..50)) {
        let g = generators::cycle(32);
        let mut cl = roomy_cluster_for(&g, Seed(3), 1 << 10);
        let out = prefix_sums(&mut cl, &values).unwrap();
        prop_assert_eq!(out.len(), values.len());
        let mut acc = 0u64;
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(out[i], acc);
            acc += v;
        }
    }

    /// Ball collection never silently exceeds machine space: either every
    /// ball fits (and is correct) or the call errors.
    #[test]
    fn ball_collection_sound(g in arb_graph(), r in 0usize..4) {
        let mut cl = roomy_cluster_for(&g, Seed(4), 64);
        let dg = DistributedGraph::distribute(&g, &mut cl).unwrap();
        match dg.collect_balls(&mut cl, r) {
            Ok(balls) => {
                prop_assert_eq!(balls.len(), g.n());
                for (v, (ball, center)) in balls.iter().enumerate() {
                    prop_assert_eq!(ball.id(*center), g.id(v));
                    let dist = g.bfs_distances(v);
                    let expected = (0..g.n()).filter(|&u| dist[u] <= r).count();
                    prop_assert_eq!(ball.n(), expected);
                }
            }
            Err(e) => {
                let is_space = matches!(
                    e,
                    component_stability::mpc::MpcError::SpaceExceeded { .. }
                );
                prop_assert!(is_space);
            }
        }
    }
}
