//! Workspace-level model-conformance gate.
//!
//! The static analyzer (`csmpc-conformance`) runs over the entire
//! workspace from this integration test, so `cargo test` fails the moment
//! anyone introduces a nondeterminism source, an unaccounted primitive, an
//! uncharged recovery path, or a stability-discipline breach. The same
//! scan is available as a binary
//! (`cargo run -p csmpc-conformance --bin conformance`).

use std::path::Path;

use csmpc_conformance::{check_source, check_workspace, Lint};

#[test]
fn workspace_has_zero_conformance_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = check_workspace(root).expect("workspace scan");
    assert!(
        report.files_scanned >= 40,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "conformance violations:\n{}",
        report.to_json()
    );
}

#[test]
fn the_gate_actually_bites() {
    // Guard against the scanner rotting into a yes-machine: a seeded
    // violation of each lint must still be caught.
    let nondet = "use std::time::Instant;\n";
    assert_eq!(
        check_source(Path::new("x.rs"), nondet, &[Lint::Nondeterminism]).len(),
        1
    );

    let unaccounted = "pub fn probe(cluster: &mut Cluster) -> usize {\n    0\n}\n";
    assert_eq!(
        check_source(
            Path::new("x.rs"),
            unaccounted,
            &[Lint::UnaccountedPrimitive]
        )
        .len(),
        1
    );

    let unstable = "\
impl MpcVertexAlgorithm for Liar {
    fn component_stable(&self) -> bool { true }
    fn run(&self) { dg.aggregate(cluster, &v, f); }
}
";
    assert_eq!(
        check_source(Path::new("x.rs"), unstable, &[Lint::StabilityDiscipline]).len(),
        1
    );

    let free_recovery = "\
pub fn restore_inboxes(cluster: &mut Cluster, cp: &Checkpoint) {
    cluster.inboxes = cp.inboxes.clone();
}
";
    assert_eq!(
        check_source(
            Path::new("x.rs"),
            free_recovery,
            &[Lint::RecoveryAccounting]
        )
        .len(),
        1
    );

    let unordered = "\
fn racy(items: &[u64], total: &AtomicU64) {
    items.par_iter().for_each(|&x| {
        total.fetch_add(x, Ordering::Relaxed);
    });
}
";
    assert_eq!(
        check_source(Path::new("x.rs"), unordered, &[Lint::Determinism]).len(),
        1
    );
}

#[test]
fn fixture_violations_are_reported_with_file_and_line() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let fixture = root.join("crates/conformance/fixtures/nondeterminism_violation.rs");
    let source = std::fs::read_to_string(&fixture).expect("fixture readable");
    let diags = check_source(
        Path::new("crates/conformance/fixtures/nondeterminism_violation.rs"),
        &source,
        &[Lint::Nondeterminism],
    );
    assert!(!diags.is_empty());
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("crates/conformance/fixtures/nondeterminism_violation.rs:4:"),
        "{rendered}"
    );

    let fixture = root.join("crates/conformance/fixtures/determinism_violation.rs");
    let source = std::fs::read_to_string(&fixture).expect("fixture readable");
    let diags = check_source(
        Path::new("crates/conformance/fixtures/determinism_violation.rs"),
        &source,
        &[Lint::Determinism],
    );
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags[0].to_string().contains("for_each"), "{}", diags[0]);
    assert!(diags[1].to_string().contains("collect"), "{}", diags[1]);
}
