//! Cross-crate integration: the full pipeline from graphs through
//! algorithms to the component-stability framework.

use component_stability::core::lifting::{
    b_st_conn, planted_levels, run_one_simulation, sim_size_for, LiftingPair,
};
use component_stability::prelude::*;
use component_stability::problems::mis::{LargeIndependentSet, Mis};
use component_stability::problems::replicability::{gamma_graph, gamma_labels};

#[test]
fn theorem5_pipeline_end_to_end() {
    // Generate → run all three algorithms → validate → classify.
    let g = generators::cycle(80);
    let problem = LargeIndependentSet { c: 0.2 };

    let mut cl = cluster_for(&g, Seed(1));
    let amp = AmplifiedLargeIs { repetitions: 0 }
        .run(&g, &mut cl)
        .unwrap();
    assert!(problem.is_valid(&g, &amp));
    let amp_rounds = cl.stats().rounds;

    let mut cl = cluster_for(&g, Seed(2));
    let det = DerandomizedLargeIs.run(&g, &mut cl).unwrap();
    assert!(problem.is_valid(&g, &det));

    let comp = generators::cycle(10);
    let p_amp = classify(&AmplifiedLargeIs { repetitions: 8 }, &comp, 12, Seed(3)).unwrap();
    let p_det = classify(&DerandomizedLargeIs, &comp, 12, Seed(4)).unwrap();
    assert_eq!(p_amp.class, MpcClass::UnstableRandomized);
    assert_eq!(p_det.class, MpcClass::UnstableDeterministic);
    assert!(amp_rounds < 20, "O(1) rounds expected, got {amp_rounds}");
}

#[test]
fn gamma_graph_respects_stable_outputs_and_validity_transfer() {
    // Lemma 25's mechanism: stable outputs on Γ_G are copy-identical, and
    // validity on Γ_G implies validity on G (replicability).
    let g = generators::cycle(8);
    let copies = 10usize;
    let gamma = gamma_graph(&g, copies, 5);
    assert!(gamma.is_legal());

    let mut cl = cluster_for(&gamma, Seed(5));
    let labels = StableOneShotIs.run(&gamma, &mut cl).unwrap();
    for c in 1..copies {
        assert_eq!(
            &labels[..g.n()],
            &labels[c * g.n()..(c + 1) * g.n()],
            "copy {c} diverged under a stable algorithm"
        );
    }
    // Validity transfer via the replicability layout.
    let copy_labels = labels[..g.n()].to_vec();
    let relaid = gamma_labels(&copy_labels, copies, 5, &labels[copies * g.n()]);
    let problem = LargeIndependentSet { c: 0.05 };
    if problem.is_valid(&gamma, &relaid) {
        assert!(problem.is_valid(&g, &copy_labels), "Definition 9 violated");
    }
}

#[test]
fn lifting_yes_no_dichotomy_with_two_algorithms() {
    let d = 3;
    let (g, c, gp, cp) = ball::identical_ball_path_pair(d, 4);
    let pair = LiftingPair {
        g,
        center_g: c,
        gp,
        center_gp: cp,
        d,
    };
    assert!(pair.is_valid());
    let yes_h = generators::path(d + 2);
    let order: Vec<usize> = (0..d + 2).collect();
    let h = planted_levels(&order, d, d + 2).unwrap();

    // A sensitive stable algorithm detects the planted YES.
    assert!(run_one_simulation(
        &ComponentMaxId,
        &pair,
        &yes_h,
        0,
        d + 1,
        &h,
        sim_size_for(&pair, &yes_h),
        Seed(1),
    )
    .unwrap());

    // An insensitive (1-local) stable algorithm does not — sensitivity is
    // genuinely necessary for the reduction.
    #[derive(Debug)]
    struct Degree;
    impl MpcVertexAlgorithm for Degree {
        type Label = usize;
        fn name(&self) -> &str {
            "degree"
        }
        fn deterministic(&self) -> bool {
            true
        }
        fn run(
            &self,
            g: &Graph,
            cluster: &mut Cluster,
        ) -> Result<Vec<usize>, component_stability::mpc::MpcError> {
            cluster.charge_rounds(1);
            Ok((0..g.n()).map(|v| g.degree(v)).collect())
        }
    }
    assert!(!run_one_simulation(
        &Degree,
        &pair,
        &yes_h,
        0,
        d + 1,
        &h,
        sim_size_for(&pair, &yes_h),
        Seed(2),
    )
    .unwrap());

    // NO instances never trigger either algorithm.
    let a = generators::path(2);
    let b2 = ops::with_fresh_names(&generators::path(2), 50);
    let no_h = ops::disjoint_union(&[&a, &b2]);
    let run = b_st_conn(&ComponentMaxId, &pair, &no_h, 0, 3, 50, Seed(3)).unwrap();
    assert_eq!(run.hits, 0);
}

#[test]
fn mis_ball_simulation_agrees_with_local_engine_semantics() {
    // The extendable MPC simulation and a direct whole-graph truncated run
    // must agree node-for-node (ball semantics = LOCAL semantics).
    use component_stability::algorithms::extendable::simulate_extendable_mis;
    use component_stability::algorithms::luby::TruncatedLubyMis;

    let g = generators::random_tree(60, Seed(7));
    let phases = 3;
    let mut cl = roomy_cluster_for(&g, Seed(8), 1 << 14);
    let run = simulate_extendable_mis(&g, &mut cl, phases).unwrap();

    let params = LocalParams::exact(g.n(), g.max_degree(), Seed(8));
    let direct = TruncatedLubyMis { phases }.statuses(&g, &params);
    let direct_full = component_stability::algorithms::luby::extend_partial_mis(&g, &direct);
    assert_eq!(run.labels, direct_full);
    assert!(Mis.is_valid(&g, &run.labels));
}

#[test]
fn stability_report_is_deterministic_given_seeds() {
    let comp = generators::cycle(10);
    let r1 = verify_component_stability(&AmplifiedLargeIs { repetitions: 8 }, &comp, 8, Seed(9))
        .unwrap();
    let r2 = verify_component_stability(&AmplifiedLargeIs { repetitions: 8 }, &comp, 8, Seed(9))
        .unwrap();
    assert_eq!(r1.witnesses, r2.witnesses);
}

#[test]
fn edge_problems_roundtrip_through_line_graphs() {
    use component_stability::problems::matching::{
        greedy_maximal_matching, EdgeProblem, MaximalMatching,
    };
    for s in 0..5 {
        let g = generators::random_gnp(15, 0.3, Seed(s));
        if g.m() == 0 {
            continue;
        }
        let matching = greedy_maximal_matching(&g);
        assert!(MaximalMatching.validate(&g, &matching).is_ok());
        let (lg, _) = ops::line_graph(&g);
        assert!(
            Mis.is_valid(&lg, &matching),
            "matching ≠ MIS on L(G), seed {s}"
        );
    }
}
