//! Benchmarks for the derandomization stack (E6/E7): pairwise hashing, the
//! exact interval oracle, and the full conditional-expectations run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csmpc_algorithms::det_is::{derandomized_is, PairwiseLuby};
use csmpc_derand::hash::pairwise_for_domain;
use csmpc_graph::rng::Seed;
use csmpc_graph::{generators, Graph};

fn bench_hash_eval(c: &mut Criterion) {
    let fam = pairwise_for_domain(1 << 20);
    let h = fam.sample(Seed(1));
    c.bench_function("derand/pairwise_eval_1k", |b| {
        b.iter(|| (0..1000u64).map(|x| h.eval(x)).sum::<u64>());
    });
}

fn bench_expected_size_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("derand/expected_size_given_a");
    for n in [64usize, 256, 1024] {
        let g = generators::random_regular(n, 4, Seed(2));
        let inst = PairwiseLuby::for_graph(&g);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g: &Graph| {
            b.iter(|| inst.expected_size_given_a(g, 17));
        });
    }
    group.finish();
}

fn bench_full_mce(c: &mut Criterion) {
    let mut group = c.benchmark_group("derand/full_mce_derandomization");
    group.sample_size(10);
    for n in [32usize, 64, 128] {
        let g = generators::cycle(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g: &Graph| {
            b.iter(|| derandomized_is(g));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hash_eval,
    bench_expected_size_oracle,
    bench_full_mce
);
criterion_main!(benches);
