//! Benchmarks for the lifting construction (E4): building simulation
//! graphs and running one `B_st-conn` simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csmpc_core::lifting::{
    build_simulation_graph, planted_levels, run_one_simulation, sim_size_for, LiftingPair,
};
use csmpc_core::sensitivity::ComponentMaxId;
use csmpc_graph::ball::identical_ball_path_pair;
use csmpc_graph::generators;
use csmpc_graph::rng::Seed;

fn make_pair(d: usize, tail: usize) -> LiftingPair {
    let (g, c, gp, cp) = identical_ball_path_pair(d, tail);
    LiftingPair {
        g,
        center_g: c,
        gp,
        center_gp: cp,
        d,
    }
}

fn bench_build_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("lifting/build_simulation_graph");
    for d in [3usize, 6, 12] {
        let pair = make_pair(d, 8);
        let h_graph = generators::path(d + 2);
        let order: Vec<usize> = (0..d + 2).collect();
        let h = planted_levels(&order, d, d + 2).unwrap();
        let n_target = sim_size_for(&pair, &h_graph);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| {
                build_simulation_graph(
                    &h_graph,
                    0,
                    d + 1,
                    &h,
                    &pair.g,
                    pair.center_g,
                    pair.d,
                    n_target,
                )
            });
        });
    }
    group.finish();
}

fn bench_one_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("lifting/run_one_simulation");
    group.sample_size(20);
    for d in [3usize, 6] {
        let pair = make_pair(d, 8);
        let h_graph = generators::path(d + 2);
        let order: Vec<usize> = (0..d + 2).collect();
        let h = planted_levels(&order, d, d + 2).unwrap();
        let n_target = sim_size_for(&pair, &h_graph);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| {
                run_one_simulation(
                    &ComponentMaxId,
                    &pair,
                    &h_graph,
                    0,
                    d + 1,
                    &h,
                    n_target,
                    Seed(1),
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build_simulation, bench_one_simulation);
criterion_main!(benches);
