//! Benchmarks for the coloring and LLL algorithms (E8/E9): Cole–Vishkin,
//! randomized coloring, forest edge coloring, and Moser–Tardos sinkless
//! orientation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csmpc_algorithms::coloring;
use csmpc_algorithms::linial::linial_coloring;
use csmpc_algorithms::sinkless::sinkless_randomized;
use csmpc_graph::rng::Seed;
use csmpc_graph::{generators, Graph};
use csmpc_local::LocalParams;

fn bench_cole_vishkin(c: &mut Criterion) {
    let mut group = c.benchmark_group("coloring/cole_vishkin_cycle");
    for n in [1024usize, 16384, 262144] {
        let g = generators::shuffle_identity(&generators::cycle(n), 0, 0, Seed(1));
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g: &Graph| {
            b.iter(|| coloring::cole_vishkin_cycle(g));
        });
    }
    group.finish();
}

fn bench_randomized_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("coloring/randomized_delta_plus_one");
    for n in [256usize, 1024] {
        let g = generators::random_regular(n, 6, Seed(2));
        let params = LocalParams::exact(n, 6, Seed(3));
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g: &Graph| {
            b.iter(|| coloring::randomized_coloring(g, &params));
        });
    }
    group.finish();
}

fn bench_forest_edge_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("coloring/forest_edge");
    for n in [1024usize, 8192] {
        let g = generators::random_tree(n, Seed(4));
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g: &Graph| {
            b.iter(|| coloring::forest_edge_coloring(g));
        });
    }
    group.finish();
}

fn bench_linial(c: &mut Criterion) {
    let mut group = c.benchmark_group("coloring/linial_reduction");
    for n in [128usize, 512, 2048] {
        let g =
            csmpc_graph::ops::relabel_ids(&generators::random_regular(n, 4, Seed(7)), |v, _| {
                csmpc_graph::NodeId(v as u64 * 999_983 + 3)
            });
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g: &Graph| {
            b.iter(|| linial_coloring(g));
        });
    }
    group.finish();
}

fn bench_sinkless(c: &mut Criterion) {
    let mut group = c.benchmark_group("lll/sinkless_moser_tardos");
    for n in [128usize, 512, 2048] {
        let g = generators::random_regular(n, 4, Seed(5));
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g: &Graph| {
            b.iter(|| sinkless_randomized(g, Seed(6)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cole_vishkin,
    bench_randomized_coloring,
    bench_forest_edge_coloring,
    bench_linial,
    bench_sinkless
);
criterion_main!(benches);
