//! Criterion benchmarks for the MPC simulator primitives (backing the
//! performance columns of E10/E11-style tables).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csmpc_algorithms::api::{cluster_for, roomy_cluster_for};
use csmpc_graph::rng::Seed;
use csmpc_graph::{generators, Graph};
use csmpc_mpc::DistributedGraph;

fn bench_distribute(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpc/distribute");
    for n in [256usize, 1024, 4096] {
        let g = generators::cycle(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g: &Graph| {
            b.iter(|| {
                let mut cl = cluster_for(g, Seed(1));
                DistributedGraph::distribute(g, &mut cl).unwrap();
            });
        });
    }
    group.finish();
}

fn bench_neighbor_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpc/neighbor_reduce");
    for n in [256usize, 1024, 4096] {
        let g = generators::random_regular(n, 4, Seed(2));
        let vals: Vec<u64> = (0..n as u64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g: &Graph| {
            b.iter(|| {
                let mut cl = cluster_for(g, Seed(1));
                let dg = DistributedGraph::distribute(g, &mut cl).unwrap();
                dg.neighbor_reduce(&mut cl, &vals, std::cmp::min)
            });
        });
    }
    group.finish();
}

fn bench_collect_balls(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpc/collect_balls_r4");
    for n in [256usize, 1024] {
        let g = generators::cycle(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g: &Graph| {
            b.iter(|| {
                let mut cl = roomy_cluster_for(g, Seed(1), 1 << 12);
                let dg = DistributedGraph::distribute(g, &mut cl).unwrap();
                dg.collect_balls(&mut cl, 4).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_cc_labels(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpc/cc_labels");
    for n in [256usize, 1024, 4096] {
        let g = generators::cycle(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g: &Graph| {
            b.iter(|| {
                let mut cl = cluster_for(g, Seed(1));
                let dg = DistributedGraph::distribute(g, &mut cl).unwrap();
                dg.cc_labels(&mut cl)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_distribute,
    bench_neighbor_reduce,
    bench_collect_balls,
    bench_cc_labels
);
criterion_main!(benches);
