//! Benchmarks for the connectivity baseline (E11): the conjecture's
//! one-cycle-vs-two-cycles instance across sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csmpc_algorithms::api::cluster_for;
use csmpc_algorithms::connectivity::distinguish_cycles;
use csmpc_graph::rng::Seed;
use csmpc_graph::{generators, Graph};

fn bench_one_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("connectivity/one_cycle");
    for n in [256usize, 1024, 4096] {
        let g = generators::cycle(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g: &Graph| {
            b.iter(|| {
                let mut cl = cluster_for(g, Seed(1));
                distinguish_cycles(g, &mut cl).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_two_cycles(c: &mut Criterion) {
    let mut group = c.benchmark_group("connectivity/two_cycles");
    for n in [256usize, 1024, 4096] {
        let g = generators::two_cycles(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g: &Graph| {
            b.iter(|| {
                let mut cl = cluster_for(g, Seed(1));
                distinguish_cycles(g, &mut cl).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_one_cycle, bench_two_cycles);
criterion_main!(benches);
