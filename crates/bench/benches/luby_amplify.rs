//! Benchmarks for the Theorem 5 algorithms (E5): one Luby step, the full
//! MIS loop, and the amplified large-IS algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csmpc_algorithms::amplify::AmplifiedLargeIs;
use csmpc_algorithms::api::{cluster_for, MpcVertexAlgorithm};
use csmpc_algorithms::luby::{luby_mis, luby_step, random_chi};
use csmpc_graph::rng::Seed;
use csmpc_graph::{generators, Graph};
use csmpc_local::LocalParams;

fn bench_luby_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("luby/step");
    for n in [256usize, 1024, 4096] {
        let g = generators::random_regular(n, 4, Seed(1));
        let params = LocalParams::exact(n, 4, Seed(2));
        let chi = random_chi(&g, &params);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g: &Graph| {
            b.iter(|| luby_step(g, &chi));
        });
    }
    group.finish();
}

fn bench_luby_mis(c: &mut Criterion) {
    let mut group = c.benchmark_group("luby/full_mis");
    for n in [256usize, 1024] {
        let g = generators::random_regular(n, 4, Seed(3));
        let params = LocalParams::exact(n, 4, Seed(4));
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g: &Graph| {
            b.iter(|| luby_mis(g, &params));
        });
    }
    group.finish();
}

fn bench_amplified(c: &mut Criterion) {
    let mut group = c.benchmark_group("luby/amplified_large_is");
    for n in [256usize, 1024] {
        let g = generators::cycle(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g: &Graph| {
            b.iter(|| {
                let mut cl = cluster_for(g, Seed(5));
                AmplifiedLargeIs { repetitions: 0 }.run(g, &mut cl).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_luby_step, bench_luby_mis, bench_amplified);
criterion_main!(benches);
