//! `soak` — the job-service soak harness: pushes a large seeded batch
//! of mixed jobs (healthy, faulted, deadline-poisoned, low-priority
//! sheddable) through `csmpc-service` and writes throughput, per-job
//! latency percentiles, and retry/quarantine/shed counts into
//! `BENCH_service.json` at the repository root.
//!
//! Flags:
//!
//! * `--smoke` — shrink to a CI-sized batch (still ≥ 1000 jobs) and
//!   write `BENCH_service_smoke.json` instead, leaving the committed
//!   full baseline untouched.
//! * `--jobs N` / `--workers N` — override batch size / pool width.
//! * `--check-determinism` — run the same batch through TWO services
//!   concurrently (contending for the shared graph/CSR caches) and fail
//!   with exit 1 unless every per-job outcome is bit-identical. This is
//!   the service-level analogue of the engine's seq-vs-par equivalence
//!   gates.
//! * `--crash-every N` — re-run the batch through a *journaled* service
//!   that is killed after every `N` journal records, recovering and
//!   resuming until the batch completes. Fails with exit 1 unless the
//!   crash-riddled run's report fingerprint is bit-identical to the
//!   uninterrupted run's; reports recovery counts and latency in a
//!   `crash_recovery` JSON section.
//!
//! The batch recipe is a pure function of a fixed seed, so two
//! invocations (or the two concurrent services of the determinism
//! check) always see the same submission sequence.
//!
//! BENCH JSON write failures exit 2 with the offending path, mirroring
//! the `perf --gate` read-side contract.

use std::time::Instant;

use csmpc_graph::rng::{Seed, SplitMix64};
use csmpc_mpc::ParallelismMode;
use csmpc_service::{
    CrashPlan, FaultSpec, GraphSpec, JobService, JobSpec, JobState, Journal, Priority,
    ServiceConfig, ServiceReport, Workload,
};

/// Deterministic mixed batch: a handful of graph shapes (so the shared
/// CSR spines actually get shared), three workloads, four tenants with
/// skewed volume, ~20% fault plans, ~2% deadline poison, ~25% low
/// priority (the shedding ladder's fodder).
fn build_batch(jobs: usize) -> Vec<JobSpec> {
    let mut rng = SplitMix64::new(Seed(0x50AB_2026));
    let tenants = ["acme", "globex", "initech", "umbrella"];
    let mut specs = Vec::with_capacity(jobs);
    for i in 0..jobs as u64 {
        let graph = match rng.range(0, 5) {
            0 => GraphSpec::Cycle { n: 24 },
            1 => GraphSpec::Cycle { n: 48 },
            2 => GraphSpec::TwoCycles { n: 32 },
            3 => GraphSpec::Path { n: 40 },
            _ => GraphSpec::RandomTree {
                n: 36,
                seed: rng.range(0, 4),
            },
        };
        let workload = match rng.range(0, 3) {
            0 => Workload::LubyMis,
            1 => Workload::CcLabels,
            _ => Workload::BallColoring { radius: 2 },
        };
        // Volume skew: acme submits roughly half the batch — tenant
        // fairness is what keeps the others flowing anyway.
        let tenant = tenants[if rng.range(0, 2) == 0 {
            0
        } else {
            1 + rng.range(0, 3) as usize
        }];
        let mut spec = JobSpec::basic(tenant, workload, graph, Seed(i));
        spec.priority = match rng.range(0, 8) {
            0 | 1 => Priority::Low,
            7 => Priority::High,
            _ => Priority::Normal,
        };
        if rng.range(0, 5) == 0 {
            // A fifth of the batch carries real fault plans.
            spec.faults = Some(FaultSpec {
                crashes: rng.range(0, 3) as usize,
                stragglers: rng.range(0, 3) as usize,
                horizon: 6,
                corrupt_per_mille: if rng.range(0, 2) == 0 { 40 } else { 0 },
                seed: 0xFA57_0000 + i,
            });
            // Some fault carriers start with no in-run recovery budget:
            // at full service the job-level retry ladder escalates them
            // to completion; on the shedding rung they degrade to
            // supervised partial output instead.
            spec.recovery_retries = rng.range(0, 3) as usize;
        }
        if rng.range(0, 50) == 0 {
            // ~2% poison: a deadline no workload can meet, exercising
            // the retry ladder into quarantine.
            spec.deadline_rounds = Some(1);
            spec.max_attempts = 3;
        }
        specs.push(spec);
    }
    specs
}

fn service_config(jobs: usize, workers: usize) -> ServiceConfig {
    ServiceConfig {
        workers,
        // Sized so the whole batch *barely* fits (mean footprint is
        // ~550 words at these graph sizes): the 0.7 watermark lands
        // inside the submission sequence, so the low-priority slice of
        // the tail rides the shedding ladder (supervised degrade) while
        // the batch still admits without refusals.
        capacity_words: jobs * 700,
        shed_fraction: 0.7,
        mode: ParallelismMode::default(),
    }
}

fn run_once(jobs: usize, workers: usize) -> (ServiceReport, f64) {
    let svc = JobService::new(service_config(jobs, workers));
    let t0 = Instant::now();
    let report = svc.run_batch(build_batch(jobs));
    let secs = t0.elapsed().as_secs_f64();
    (report, secs)
}

/// What the crash/recover/resume loop measured, for the JSON section.
struct CrashRunStats {
    report: ServiceReport,
    recoveries: u64,
    records_replayed: u64,
    recovery_ms: Vec<f64>,
}

/// Run the batch through a journaled service that is killed after every
/// `crash_every` journal records, recovering from the on-disk log and
/// resubmitting the unpersisted tail until the batch completes. The
/// write-ahead discipline guarantees at least one fresh record lands per
/// cycle once `crash_every >= 2`, so the loop always terminates.
fn run_with_crashes(jobs: usize, workers: usize, crash_every: u64) -> CrashRunStats {
    let cfg = service_config(jobs, workers);
    let specs = build_batch(jobs);
    let path = std::env::temp_dir().join(format!("csmpc_soak_journal_{}.bin", std::process::id()));
    let journal = Journal::create(&path).unwrap_or_else(|e| {
        eprintln!("FAIL: cannot create journal at {}: {e}", path.display());
        std::process::exit(2);
    });
    let svc = JobService::with_journal(cfg.clone(), journal);
    svc.arm_crash(CrashPlan::kill_after(crash_every));
    for spec in &specs {
        svc.submit(spec.clone());
        if svc.crashed() {
            break;
        }
    }
    let mut attempt = svc.run_recoverable();
    let mut recoveries = 0u64;
    let mut records_replayed = 0u64;
    let mut recovery_ms = Vec::new();
    let report = loop {
        match attempt {
            Some(report) => break report,
            None => {
                let t0 = Instant::now();
                let (svc, info) = JobService::recover(cfg.clone(), &path).unwrap_or_else(|e| {
                    eprintln!("FAIL: recovery {} refused: {e}", recoveries + 1);
                    std::process::exit(1);
                });
                recovery_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                recoveries += 1;
                records_replayed += info.records_replayed;
                svc.arm_crash(CrashPlan::kill_after(crash_every));
                for spec in &specs[svc.submitted_jobs()..] {
                    svc.submit(spec.clone());
                    if svc.crashed() {
                        break;
                    }
                }
                attempt = svc.run_recoverable();
            }
        }
    };
    std::fs::remove_file(&path).ok();
    CrashRunStats {
        report,
        recoveries,
        records_replayed,
        recovery_ms,
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check_determinism = args.iter().any(|a| a == "--check-determinism");
    let arg_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(|v| {
                v.parse::<usize>()
                    .unwrap_or_else(|_| panic!("{flag} wants a number"))
            })
    };
    let jobs = arg_after("--jobs").unwrap_or(if smoke { 1200 } else { 10_000 });
    let workers = arg_after("--workers").unwrap_or(4);
    let crash_every = arg_after("--crash-every").map(|n| {
        // Below 2 the first surviving record of each cycle can be a
        // replayed duplicate, so no cycle makes durable progress.
        (n as u64).max(2)
    });

    println!("soak: {jobs} jobs, {workers} workers, smoke={smoke}");

    let (report, secs) = run_once(jobs, workers);
    assert_eq!(
        report.outcomes.len(),
        jobs,
        "wedged queue: not every job reached a terminal state"
    );
    let c = report.counters;
    let throughput = jobs as f64 / secs.max(1e-9);

    let mut lat: Vec<f64> = report
        .outcomes
        .iter()
        .filter(|o| o.state != JobState::Rejected)
        .map(|o| o.wall_ms)
        .collect();
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let (p50, p90, p99) = (
        percentile(&lat, 0.50),
        percentile(&lat, 0.90),
        percentile(&lat, 0.99),
    );
    let max_ms = lat.last().copied().unwrap_or(0.0);

    println!(
        "  {:.1} jobs/s over {secs:.2}s   latency p50 {p50:.3} ms  p90 {p90:.3} ms  \
         p99 {p99:.3} ms  max {max_ms:.3} ms",
        throughput
    );
    println!(
        "  completed {} degraded {} quarantined {} rejected {} shed {} retries {} \
         backoff_ticks {} deadline_failures {}",
        c.completed,
        c.degraded,
        c.quarantined,
        c.rejected,
        c.shed,
        c.retries,
        c.backoff_ticks,
        c.deadline_failures
    );

    let mut determinism = String::new();
    if check_determinism {
        // Two services over the same batch, *concurrently*, contending
        // for the shared graph store and CSR cache — per-job outcomes
        // must still be bit-identical.
        let (a, b) = std::thread::scope(|scope| {
            let ha = scope.spawn(|| run_once(jobs, workers).0);
            let hb = scope.spawn(|| run_once(jobs, workers).0);
            (ha.join().expect("run A"), hb.join().expect("run B"))
        });
        let (fa, fb) = (a.fingerprint(), b.fingerprint());
        if fa != fb || fa != report.fingerprint() {
            for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
                if x.digest != y.digest || x.state != y.state || x.attempts != y.attempts {
                    eprintln!(
                        "  job {:?}: ({:?}, digest {:#x}, attempts {}) vs \
                         ({:?}, digest {:#x}, attempts {})",
                        x.id, x.state, x.digest, x.attempts, y.state, y.digest, y.attempts
                    );
                }
            }
            eprintln!(
                "FAIL: concurrent determinism gate: fingerprints {fa:#x} / {fb:#x} / {:#x}",
                report.fingerprint()
            );
            std::process::exit(1);
        }
        println!("  determinism gate: OK (two concurrent runs, fingerprint {fa:#x})");
        determinism =
            format!(",\n  \"determinism\": {{\"checked\": true, \"fingerprint\": \"{fa:#x}\"}}");
    }

    let mut crash_recovery = String::new();
    if let Some(every) = crash_every {
        // The crash-riddled run must land on the exact same report as
        // the uninterrupted one — recovery is replay, not re-guessing.
        let crashed = run_with_crashes(jobs, workers, every);
        let (fc, fr) = (crashed.report.fingerprint(), report.fingerprint());
        if fc != fr {
            for (x, y) in crashed.report.outcomes.iter().zip(&report.outcomes) {
                if x.digest != y.digest || x.state != y.state || x.attempts != y.attempts {
                    eprintln!(
                        "  job {:?}: crash-run ({:?}, digest {:#x}, attempts {}) vs \
                         reference ({:?}, digest {:#x}, attempts {})",
                        x.id, x.state, x.digest, x.attempts, y.state, y.digest, y.attempts
                    );
                }
            }
            eprintln!("FAIL: crash-recovery gate: fingerprints {fc:#x} vs reference {fr:#x}");
            std::process::exit(1);
        }
        let (mean_ms, max_ms) = if crashed.recovery_ms.is_empty() {
            (0.0, 0.0)
        } else {
            let sum: f64 = crashed.recovery_ms.iter().sum();
            (
                sum / crashed.recovery_ms.len() as f64,
                crashed.recovery_ms.iter().cloned().fold(0.0, f64::max),
            )
        };
        println!(
            "  crash-recovery gate: OK ({} recoveries every {every} records, \
             {} records replayed, recover() mean {mean_ms:.3} ms max {max_ms:.3} ms)",
            crashed.recoveries, crashed.records_replayed
        );
        crash_recovery = format!(
            ",\n  \"crash_recovery\": {{\"crash_every\": {every}, \"recoveries\": {}, \
             \"records_replayed\": {}, \"recovery_ms\": {{\"mean\": {mean_ms:.4}, \
             \"max\": {max_ms:.4}}}, \"fingerprint_match\": true}}",
            crashed.recoveries, crashed.records_replayed
        );
    }

    let json = format!(
        "{{\n  \"suite\": \"csmpc job-service soak\",\n  \"jobs\": {jobs},\n  \
         \"workers\": {workers},\n  \"smoke\": {smoke},\n  \"wall_s\": {secs:.3},\n  \
         \"throughput_jobs_per_s\": {throughput:.1},\n  \"latency_ms\": {{\"p50\": {p50:.4}, \
         \"p90\": {p90:.4}, \"p99\": {p99:.4}, \"max\": {max_ms:.4}}},\n  \
         \"counters\": {{\"submitted\": {}, \"admitted\": {}, \"rejected\": {}, \"shed\": {}, \
         \"completed\": {}, \"degraded\": {}, \"quarantined\": {}, \"retries\": {}, \
         \"backoff_ticks\": {}, \"deadline_failures\": {}}}{determinism}{crash_recovery}\n}}\n",
        c.submitted,
        c.admitted,
        c.rejected,
        c.shed,
        c.completed,
        c.degraded,
        c.quarantined,
        c.retries,
        c.backoff_ticks,
        c.deadline_failures
    );

    let out = if smoke {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_service_smoke.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json")
    };
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("FAIL: cannot write {out}: {e}");
        std::process::exit(2);
    }
    println!("wrote {out}");
}
