//! `perf` — the sequential-vs-parallel timing baseline for the
//! deterministic parallel execution engine.
//!
//! Runs a fixed workload suite — Luby-style MIS, connected-component
//! labels, ball-greedy coloring, faulted chaos replay, and the E5
//! success-probability harness — at several input sizes under both
//! [`ParallelismMode::Sequential`] and [`ParallelismMode::Parallel`],
//! recording warm best-of-N wall times and speedups, and writes
//! `BENCH_mpc.json` at the repository root.
//!
//! `--smoke` shrinks the sizes and repetition counts for the CI gate.
//! The speedup gate (parallel no slower than sequential on average) is
//! enforced only when real worker threads are available
//! (`rayon::current_num_threads() > 1`); on a single-core runner the
//! parallel mode degrades to inline execution and the gate reduces to a
//! warning, since there is no concurrency to measure.

use std::hint::black_box;
use std::time::Instant;

use csmpc_algorithms::amplify::StableOneShotIs;
use csmpc_algorithms::api::MpcVertexAlgorithm;
use csmpc_algorithms::mpc_edge::BallGreedyColoringMpc;
use csmpc_core::runner::success_probability_with_mode;
use csmpc_graph::rng::Seed;
use csmpc_graph::{generators, ops, Graph};
use csmpc_mpc::{
    exact_aggregate_sum_with_faults, run_supervised, Cluster, DistributedGraph, FaultPlan,
    MpcConfig, ParallelismMode, RecoveryPolicy, Stats, SupervisorConfig,
};
use csmpc_problems::mis::LargeIndependentSet;

const MODES: [ParallelismMode; 2] = [ParallelismMode::Sequential, ParallelismMode::Parallel];

fn cluster_in_mode(g: &Graph, min_space: usize, seed: Seed, mode: ParallelismMode) -> Cluster {
    let cfg = MpcConfig {
        min_space,
        parallelism: mode,
        ..Default::default()
    };
    Cluster::new(cfg, g.n(), csmpc_mpc::graph_words(g), seed)
}

/// One warmup pass, then the best (minimum) of `reps` timed passes, in
/// milliseconds. Best-of is the standard noise filter for short kernels:
/// scheduling jitter only ever adds time.
fn time_best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn luby_mis(n: usize, mode: ParallelismMode) {
    let g = generators::cycle(n);
    let mut cl = cluster_in_mode(&g, 0, Seed(0xC0DE), mode);
    black_box(StableOneShotIs.run(&g, &mut cl).expect("luby-mis run"));
}

fn cc_labels(n: usize, mode: ParallelismMode) {
    let half = generators::cycle(n / 2);
    let g = ops::disjoint_union(&[&half, &ops::with_fresh_names(&half, n as u64)]);
    let mut cl = cluster_in_mode(&g, 0, Seed(0xC0DE), mode);
    let dg = DistributedGraph::distribute(&g, &mut cl).expect("distribute");
    black_box(dg.cc_labels(&mut cl).expect("cc-labels run"));
}

fn ball_coloring(n: usize, mode: ParallelismMode) {
    let g = generators::random_tree(n, Seed(17));
    // Radius-3 balls need the elevated space floor of the paper's roomy
    // regime (Δ^{O(T)} ≤ n^φ side condition).
    let mut cl = cluster_in_mode(&g, 1024, Seed(0xC0DE), mode);
    black_box(
        BallGreedyColoringMpc { radius: 3 }
            .run(&g, &mut cl)
            .expect("ball-coloring run"),
    );
}

fn chaos_replay(n: usize, mode: ParallelismMode) {
    let g = ops::disjoint_union(&[
        &generators::cycle(8),
        &ops::with_fresh_names(&generators::cycle(n), 1000 + n as u64),
    ]);
    let mut cl = cluster_in_mode(&g, 48, Seed(0xC0DE), mode);
    let plan = FaultPlan::random(Seed(0xFA57).derive(1), cl.num_machines(), 3, 1, 1);
    cl.arm_faults(plan, RecoveryPolicy::restart(8));
    black_box(StableOneShotIs.run(&g, &mut cl).expect("chaos-replay run"));
}

fn e05_success_probability(n: usize, mode: ParallelismMode) {
    let g = generators::cycle(n);
    let p = LargeIndependentSet { c: 0.5 };
    black_box(
        success_probability_with_mode(&StableOneShotIs, &p, &g, 24, Seed(4), mode)
            .expect("e05 run"),
    );
}

struct Sample {
    workload: &'static str,
    n: usize,
    seq_ms: f64,
    par_ms: f64,
}

impl Sample {
    fn speedup(&self) -> f64 {
        self.seq_ms / self.par_ms.max(1e-9)
    }
}

/// One recovery-overhead measurement: a faulted/supervised run compared
/// against its fault-free twin on the same cluster shape and seed. All
/// numbers come from the deterministic `Stats` ledger, so the table is
/// bit-stable across hosts; only wall time varies.
struct RecoverySample {
    scenario: &'static str,
    base_rounds: usize,
    rounds: usize,
    recovery_rounds: usize,
    recovery_words: u64,
    speculative_rounds: usize,
    corrupted_detected: u64,
    ms: f64,
}

impl RecoverySample {
    fn round_overhead_pct(&self) -> f64 {
        if self.base_rounds == 0 {
            return 0.0;
        }
        100.0 * (self.rounds as f64 - self.base_rounds as f64) / self.base_rounds as f64
    }
}

fn recovery_graph(n: usize) -> Graph {
    ops::disjoint_union(&[
        &generators::cycle(8),
        &ops::with_fresh_names(&generators::cycle(n), 1000 + n as u64),
    ])
}

fn luby_u64(g: &Graph, cl: &mut Cluster) -> Result<Vec<u64>, csmpc_mpc::MpcError> {
    StableOneShotIs
        .run(g, cl)
        .map(|ls| ls.into_iter().map(u64::from).collect())
}

/// The recovery-overhead suite: each scenario exercises one supervision
/// mechanism and reports what it cost relative to the fault-free run.
fn recovery_suite(n: usize, reps: usize) -> Vec<RecoverySample> {
    let g = recovery_graph(n);
    let seed = Seed(0xC0DE);
    let template = cluster_in_mode(&g, 48, seed, ParallelismMode::Sequential);
    let machines = template.num_machines();

    let mut quiet = template.clone();
    luby_u64(&g, &mut quiet).expect("quiet run");
    let base = quiet.stats().clone();

    let mut out = Vec::new();
    let mut record = |scenario: &'static str, base_rounds: usize, f: &mut dyn FnMut() -> Stats| {
        let stats = f();
        let ms = time_best_of(reps, || {
            black_box(f());
        });
        out.push(RecoverySample {
            scenario,
            base_rounds,
            rounds: stats.rounds,
            recovery_rounds: stats.recovery_rounds,
            recovery_words: stats.recovery_words,
            speculative_rounds: stats.speculative_rounds,
            corrupted_detected: stats.corrupted_detected,
            ms,
        });
    };

    record("crash-restart", base.rounds, &mut || {
        let mut cl = template.clone();
        cl.arm_faults(
            FaultPlan::quiet(seed).crash(machines / 2, 2),
            RecoveryPolicy::restart(8),
        );
        luby_u64(&g, &mut cl).expect("crash-restart run");
        cl.stats().clone()
    });

    record("crash-backoff", base.rounds, &mut || {
        let mut cl = template.clone();
        cl.arm_faults(
            FaultPlan::quiet(seed)
                .crash(machines / 2, 2)
                .crash(machines / 2, 4),
            RecoveryPolicy::restart_with_backoff(8, 2),
        );
        luby_u64(&g, &mut cl).expect("crash-backoff run");
        cl.stats().clone()
    });

    record("straggler-speculation", base.rounds, &mut || {
        let mut cl = template.clone();
        cl.supervise(SupervisorConfig {
            deadline_rounds: 2,
            failure_threshold: 2,
        });
        cl.arm_faults(
            FaultPlan::quiet(seed).straggle(machines / 2, 2, 10),
            RecoveryPolicy::restart(8),
        );
        luby_u64(&g, &mut cl).expect("speculation run");
        cl.stats().clone()
    });

    record("degraded-salvage", base.rounds, &mut || {
        let run = run_supervised(
            &g,
            &template,
            &FaultPlan::quiet(seed).crash(machines / 2, 3),
            RecoveryPolicy::restart(0),
            SupervisorConfig::default(),
            luby_u64,
        )
        .expect("degraded run");
        assert!(run.is_degraded(), "salvage scenario did not degrade");
        run.stats
    });

    // Engine scenario: its fault-free twin is the same sum under a quiet
    // plan; corruption costs words (detected strikes are retransmitted),
    // not rounds, and the detection count is the headline number.
    let values: Vec<u64> = (1..=(64 * n as u64 / 100).max(64)).collect();
    let engine_sum = |plan: &FaultPlan| {
        let mut cl = Cluster::new(MpcConfig::with_phi(0.5), 400, 800, seed);
        exact_aggregate_sum_with_faults(&mut cl, &values, plan, RecoveryPolicy::restart(8))
            .expect("engine sum");
        cl.stats().clone()
    };
    let engine_base = engine_sum(&FaultPlan::quiet(seed));
    record("corruption-detect", engine_base.rounds, &mut || {
        engine_sum(
            &FaultPlan::quiet(seed)
                .with_corruption(300)
                .with_reordering(300),
        )
    });

    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = if smoke { 2 } else { 5 };
    let workers = rayon::current_num_threads();

    type Runner = fn(usize, ParallelismMode);
    let suite: [(&str, Runner, [usize; 2]); 5] = [
        (
            "luby-mis",
            luby_mis,
            if smoke { [300, 600] } else { [1500, 4000] },
        ),
        (
            "cc-labels",
            cc_labels,
            if smoke { [300, 600] } else { [1500, 4000] },
        ),
        (
            "ball-coloring",
            ball_coloring,
            if smoke { [150, 300] } else { [600, 1500] },
        ),
        (
            "chaos-replay",
            chaos_replay,
            if smoke { [200, 400] } else { [600, 1200] },
        ),
        (
            "e05-success-probability",
            e05_success_probability,
            if smoke { [60, 120] } else { [240, 480] },
        ),
    ];

    println!(
        "perf suite: {} workloads x 2 sizes, best of {reps}, {workers} worker thread(s), \
         smoke={smoke}",
        suite.len()
    );
    let mut samples = Vec::new();
    for (workload, runner, sizes) in suite {
        for n in sizes {
            let mut times = [0.0f64; 2];
            for (slot, mode) in MODES.into_iter().enumerate() {
                times[slot] = time_best_of(reps, || runner(n, mode));
            }
            let s = Sample {
                workload,
                n,
                seq_ms: times[0],
                par_ms: times[1],
            };
            println!(
                "  {:<24} n={:<6} seq {:>9.3} ms   par {:>9.3} ms   speedup {:.2}x",
                s.workload,
                s.n,
                s.seq_ms,
                s.par_ms,
                s.speedup()
            );
            samples.push(s);
        }
    }

    // Geometric mean weights every workload equally regardless of its
    // absolute runtime.
    let geomean =
        (samples.iter().map(|s| s.speedup().ln()).sum::<f64>() / samples.len() as f64).exp();
    println!("geometric-mean speedup: {geomean:.2}x");

    // Recovery-overhead table: what each supervision mechanism costs
    // relative to the fault-free twin, straight from the Stats ledger.
    let recovery_n = if smoke { 200 } else { 600 };
    let recovery = recovery_suite(recovery_n, reps);
    println!("recovery overhead (n={recovery_n}):");
    for r in &recovery {
        println!(
            "  {:<22} rounds {:>4} (base {:>4}, +{:>5.1}%)  rec_rounds {:>3}  rec_words {:>6}  \
             spec {:>3}  corrupt {:>4}  {:>8.3} ms",
            r.scenario,
            r.rounds,
            r.base_rounds,
            r.round_overhead_pct(),
            r.recovery_rounds,
            r.recovery_words,
            r.speculative_rounds,
            r.corrupted_detected,
            r.ms
        );
    }

    let mut json = String::from("{\n");
    json.push_str("  \"suite\": \"csmpc parallel-engine baseline\",\n");
    json.push_str(&format!("  \"workers\": {workers},\n"));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"best_of\": {reps},\n"));
    json.push_str(&format!("  \"geomean_speedup\": {geomean:.4},\n"));
    json.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"n\": {}, \"seq_ms\": {:.4}, \"par_ms\": {:.4}, \
             \"speedup\": {:.4}}}{}\n",
            s.workload,
            s.n,
            s.seq_ms,
            s.par_ms,
            s.speedup(),
            if i + 1 == samples.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"recovery_overhead\": [\n");
    for (i, r) in recovery.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"n\": {recovery_n}, \"base_rounds\": {}, \
             \"rounds\": {}, \"round_overhead_pct\": {:.2}, \"recovery_rounds\": {}, \
             \"recovery_words\": {}, \"speculative_rounds\": {}, \"corrupted_detected\": {}, \
             \"ms\": {:.4}}}{}\n",
            r.scenario,
            r.base_rounds,
            r.rounds,
            r.round_overhead_pct(),
            r.recovery_rounds,
            r.recovery_words,
            r.speculative_rounds,
            r.corrupted_detected,
            r.ms,
            if i + 1 == recovery.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mpc.json");
    std::fs::write(out, &json).expect("write BENCH_mpc.json");
    println!("wrote {out}");

    if smoke {
        if workers > 1 && geomean < 1.0 {
            eprintln!(
                "FAIL: parallel mode is slower than sequential ({geomean:.2}x geomean) \
                 with {workers} workers"
            );
            std::process::exit(1);
        }
        if workers <= 1 {
            println!("note: single worker thread — parallel mode ran inline, speedup gate skipped");
        }
    }
}
