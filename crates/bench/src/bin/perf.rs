//! `perf` — the sequential-vs-parallel timing baseline for the
//! deterministic parallel execution engine.
//!
//! Runs a fixed workload suite — Luby-style MIS, connected-component
//! labels, ball-greedy coloring, faulted chaos replay, and the E5
//! success-probability harness — at several input sizes under both
//! [`ParallelismMode::Sequential`] and [`ParallelismMode::Parallel`],
//! recording warm best-of-N wall times, speedups, and the engine's
//! per-phase wall-clock breakdown (route/intake/step/merge/checkpoint,
//! from the `Stats` ledger's observability overlay), and writes
//! `BENCH_mpc.json` at the repository root.
//!
//! Worker accounting is per column: the sequential column always runs on
//! one worker, and the parallel column is labeled `par` only when rayon
//! actually has more than one worker thread — with a single worker the
//! column is labeled `inline`, because calling a degraded inline pass
//! "parallel" would launder a 1.0x speedup into a parallel claim.
//!
//! `--smoke` shrinks the sizes and repetition counts for the CI gate and
//! writes `BENCH_mpc_smoke.json` instead, leaving the committed full
//! baseline untouched. `--gate <path>` compares the run against a
//! previously committed baseline JSON (matching workload/size rows) and
//! fails on gross regressions; tolerances are deliberately generous
//! (shared CI runners jitter), so only multi-x slowdowns trip it.
//!
//! With the `alloc-count` feature the binary installs the counting
//! global allocator from `csmpc_mpc::phase::counting_alloc` and reports
//! heap allocations per sequential pass alongside the timings.

use std::hint::black_box;
use std::time::Instant;

use csmpc_algorithms::amplify::StableOneShotIs;
use csmpc_algorithms::api::MpcVertexAlgorithm;
use csmpc_algorithms::mpc_edge::BallGreedyColoringMpc;
use csmpc_core::runner::success_probability_with_mode;
use csmpc_graph::rng::Seed;
use csmpc_graph::{generators, ops, Graph, StreamFamily};
use csmpc_mpc::{
    exact_aggregate_sum_with_faults, run_supervised, scale, Cluster, DistributedGraph, FaultPlan,
    MpcConfig, ParallelismMode, PhaseTimes, RecoveryPolicy, ScaleWorkspace, Stats,
    SupervisorConfig,
};
use csmpc_problems::mis::LargeIndependentSet;

/// Per-row sequential wall-time tolerance for `--gate`: the current run
/// may be up to this many times slower than the committed baseline row
/// before the gate fails. Generous on purpose — smoke sizes are small and
/// CI machines are noisy; the gate exists to catch order-of-magnitude
/// regressions (an accidental quadratic path, a lost cache), not jitter.
const GATE_SEQ_TOLERANCE: f64 = 4.0;

/// Sub-millisecond baseline rows are pure noise; the gate compares
/// against at least this floor so a 0.1 ms → 0.5 ms wobble cannot fail.
const GATE_SEQ_FLOOR_MS: f64 = 0.5;

/// `--gate` requires the current geomean speedup to stay within this
/// fraction of the baseline's (only compared when both runs had real
/// worker threads).
const GATE_GEOMEAN_FRACTION: f64 = 0.6;

/// Phase-aware gate thresholds: a row's route phase may drift up to
/// `WARN`× the baseline before the gate warns, and `FAIL`× before it
/// fails. Tighter than the wall-time tolerance because phase times come
/// from the best-of pass (least scheduling noise) and the route phase is
/// exactly what the counting-sort fabric is meant to hold down.
const GATE_ROUTE_WARN: f64 = 1.5;
const GATE_ROUTE_FAIL: f64 = 3.0;

/// Route phases below this floor (in ns) are timer-resolution noise; the
/// gate compares against at least this much.
const GATE_ROUTE_FLOOR_NS: f64 = 20_000.0;

#[cfg(feature = "alloc-count")]
#[global_allocator]
static ALLOC: csmpc_mpc::phase::counting_alloc::CountingAllocator =
    csmpc_mpc::phase::counting_alloc::CountingAllocator;

/// Allocations performed while running `f`, when the `alloc-count`
/// feature has installed the counting allocator; `None` otherwise.
#[cfg(feature = "alloc-count")]
fn alloc_count_of(f: impl FnOnce()) -> Option<u64> {
    use csmpc_mpc::phase::counting_alloc::allocations;
    let before = allocations();
    f();
    Some(allocations().saturating_sub(before))
}

#[cfg(not(feature = "alloc-count"))]
fn alloc_count_of(f: impl FnOnce()) -> Option<u64> {
    f();
    None
}

fn cluster_in_mode(g: &Graph, min_space: usize, seed: Seed, mode: ParallelismMode) -> Cluster {
    let cfg = MpcConfig {
        min_space,
        parallelism: mode,
        ..Default::default()
    };
    Cluster::new(cfg, g.n(), csmpc_mpc::graph_words(g), seed)
}

/// One warmup pass, then the best (minimum) of `reps` timed passes, in
/// milliseconds, along with the return value of that best pass. Best-of
/// is the standard noise filter for short kernels: scheduling jitter only
/// ever adds time — and returning the best pass's value keeps the phase
/// attributions consistent with the wall time they are reported next to,
/// instead of sampling an arbitrary (often noisier) repetition.
fn time_best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best_val = f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let val = f();
        let elapsed = t0.elapsed().as_secs_f64() * 1e3;
        if elapsed < best {
            best = elapsed;
            best_val = val;
        }
    }
    (best, best_val)
}

/// One repeatable workload pass: the input is prepared once per size by
/// the factory (`Prepare`), and each call runs a fresh cluster over it in
/// the requested mode. Keeping the input graph out of the timed closure
/// matches the scale workloads' hoisted-ingestion shape: best-of-N then
/// samples the algorithm's steady-state pass over a fixed input, not the
/// test-graph generator's allocator behavior on a cold heap.
type PreparedRunner = Box<dyn FnMut(ParallelismMode) -> PhaseTimes>;

fn luby_mis(n: usize) -> PreparedRunner {
    let g = generators::cycle(n);
    Box::new(move |mode| {
        let mut cl = cluster_in_mode(&g, 0, Seed(0xC0DE), mode);
        black_box(StableOneShotIs.run(&g, &mut cl).expect("luby-mis run"));
        cl.stats().phase
    })
}

fn cc_labels(n: usize) -> PreparedRunner {
    let half = generators::cycle(n / 2);
    let g = ops::disjoint_union(&[&half, &ops::with_fresh_names(&half, n as u64)]);
    Box::new(move |mode| {
        let mut cl = cluster_in_mode(&g, 0, Seed(0xC0DE), mode);
        let dg = DistributedGraph::distribute(&g, &mut cl).expect("distribute");
        black_box(dg.cc_labels(&mut cl).expect("cc-labels run"));
        cl.stats().phase
    })
}

fn ball_coloring(n: usize) -> PreparedRunner {
    let g = generators::random_tree(n, Seed(17));
    Box::new(move |mode| {
        // Radius-3 balls need the elevated space floor of the paper's roomy
        // regime (Δ^{O(T)} ≤ n^φ side condition).
        let mut cl = cluster_in_mode(&g, 1024, Seed(0xC0DE), mode);
        black_box(
            BallGreedyColoringMpc { radius: 3 }
                .run(&g, &mut cl)
                .expect("ball-coloring run"),
        );
        cl.stats().phase
    })
}

fn chaos_replay(n: usize) -> PreparedRunner {
    let g = ops::disjoint_union(&[
        &generators::cycle(8),
        &ops::with_fresh_names(&generators::cycle(n), 1000 + n as u64),
    ]);
    Box::new(move |mode| {
        let mut cl = cluster_in_mode(&g, 48, Seed(0xC0DE), mode);
        let plan = FaultPlan::random(Seed(0xFA57).derive(1), cl.num_machines(), 3, 1, 1);
        cl.arm_faults(plan, RecoveryPolicy::restart(8));
        black_box(StableOneShotIs.run(&g, &mut cl).expect("chaos-replay run"));
        cl.stats().phase
    })
}

fn e05_success_probability(n: usize) -> PreparedRunner {
    let g = generators::cycle(n);
    Box::new(move |mode| {
        let p = LargeIndependentSet { c: 0.5 };
        black_box(
            success_probability_with_mode(&StableOneShotIs, &p, &g, 24, Seed(4), mode)
                .expect("e05 run"),
        );
        // The harness owns its per-trial clusters, so no ledger survives to
        // read a breakdown from.
        PhaseTimes::default()
    })
}

/// Cluster + workspace for one scale workload pass: streaming ingestion
/// (never materializing the intermediate `Graph`) followed by the
/// workspace-backed sweep. The CSR build is part of the timed pass — the
/// streaming path is the thing being measured.
fn scale_pass(
    family: StreamFamily,
    mode: ParallelismMode,
    f: impl FnOnce(&mut Cluster, &csmpc_graph::CsrAdjacency, &mut ScaleWorkspace),
) -> PhaseTimes {
    let cfg = MpcConfig {
        parallelism: mode,
        ..MpcConfig::default()
    };
    let words = 2 * family.n() + 2 * family.m();
    let mut cl = Cluster::new(cfg, family.n(), words, Seed(0xC0DE));
    let mut ws = ScaleWorkspace::new();
    let csr = scale::ingest(family, &mut cl).expect("scale ingest");
    f(&mut cl, &csr, &mut ws);
    cl.stats().phase
}

fn scale_cc_labels(n: usize) -> PreparedRunner {
    Box::new(move |mode| {
        scale_pass(StreamFamily::TwoCycles { n }, mode, |cl, csr, ws| {
            black_box(scale::cc_labels(cl, csr, ws).expect("scale cc-labels"));
        })
    })
}

fn scale_luby_mis(n: usize) -> PreparedRunner {
    Box::new(move |mode| {
        scale_pass(StreamFamily::Cycle { n }, mode, |cl, csr, ws| {
            black_box(scale::luby_mis(cl, csr, Seed(3), ws).expect("scale luby-mis"));
        })
    })
}

fn scale_ball_coloring(n: usize) -> PreparedRunner {
    Box::new(move |mode| {
        let family = StreamFamily::RandomTree { n, seed: Seed(17) };
        scale_pass(family, mode, |cl, csr, ws| {
            black_box(scale::ball_coloring(cl, csr, Seed(5), ws).expect("scale ball-coloring"));
        })
    })
}

struct Sample {
    workload: &'static str,
    n: usize,
    seq_ms: f64,
    par_ms: f64,
    /// Phase breakdown of the sequential column's best pass (the same
    /// work without thread-scheduling noise in the attribution).
    phase: PhaseTimes,
    /// Heap allocations in one sequential pass (`alloc-count` only).
    allocs: Option<u64>,
}

impl Sample {
    fn speedup(&self) -> f64 {
        self.seq_ms / self.par_ms.max(1e-9)
    }

    /// Fraction of the attributed phase time spent routing messages —
    /// the figure the counting-sort fabric is meant to drive down.
    fn route_share(&self) -> f64 {
        let total = self.phase.route_ns
            + self.phase.intake_ns
            + self.phase.step_ns
            + self.phase.merge_ns
            + self.phase.checkpoint_ns;
        if total == 0 {
            return 0.0;
        }
        self.phase.route_ns as f64 / total as f64
    }
}

/// One recovery-overhead measurement: a faulted/supervised run compared
/// against its fault-free twin on the same cluster shape and seed. All
/// numbers come from the deterministic `Stats` ledger, so the table is
/// bit-stable across hosts; only wall time varies.
struct RecoverySample {
    scenario: &'static str,
    base_rounds: usize,
    rounds: usize,
    recovery_rounds: usize,
    recovery_words: u64,
    speculative_rounds: usize,
    corrupted_detected: u64,
    ms: f64,
}

impl RecoverySample {
    fn round_overhead_pct(&self) -> f64 {
        if self.base_rounds == 0 {
            return 0.0;
        }
        100.0 * (self.rounds as f64 - self.base_rounds as f64) / self.base_rounds as f64
    }
}

fn recovery_graph(n: usize) -> Graph {
    ops::disjoint_union(&[
        &generators::cycle(8),
        &ops::with_fresh_names(&generators::cycle(n), 1000 + n as u64),
    ])
}

fn luby_u64(g: &Graph, cl: &mut Cluster) -> Result<Vec<u64>, csmpc_mpc::MpcError> {
    StableOneShotIs
        .run(g, cl)
        .map(|ls| ls.into_iter().map(u64::from).collect())
}

/// The recovery-overhead suite: each scenario exercises one supervision
/// mechanism and reports what it cost relative to the fault-free run.
fn recovery_suite(n: usize, reps: usize) -> Vec<RecoverySample> {
    let g = recovery_graph(n);
    let seed = Seed(0xC0DE);
    let template = cluster_in_mode(&g, 48, seed, ParallelismMode::Sequential);
    let machines = template.num_machines();

    let mut quiet = template.clone();
    luby_u64(&g, &mut quiet).expect("quiet run");
    let base = quiet.stats().clone();

    let mut out = Vec::new();
    let mut record = |scenario: &'static str, base_rounds: usize, f: &mut dyn FnMut() -> Stats| {
        let stats = f();
        let (ms, ()) = time_best_of(reps, || {
            black_box(f());
        });
        out.push(RecoverySample {
            scenario,
            base_rounds,
            rounds: stats.rounds,
            recovery_rounds: stats.recovery_rounds,
            recovery_words: stats.recovery_words,
            speculative_rounds: stats.speculative_rounds,
            corrupted_detected: stats.corrupted_detected,
            ms,
        });
    };

    record("crash-restart", base.rounds, &mut || {
        let mut cl = template.clone();
        cl.arm_faults(
            FaultPlan::quiet(seed).crash(machines / 2, 2),
            RecoveryPolicy::restart(8),
        );
        luby_u64(&g, &mut cl).expect("crash-restart run");
        cl.stats().clone()
    });

    record("crash-backoff", base.rounds, &mut || {
        let mut cl = template.clone();
        cl.arm_faults(
            FaultPlan::quiet(seed)
                .crash(machines / 2, 2)
                .crash(machines / 2, 4),
            RecoveryPolicy::restart_with_backoff(8, 2),
        );
        luby_u64(&g, &mut cl).expect("crash-backoff run");
        cl.stats().clone()
    });

    record("straggler-speculation", base.rounds, &mut || {
        let mut cl = template.clone();
        cl.supervise(SupervisorConfig {
            deadline_rounds: 2,
            failure_threshold: 2,
        });
        cl.arm_faults(
            FaultPlan::quiet(seed).straggle(machines / 2, 2, 10),
            RecoveryPolicy::restart(8),
        );
        luby_u64(&g, &mut cl).expect("speculation run");
        cl.stats().clone()
    });

    record("degraded-salvage", base.rounds, &mut || {
        let run = run_supervised(
            &g,
            &template,
            &FaultPlan::quiet(seed).crash(machines / 2, 3),
            RecoveryPolicy::restart(0),
            SupervisorConfig::default(),
            luby_u64,
        )
        .expect("degraded run");
        assert!(run.is_degraded(), "salvage scenario did not degrade");
        run.stats
    });

    // Engine scenario: its fault-free twin is the same sum under a quiet
    // plan; corruption costs words (detected strikes are retransmitted),
    // not rounds, and the detection count is the headline number.
    let values: Vec<u64> = (1..=(64 * n as u64 / 100).max(64)).collect();
    let engine_sum = |plan: &FaultPlan| {
        let mut cl = Cluster::new(MpcConfig::with_phi(0.5), 400, 800, seed);
        exact_aggregate_sum_with_faults(&mut cl, &values, plan, RecoveryPolicy::restart(8))
            .expect("engine sum");
        cl.stats().clone()
    };
    let engine_base = engine_sum(&FaultPlan::quiet(seed));
    record("corruption-detect", engine_base.rounds, &mut || {
        engine_sum(
            &FaultPlan::quiet(seed)
                .with_corruption(300)
                .with_reordering(300),
        )
    });

    out
}

/// Extracts a bare (unquoted) numeric field from one line of the
/// baseline JSON. The perf binary both writes and reads this format, so
/// a line-oriented scan is exact — no JSON dependency needed.
fn field_f64(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Extracts a quoted string field from one line of the baseline JSON.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    rest.find('"').map(|end| &rest[..end])
}

/// One committed baseline result row.
struct BaselineRow {
    workload: String,
    n: usize,
    seq_ms: f64,
    /// Effective parallel workers the row was recorded with (rows predate
    /// per-row accounting default to the file-level count).
    par_workers: usize,
    /// Route-phase time of the row's best sequential pass, if the
    /// baseline recorded one (rows predating phase accounting have none).
    route_ns: Option<f64>,
}

struct Baseline {
    workers: usize,
    geomean: Option<f64>,
    rows: Vec<BaselineRow>,
}

fn parse_baseline(text: &str) -> Baseline {
    let mut base = Baseline {
        workers: 1,
        geomean: None,
        rows: Vec::new(),
    };
    for line in text.lines() {
        if let Some(w) = field_str(line, "workload") {
            if let (Some(n), Some(seq)) = (field_f64(line, "n"), field_f64(line, "seq_ms")) {
                base.rows.push(BaselineRow {
                    workload: w.to_string(),
                    n: n as usize,
                    seq_ms: seq,
                    par_workers: field_f64(line, "par_workers").map_or(0, |w| w as usize),
                    route_ns: field_f64(line, "route"),
                });
            }
        } else if let Some(g) = field_f64(line, "geomean_speedup") {
            base.geomean = Some(g);
        } else if let Some(w) = field_f64(line, "workers") {
            base.workers = w as usize;
        }
    }
    // Rows written before per-row worker accounting inherit the
    // file-level count.
    for row in &mut base.rows {
        if row.par_workers == 0 {
            row.par_workers = base.workers;
        }
    }
    base
}

/// Compares this run against the committed baseline. Returns
/// `(violations, warnings)`: violations fail the gate, warnings are
/// advisory (a baseline recorded on fewer effective workers cannot fairly
/// gate this run's parallel numbers, but its sequential column — always
/// one worker — still can).
fn gate_violations(
    baseline: &Baseline,
    samples: &[Sample],
    geomean: f64,
    workers: usize,
) -> (Vec<String>, Vec<String>) {
    let mut violations = Vec::new();
    let mut warnings = Vec::new();
    let mut compared = 0usize;
    let mut worker_mismatch = 0usize;
    for s in samples {
        let Some(row) = baseline
            .rows
            .iter()
            .find(|r| r.workload == s.workload && r.n == s.n)
        else {
            continue;
        };
        compared += 1;
        if row.par_workers != workers {
            worker_mismatch += 1;
        }
        let allowed = GATE_SEQ_TOLERANCE * row.seq_ms.max(GATE_SEQ_FLOOR_MS);
        if s.seq_ms > allowed {
            violations.push(format!(
                "{} n={}: seq {:.3} ms exceeds {:.3} ms ({}x baseline {:.3} ms)",
                s.workload, s.n, s.seq_ms, allowed, GATE_SEQ_TOLERANCE, row.seq_ms
            ));
        }
        // Phase-level comparison: the route phase is the fabric's own
        // number, so it gates tighter than wall time. Warn early, fail
        // only on a blowup that survives the noise floor.
        if let Some(base_route) = row.route_ns {
            let route = s.phase.route_ns as f64;
            let reference = base_route.max(GATE_ROUTE_FLOOR_NS);
            if route > GATE_ROUTE_FAIL * reference {
                violations.push(format!(
                    "{} n={}: route phase {:.0} ns exceeds {GATE_ROUTE_FAIL}x baseline \
                     {:.0} ns — the message fabric regressed",
                    s.workload, s.n, route, base_route
                ));
            } else if route > GATE_ROUTE_WARN * reference {
                warnings.push(format!(
                    "{} n={}: route phase {:.0} ns is above {GATE_ROUTE_WARN}x baseline \
                     {:.0} ns",
                    s.workload, s.n, route, base_route
                ));
            }
        }
    }
    if compared == 0 {
        violations.push(
            "baseline has no rows matching this run's workloads/sizes — \
             wrong baseline file for this configuration?"
                .to_string(),
        );
    }
    if worker_mismatch > 0 {
        warnings.push(format!(
            "{worker_mismatch} baseline row(s) were recorded with a different effective worker \
             count than this run's {workers}; sequential times still gate, parallel comparisons \
             are advisory"
        ));
    }
    if workers > 1 {
        if let Some(base_geo) = baseline.geomean {
            if baseline.workers < workers {
                warnings.push(format!(
                    "baseline was recorded on {} effective worker(s), this run has {workers}; \
                     speedup floor not enforced",
                    baseline.workers
                ));
            } else if baseline.workers > 1 {
                let floor = GATE_GEOMEAN_FRACTION * base_geo;
                if geomean < floor {
                    violations.push(format!(
                        "geomean speedup {geomean:.3}x fell below {floor:.3}x \
                         ({GATE_GEOMEAN_FRACTION} of baseline {base_geo:.3}x)"
                    ));
                }
            }
        }
    }
    (violations, warnings)
}

/// One point of the thread sweep: the scale cc-labels workload re-run in
/// a child process with `RAYON_NUM_THREADS` forced, since a process's
/// worker count is fixed at pool creation.
struct SweepPoint {
    threads: usize,
    effective_workers: usize,
    seq_ms: f64,
    par_ms: f64,
}

/// Child half of the thread sweep (`--sweep-child <n>`): run scale
/// cc-labels in both modes, assert bit-identical labels (the determinism
/// contract at this worker count), and print one parseable line.
fn run_sweep_child(n: usize) -> ! {
    let family = StreamFamily::TwoCycles { n };
    let mut labels: Vec<Vec<u64>> = Vec::new();
    let mut times = Vec::new();
    for mode in [ParallelismMode::Sequential, ParallelismMode::Parallel] {
        let (ms, lab) = time_best_of(2, || {
            let mut out = Vec::new();
            scale_pass(family, mode, |cl, csr, ws| {
                scale::cc_labels(cl, csr, ws).expect("sweep cc-labels");
                out = ws.label.clone();
            });
            out
        });
        times.push(ms);
        labels.push(lab);
    }
    assert_eq!(
        labels[0],
        labels[1],
        "parallel labels diverged from sequential at RAYON_NUM_THREADS={}",
        rayon::current_num_threads()
    );
    println!(
        "sweep-child: threads={} seq_ms={:.4} par_ms={:.4} bit_identical=true",
        rayon::current_num_threads(),
        times[0],
        times[1]
    );
    std::process::exit(0);
}

/// Parent half of the thread sweep: re-exec this binary at
/// `RAYON_NUM_THREADS` ∈ {1, 2, 4, 8} and collect the child timings.
/// Effective workers are capped at the core count — timings above it are
/// time-sliced and labeled as such, never booked as extra parallelism.
fn run_thread_sweep(n: usize, cores: usize) -> Vec<SweepPoint> {
    let exe = std::env::current_exe().expect("current_exe");
    let mut points = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let out = std::process::Command::new(&exe)
            .arg("--sweep-child")
            .arg(n.to_string())
            .env("RAYON_NUM_THREADS", threads.to_string())
            .output()
            .expect("spawn sweep child");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success(),
            "sweep child (threads={threads}) failed:\n{stdout}\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let line = stdout
            .lines()
            .find(|l| l.starts_with("sweep-child:"))
            .expect("sweep child output");
        let field = |key: &str| -> f64 {
            let pat = format!("{key}=");
            let start = line.find(&pat).expect("sweep field") + pat.len();
            let rest = &line[start..];
            let end = rest.find(' ').unwrap_or(rest.len());
            rest[..end].parse().expect("sweep field value")
        };
        points.push(SweepPoint {
            threads,
            effective_workers: threads.min(cores),
            seq_ms: field("seq_ms"),
            par_ms: field("par_ms"),
        });
    }
    points
}

/// `--alloc-gate`: the steady-state allocation gate. The second
/// repetition of scale ball-coloring at a fixed topology, with a warm
/// workspace, must perform zero heap allocations on the hot path
/// (sequential mode — parallel dispatch adds only pool control blocks,
/// documented on `par_map_range_into`). Requires the `alloc-count`
/// feature; exits 0 on pass, 1 on regression, 2 if miscompiled.
fn run_alloc_gate(smoke: bool) -> ! {
    #[cfg(not(feature = "alloc-count"))]
    {
        let _ = smoke;
        eprintln!("alloc gate: rebuild with --features alloc-count");
        std::process::exit(2);
    }
    #[cfg(feature = "alloc-count")]
    {
        use csmpc_mpc::phase::counting_alloc::allocations;
        let n = if smoke { 20_000 } else { 200_000 };
        let family = StreamFamily::RandomTree { n, seed: Seed(17) };
        let cfg = MpcConfig {
            parallelism: ParallelismMode::Sequential,
            ..MpcConfig::default()
        };
        let words = 2 * family.n() + 2 * family.m();
        let mut cl = Cluster::new(cfg, family.n(), words, Seed(0xC0DE));
        let mut ws = ScaleWorkspace::new();
        let csr = scale::ingest(family, &mut cl).expect("alloc-gate ingest");
        // Warm repetition: grows every workspace buffer to capacity.
        scale::ball_coloring(&mut cl, &csr, Seed(5), &mut ws).expect("warm rep");
        cl.reset_for_repetition();
        let before = allocations();
        scale::ball_coloring(&mut cl, &csr, Seed(5), &mut ws).expect("steady rep");
        cl.reset_for_repetition();
        let delta = allocations().saturating_sub(before);
        if delta == 0 {
            println!(
                "alloc gate: OK — steady-state ball-coloring repetition (n={n}) is allocation-free"
            );
            std::process::exit(0);
        }
        eprintln!(
            "alloc gate FAIL: second ball-coloring repetition at fixed topology (n={n}) \
             performed {delta} heap allocation(s); the hot path must be allocation-free"
        );
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // Dev iteration filter: `--only <substr>` runs just the matching
    // workload rows and skips the recovery table, thread sweep, JSON
    // write, and gates — profiling one workload without paying for the
    // whole suite.
    let only = args.iter().position(|a| a == "--only").map(|i| {
        args.get(i + 1)
            .expect("--only requires a substring")
            .clone()
    });
    if let Some(i) = args.iter().position(|a| a == "--sweep-child") {
        let n: usize = args
            .get(i + 1)
            .and_then(|a| a.parse().ok())
            .expect("--sweep-child requires a size");
        run_sweep_child(n);
    }
    if args.iter().any(|a| a == "--alloc-gate") {
        run_alloc_gate(smoke);
    }
    let gate_path = args
        .iter()
        .position(|a| a == "--gate")
        .map(|i| args.get(i + 1).expect("--gate requires a path").clone());
    // Read the baseline BEFORE any output file is written, so gating a
    // run against the file it is about to overwrite compares against the
    // committed contents, not this run's own numbers. A missing or
    // malformed baseline is a usage/setup error, not a perf regression:
    // exit 2 (distinct from the gate-failure exit 1) with the path named.
    let baseline = gate_path.as_ref().map(|p| {
        let text = match std::fs::read_to_string(p) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("perf gate: cannot read baseline {p}: {e}");
                eprintln!(
                    "perf gate: generate it with `cargo run --release -p csmpc-bench --bin perf` \
                     or point --gate at an existing BENCH_mpc.json"
                );
                std::process::exit(2);
            }
        };
        let parsed = parse_baseline(&text);
        if parsed.rows.is_empty() {
            eprintln!(
                "perf gate: baseline {p} is malformed: no result rows with \
                 workload/n/seq_ms fields could be parsed"
            );
            std::process::exit(2);
        }
        parsed
    });

    // Full runs take 9 timed passes per column: on shared runners a single
    // pass can eat a 30-50% scheduler hit, and with short kernels the
    // best-of filter needs enough draws to land one undisturbed pass per
    // row. Smoke keeps 2 — its gate tolerances absorb the extra noise.
    let reps = if smoke { 2 } else { 9 };
    // Per-column worker accounting: the sequential column is inline by
    // definition, and the parallel column's *effective* worker count is
    // the smaller of rayon's thread pool and the machine's cores — forcing
    // RAYON_NUM_THREADS=2 on a single-core runner time-slices one core and
    // must not be booked as parallelism. The column only earns the "par"
    // label (and the speedup gates only arm) with >1 effective workers.
    let threads = rayon::current_num_threads();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let seq_workers = 1usize;
    let par_workers = threads.min(cores);
    let workers = par_workers;
    let par_label = if par_workers > 1 { "par" } else { "inline" };

    type Prepare = fn(usize) -> PreparedRunner;
    let suite: [(&str, Prepare, [usize; 2]); 8] = [
        (
            "luby-mis",
            luby_mis,
            if smoke { [300, 600] } else { [1500, 4000] },
        ),
        (
            "cc-labels",
            cc_labels,
            if smoke { [300, 600] } else { [1500, 4000] },
        ),
        (
            "ball-coloring",
            ball_coloring,
            if smoke { [150, 300] } else { [600, 1500] },
        ),
        (
            "chaos-replay",
            chaos_replay,
            if smoke { [200, 400] } else { [600, 1200] },
        ),
        (
            "e05-success-probability",
            e05_success_probability,
            if smoke { [60, 120] } else { [240, 480] },
        ),
        // The million-vertex scale family: streaming CSR ingestion plus
        // workspace-backed sweeps, no intermediate Graph.
        (
            "scale-cc-labels",
            scale_cc_labels,
            if smoke {
                [10_000, 30_000]
            } else {
                [100_000, 1_000_000]
            },
        ),
        (
            "scale-luby-mis",
            scale_luby_mis,
            if smoke {
                [10_000, 30_000]
            } else {
                [100_000, 1_000_000]
            },
        ),
        (
            "scale-ball-coloring",
            scale_ball_coloring,
            if smoke {
                [10_000, 30_000]
            } else {
                [100_000, 1_000_000]
            },
        ),
    ];

    println!(
        "perf suite: {} workloads x 2 sizes, best of {reps}, seq column {seq_workers} worker, \
         {par_label} column {par_workers} effective worker(s) ({threads} thread(s) on {cores} \
         core(s)), smoke={smoke}",
        suite.len()
    );
    let mut samples = Vec::new();
    for (workload, prepare, sizes) in suite {
        if only
            .as_ref()
            .is_some_and(|f| !workload.contains(f.as_str()))
        {
            continue;
        }
        for n in sizes {
            let mut run = prepare(n);
            let (seq_ms, phase) = time_best_of(reps, || run(ParallelismMode::Sequential));
            let allocs = alloc_count_of(|| {
                run(ParallelismMode::Sequential);
            });
            let (par_ms, _) = time_best_of(reps, || run(ParallelismMode::Parallel));
            let s = Sample {
                workload,
                n,
                seq_ms,
                par_ms,
                phase,
                allocs,
            };
            println!(
                "  {:<24} n={:<6} seq {:>9.3} ms   {} {:>9.3} ms   speedup {:.2}x",
                s.workload,
                s.n,
                s.seq_ms,
                par_label,
                s.par_ms,
                s.speedup()
            );
            if !s.phase.is_zero() {
                println!(
                    "    phases: {} (route share {:.1}%)",
                    s.phase,
                    s.route_share() * 100.0
                );
            }
            if let Some(a) = s.allocs {
                println!("    allocations per seq pass: {a}");
            }
            samples.push(s);
        }
    }

    // Geometric mean weights every workload equally regardless of its
    // absolute runtime. With one effective worker the "parallel" column
    // ran inline, so the ratio measures dispatch overhead, not speedup —
    // don't report it as one.
    let geomean =
        (samples.iter().map(|s| s.speedup().ln()).sum::<f64>() / samples.len() as f64).exp();
    if par_workers > 1 {
        println!("geometric-mean speedup ({par_label}, {par_workers} workers): {geomean:.2}x");
    } else {
        println!(
            "geometric-mean speedup: not reported — parallel column ran inline \
             (1 effective worker); seq/inline ratio was {geomean:.2}x"
        );
    }
    if let Some(f) = &only {
        println!("--only {f}: skipping recovery table, thread sweep, JSON output, and gates");
        return;
    }

    // Recovery-overhead table: what each supervision mechanism costs
    // relative to the fault-free twin, straight from the Stats ledger.
    let recovery_n = if smoke { 200 } else { 600 };
    let recovery = recovery_suite(recovery_n, reps);
    println!("recovery overhead (n={recovery_n}):");
    for r in &recovery {
        println!(
            "  {:<22} rounds {:>4} (base {:>4}, +{:>5.1}%)  rec_rounds {:>3}  rec_words {:>6}  \
             spec {:>3}  corrupt {:>4}  {:>8.3} ms",
            r.scenario,
            r.rounds,
            r.base_rounds,
            r.round_overhead_pct(),
            r.recovery_rounds,
            r.recovery_words,
            r.speculative_rounds,
            r.corrupted_detected,
            r.ms
        );
    }

    // Thread sweep: the scale cc-labels workload re-run at forced
    // RAYON_NUM_THREADS ∈ {1, 2, 4, 8} in child processes (worker counts
    // are fixed per process). Each child also re-verifies the
    // sequential/parallel bit-identity contract at its thread count.
    let sweep_n = if smoke { 10_000 } else { 100_000 };
    let sweep = run_thread_sweep(sweep_n, cores);
    println!("thread sweep (scale-cc-labels, n={sweep_n}):");
    for p in &sweep {
        let label = if p.effective_workers < p.threads {
            format!("{} threads on {} core(s), time-sliced", p.threads, cores)
        } else {
            format!("{} effective worker(s)", p.effective_workers)
        };
        println!(
            "  RAYON_NUM_THREADS={:<2} ({label:<32}) seq {:>9.3} ms  par {:>9.3} ms  \
             speedup {:.2}x  bit-identical",
            p.threads,
            p.seq_ms,
            p.par_ms,
            p.seq_ms / p.par_ms.max(1e-9)
        );
    }

    let mut json = String::from("{\n");
    json.push_str("  \"suite\": \"csmpc parallel-engine baseline\",\n");
    json.push_str(&format!("  \"workers\": {workers},\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!("  \"parallel_label\": \"{par_label}\",\n"));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"best_of\": {reps},\n"));
    // With one effective worker the geomean is a dispatch-overhead ratio,
    // not a speedup; write null so downstream tooling (and the gate's
    // baseline parser) cannot mistake it for one.
    if par_workers > 1 {
        json.push_str(&format!("  \"geomean_speedup\": {geomean:.4},\n"));
    } else {
        json.push_str("  \"geomean_speedup\": null,\n");
    }
    json.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let allocs = match s.allocs {
            Some(a) => format!(", \"allocs_per_seq_pass\": {a}"),
            None => String::new(),
        };
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"n\": {}, \"seq_ms\": {:.4}, \"par_ms\": {:.4}, \
             \"speedup\": {:.4}, \"seq_workers\": {seq_workers}, \"par_workers\": {par_workers}, \
             \"phase_ns\": {{\"route\": {}, \"intake\": {}, \"step\": {}, \"merge\": {}, \
             \"checkpoint\": {}}}{allocs}}}{}\n",
            s.workload,
            s.n,
            s.seq_ms,
            s.par_ms,
            s.speedup(),
            s.phase.route_ns,
            s.phase.intake_ns,
            s.phase.step_ns,
            s.phase.merge_ns,
            s.phase.checkpoint_ns,
            if i + 1 == samples.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"recovery_overhead\": [\n");
    for (i, r) in recovery.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"n\": {recovery_n}, \"base_rounds\": {}, \
             \"rounds\": {}, \"round_overhead_pct\": {:.2}, \"recovery_rounds\": {}, \
             \"recovery_words\": {}, \"speculative_rounds\": {}, \"corrupted_detected\": {}, \
             \"ms\": {:.4}}}{}\n",
            r.scenario,
            r.base_rounds,
            r.rounds,
            r.round_overhead_pct(),
            r.recovery_rounds,
            r.recovery_words,
            r.speculative_rounds,
            r.corrupted_detected,
            r.ms,
            if i + 1 == recovery.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"thread_sweep\": {{\"workload\": \"scale-cc-labels\", \"n\": {sweep_n}, \"points\": [\n"
    ));
    for (i, p) in sweep.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {}, \"effective_workers\": {}, \"seq_ms\": {:.4}, \
             \"par_ms\": {:.4}, \"bit_identical\": true}}{}\n",
            p.threads,
            p.effective_workers,
            p.seq_ms,
            p.par_ms,
            if i + 1 == sweep.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]}\n}\n");

    // Smoke runs write a separate file so the committed full-size
    // baseline is never clobbered by a CI gate pass.
    let out = if smoke {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mpc_smoke.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mpc.json")
    };
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("FAIL: cannot write {out}: {e}");
        std::process::exit(2);
    }
    println!("wrote {out}");

    if let Some(baseline) = &baseline {
        let (violations, warnings) = gate_violations(baseline, &samples, geomean, workers);
        for w in &warnings {
            eprintln!("perf gate WARN: {w}");
        }
        if violations.is_empty() {
            println!(
                "perf gate: OK ({} rows compared against {})",
                samples.len(),
                gate_path.as_deref().unwrap_or("?")
            );
        } else {
            for v in &violations {
                eprintln!("perf gate FAIL: {v}");
            }
            std::process::exit(1);
        }
    }

    if smoke {
        if workers > 1 && geomean < 1.0 {
            eprintln!(
                "FAIL: parallel mode is slower than sequential ({geomean:.2}x geomean) \
                 with {workers} workers"
            );
            std::process::exit(1);
        }
        if workers <= 1 {
            println!(
                "note: 1 effective worker ({threads} thread(s) on {cores} core(s)) — \
                 parallel column is time-sliced/inline, speedup gate skipped"
            );
        }
    }
}
