//! Experiment runner: `experiments [all|e01|…|e13]`.

use csmpc_bench::experiments as e;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match arg.as_str() {
        "all" => e::run_all(),
        "e01" => e::e01_consecutive_path(),
        "e02" => e::e02_replicability(),
        "e03" => e::e03_simulation_graphs(),
        "e04" => e::e04_lifting(),
        "e05" => e::e05_large_is(),
        "e06" => e::e06_pairwise_luby(),
        "e07" => e::e07_derand_equiv(),
        "e08" => e::e08_sinkless(),
        "e09" => e::e09_coloring(),
        "e10" => e::e10_extendable(),
        "e11" => e::e11_connectivity(),
        "e12" => e::e12_stability_matrix(),
        "e13" => e::e13_class_landscape(),
        "e14" => e::e14_lower_bound_registry(),
        "e15" => e::e15_linial(),
        other => {
            eprintln!("unknown experiment '{other}'; use all or e01..e15");
            std::process::exit(2);
        }
    }
}
