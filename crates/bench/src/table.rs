//! Minimal fixed-width table printer for experiment reports.

/// A simple console table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table to a string.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                out.push_str(&format!("{:<width$}  ", cell, width = widths[c]));
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        out.push_str(&format!(
            "{}\n",
            "-".repeat(widths.iter().sum::<usize>() + 2 * cols)
        ));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Shorthand for building a row of heterogeneous cells.
#[macro_export]
macro_rules! cells {
    ($($x:expr),* $(,)?) => {
        &[$(format!("{}", $x)),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["333".into(), "4".into()]);
        let r = t.render();
        assert!(r.contains("333"));
        assert_eq!(r.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn rejects_wrong_width() {
        Table::new(&["a"]).row(&["1".into(), "2".into()]);
    }
}
