//! # csmpc-bench
//!
//! Experiment harness (E1–E13 of `DESIGN.md`) and Criterion benchmarks for
//! the component-stability reproduction. Run the whole suite with:
//!
//! ```sh
//! cargo run --release -p csmpc-bench --bin experiments -- all
//! ```
//!
//! or a single experiment with `-- e05` etc.

#![warn(missing_docs)]

pub mod experiments;
pub mod table;
