//! The experiment suite E1–E13 (see `DESIGN.md` §4): one function per
//! experiment, each printing a report table of *paper claim vs measured*.

use crate::table::Table;
use csmpc_algorithms::amplify::{amplify, AmplifiedLargeIs, StableOneShotIs};
use csmpc_algorithms::api::{cluster_for, roomy_cluster_for, MpcVertexAlgorithm};
use csmpc_algorithms::coloring;
use csmpc_algorithms::connectivity::distinguish_cycles;
use csmpc_algorithms::det_is::{derandomized_is, DerandomizedLargeIs, PairwiseLuby};
use csmpc_algorithms::extendable::{deterministic_extendable_mis, simulate_extendable_mis};
use csmpc_algorithms::luby::{luby_step, random_chi, MisStatus, TruncatedLubyMis};
use csmpc_algorithms::path_check::consecutive_path_verdict;
use csmpc_algorithms::sinkless::{sinkless_deterministic, sinkless_randomized};
use csmpc_core::classes::classify;
use csmpc_core::lifting::{
    b_st_conn, planted_levels, run_one_simulation, sim_size_for, LiftingPair,
};
use csmpc_core::sensitivity::{estimate_sensitivity, CenteredPair, ComponentMaxId};
use csmpc_graph::ball::{identical_ball_path_pair, radius_identical};
use csmpc_graph::rng::{Seed, SplitMix64};
use csmpc_graph::{generators, ops, Graph};
use csmpc_local::LocalParams;
use csmpc_problems::consecutive_path::is_consecutive_id_path;
use csmpc_problems::matching::EdgeProblem;
use csmpc_problems::mis::{LargeIndependentSet, Mis};
use csmpc_problems::problem::GraphProblem;
use csmpc_problems::replicability::probe;
use csmpc_problems::sinkless::SinklessOrientation;

fn heading(id: &str, title: &str, claim: &str) {
    println!("\n=== {id}: {title} ===");
    println!("paper claim: {claim}\n");
}

/// E1 — the Section 2.1 counterexample: `O(1)` MPC rounds vs `n−1` LOCAL.
pub fn e01_consecutive_path() {
    heading(
        "E1",
        "consecutive-ID path problem",
        "O(1)-round MPC algorithm exists although the problem has an \
         (n−1)-round LOCAL lower bound; hence n-dependent component-stable \
         algorithms cannot admit universal lifting",
    );
    let mut t = Table::new(&[
        "n",
        "verdict(yes)",
        "verdict(broken)",
        "MPC rounds",
        "LOCAL balls identical to radius",
    ]);
    for n in [16usize, 64, 256, 1024] {
        let yes = generators::consecutive_id_path(n);
        let no = generators::consecutive_id_path_broken(n);
        let mut cl = cluster_for(&yes, Seed(0));
        let vy = consecutive_path_verdict(&yes, &mut cl).unwrap();
        let rounds = cl.stats().rounds;
        let mut cl2 = cluster_for(&no, Seed(0));
        let vn = consecutive_path_verdict(&no, &mut cl2).unwrap();
        // The LOCAL obstruction: node 0's ball in the YES and broken
        // instances is identical up to radius n−2.
        let mut max_identical = 0usize;
        for r in 0..n {
            if radius_identical(&yes, 0, &no, 0, r) {
                max_identical = r;
            } else {
                break;
            }
        }
        t.row(crate::cells![n, vy, vn, rounds, max_identical]);
        assert!(vy && !vn);
        assert_eq!(max_identical, n - 2);
        assert_eq!(vy, is_consecutive_id_path(&yes));
    }
    t.print();
    println!(
        "\nmeasured: verdicts correct in O(1) rounds; the two instances are \
         indistinguishable to LOCAL radius n−2, so any LOCAL algorithm needs \
         n−1 rounds."
    );
}

/// E2 — replicability (Definition 9, Lemmas 10–12 + the counterexample).
pub fn e02_replicability() {
    heading(
        "E2",
        "R-replicability probes",
        "MIS (every r-radius-checkable problem) is 0-replicable; the \
         Ω(n/Δ)-IS problem is 2-replicable; the consecutive-ID-path problem \
         is NOT replicable",
    );
    let mut t = Table::new(&["problem", "R", "probes", "implication holds", "refuted"]);
    let mut rng = SplitMix64::new(Seed(0xe2));

    let mut mis_hold = 0usize;
    let probes = 40usize;
    for i in 0..probes {
        let g = generators::random_gnp(6, 0.4, Seed(i as u64));
        let labels: Vec<bool> = (0..g.n()).map(|_| rng.bit()).collect();
        if probe(&Mis, &g, &labels, &rng.bit(), 1).holds() {
            mis_hold += 1;
        }
    }
    t.row(crate::cells![
        "maximal-independent-set",
        1,
        probes,
        mis_hold,
        probes - mis_hold
    ]);

    let lis = LargeIndependentSet { c: 0.25 };
    let mut lis_hold = 0usize;
    for i in 0..probes {
        let g = generators::random_gnp(6, 0.4, Seed(100 + i as u64));
        let labels: Vec<bool> = (0..g.n()).map(|_| rng.bit()).collect();
        if probe(&lis, &g, &labels, &false, 2).holds() {
            lis_hold += 1;
        }
    }
    t.row(crate::cells![
        "large-independent-set",
        2,
        probes,
        lis_hold,
        probes - lis_hold
    ]);

    // The counterexample: all-NO labels on a YES path refute replicability.
    let g = generators::consecutive_id_path(5);
    let pr = probe(
        &csmpc_problems::consecutive_path::ConsecutiveIdPath,
        &g,
        &[false; 5],
        &false,
        2,
    );
    t.row(crate::cells![
        "consecutive-id-path",
        2,
        1,
        usize::from(pr.holds()),
        usize::from(pr.refutes())
    ]);
    t.print();
    assert_eq!(mis_hold, probes);
    assert_eq!(lis_hold, probes);
    assert!(pr.refutes());
    println!("\nmeasured: Lemmas 10–12 hold on every probe; the Section 2.1 problem is refuted as claimed.");
}

/// E3 — simulation graphs `Γ_G`: component-stable outputs are copy-identical.
pub fn e03_simulation_graphs() {
    heading(
        "E3",
        "Γ_G copy-identity (Lemma 25 mechanism)",
        "a component-stable algorithm labels every ID-sharing copy of G \
         inside Γ_G identically; unstable algorithms need not",
    );
    let g = generators::cycle(8);
    let copies = 6usize;
    let gamma = csmpc_problems::replicability::gamma_graph(&g, copies, 3);
    let mut t = Table::new(&["algorithm", "copies agree", "trials"]);
    for (name, agree) in [
        (
            "stable one-shot",
            copy_agreement(&StableOneShotIs, &gamma, &g, copies),
        ),
        (
            "unstable amplified",
            copy_agreement(&AmplifiedLargeIs { repetitions: 6 }, &gamma, &g, copies),
        ),
    ] {
        t.row(crate::cells![name, format!("{agree}/10"), 10]);
    }
    t.print();
    println!("\nmeasured: the stable algorithm agrees on all copies in every trial; amplification does not.");
}

fn copy_agreement<A: MpcVertexAlgorithm<Label = bool>>(
    alg: &A,
    gamma: &Graph,
    g: &Graph,
    copies: usize,
) -> usize {
    let mut agree = 0usize;
    for s in 0..10u64 {
        let mut cl = cluster_for(gamma, Seed(s));
        let labels = alg.run(gamma, &mut cl).unwrap();
        let per_copy: Vec<&[bool]> = (0..copies)
            .map(|c| &labels[c * g.n()..(c + 1) * g.n()])
            .collect();
        if per_copy.windows(2).all(|w| w[0] == w[1]) {
            agree += 1;
        }
    }
    agree
}

/// E4 — the lifting reduction (Lemma 27 / Theorem 14) end to end.
pub fn e04_lifting() {
    heading(
        "E4",
        "B_st-conn from a sensitive component-stable algorithm",
        "YES instances are detected via sensitivity at v_s once the planted \
         level assignment occurs (probability ≥ D^-D per simulation); NO \
         instances are never misclassified",
    );
    let mut t = Table::new(&[
        "D",
        "sensitivity ε",
        "planted hit",
        "YES verdict (sims)",
        "NO hits (sims)",
    ]);
    for d in [2usize, 3, 4] {
        let (g, c, gp, cp) = identical_ball_path_pair(d, 4);
        let pair = LiftingPair {
            g: g.clone(),
            center_g: c,
            gp: gp.clone(),
            center_gp: cp,
            d,
        };
        let cpair = CenteredPair {
            g,
            center_g: c,
            gp,
            center_gp: cp,
        };
        let eps = estimate_sensitivity(&ComponentMaxId, &cpair, 50, 8, Seed(1)).unwrap();
        let yes_h = generators::path(d + 2);
        let order: Vec<usize> = (0..d + 2).collect();
        let h = planted_levels(&order, d, d + 2).unwrap();
        let planted = run_one_simulation(
            &ComponentMaxId,
            &pair,
            &yes_h,
            0,
            d + 1,
            &h,
            sim_size_for(&pair, &yes_h),
            Seed(2),
        )
        .unwrap();
        // For the randomized run use the shortest YES instance (p = 3):
        // hit probability (d+1)^{-2} per simulation, so ~40 expected hits.
        let yes_short = generators::path(3);
        let sims = 40 * (d + 1).pow(2);
        let yes = b_st_conn(&ComponentMaxId, &pair, &yes_short, 0, 2, sims, Seed(3)).unwrap();
        let a = generators::path(3);
        let b2 = ops::with_fresh_names(&generators::path(3), 50);
        let no_h = ops::disjoint_union(&[&a, &b2]);
        let no = b_st_conn(&ComponentMaxId, &pair, &no_h, 0, 5, 100, Seed(4)).unwrap();
        t.row(crate::cells![
            d,
            eps,
            planted,
            format!("{:?} ({}/{})", yes.verdict, yes.hits, yes.simulations),
            format!("{}/{}", no.hits, no.simulations)
        ]);
        assert!(planted);
        assert_eq!(no.hits, 0);
    }
    t.print();
    println!("\nmeasured: the reduction behaves exactly as Lemma 27 requires at every tested D.");
}

/// E5 — Theorem 5: the randomized stable/unstable separation.
pub fn e05_large_is() {
    heading(
        "E5",
        "Ω(n/Δ) independent set (Theorem 5)",
        "one-shot (stable) succeeds only with constant probability at the \
         expectation threshold; Θ(log n)-fold amplification (unstable) \
         succeeds w.h.p. in O(1) rounds; Theorem 53 derandomizes it",
    );
    let aggressive = LargeIndependentSet { c: 2.0 / 3.0 };
    let guarantee = LargeIndependentSet { c: 0.2 };
    let trials = 200u64;
    let mut t = Table::new(&[
        "n",
        "stable success",
        "stable rounds",
        "amplified success",
        "amplified rounds",
        "det size ≥ need",
        "det rounds",
    ]);
    for n in [60usize, 120, 240, 480] {
        let g = generators::cycle(n);
        let rate = |alg: &dyn Fn(u64) -> (Vec<bool>, usize), p: &LargeIndependentSet| {
            let mut ok = 0u64;
            let mut rounds = 0usize;
            for s in 0..trials {
                let (labels, r) = alg(s);
                rounds = r;
                if p.is_valid(&g, &labels) {
                    ok += 1;
                }
            }
            (ok as f64 / trials as f64, rounds)
        };
        let (ps, rs) = rate(
            &|s| {
                let mut cl = cluster_for(&g, Seed(s));
                let l = StableOneShotIs.run(&g, &mut cl).unwrap();
                (l, cl.stats().rounds)
            },
            &aggressive,
        );
        let (pa, ra) = rate(
            &|s| {
                let mut cl = cluster_for(&g, Seed(s));
                let l = AmplifiedLargeIs { repetitions: 0 }
                    .run(&g, &mut cl)
                    .unwrap();
                (l, cl.stats().rounds)
            },
            &aggressive,
        );
        let mut cl = cluster_for(&g, Seed(0));
        let det = DerandomizedLargeIs.run(&g, &mut cl).unwrap();
        let need = guarantee.threshold(n, 2);
        let det_ok = det.iter().filter(|&&b| b).count() >= need;
        t.row(crate::cells![
            n,
            format!("{ps:.3}"),
            rs,
            format!("{pa:.3}"),
            ra,
            det_ok,
            cl.stats().rounds
        ]);
        assert!(det_ok);
        assert!(pa > ps);
    }
    t.print();
    println!("\nmeasured: amplification dominates at every n with O(1) rounds; the deterministic guarantee always holds.");
}

/// E6 — Claim 52 / Theorem 53: pairwise Luby and its exact derandomization.
pub fn e06_pairwise_luby() {
    heading(
        "E6",
        "pairwise-independent Luby step",
        "E[|IS|] ≥ n·(T/p)·(1−Δ·T/p) ≈ n/(4Δ); the method of conditional \
         expectations finds a seed achieving at least the expectation",
    );
    let mut t = Table::new(&[
        "graph",
        "n",
        "Δ",
        "Claim52 bound",
        "E[|IS|]",
        "MCE achieved",
        "seed (a,b)",
    ]);
    let cases: Vec<(&str, Graph)> = vec![
        ("cycle", generators::cycle(60)),
        ("4-regular", generators::random_regular(40, 4, Seed(1))),
        ("tree", generators::random_tree(50, Seed(2))),
        ("gnp(0.1)", generators::random_gnp(40, 0.1, Seed(3))),
        ("star", generators::star(30)),
    ];
    for (name, g) in cases {
        let inst = PairwiseLuby::for_graph(&g);
        let mean: f64 = (0..inst.p)
            .map(|a| inst.expected_size_given_a(&g, a))
            .sum::<f64>()
            / inst.p as f64;
        let run = derandomized_is(&g);
        t.row(crate::cells![
            name,
            g.n(),
            g.max_degree(),
            format!("{:.2}", inst.claim52_lower_bound(&g)),
            format!("{mean:.2}"),
            run.achieved,
            format!("{:?}", run.seed)
        ]);
        assert!(mean + 1e-9 >= inst.claim52_lower_bound(&g));
        assert!(run.achieved as f64 + 1e-9 >= run.prior_expectation);
    }
    t.print();
    println!("\nmeasured: the pairwise bound and the MCE guarantee hold on every family.");
}

/// E7 — Theorem 22 / Lemmas 54–55: DetMPC = RandMPC at laptop scale.
pub fn e07_derand_equiv() {
    heading(
        "E7",
        "amplify-then-fix-seed derandomization",
        "amplification drives failure below 1/|G_{n,Δ}|, after which a \
         universal seed exists and can be hard-coded (non-uniform, \
         non-explicit, component-unstable)",
    );
    let family: Vec<Graph> = csmpc_graph::enumerate::family_up_to(4, 3).collect();
    println!("family G_{{4,3}}: {} graphs", family.len());
    let mut t = Table::new(&["phase budget", "universal seeds / 512", "first"]);
    for phases in [1usize, 2, 3] {
        let alg = TruncatedLubyMis { phases };
        let (first, good) = csmpc_derand::mce::find_good_seed(512, |s| {
            family.iter().all(|g| {
                let params = LocalParams::exact(g.n(), g.max_degree(), Seed(s));
                let status = alg.statuses(g, &params);
                if status.contains(&MisStatus::Undecided) {
                    return false;
                }
                let labels: Vec<bool> = status.iter().map(|&x| x == MisStatus::In).collect();
                Mis.is_valid(g, &labels)
            })
        });
        t.row(crate::cells![phases, good, format!("{first:?}")]);
    }
    t.print();

    println!("\namplification decay on cycle(30), threshold n/3:");
    let g = generators::cycle(30);
    let mut t2 = Table::new(&["repetitions", "success rate"]);
    for reps in [1usize, 2, 4, 8, 16] {
        let trials = 300u64;
        let ok = (0..trials)
            .filter(|&t| {
                let out = amplify(
                    reps,
                    |r| {
                        let params =
                            LocalParams::exact(g.n(), g.max_degree(), Seed(t).derive(r as u64));
                        luby_step(&g, &random_chi(&g, &params))
                    },
                    |labels| labels.iter().filter(|&&b| b).count() as f64,
                );
                out.labels.iter().filter(|&&b| b).count() >= 10
            })
            .count();
        t2.row(crate::cells![
            reps,
            format!("{:.3}", ok as f64 / trials as f64)
        ]);
    }
    t2.print();
    println!("\nmeasured: failure decays geometrically in the repetition count; universal seeds appear once the per-seed failure rate is small enough.");
}

/// E8 — sinkless orientation (Theorems 38–39).
pub fn e08_sinkless() {
    heading(
        "E8",
        "sinkless orientation via constructive LLL",
        "valid orientations on d-regular graphs (d ≥ 4) in O(log n) \
         Moser–Tardos rounds; deterministically after a global seed search \
         (component-unstable)",
    );
    let mut t = Table::new(&[
        "n",
        "d",
        "valid",
        "MT rounds (max of 5)",
        "det seed",
        "det valid",
    ]);
    for (n, d) in [(32usize, 4usize), (128, 4), (512, 4), (128, 5), (128, 6)] {
        let mut worst = 0usize;
        let mut all_valid = true;
        for s in 0..5u64 {
            let g = generators::random_regular(n, d, Seed(s));
            let run = sinkless_randomized(&g, Seed(100 + s)).unwrap();
            worst = worst.max(run.rounds);
            all_valid &= SinklessOrientation.validate(&g, &run.orientation).is_ok();
        }
        let g = generators::random_regular(n, d, Seed(7));
        let (det, seed) = sinkless_deterministic(&g, 64).unwrap();
        let det_ok = SinklessOrientation.validate(&g, &det.orientation).is_ok();
        t.row(crate::cells![n, d, all_valid, worst, seed, det_ok]);
        assert!(all_valid && det_ok);
    }
    t.print();
    println!(
        "\nmeasured: validity always; resampling rounds grow slowly with n and shrink with d."
    );
}

/// E9 — colorings (Theorems 40–43).
pub fn e09_coloring() {
    heading(
        "E9",
        "edge & vertex coloring",
        "forests admit deterministic Δ-edge-colorings (beating the stable \
         (2Δ−2) conditional bound); triangle-free graphs need only o(Δ) \
         colors; Cole–Vishkin 3-colors cycles in O(log* n) steps",
    );
    let mut t = Table::new(&["forest Δ", "colors used", "stable bound 2Δ−2"]);
    for legs in [3usize, 5, 8] {
        let g = generators::caterpillar(8, legs);
        let colors = coloring::forest_edge_coloring(&g);
        let used = colors.iter().copied().max().unwrap() + 1;
        let delta = g.max_degree();
        t.row(crate::cells![delta, used, 2 * delta - 2]);
        assert!(used <= delta);
    }
    t.print();

    let mut t2 = Table::new(&["cycle n", "CV steps", "log*(n)+const", "colors"]);
    for n in [16usize, 256, 4096, 65536] {
        let g = generators::shuffle_identity(&generators::cycle(n), 0, 0, Seed(n as u64));
        let run = coloring::cole_vishkin_cycle(&g);
        let palette = run.colors.iter().copied().max().unwrap() + 1;
        t2.row(crate::cells![
            n,
            run.rounds,
            coloring::log_star(n as f64) + 4,
            palette
        ]);
        assert!(coloring::is_proper_ring_coloring(n, &run.colors));
        assert!(palette <= 3);
    }
    t2.print();

    let mut t3 = Table::new(&["bipartite n", "Δ", "colors used", "Δ/ln Δ target"]);
    for n in [40usize, 80, 160] {
        let g = generators::random_bipartite(n, 0.4, Seed(9));
        let colors = coloring::bipartite_two_coloring(&g).unwrap();
        let delta = g.max_degree();
        let target = (delta as f64 / (delta.max(3) as f64).ln()).ceil();
        t3.row(crate::cells![
            n,
            delta,
            colors.iter().max().unwrap() + 1,
            target
        ]);
    }
    t3.print();
    println!("\nmeasured: all palettes as claimed; CV steps track log* n.");
}

/// E10 — extendable algorithms (Theorems 45–46).
pub fn e10_extendable() {
    heading(
        "E10",
        "extendable-algorithm simulation",
        "a t-phase extendable LOCAL algorithm runs in O(log t) MPC rounds; \
         undecided residue shrinks with t; a PRG-style seed search \
         derandomizes it",
    );
    let g = generators::random_gnp(160, 0.03, Seed(5));
    let mut t = Table::new(&["phases t", "MPC rounds", "undecided ⊥", "MIS valid"]);
    for phases in [1usize, 2, 4, 8, 16] {
        let mut cl = roomy_cluster_for(&g, Seed(6), 1 << 14);
        let run = simulate_extendable_mis(&g, &mut cl, phases).unwrap();
        let valid = Mis.is_valid(&g, &run.labels);
        t.row(crate::cells![
            phases,
            cl.stats().rounds,
            run.undecided,
            valid
        ]);
        assert!(valid);
    }
    t.print();

    let mut cl = roomy_cluster_for(&g, Seed(7), 1 << 14);
    let det = deterministic_extendable_mis(&g, &mut cl, 6, 32).unwrap();
    println!(
        "\ndeterministic run: seed {} of {} ({} good seeds), valid MIS: {}",
        det.seed_index,
        det.seed_space,
        det.good_seeds,
        Mis.is_valid(&g, &det.labels)
    );
    println!("measured: rounds grow logarithmically in t; residue vanishes; seed search succeeds.");
}

/// E11 — the connectivity-conjecture baseline.
pub fn e11_connectivity() {
    heading(
        "E11",
        "1 cycle vs 2 cycles",
        "the best known algorithm takes Θ(log n) rounds (the conjecture \
         says no o(log n) algorithm exists); verdicts are always correct",
    );
    let mut t = Table::new(&["n", "verdict(1)", "verdict(2)", "iterations", "log2(n)"]);
    for n in [64usize, 256, 1024, 4096, 16384] {
        let g1 = generators::cycle(n);
        let mut c1 = cluster_for(&g1, Seed(1));
        let (v1, it1) = distinguish_cycles(&g1, &mut c1).unwrap();
        let g2 = generators::two_cycles(n);
        let mut c2 = cluster_for(&g2, Seed(1));
        let (v2, _) = distinguish_cycles(&g2, &mut c2).unwrap();
        t.row(crate::cells![
            n,
            format!("{v1:?}"),
            format!("{v2:?}"),
            it1,
            (n as f64).log2() as usize
        ]);
    }
    t.print();
    println!(
        "\nmeasured: iterations track log2(n); the conjecture's baseline scaling is reproduced."
    );
}

/// E12 — the stability classification matrix (Definition 13 verifier).
pub fn e12_stability_matrix() {
    heading(
        "E12",
        "stability classification of every algorithm",
        "ball-simulation / one-shot algorithms are component-stable; \
         amplification and global seed agreement are component-unstable",
    );
    let comp = generators::cycle(10);
    let mut t = Table::new(&["algorithm", "declared det.", "class", "witnesses"]);
    let placements = vec![
        classify(&StableOneShotIs, &comp, 10, Seed(1)).unwrap(),
        classify(&AmplifiedLargeIs { repetitions: 8 }, &comp, 14, Seed(2)).unwrap(),
        classify(&DerandomizedLargeIs, &comp, 14, Seed(3)).unwrap(),
        classify(&ComponentMaxId, &comp, 10, Seed(4)).unwrap(),
        classify(
            &csmpc_algorithms::path_check::ConsecutivePathCheck,
            &comp,
            10,
            Seed(5),
        )
        .unwrap(),
    ];
    for p in &placements {
        t.row(crate::cells![
            p.algorithm,
            "-",
            p.class,
            p.report.witnesses.len()
        ]);
    }
    t.print();
    println!(
        "\nmeasured: the matrix matches the paper's assertions about which techniques are stable."
    );
}

/// E13 — the Section 2.5 class landscape on one shared instance.
pub fn e13_class_landscape() {
    heading(
        "E13",
        "class landscape (Theorems 19–22, 29)",
        "S-DetMPC ⊊ DetMPC and S-RandMPC ⊊ RandMPC (conditionally); \
         unstable DetMPC = RandMPC via amplification + seed fixing",
    );
    let g = generators::cycle(240);
    let problem = LargeIndependentSet { c: 0.2 };
    let mut t = Table::new(&["class", "representative", "rounds", "valid"]);

    let mut cl = cluster_for(&g, Seed(1));
    let stable_rand = StableOneShotIs.run(&g, &mut cl).unwrap();
    t.row(crate::cells![
        "S-RandMPC",
        "one-shot Luby",
        cl.stats().rounds,
        problem.is_valid(&g, &stable_rand)
    ]);

    let mut cl = roomy_cluster_for(&g, Seed(2), 1 << 14);
    let stable_sim = simulate_extendable_mis(&g, &mut cl, 4).unwrap();
    t.row(crate::cells![
        "S-RandMPC (ball sim)",
        "truncated Luby MIS",
        cl.stats().rounds,
        Mis.is_valid(&g, &stable_sim.labels)
    ]);

    let mut cl = cluster_for(&g, Seed(3));
    let unstable_rand = AmplifiedLargeIs { repetitions: 0 }
        .run(&g, &mut cl)
        .unwrap();
    t.row(crate::cells![
        "RandMPC (unstable)",
        "amplified Luby",
        cl.stats().rounds,
        problem.is_valid(&g, &unstable_rand)
    ]);

    let mut cl = cluster_for(&g, Seed(4));
    let unstable_det = DerandomizedLargeIs.run(&g, &mut cl).unwrap();
    t.row(crate::cells![
        "DetMPC (unstable)",
        "pairwise-MCE Luby",
        cl.stats().rounds,
        problem.is_valid(&g, &unstable_det)
    ]);
    t.print();
    println!(
        "\nmeasured: every class containment of Section 2.5 is witnessed by a \
         concrete algorithm; the unstable deterministic algorithm matches the \
         randomized round counts (Theorem 22's collapse)."
    );
}

/// E14 — the conditional lower-bound registry (Theorem 14 applications)
/// with Definition 26 constraint checks.
pub fn e14_lower_bound_registry() {
    heading(
        "E14",
        "lifted conditional lower bounds",
        "each registered LOCAL bound T(N, Δ) is a constrained function \
         (Definition 26) and lifts to Ω(log T) rounds for component-stable \
         MPC, conditioned on the connectivity conjecture",
    );
    let mut t = Table::new(&[
        "problem",
        "LOCAL T(N,Δ)",
        "det-only",
        "constrained",
        "lifted @ n=1e9, Δ=16",
        "statement",
    ]);
    for b in csmpc_core::lower_bounds::registry() {
        let ok = b.local_t.check_constrained(4.0).is_ok();
        t.row(crate::cells![
            b.problem,
            b.local_t.name,
            b.deterministic_only,
            ok,
            format!("{:.2}", b.lifted_rounds(1e9, 16.0)),
            b.lifted_statement
        ]);
        assert!(ok);
    }
    t.print();
    println!("\nmeasured: every registered T passes the Definition 26 probes; non-constrained counterexamples (√N, the footnote-9 tower) are rejected by the same checker (see unit tests).");
}

/// E15 — Linial color reduction: the O(log* n) name-space-reduction step
/// of Theorem 45 and the Lin92 machinery behind Theorem 41's final stage.
pub fn e15_linial() {
    heading(
        "E15",
        "Linial color reduction and power-graph name reduction",
        "any poly(n)-size ID space collapses to O(Δ² polylog Δ) colors in \
         O(log* n) deterministic LOCAL rounds; coloring G^{2t} shrinks \
         names to O(t log Δ) bits for the Theorem 45 simulation",
    );
    use csmpc_algorithms::linial::{
        linial_coloring, power_graph_coloring, reduce_to_delta_plus_one,
    };
    let mut t = Table::new(&["graph", "ID space", "steps", "palette", "after Δ+1 sweep"]);
    for (name, n, scale) in [
        ("cycle", 64usize, 1u64),
        ("cycle", 4096, 1_000_003),
        ("4-regular", 128, 999_983),
    ] {
        let base = if name == "cycle" {
            generators::cycle(n)
        } else {
            generators::random_regular(n, 4, Seed(1))
        };
        let g = ops::relabel_ids(&base, |v, _| csmpc_graph::NodeId(v as u64 * scale + 7));
        let run = linial_coloring(&g);
        let final_colors = reduce_to_delta_plus_one(&g, &run.colors, run.palette);
        let used = final_colors
            .iter()
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        t.row(crate::cells![
            format!("{name}({n})"),
            (n as u64 - 1) * scale + 8,
            run.steps,
            run.palette,
            used
        ]);
        assert!(used <= g.max_degree() + 1);
    }
    t.print();

    let g = ops::relabel_ids(&generators::cycle(40), |v, _| {
        csmpc_graph::NodeId(v as u64 * 999_983 + 7)
    });
    let pg = power_graph_coloring(&g, 2);
    println!(
        "\npower-graph (t = 2) name reduction on cycle(40): palette {} \
         (IDs now need {} bits instead of {} bits)",
        pg.palette,
        64 - pg.palette.leading_zeros(),
        64 - (39u64 * 999_983 + 8).leading_zeros()
    );
    println!("measured: steps stay log*-flat while the ID space grows 10^6-fold; palettes land in the Δ² regime.");
}

/// Runs every experiment in order.
pub fn run_all() {
    e01_consecutive_path();
    e02_replicability();
    e03_simulation_graphs();
    e04_lifting();
    e05_large_is();
    e06_pairwise_luby();
    e07_derand_equiv();
    e08_sinkless();
    e09_coloring();
    e10_extendable();
    e11_connectivity();
    e12_stability_matrix();
    e13_class_landscape();
    e14_lower_bound_registry();
    e15_linial();
}
