//! Differential tests for the flat `BallWorkspace` hot path against the
//! retained `BTreeMap` reference implementation, plus the epoch regression
//! test: a workspace reused across different graphs must never leak
//! visitation state from an earlier call.

use csmpc_graph::ball::{self, BallWorkspace};
use csmpc_graph::{generators, CsrAdjacency, Graph, GraphBuilder};
use proptest::collection;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Builds an arbitrary (possibly disconnected) legal graph on `n`
/// sequential nodes from raw endpoint draws, deduplicating edges.
fn build_graph(n: usize, raw_edges: &[(usize, usize)]) -> Graph {
    let mut b = GraphBuilder::with_sequential_nodes(n);
    let mut seen = BTreeSet::new();
    for &(a, c) in raw_edges {
        let (u, w) = (a % n, c % n);
        let (u, w) = (u.min(w), u.max(w));
        if u != w && seen.insert((u, w)) {
            b.add_edge(u, w);
        }
    }
    b.build().expect("sequential-node graph is legal")
}

/// Strategy for the raw material of [`build_graph`].
fn edges_strategy() -> collection::VecStrategy<(std::ops::Range<usize>, std::ops::Range<usize>)> {
    collection::vec((0usize..10_000, 0usize..10_000), 0..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn workspace_ball_matches_reference(
        n in 1usize..=28,
        edges in edges_strategy(),
        v_raw in 0usize..10_000,
        r in 0usize..6,
    ) {
        let g = build_graph(n, &edges);
        let v = v_raw % g.n();
        let got = ball::ball(&g, v, r);
        let want = ball::reference::ball(&g, v, r);
        // Same node set, ids, names, edges, and center — the tuples are
        // compared structurally, so this is bit-exact agreement.
        prop_assert_eq!(got, want);
    }

    #[test]
    fn workspace_csr_ball_matches_reference(
        n in 1usize..=28,
        edges in edges_strategy(),
        v_raw in 0usize..10_000,
        r in 0usize..6,
    ) {
        let g = build_graph(n, &edges);
        let v = v_raw % g.n();
        let csr = CsrAdjacency::from_graph(&g);
        let mut ws = BallWorkspace::new();
        prop_assert_eq!(ws.ball_csr(&g, &csr, v, r), ball::reference::ball(&g, v, r));
    }

    #[test]
    fn workspace_radius_identical_matches_reference(
        dims in (1usize..=28, 1usize..=28),
        edge_sets in (edges_strategy(), edges_strategy()),
        centers in (0usize..10_000, 0usize..10_000),
        d in 0usize..5,
    ) {
        let g1 = build_graph(dims.0, &edge_sets.0);
        let g2 = build_graph(dims.1, &edge_sets.1);
        let c1 = centers.0 % g1.n();
        let c2 = centers.1 % g2.n();
        prop_assert_eq!(
            ball::radius_identical(&g1, c1, &g2, c2, d),
            ball::reference::radius_identical(&g1, c1, &g2, c2, d)
        );
        // Reflexivity survives the workspace path too.
        prop_assert!(ball::radius_identical(&g1, c1, &g1, c1, d));
    }
}

/// Epoch regression: one workspace serving graphs of very different sizes,
/// in both directions (large → small → large), produces exactly what a
/// fresh workspace produces. A stale `stamp`/`dist`/`new_index` slot from
/// the earlier, larger graph would corrupt the smaller graph's ball (or
/// vice versa after regrowth).
#[test]
fn workspace_reuse_across_graphs_never_leaks_state() {
    let big = generators::random_tree(120, csmpc_graph::rng::Seed(41));
    let small = generators::cycle(5);
    let medium = generators::random_tree(37, csmpc_graph::rng::Seed(7));
    let mut shared = BallWorkspace::new();
    let schedule: &[(&Graph, usize, usize)] = &[
        (&big, 60, 3),
        (&small, 2, 1),
        (&big, 0, 2),
        (&medium, 36, 4),
        (&small, 4, 9),
        (&big, 119, 1),
        (&medium, 0, 0),
    ];
    for &(g, v, r) in schedule {
        let got = shared.ball(g, v, r);
        let fresh = BallWorkspace::new().ball(g, v, r);
        assert_eq!(got, fresh, "reused workspace diverged at v={v} r={r}");
        assert_eq!(got, ball::reference::ball(g, v, r));
    }
    // Radius-identity calls interleaved with ball calls share the same
    // scratch buffers; they must be equally immune to reuse.
    assert!(shared.radius_identical(&big, 3, &big, 3, 2));
    assert_eq!(
        shared.radius_identical(&small, 1, &medium, 1, 2),
        ball::reference::radius_identical(&small, 1, &medium, 1, 2)
    );
    let after = shared.ball(&small, 0, 2);
    assert_eq!(after, ball::reference::ball(&small, 0, 2));
}

/// The thread-local convenience path and an owned workspace agree.
#[test]
fn thread_workspace_matches_owned() {
    let g = generators::random_tree(50, csmpc_graph::rng::Seed(13));
    let mut owned = BallWorkspace::new();
    for v in [0usize, 7, 49] {
        assert_eq!(ball::ball(&g, v, 3), owned.ball(&g, v, 3));
    }
    assert_eq!(
        ball::with_thread_workspace(|ws| ws.ball(&g, 11, 2)),
        owned.ball(&g, 11, 2)
    );
}
