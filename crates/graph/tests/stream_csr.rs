//! Property tests: the streaming ingestion path
//! (`StreamFamily::stream_csr`, i.e. `CsrAdjacency::from_edges`) is
//! bit-identical to the materialized `Graph` → `CsrAdjacency::from_graph`
//! path for every seeded family, at arbitrary sizes and seeds.
//!
//! Thread counts cannot appear as a proptest dimension (the worker count
//! is resolved once per process), so ci.sh runs this suite under forced
//! `RAYON_NUM_THREADS=4` via the workspace test run plus the equivalence
//! step; the parallel row-sort inside `from_edges` is a pure per-row
//! function either way.

use csmpc_graph::{CsrAdjacency, StreamFamily};
use proptest::prelude::*;

fn assert_stream_matches(fam: StreamFamily) {
    let streamed = fam.stream_csr();
    let oracle = CsrAdjacency::from_graph(&fam.materialize());
    assert_eq!(
        streamed,
        oracle,
        "family {} n={} diverged from the materialized path",
        fam.name(),
        fam.n()
    );
}

proptest! {
    #[test]
    fn path_streams_identically(n in 0usize..400) {
        assert_stream_matches(StreamFamily::Path { n });
    }

    #[test]
    fn cycle_streams_identically(n in 3usize..400) {
        assert_stream_matches(StreamFamily::Cycle { n });
    }

    #[test]
    fn two_cycles_streams_identically(half in 3usize..200) {
        assert_stream_matches(StreamFamily::TwoCycles { n: 2 * half });
    }

    #[test]
    fn star_streams_identically(leaves in 0usize..400) {
        assert_stream_matches(StreamFamily::Star { leaves });
    }

    #[test]
    fn hypercube_streams_identically(dim in 0u32..9) {
        assert_stream_matches(StreamFamily::Hypercube { dim });
    }

    #[test]
    fn random_tree_streams_identically(n in 0usize..300, seed in 0u64..1_000_000_000_000) {
        assert_stream_matches(StreamFamily::RandomTree {
            n,
            seed: csmpc_graph::rng::Seed(seed),
        });
    }
}
