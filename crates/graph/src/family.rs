//! Graph families and the *normal family* property (paper Definition 7).
//!
//! A family is **normal** when it is hereditary (closed under node removal)
//! and closed under disjoint union. The lifting theorem (Theorem 14) only
//! applies to normal families — e.g. *forests* are normal while *trees* are
//! not, which is why the paper's matching lower bound transfers to forests
//! but not trees.

use crate::graph::Graph;
use crate::ops::{disjoint_union, induced, with_fresh_names};
use crate::rng::{Seed, SplitMix64};

/// A (membership-testable) family of graphs.
///
/// Implementors supply [`GraphFamily::contains`]; the provided
/// [`GraphFamily::check_normal_on`] empirically probes hereditariness and
/// union-closure on concrete witnesses.
pub trait GraphFamily {
    /// Human-readable family name.
    fn name(&self) -> &str;

    /// Membership test.
    fn contains(&self, g: &Graph) -> bool;

    /// Empirically checks the two normality axioms on `samples` member
    /// graphs: every induced subgraph obtained by deleting random subsets
    /// stays in the family, and disjoint unions of members stay in the
    /// family. Returns the first counterexample description, if any.
    ///
    /// This cannot *prove* normality (that is mathematics), but it is a
    /// falsifier: the paper's claim "trees are not normal" is caught by it.
    fn check_normal_on(&self, samples: &[Graph], seed: Seed) -> Result<(), String>
    where
        Self: Sized,
    {
        let mut rng = SplitMix64::new(seed.derive(0xfa11));
        for (i, g) in samples.iter().enumerate() {
            if !self.contains(g) {
                return Err(format!("sample {i} is not in family {}", self.name()));
            }
            // Hereditary probes: random subsets.
            for t in 0..4 {
                let keep: Vec<usize> = (0..g.n()).filter(|_| rng.bit()).collect();
                let (sub, _) = induced(g, &keep);
                if !self.contains(&sub) {
                    return Err(format!(
                        "family {} not hereditary: sample {i}, probe {t} \
                         (kept {} of {} nodes)",
                        self.name(),
                        keep.len(),
                        g.n()
                    ));
                }
            }
        }
        // Union-closure probes: pair up samples.
        for (i, a) in samples.iter().enumerate() {
            for (j, b) in samples.iter().enumerate() {
                let b2 = with_fresh_names(b, 1_000_000 + (i * samples.len() + j) as u64 * 10_000);
                let u = disjoint_union(&[a, &b2]);
                if !self.contains(&u) {
                    return Err(format!(
                        "family {} not union-closed: samples {i} ⊎ {j}",
                        self.name()
                    ));
                }
            }
        }
        Ok(())
    }
}

/// The family of all graphs — trivially normal, the paper's "worst case".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllGraphs;

impl GraphFamily for AllGraphs {
    fn name(&self) -> &str {
        "all graphs"
    }
    fn contains(&self, _g: &Graph) -> bool {
        true
    }
}

/// Forests (acyclic graphs) — normal; the family the paper's tree lower
/// bounds actually lift to.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Forests;

impl GraphFamily for Forests {
    fn name(&self) -> &str {
        "forests"
    }
    fn contains(&self, g: &Graph) -> bool {
        // Acyclic iff m = n - (#components).
        g.m() + g.component_count() == g.n()
    }
}

/// Trees (connected forests) — **not** normal: not closed under disjoint
/// union (and the empty probe of hereditariness disconnects them). Included
/// to demonstrate the paper's forests-vs-trees distinction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Trees;

impl GraphFamily for Trees {
    fn name(&self) -> &str {
        "trees"
    }
    fn contains(&self, g: &Graph) -> bool {
        !g.is_empty() && g.is_connected() && g.m() + 1 == g.n()
    }
}

/// Graphs of maximum degree at most `max_degree` — normal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxDegreeAtMost {
    /// The degree cap.
    pub max_degree: usize,
}

impl GraphFamily for MaxDegreeAtMost {
    fn name(&self) -> &str {
        "bounded-degree graphs"
    }
    fn contains(&self, g: &Graph) -> bool {
        g.max_degree() <= self.max_degree
    }
}

/// Triangle-free graphs — normal; the input family of Theorem 43.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TriangleFree;

impl GraphFamily for TriangleFree {
    fn name(&self) -> &str {
        "triangle-free graphs"
    }
    fn contains(&self, g: &Graph) -> bool {
        for (u, v) in g.edges() {
            // Intersect sorted neighbor lists.
            let (mut i, mut j) = (0usize, 0usize);
            let (a, b) = (g.neighbors(u), g.neighbors(v));
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => return false,
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn forest_samples() -> Vec<Graph> {
        vec![
            generators::path(5),
            generators::random_tree(8, Seed(1)),
            generators::random_forest(&[3, 4], Seed(2)),
            generators::star(4),
        ]
    }

    #[test]
    fn forests_are_normal() {
        assert!(Forests.check_normal_on(&forest_samples(), Seed(3)).is_ok());
    }

    #[test]
    fn trees_are_not_normal() {
        let samples = vec![generators::path(4), generators::star(3)];
        let err = Trees.check_normal_on(&samples, Seed(4)).unwrap_err();
        assert!(
            err.contains("not hereditary") || err.contains("not union-closed"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn all_graphs_normal() {
        let samples = vec![generators::cycle(5), generators::complete(4)];
        assert!(AllGraphs.check_normal_on(&samples, Seed(5)).is_ok());
    }

    #[test]
    fn bounded_degree_normal() {
        let fam = MaxDegreeAtMost { max_degree: 4 };
        let samples = vec![
            generators::cycle(6),
            generators::circulant(10, 4),
            generators::path(3),
        ];
        assert!(fam.check_normal_on(&samples, Seed(6)).is_ok());
    }

    #[test]
    fn triangle_free_detects_triangles() {
        assert!(!TriangleFree.contains(&generators::complete(3)));
        assert!(TriangleFree.contains(&generators::cycle(4)));
        assert!(TriangleFree.contains(&generators::random_bipartite(12, 0.6, Seed(7))));
    }

    #[test]
    fn triangle_free_normal() {
        let samples = vec![
            generators::cycle(5),
            generators::random_bipartite(10, 0.5, Seed(8)),
            generators::path(6),
        ];
        assert!(TriangleFree.check_normal_on(&samples, Seed(9)).is_ok());
    }

    #[test]
    fn forest_membership() {
        assert!(Forests.contains(&generators::path(4)));
        assert!(Forests.contains(&generators::random_forest(&[2, 5], Seed(10))));
        assert!(!Forests.contains(&generators::cycle(4)));
    }

    #[test]
    fn tree_membership() {
        assert!(Trees.contains(&generators::path(4)));
        assert!(!Trees.contains(&generators::random_forest(&[2, 5], Seed(11))));
        assert!(!Trees.contains(&generators::cycle(4)));
    }
}
