//! # csmpc-graph
//!
//! Graph substrate for the reproduction of *"Component Stability in
//! Low-Space Massively Parallel Computation"* (Czumaj, Davies, Parter;
//! PODC 2021).
//!
//! This crate implements the paper's graph-theoretic groundwork:
//!
//! * **Legal graphs** (Definition 6): nodes carry both a component-unique
//!   [`NodeId`] and a globally unique [`NodeName`]; see [`Graph::is_legal`].
//! * **Normal families** (Definition 7): hereditary, union-closed families
//!   in [`family`], with an empirical normality falsifier.
//! * **Centered graphs and `D`-radius-identical pairs** (Definition 23) in
//!   [`ball`].
//! * **Generators** for every instance family the paper argues on (cycles
//!   for the connectivity conjecture, forests, regular graphs, triangle-free
//!   graphs, the Section 2.1 consecutive-ID paths) in [`generators`].
//! * **Operations** the constructions need (induced subgraphs, disjoint
//!   unions, line graphs, re-naming) in [`ops`].
//! * **Exhaustive enumeration** of small graph families for the Lemma 54
//!   non-uniform derandomization in [`enumerate`].
//! * **Deterministic randomness** ([`rng`]): every random bit flows from an
//!   explicit [`rng::Seed`], modeling the shared random string `S`.
//!
//! # Quick example
//!
//! ```
//! use csmpc_graph::{generators, ops, ball};
//!
//! // Two D-radius-identical centered paths that differ beyond radius 3:
//! let (g, c, gp, cp) = ball::identical_ball_path_pair(3, 5);
//! assert!(ball::radius_identical(&g, c, &gp, cp, 3));
//! assert!(!ball::radius_identical(&g, c, &gp, cp, 4));
//!
//! // Disjoint unions stay legal only after re-naming copies:
//! let cycle = generators::cycle(5);
//! let copy = ops::with_fresh_names(&cycle, 1_000);
//! assert!(ops::disjoint_union(&[&cycle, &copy]).is_legal());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod ball;
pub mod csr;
pub mod enumerate;
pub mod family;
pub mod generators;
mod graph;
pub mod ops;
pub mod rng;
pub mod stream;

pub use csr::CsrAdjacency;
pub use graph::{Graph, GraphBuilder, GraphError, NodeId, NodeName};
pub use stream::StreamFamily;
