//! Streaming seeded graph families: edge iterators that feed
//! [`CsrAdjacency::from_edges`] directly, never materializing the
//! intermediate [`Graph`].
//!
//! At million-vertex scale the [`Graph`] representation (one `Vec<u32>`
//! per node, builder validation, ID/name tables) costs more to build than
//! the algorithms cost to run. A [`StreamFamily`] is a *spec* — family
//! plus size plus seed — whose [`StreamFamily::edges`] iterator emits the
//! exact edge multiset of the corresponding `generators::*` call with O(1)
//! state for the deterministic families and O(n) decoder state (no
//! adjacency) for random trees. [`StreamFamily::stream_csr`] is therefore
//! bit-identical to `CsrAdjacency::from_graph(&family.materialize())` —
//! property-tested in `tests/stream_csr.rs` — while allocating only the
//! CSR arrays themselves.

use crate::csr::CsrAdjacency;
use crate::generators;
use crate::graph::Graph;
use crate::rng::{Seed, SplitMix64};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// A seeded graph-family spec that can stream its edges.
///
/// Size constraints mirror the materializing generators: `Cycle` needs
/// `n >= 3`, `TwoCycles` needs even `n >= 6` (checked when the edges are
/// consumed or the family is materialized).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamFamily {
    /// Path on `n` nodes ([`generators::path`]).
    Path {
        /// Node count.
        n: usize,
    },
    /// Cycle on `n >= 3` nodes ([`generators::cycle`]).
    Cycle {
        /// Node count.
        n: usize,
    },
    /// Two disjoint `n/2`-cycles, even `n >= 6` ([`generators::two_cycles`]).
    TwoCycles {
        /// Node count.
        n: usize,
    },
    /// Star `K_{1,k}` ([`generators::star`]).
    Star {
        /// Leaf count (`n = leaves + 1`).
        leaves: usize,
    },
    /// `dim`-dimensional hypercube ([`generators::hypercube`]).
    Hypercube {
        /// Dimension (`n = 2^dim`).
        dim: u32,
    },
    /// Uniformly random labeled tree ([`generators::random_tree`]).
    RandomTree {
        /// Node count.
        n: usize,
        /// Prüfer-sequence seed.
        seed: Seed,
    },
}

impl StreamFamily {
    /// Node count of the described graph.
    #[must_use]
    pub fn n(&self) -> usize {
        match *self {
            StreamFamily::Path { n }
            | StreamFamily::Cycle { n }
            | StreamFamily::TwoCycles { n }
            | StreamFamily::RandomTree { n, .. } => n,
            StreamFamily::Star { leaves } => leaves + 1,
            StreamFamily::Hypercube { dim } => 1usize << dim,
        }
    }

    /// Undirected edge count of the described graph.
    #[must_use]
    pub fn m(&self) -> usize {
        match *self {
            StreamFamily::Path { n } | StreamFamily::RandomTree { n, .. } => n.saturating_sub(1),
            StreamFamily::Cycle { n } | StreamFamily::TwoCycles { n } => n,
            StreamFamily::Star { leaves } => leaves,
            StreamFamily::Hypercube { dim } => (dim as usize) << (dim.saturating_sub(1)),
        }
    }

    /// Short display name of the family.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            StreamFamily::Path { .. } => "path",
            StreamFamily::Cycle { .. } => "cycle",
            StreamFamily::TwoCycles { .. } => "two-cycles",
            StreamFamily::Star { .. } => "star",
            StreamFamily::Hypercube { .. } => "hypercube",
            StreamFamily::RandomTree { .. } => "random-tree",
        }
    }

    /// The edge stream: emits each undirected edge exactly once, with the
    /// same edge multiset as [`StreamFamily::materialize`]. Cloneable so
    /// [`CsrAdjacency::from_edges`] can take its two passes.
    ///
    /// # Panics
    ///
    /// Panics on the same size constraints as the materializing
    /// generators (`Cycle` with `n < 3`, `TwoCycles` with odd or `< 6` n).
    #[must_use]
    pub fn edges(&self) -> EdgeStream {
        match *self {
            StreamFamily::Path { n } => EdgeStream::Path { n, k: 0 },
            StreamFamily::Cycle { n } => {
                assert!(n >= 3, "cycle needs at least 3 nodes, got {n}");
                EdgeStream::Cycle { n, k: 0 }
            }
            StreamFamily::TwoCycles { n } => {
                assert!(n >= 6 && n.is_multiple_of(2), "need even n >= 6, got {n}");
                EdgeStream::TwoCycles { n, k: 0 }
            }
            StreamFamily::Star { leaves } => EdgeStream::Star { leaves, k: 0 },
            StreamFamily::Hypercube { dim } => EdgeStream::Hypercube { dim, v: 0, bit: 0 },
            StreamFamily::RandomTree { n, seed } => EdgeStream::Tree(TreeEdges::new(n, seed)),
        }
    }

    /// Builds the CSR adjacency straight from the stream — bit-identical
    /// to `CsrAdjacency::from_graph(&self.materialize())`, without the
    /// intermediate graph.
    #[must_use]
    pub fn stream_csr(&self) -> CsrAdjacency {
        CsrAdjacency::from_edges(self.n(), self.edges())
    }

    /// The materialized [`Graph`] (the test oracle; O(n) `Vec`s + builder
    /// validation).
    #[must_use]
    pub fn materialize(&self) -> Graph {
        match *self {
            StreamFamily::Path { n } => generators::path(n),
            StreamFamily::Cycle { n } => generators::cycle(n),
            StreamFamily::TwoCycles { n } => generators::two_cycles(n),
            StreamFamily::Star { leaves } => generators::star(leaves),
            StreamFamily::Hypercube { dim } => generators::hypercube(dim),
            StreamFamily::RandomTree { n, seed } => generators::random_tree(n, seed),
        }
    }
}

/// Edge iterator of a [`StreamFamily`]: index arithmetic for the
/// deterministic families, a streaming Prüfer decode for random trees.
#[derive(Debug, Clone)]
pub enum EdgeStream {
    /// Path edges `(k, k+1)`.
    Path {
        /// Node count.
        n: usize,
        /// Next edge index.
        k: usize,
    },
    /// Cycle edges `(k, k+1)` plus the closing `(n-1, 0)`.
    Cycle {
        /// Node count.
        n: usize,
        /// Next edge index.
        k: usize,
    },
    /// Two cycles, edge `k` living in cycle `k / (n/2)`.
    TwoCycles {
        /// Node count.
        n: usize,
        /// Next edge index.
        k: usize,
    },
    /// Star edges `(0, k+1)`.
    Star {
        /// Leaf count.
        leaves: usize,
        /// Next edge index.
        k: usize,
    },
    /// Hypercube edges `(v, v | 1 << bit)` for each clear bit of `v`.
    Hypercube {
        /// Dimension.
        dim: u32,
        /// Current node.
        v: usize,
        /// Next bit to inspect.
        bit: u32,
    },
    /// Streaming Prüfer decode of a random tree.
    Tree(TreeEdges),
}

impl Iterator for EdgeStream {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<(u32, u32)> {
        match self {
            EdgeStream::Path { n, k } => {
                if *k + 1 >= *n {
                    return None;
                }
                let e = (*k as u32, (*k + 1) as u32);
                *k += 1;
                Some(e)
            }
            EdgeStream::Cycle { n, k } => {
                if *k >= *n {
                    return None;
                }
                let e = if *k + 1 < *n {
                    (*k as u32, (*k + 1) as u32)
                } else {
                    ((*n - 1) as u32, 0)
                };
                *k += 1;
                Some(e)
            }
            EdgeStream::TwoCycles { n, k } => {
                if *k >= *n {
                    return None;
                }
                let half = *n / 2;
                let (c, i) = (*k / half, *k % half);
                let off = c * half;
                let e = if i + 1 < half {
                    ((off + i) as u32, (off + i + 1) as u32)
                } else {
                    ((off + half - 1) as u32, off as u32)
                };
                *k += 1;
                Some(e)
            }
            EdgeStream::Star { leaves, k } => {
                if *k >= *leaves {
                    return None;
                }
                let e = (0, (*k + 1) as u32);
                *k += 1;
                Some(e)
            }
            EdgeStream::Hypercube { dim, v, bit } => {
                let n = 1usize << *dim;
                loop {
                    if *v >= n {
                        return None;
                    }
                    if *bit >= *dim {
                        *v += 1;
                        *bit = 0;
                        continue;
                    }
                    let b = *bit;
                    *bit += 1;
                    if *v & (1usize << b) == 0 {
                        return Some((*v as u32, (*v | (1usize << b)) as u32));
                    }
                }
            }
            EdgeStream::Tree(t) => t.next(),
        }
    }
}

/// Streaming Prüfer-sequence tree decoder: mirrors
/// [`generators::random_tree`] edge for edge (same seed → same min-heap
/// leaf order → same `(leaf, prufer[i])` pairs and final heap edge) while
/// holding only the sequence, the degree array, and the leaf heap — no
/// adjacency.
#[derive(Debug, Clone)]
pub struct TreeEdges {
    /// The Prüfer sequence (`n − 2` entries), shared between clones so the
    /// two CSR passes don't duplicate it.
    prufer: Arc<[u32]>,
    pos: usize,
    deg: Vec<u32>,
    heap: BinaryHeap<Reverse<u32>>,
    tail_done: bool,
}

impl TreeEdges {
    fn new(n: usize, seed: Seed) -> Self {
        if n < 2 {
            return TreeEdges {
                prufer: Arc::from(Vec::new()),
                pos: 0,
                deg: Vec::new(),
                heap: BinaryHeap::new(),
                tail_done: true,
            };
        }
        let mut rng = SplitMix64::new(seed);
        let prufer: Vec<u32> = (0..n - 2).map(|_| rng.index(n) as u32).collect();
        let mut deg = vec![1u32; n];
        for &x in &prufer {
            deg[x as usize] += 1;
        }
        let heap: BinaryHeap<Reverse<u32>> = (0..n as u32)
            .filter(|&v| deg[v as usize] == 1)
            .map(Reverse)
            .collect();
        TreeEdges {
            prufer: Arc::from(prufer),
            pos: 0,
            deg,
            heap,
            tail_done: false,
        }
    }
}

impl Iterator for TreeEdges {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<(u32, u32)> {
        if self.pos < self.prufer.len() {
            let x = self.prufer[self.pos];
            self.pos += 1;
            let Reverse(leaf) = self.heap.pop().expect("tree always has a leaf");
            self.deg[x as usize] -= 1;
            if self.deg[x as usize] == 1 {
                self.heap.push(Reverse(x));
            }
            return Some((leaf, x));
        }
        if !self.tail_done {
            self.tail_done = true;
            let Reverse(u) = self.heap.pop().expect("two nodes remain");
            let Reverse(v) = self.heap.pop().expect("two nodes remain");
            return Some((u, v));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_streamed_matches(fam: StreamFamily) {
        let streamed = fam.stream_csr();
        let oracle = CsrAdjacency::from_graph(&fam.materialize());
        assert_eq!(streamed, oracle, "{} n={}", fam.name(), fam.n());
        assert_eq!(streamed.directed_edges(), 2 * fam.m(), "{}", fam.name());
    }

    #[test]
    fn deterministic_families_match_materialized() {
        assert_streamed_matches(StreamFamily::Path { n: 0 });
        assert_streamed_matches(StreamFamily::Path { n: 1 });
        assert_streamed_matches(StreamFamily::Path { n: 17 });
        assert_streamed_matches(StreamFamily::Cycle { n: 3 });
        assert_streamed_matches(StreamFamily::Cycle { n: 100 });
        assert_streamed_matches(StreamFamily::TwoCycles { n: 6 });
        assert_streamed_matches(StreamFamily::TwoCycles { n: 42 });
        assert_streamed_matches(StreamFamily::Star { leaves: 0 });
        assert_streamed_matches(StreamFamily::Star { leaves: 23 });
        assert_streamed_matches(StreamFamily::Hypercube { dim: 0 });
        assert_streamed_matches(StreamFamily::Hypercube { dim: 6 });
    }

    #[test]
    fn random_trees_match_materialized() {
        for n in [0usize, 1, 2, 3, 10, 64, 257] {
            for s in [0u64, 7, 0xDEAD] {
                assert_streamed_matches(StreamFamily::RandomTree { n, seed: Seed(s) });
            }
        }
    }

    #[test]
    fn tree_stream_clone_replays_identically() {
        let fam = StreamFamily::RandomTree {
            n: 50,
            seed: Seed(9),
        };
        let a: Vec<(u32, u32)> = fam.edges().collect();
        let stream = fam.edges();
        let b: Vec<(u32, u32)> = stream.clone().collect();
        let c: Vec<(u32, u32)> = stream.collect();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }
}
