//! The legal-graph data structure (paper Definition 6).
//!
//! A [`Graph`] carries, for every node, both an **ID** and a **name**:
//!
//! * [`NodeId`] — the identifier component-stable algorithms may depend on.
//!   Legal graphs require IDs to be unique *within each connected component*
//!   (they may repeat across components).
//! * [`NodeName`] — a globally unique handle whose sole purpose is to let an
//!   MPC algorithm tell nodes apart as objects. Component-stable outputs must
//!   *not* depend on names.
//!
//! Internally nodes are indexed `0..n`; indices are an implementation detail
//! and never part of the model semantics.

use std::collections::BTreeSet;
use std::fmt;

/// Component-unique node identifier (paper Definition 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId(pub u64);

/// Globally unique node name (paper Definition 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeName(pub u64);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "id:{}", self.0)
    }
}

impl fmt::Display for NodeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "name:{}", self.0)
    }
}

/// Error raised when assembling or validating a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint referred to a node index that does not exist.
    UnknownNode {
        /// The offending node index.
        index: usize,
        /// Number of nodes in the graph under construction.
        n: usize,
    },
    /// A self-loop was supplied; the paper's graphs are simple.
    SelfLoop {
        /// The node index at both endpoints.
        index: usize,
    },
    /// The same undirected edge was supplied twice.
    DuplicateEdge {
        /// First endpoint index.
        u: usize,
        /// Second endpoint index.
        v: usize,
    },
    /// Two nodes share a name; names must be globally unique.
    DuplicateName {
        /// The repeated name.
        name: NodeName,
    },
    /// Two nodes in the same connected component share an ID.
    DuplicateIdInComponent {
        /// The repeated ID.
        id: NodeId,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode { index, n } => {
                write!(f, "edge endpoint {index} out of range for {n} nodes")
            }
            GraphError::SelfLoop { index } => write!(f, "self-loop at node index {index}"),
            GraphError::DuplicateEdge { u, v } => write!(f, "duplicate edge ({u}, {v})"),
            GraphError::DuplicateName { name } => write!(f, "duplicate node {name}"),
            GraphError::DuplicateIdInComponent { id } => {
                write!(f, "duplicate {id} within a connected component")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected simple graph with per-node IDs and names.
///
/// Construct one with [`GraphBuilder`] or the generators in
/// [`crate::generators`].
///
/// # Examples
///
/// ```
/// use csmpc_graph::{Graph, GraphBuilder, NodeId, NodeName};
///
/// let mut b = GraphBuilder::new();
/// let u = b.add_node(NodeId(0), NodeName(100));
/// let v = b.add_node(NodeId(1), NodeName(101));
/// b.add_edge(u, v);
/// let g: Graph = b.build().unwrap();
/// assert_eq!(g.n(), 2);
/// assert_eq!(g.m(), 1);
/// assert!(g.is_legal());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    ids: Vec<NodeId>,
    names: Vec<NodeName>,
    adj: Vec<Vec<u32>>,
    m: usize,
}

impl Graph {
    /// The empty graph.
    #[must_use]
    pub fn empty() -> Self {
        Graph {
            ids: Vec::new(),
            names: Vec::new(),
            adj: Vec::new(),
            m: 0,
        }
    }

    /// Number of nodes `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.ids.len()
    }

    /// Number of undirected edges `m`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Returns `true` when the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Degree of node index `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[must_use]
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Maximum degree Δ (0 for the empty graph).
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Minimum degree (0 for the empty graph).
    #[must_use]
    pub fn min_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Sorted neighbor indices of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[must_use]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adj[v]
    }

    /// The ID of node index `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[must_use]
    pub fn id(&self, v: usize) -> NodeId {
        self.ids[v]
    }

    /// The name of node index `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[must_use]
    pub fn name(&self, v: usize) -> NodeName {
        self.names[v]
    }

    /// All node IDs, indexed by node index.
    #[must_use]
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// All node names, indexed by node index.
    #[must_use]
    pub fn names(&self) -> &[NodeName] {
        &self.names
    }

    /// Whether nodes `u` and `v` are adjacent.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[must_use]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u].binary_search(&(v as u32)).is_ok()
    }

    /// Iterates over all undirected edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            nbrs.iter()
                .map(move |&w| (u, w as usize))
                .filter(|&(u, w)| u < w)
        })
    }

    /// Looks up the node index carrying `name`, if any.
    #[must_use]
    pub fn index_of_name(&self, name: NodeName) -> Option<usize> {
        self.names.iter().position(|&x| x == name)
    }

    /// Looks up a node index carrying `id`, if any (IDs may repeat across
    /// components; the lowest matching index is returned).
    #[must_use]
    pub fn index_of_id(&self, id: NodeId) -> Option<usize> {
        self.ids.iter().position(|&x| x == id)
    }

    /// Component labels: `labels[v]` is the component number of `v`, with
    /// components numbered `0..` in order of their smallest node index.
    #[must_use]
    pub fn component_labels(&self) -> Vec<usize> {
        let n = self.n();
        let mut label = vec![usize::MAX; n];
        let mut next = 0usize;
        let mut stack = Vec::new();
        for s in 0..n {
            if label[s] != usize::MAX {
                continue;
            }
            label[s] = next;
            stack.push(s);
            while let Some(v) = stack.pop() {
                for &w in &self.adj[v] {
                    let w = w as usize;
                    if label[w] == usize::MAX {
                        label[w] = next;
                        stack.push(w);
                    }
                }
            }
            next += 1;
        }
        label
    }

    /// Node indices grouped by connected component.
    #[must_use]
    pub fn components(&self) -> Vec<Vec<usize>> {
        let labels = self.component_labels();
        let k = labels.iter().copied().max().map_or(0, |x| x + 1);
        let mut comps = vec![Vec::new(); k];
        for (v, &c) in labels.iter().enumerate() {
            comps[c].push(v);
        }
        comps
    }

    /// Number of connected components.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.components().len()
    }

    /// Whether the graph is connected (the empty graph counts as connected).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.component_count() <= 1
    }

    /// Checks legality per Definition 6: names globally unique, IDs unique
    /// within every connected component.
    #[must_use]
    pub fn is_legal(&self) -> bool {
        self.check_legal().is_ok()
    }

    /// Like [`Graph::is_legal`] but reports the first violation found.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DuplicateName`] or
    /// [`GraphError::DuplicateIdInComponent`] on the first violation.
    pub fn check_legal(&self) -> Result<(), GraphError> {
        let mut names = BTreeSet::new();
        for &nm in &self.names {
            if !names.insert(nm) {
                return Err(GraphError::DuplicateName { name: nm });
            }
        }
        for comp in self.components() {
            let mut ids = BTreeSet::new();
            for v in comp {
                if !ids.insert(self.ids[v]) {
                    return Err(GraphError::DuplicateIdInComponent { id: self.ids[v] });
                }
            }
        }
        Ok(())
    }

    /// BFS distances from `src`; unreachable nodes get `usize::MAX`.
    ///
    /// # Panics
    ///
    /// Panics if `src >= n`.
    #[must_use]
    pub fn bfs_distances(&self, src: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.n()];
        let mut queue = std::collections::VecDeque::new();
        dist[src] = 0;
        queue.push_back(src);
        while let Some(v) = queue.pop_front() {
            for &w in &self.adj[v] {
                let w = w as usize;
                if dist[w] == usize::MAX {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// Diameter of the graph, or `None` if it is disconnected or empty.
    #[must_use]
    pub fn diameter(&self) -> Option<usize> {
        if self.is_empty() || !self.is_connected() {
            return None;
        }
        let mut best = 0usize;
        for v in 0..self.n() {
            let d = self.bfs_distances(v);
            for x in d {
                if x == usize::MAX {
                    return None;
                }
                best = best.max(x);
            }
        }
        Some(best)
    }

    /// A canonical, name-independent fingerprint of the graph: sorted node
    /// IDs plus sorted ID-labeled edges.
    ///
    /// Two graphs with identical topology and IDs (regardless of names or
    /// index order) produce the same key. Used by the stability verifier to
    /// compare the "component view" of different embeddings.
    #[must_use]
    pub fn id_fingerprint(&self) -> Vec<u64> {
        let mut nodes: Vec<u64> = self.ids.iter().map(|i| i.0).collect();
        nodes.sort_unstable();
        let mut edges: Vec<(u64, u64)> = self
            .edges()
            .map(|(u, v)| {
                let a = self.ids[u].0;
                let b = self.ids[v].0;
                (a.min(b), a.max(b))
            })
            .collect();
        edges.sort_unstable();
        let mut out = Vec::with_capacity(1 + nodes.len() + 2 * edges.len());
        out.push(nodes.len() as u64);
        out.extend(nodes);
        for (a, b) in edges {
            out.push(a);
            out.push(b);
        }
        out
    }

    /// Internal constructor from parts. `adj` must be symmetric and sorted.
    pub(crate) fn from_parts(ids: Vec<NodeId>, names: Vec<NodeName>, adj: Vec<Vec<u32>>) -> Self {
        let m = adj.iter().map(Vec::len).sum::<usize>() / 2;
        Graph { ids, names, adj, m }
    }
}

impl Default for Graph {
    fn default() -> Self {
        Graph::empty()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, m={}, Δ={}, components={})",
            self.n(),
            self.m(),
            self.max_degree(),
            self.component_count()
        )
    }
}

/// Incremental builder for [`Graph`] (non-consuming, per C-BUILDER).
///
/// # Examples
///
/// ```
/// use csmpc_graph::{GraphBuilder, NodeId, NodeName};
/// let mut b = GraphBuilder::new();
/// let a = b.add_node(NodeId(1), NodeName(1));
/// let c = b.add_node(NodeId(2), NodeName(2));
/// b.add_edge(a, c);
/// let g = b.build().unwrap();
/// assert!(g.has_edge(a, c));
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    ids: Vec<NodeId>,
    names: Vec<NodeName>,
    edges: Vec<(usize, usize)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        GraphBuilder::default()
    }

    /// Creates a builder with `n` nodes whose IDs and names are both `0..n`.
    ///
    /// Convenient for generators; IDs can be remapped later with
    /// [`crate::ops::relabel_ids`].
    #[must_use]
    pub fn with_sequential_nodes(n: usize) -> Self {
        let mut b = GraphBuilder::new();
        for i in 0..n {
            b.add_node(NodeId(i as u64), NodeName(i as u64));
        }
        b
    }

    /// Adds a node, returning its index.
    pub fn add_node(&mut self, id: NodeId, name: NodeName) -> usize {
        self.ids.push(id);
        self.names.push(name);
        self.ids.len() - 1
    }

    /// Number of nodes added so far.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.ids.len()
    }

    /// Adds an undirected edge between node indices `u` and `v`.
    pub fn add_edge(&mut self, u: usize, v: usize) -> &mut Self {
        self.edges.push((u, v));
        self
    }

    /// Validates and assembles the graph.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] on out-of-range endpoints, self-loops or
    /// duplicate edges. Legality (Definition 6) is *not* enforced here —
    /// some constructions (e.g. simulation graphs mid-assembly) are checked
    /// separately via [`Graph::check_legal`].
    pub fn build(&self) -> Result<Graph, GraphError> {
        let n = self.ids.len();
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(u, v) in &self.edges {
            if u >= n {
                return Err(GraphError::UnknownNode { index: u, n });
            }
            if v >= n {
                return Err(GraphError::UnknownNode { index: v, n });
            }
            if u == v {
                return Err(GraphError::SelfLoop { index: u });
            }
            adj[u].push(v as u32);
            adj[v].push(u as u32);
        }
        for (u, nbrs) in adj.iter_mut().enumerate() {
            nbrs.sort_unstable();
            if nbrs.windows(2).any(|w| w[0] == w[1]) {
                let dup = nbrs
                    .windows(2)
                    .find(|w| w[0] == w[1])
                    .map(|w| w[0] as usize)
                    .unwrap_or(0);
                return Err(GraphError::DuplicateEdge { u, v: dup });
            }
        }
        Ok(Graph::from_parts(self.ids.clone(), self.names.clone(), adj))
    }

    /// Validates, assembles, and additionally checks legality (Definition 6).
    ///
    /// # Errors
    ///
    /// Everything [`GraphBuilder::build`] reports, plus name/ID uniqueness
    /// violations.
    pub fn build_legal(&self) -> Result<Graph, GraphError> {
        let g = self.build()?;
        g.check_legal()?;
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::with_sequential_nodes(3);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
        b.build().unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 2);
        assert!(g.is_connected());
    }

    #[test]
    fn neighbors_sorted_and_symmetric() {
        let g = triangle();
        for v in 0..3 {
            let nb = g.neighbors(v);
            assert!(nb.windows(2).all(|w| w[0] < w[1]));
            for &w in nb {
                assert!(g.has_edge(w as usize, v));
            }
        }
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = GraphBuilder::with_sequential_nodes(2);
        b.add_edge(0, 0);
        assert_eq!(b.build().unwrap_err(), GraphError::SelfLoop { index: 0 });
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut b = GraphBuilder::with_sequential_nodes(2);
        b.add_edge(0, 1).add_edge(1, 0);
        assert!(matches!(
            b.build().unwrap_err(),
            GraphError::DuplicateEdge { .. }
        ));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut b = GraphBuilder::with_sequential_nodes(2);
        b.add_edge(0, 5);
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::UnknownNode { index: 5, n: 2 }
        );
    }

    #[test]
    fn components_of_two_edges() {
        let mut b = GraphBuilder::with_sequential_nodes(4);
        b.add_edge(0, 1).add_edge(2, 3);
        let g = b.build().unwrap();
        assert_eq!(g.component_count(), 2);
        assert_eq!(g.components(), vec![vec![0, 1], vec![2, 3]]);
        assert!(!g.is_connected());
    }

    #[test]
    fn legality_duplicate_name() {
        let mut b = GraphBuilder::new();
        b.add_node(NodeId(0), NodeName(7));
        b.add_node(NodeId(1), NodeName(7));
        let g = b.build().unwrap();
        assert_eq!(
            g.check_legal().unwrap_err(),
            GraphError::DuplicateName { name: NodeName(7) }
        );
    }

    #[test]
    fn legality_duplicate_id_same_component() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(NodeId(3), NodeName(0));
        let v = b.add_node(NodeId(3), NodeName(1));
        b.add_edge(u, v);
        let g = b.build().unwrap();
        assert!(!g.is_legal());
    }

    #[test]
    fn legality_duplicate_id_across_components_ok() {
        let mut b = GraphBuilder::new();
        b.add_node(NodeId(3), NodeName(0));
        b.add_node(NodeId(3), NodeName(1));
        let g = b.build().unwrap();
        assert!(g.is_legal(), "cross-component ID reuse is legal");
    }

    #[test]
    fn bfs_distances_path() {
        let mut b = GraphBuilder::with_sequential_nodes(4);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 3);
        let g = b.build().unwrap();
        assert_eq!(g.bfs_distances(0), vec![0, 1, 2, 3]);
        assert_eq!(g.diameter(), Some(3));
    }

    #[test]
    fn diameter_disconnected_is_none() {
        let b = GraphBuilder::with_sequential_nodes(3);
        let g = b.build().unwrap();
        assert_eq!(g.diameter(), None);
    }

    #[test]
    fn fingerprint_ignores_names_and_order() {
        let g1 = {
            let mut b = GraphBuilder::new();
            let u = b.add_node(NodeId(10), NodeName(0));
            let v = b.add_node(NodeId(20), NodeName(1));
            b.add_edge(u, v);
            b.build().unwrap()
        };
        let g2 = {
            let mut b = GraphBuilder::new();
            let v = b.add_node(NodeId(20), NodeName(999));
            let u = b.add_node(NodeId(10), NodeName(998));
            b.add_edge(v, u);
            b.build().unwrap()
        };
        assert_eq!(g1.id_fingerprint(), g2.id_fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_topology() {
        let mut b1 = GraphBuilder::with_sequential_nodes(3);
        b1.add_edge(0, 1);
        let mut b2 = GraphBuilder::with_sequential_nodes(3);
        b2.add_edge(0, 2);
        assert_ne!(
            b1.build().unwrap().id_fingerprint(),
            b2.build().unwrap().id_fingerprint()
        );
    }

    #[test]
    fn edges_iterator_matches_m() {
        let g = triangle();
        assert_eq!(g.edges().count(), g.m());
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(g.is_connected());
        assert!(g.is_legal());
    }
}
