//! Graph generators for the families the paper's arguments run on: paths,
//! cycles (the connectivity conjecture's instances), forests, regular graphs
//! (sinkless orientation), triangle-free graphs, and random graphs.
//!
//! All generators produce *legal* graphs (Definition 6) with `IDs = names =
//! 0..n` unless noted; use [`crate::ops::relabel_ids`] /
//! [`crate::ops::with_fresh_names`] or [`shuffle_identity`] to vary them.

use crate::graph::{Graph, GraphBuilder, NodeId, NodeName};
use crate::rng::{Seed, SplitMix64};

/// Path on `n` nodes, `0 – 1 – … – n−1`, with consecutive IDs.
#[must_use]
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::with_sequential_nodes(n);
    for i in 1..n {
        b.add_edge(i - 1, i);
    }
    b.build().expect("path is valid")
}

/// Cycle on `n ≥ 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 nodes, got {n}");
    let mut b = GraphBuilder::with_sequential_nodes(n);
    for i in 1..n {
        b.add_edge(i - 1, i);
    }
    b.add_edge(n - 1, 0);
    b.build().expect("cycle is valid")
}

/// Two disjoint cycles of `n/2` nodes each — the NO-instance of the
/// connectivity conjecture ("one `n`-cycle vs two `n/2`-cycles").
///
/// # Panics
///
/// Panics if `n < 6` or `n` is odd.
#[must_use]
pub fn two_cycles(n: usize) -> Graph {
    assert!(n >= 6 && n.is_multiple_of(2), "need even n >= 6, got {n}");
    let half = n / 2;
    let mut b = GraphBuilder::with_sequential_nodes(n);
    for c in 0..2 {
        let off = c * half;
        for i in 1..half {
            b.add_edge(off + i - 1, off + i);
        }
        b.add_edge(off + half - 1, off);
    }
    b.build().expect("two cycles are valid")
}

/// Complete graph `K_n`.
#[must_use]
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::with_sequential_nodes(n);
    for u in 0..n {
        for v in u + 1..n {
            b.add_edge(u, v);
        }
    }
    b.build().expect("complete graph is valid")
}

/// Star `K_{1,k}`: center index 0, leaves `1..=k`.
#[must_use]
pub fn star(k: usize) -> Graph {
    let mut b = GraphBuilder::with_sequential_nodes(k + 1);
    for leaf in 1..=k {
        b.add_edge(0, leaf);
    }
    b.build().expect("star is valid")
}

/// `rows × cols` grid graph.
#[must_use]
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut b = GraphBuilder::with_sequential_nodes(rows * cols);
    let at = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(at(r, c), at(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(at(r, c), at(r + 1, c));
            }
        }
    }
    b.build().expect("grid is valid")
}

/// `d`-regular circulant graph on `n` nodes: node `i` is adjacent to
/// `i ± 1, i ± 2, …, i ± d/2` (mod `n`); for odd `d`, also to `i + n/2`.
///
/// Deterministic, triangle-containing in general; used where any regular
/// graph will do (e.g. sinkless orientation inputs).
///
/// # Panics
///
/// Panics if the parameters cannot produce a simple `d`-regular graph
/// (`d >= n`, or odd `d` with odd `n`, or `d/2 * 2 + (d odd) != d`).
#[must_use]
pub fn circulant(n: usize, d: usize) -> Graph {
    assert!(d < n, "degree {d} must be below n={n}");
    if d % 2 == 1 {
        assert!(n.is_multiple_of(2), "odd degree needs even n");
    }
    let half = d / 2;
    assert!(half <= (n - 1) / 2, "offset overlap for n={n}, d={d}");
    let mut b = GraphBuilder::with_sequential_nodes(n);
    for i in 0..n {
        for k in 1..=half {
            let j = (i + k) % n;
            b.add_edge(i, j);
        }
    }
    if d % 2 == 1 {
        for i in 0..n / 2 {
            b.add_edge(i, i + n / 2);
        }
    }
    let g = b.build().expect("circulant is valid");
    debug_assert!(g.max_degree() == d && g.min_degree() == d);
    g
}

/// Erdős–Rényi `G(n, p)` random graph.
#[must_use]
pub fn random_gnp(n: usize, p: f64, seed: Seed) -> Graph {
    let mut rng = SplitMix64::new(seed);
    let mut b = GraphBuilder::with_sequential_nodes(n);
    for u in 0..n {
        for v in u + 1..n {
            if rng.bernoulli(p) {
                b.add_edge(u, v);
            }
        }
    }
    b.build().expect("gnp is valid")
}

/// Uniformly random labeled tree on `n` nodes (Prüfer-sequence decoding).
#[must_use]
pub fn random_tree(n: usize, seed: Seed) -> Graph {
    if n == 0 {
        return Graph::empty();
    }
    if n == 1 {
        return GraphBuilder::with_sequential_nodes(1).build().unwrap();
    }
    let mut rng = SplitMix64::new(seed);
    let prufer: Vec<usize> = (0..n.saturating_sub(2)).map(|_| rng.index(n)).collect();
    let mut degree = vec![1usize; n];
    for &x in &prufer {
        degree[x] += 1;
    }
    let mut b = GraphBuilder::with_sequential_nodes(n);
    // Min-heap over leaves.
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&v| degree[v] == 1)
        .map(std::cmp::Reverse)
        .collect();
    let mut deg = degree;
    for &x in &prufer {
        let std::cmp::Reverse(leaf) = heap.pop().expect("tree always has a leaf");
        b.add_edge(leaf, x);
        deg[x] -= 1;
        if deg[x] == 1 {
            heap.push(std::cmp::Reverse(x));
        }
    }
    let std::cmp::Reverse(u) = heap.pop().expect("two nodes remain");
    let std::cmp::Reverse(v) = heap.pop().expect("two nodes remain");
    b.add_edge(u, v);
    b.build().expect("prufer decoding yields a tree")
}

/// Random forest: `parts` independent random trees of the given sizes,
/// disjointly unioned with globally unique names and per-component IDs
/// `0..size` (legal, and exercising cross-component ID reuse).
#[must_use]
pub fn random_forest(sizes: &[usize], seed: Seed) -> Graph {
    let mut parts: Vec<Graph> = Vec::with_capacity(sizes.len());
    let mut name_base = 0u64;
    for (i, &s) in sizes.iter().enumerate() {
        let t = random_tree(s, seed.derive(i as u64));
        let t = crate::ops::with_fresh_names(&t, name_base);
        name_base += s as u64;
        parts.push(t);
    }
    let refs: Vec<&Graph> = parts.iter().collect();
    crate::ops::disjoint_union(&refs)
}

/// Random `d`-regular graph via the configuration model followed by
/// switch-based repair: conflicting pairings (self-loops, parallel edges)
/// are resolved by double edge swaps, which preserve all degrees.
///
/// # Panics
///
/// Panics if `n * d` is odd, `d >= n`, or the (astronomically unlikely)
/// repair loop fails to converge.
#[must_use]
pub fn random_regular(n: usize, d: usize, seed: Seed) -> Graph {
    assert!((n * d).is_multiple_of(2), "n*d must be even");
    assert!(d < n, "degree {d} must be below n={n}");
    if n == 0 || d == 0 {
        return GraphBuilder::with_sequential_nodes(n).build().unwrap();
    }
    let mut rng = SplitMix64::new(seed);
    let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
    rng.shuffle(&mut stubs);
    let mut edges: Vec<(usize, usize)> = stubs.chunks(2).map(|p| (p[0], p[1])).collect();
    let key = |u: usize, v: usize| (u.min(v), u.max(v));
    let mut multiset: std::collections::BTreeMap<(usize, usize), usize> = Default::default();
    for &(u, v) in &edges {
        *multiset.entry(key(u, v)).or_insert(0) += 1;
    }
    let conflicting =
        |ms: &std::collections::BTreeMap<(usize, usize), usize>, u: usize, v: usize| {
            u == v || ms.get(&key(u, v)).copied().unwrap_or(0) > 1
        };
    let total = edges.len();
    let mut budget = 1_000_000usize.max(100 * total);
    loop {
        // Collect indices of conflicting edges.
        let bad: Vec<usize> = (0..total)
            .filter(|&i| conflicting(&multiset, edges[i].0, edges[i].1))
            .collect();
        if bad.is_empty() {
            break;
        }
        for &i in &bad {
            if budget == 0 {
                panic!("failed to sample a simple {d}-regular graph on {n} nodes");
            }
            budget -= 1;
            let j = rng.index(total);
            if i == j {
                continue;
            }
            let (a, bnode) = edges[i];
            let (c, dnode) = edges[j];
            // Proposed swap: (a,d) and (c,b).
            if a == dnode || c == bnode {
                continue;
            }
            let new1 = key(a, dnode);
            let new2 = key(c, bnode);
            let count = |ms: &std::collections::BTreeMap<(usize, usize), usize>, k| {
                ms.get(&k).copied().unwrap_or(0)
            };
            let extra = usize::from(new1 == new2);
            if count(&multiset, new1) + extra > 0 || count(&multiset, new2) > 0 {
                continue;
            }
            // Apply the swap.
            for k in [key(a, bnode), key(c, dnode)] {
                let e = multiset.get_mut(&k).expect("edge present");
                *e -= 1;
                if *e == 0 {
                    multiset.remove(&k);
                }
            }
            *multiset.entry(new1).or_insert(0) += 1;
            *multiset.entry(new2).or_insert(0) += 1;
            edges[i] = (a, dnode);
            edges[j] = (c, bnode);
        }
    }
    let mut b = GraphBuilder::with_sequential_nodes(n);
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    b.build().expect("repaired matching yields a simple graph")
}

/// Random bipartite graph between two sides of `n/2` nodes with edge
/// probability `p` — triangle-free by construction (for the Theorem 43
/// vertex-coloring experiments).
#[must_use]
pub fn random_bipartite(n: usize, p: f64, seed: Seed) -> Graph {
    let mut rng = SplitMix64::new(seed);
    let left = n / 2;
    let mut b = GraphBuilder::with_sequential_nodes(n);
    for u in 0..left {
        for v in left..n {
            if rng.bernoulli(p) {
                b.add_edge(u, v);
            }
        }
    }
    b.build().expect("bipartite is valid")
}

/// Path with **consecutive IDs in path order** — the YES-instance of the
/// Section 2.1 counterexample problem ("output YES iff the whole graph is a
/// simple path with consecutive node IDs").
#[must_use]
pub fn consecutive_id_path(n: usize) -> Graph {
    path(n)
}

/// The Section 2.1 NO-instance: the same path but with one endpoint's ID
/// altered, detectable only from the far endpoint after `n−1` LOCAL rounds.
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn consecutive_id_path_broken(n: usize) -> Graph {
    assert!(n >= 2);
    let g = path(n);
    crate::ops::relabel_ids(&g, |v, id| {
        if v == n - 1 {
            NodeId(id.0 + 10_000)
        } else {
            id
        }
    })
}

/// Re-draws IDs as a random permutation of `base..base+n` and names as a
/// random permutation of `name_base..name_base+n` (both still legal).
#[must_use]
pub fn shuffle_identity(g: &Graph, base: u64, name_base: u64, seed: Seed) -> Graph {
    let mut rng = SplitMix64::new(seed);
    let idp = rng.permutation(g.n());
    let namep = rng.permutation(g.n());
    let mut b = GraphBuilder::new();
    for v in 0..g.n() {
        b.add_node(
            NodeId(base + idp[v] as u64),
            NodeName(name_base + namep[v] as u64),
        );
    }
    for (u, v) in g.edges() {
        b.add_edge(u, v);
    }
    b.build().expect("identity shuffle preserves validity")
}

/// Caterpillar tree: a spine path of `spine` nodes, each with `legs` pendant
/// leaves. Useful as a high-degree forest instance.
#[must_use]
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let n = spine + spine * legs;
    let mut b = GraphBuilder::with_sequential_nodes(n);
    for i in 1..spine {
        b.add_edge(i - 1, i);
    }
    for s in 0..spine {
        for l in 0..legs {
            b.add_edge(s, spine + s * legs + l);
        }
    }
    b.build().expect("caterpillar is valid")
}

/// The `dim`-dimensional hypercube (`2^dim` nodes, degree `dim`).
#[must_use]
pub fn hypercube(dim: u32) -> Graph {
    let n = 1usize << dim;
    let mut b = GraphBuilder::with_sequential_nodes(n);
    for v in 0..n {
        for bit in 0..dim {
            let w = v ^ (1 << bit);
            if v < w {
                b.add_edge(v, w);
            }
        }
    }
    b.build().expect("hypercube is valid")
}

/// Complete bipartite graph `K_{a,b}` (left side first).
#[must_use]
pub fn complete_bipartite(a: usize, bsize: usize) -> Graph {
    let mut b = GraphBuilder::with_sequential_nodes(a + bsize);
    for u in 0..a {
        for v in a..a + bsize {
            b.add_edge(u, v);
        }
    }
    b.build().expect("complete bipartite is valid")
}

/// Complete binary tree with `depth` levels below the root
/// (`2^(depth+1) − 1` nodes).
#[must_use]
pub fn binary_tree(depth: u32) -> Graph {
    let n = (1usize << (depth + 1)) - 1;
    let mut b = GraphBuilder::with_sequential_nodes(n);
    for v in 1..n {
        b.add_edge(v, (v - 1) / 2);
    }
    b.build().expect("binary tree is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4);
        assert_eq!(g.n(), 16);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.min_degree(), 4);
        assert_eq!(g.m(), 32);
        assert!(g.is_connected());
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 12);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(3);
        assert_eq!(g.n(), 15);
        assert_eq!(g.m(), 14);
        assert!(g.is_connected());
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn path_shape() {
        let g = path(6);
        assert_eq!(g.n(), 6);
        assert_eq!(g.m(), 5);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 1);
        assert!(g.is_connected());
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(7);
        assert_eq!(g.m(), 7);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 2);
        assert!(g.is_connected());
    }

    #[test]
    fn two_cycles_shape() {
        let g = two_cycles(12);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 12);
        assert_eq!(g.component_count(), 2);
    }

    #[test]
    fn complete_counts() {
        let g = complete(5);
        assert_eq!(g.m(), 10);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn circulant_even_degree() {
        let g = circulant(10, 4);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.min_degree(), 4);
        assert_eq!(g.m(), 20);
    }

    #[test]
    fn circulant_odd_degree() {
        let g = circulant(10, 5);
        assert_eq!(g.max_degree(), 5);
        assert_eq!(g.min_degree(), 5);
    }

    #[test]
    fn random_tree_is_tree() {
        for n in [1usize, 2, 3, 10, 50] {
            let g = random_tree(n, Seed(n as u64));
            assert_eq!(g.n(), n);
            assert_eq!(g.m(), n.saturating_sub(1));
            assert!(g.is_connected());
        }
    }

    #[test]
    fn random_forest_component_structure() {
        let g = random_forest(&[5, 7, 3], Seed(1));
        assert_eq!(g.n(), 15);
        assert_eq!(g.component_count(), 3);
        assert_eq!(g.m(), 4 + 6 + 2);
        assert!(g.is_legal());
    }

    #[test]
    fn random_regular_is_regular() {
        for (n, d) in [(10, 3), (20, 4), (16, 5)] {
            let g = random_regular(n, d, Seed(7));
            assert_eq!(g.max_degree(), d);
            assert_eq!(g.min_degree(), d);
            assert_eq!(g.m(), n * d / 2);
        }
    }

    #[test]
    fn bipartite_triangle_free() {
        let g = random_bipartite(20, 0.5, Seed(3));
        // Check no triangles: for each edge (u,v), neighborhoods are disjoint.
        for (u, v) in g.edges() {
            for &w in g.neighbors(u) {
                assert!(
                    !g.has_edge(w as usize, v),
                    "triangle found at ({u},{v},{w})"
                );
            }
        }
    }

    #[test]
    fn gnp_determinism() {
        let a = random_gnp(30, 0.2, Seed(9));
        let b = random_gnp(30, 0.2, Seed(9));
        assert_eq!(a, b);
    }

    #[test]
    fn broken_path_differs_only_at_endpoint() {
        let good = consecutive_id_path(8);
        let bad = consecutive_id_path_broken(8);
        for v in 0..7 {
            assert_eq!(good.id(v), bad.id(v));
        }
        assert_ne!(good.id(7), bad.id(7));
    }

    #[test]
    fn shuffle_identity_stays_legal() {
        let g = cycle(9);
        let h = shuffle_identity(&g, 100, 200, Seed(4));
        assert!(h.is_legal());
        assert_eq!(h.m(), g.m());
        // Topology preserved under the index mapping (identity here).
        for (u, v) in g.edges() {
            assert!(h.has_edge(u, v));
        }
    }

    #[test]
    fn caterpillar_is_tree() {
        let g = caterpillar(4, 3);
        assert_eq!(g.n(), 16);
        assert_eq!(g.m(), 15);
        assert!(g.is_connected());
        assert_eq!(g.max_degree(), 5); // inner spine node: 2 spine + 3 legs
    }
}
