//! Exhaustive enumeration of small graph families.
//!
//! The non-uniform derandomization of Lemma 54 argues over *all* graphs with
//! at most `n` nodes and maximum degree `Δ` (`|G_{n,Δ}| ≤ 2^{n²}`): a seed is
//! good if the algorithm succeeds on every member. Reproducing that argument
//! requires actually iterating the family, which is feasible for small `n` —
//! this module provides the iterator.

use crate::graph::{Graph, GraphBuilder};

/// Iterates over **all** labeled simple graphs on exactly `n` nodes
/// (IDs = names = `0..n`), optionally filtered by maximum degree.
///
/// There are `2^(n·(n−1)/2)` of them; callers should keep `n ≤ 6` or so.
///
/// # Examples
///
/// ```
/// use csmpc_graph::enumerate::labeled_graphs;
/// assert_eq!(labeled_graphs(3, None).count(), 8);
/// ```
pub fn labeled_graphs(n: usize, max_degree: Option<usize>) -> impl Iterator<Item = Graph> {
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|u| (u + 1..n).map(move |v| (u, v)))
        .collect();
    let total: u64 = 1u64
        .checked_shl(pairs.len() as u32)
        .expect("edge-set space too large to enumerate");
    (0..total).filter_map(move |mask| {
        let mut b = GraphBuilder::with_sequential_nodes(n);
        for (bit, &(u, v)) in pairs.iter().enumerate() {
            if mask >> bit & 1 == 1 {
                b.add_edge(u, v);
            }
        }
        let g = b.build().expect("mask-generated graph is valid");
        match max_degree {
            Some(d) if g.max_degree() > d => None,
            _ => Some(g),
        }
    })
}

/// Iterates over all labeled simple graphs with **at most** `n` nodes and
/// maximum degree at most `max_degree` — the family `G_{n,Δ}` of Lemma 54.
pub fn family_up_to(n: usize, max_degree: usize) -> impl Iterator<Item = Graph> {
    (1..=n).flat_map(move |k| labeled_graphs(k, Some(max_degree)))
}

/// Counts the graphs [`family_up_to`] yields, for reporting.
#[must_use]
pub fn family_size(n: usize, max_degree: usize) -> usize {
    family_up_to(n, max_degree).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_three_nodes() {
        // 2^3 labeled graphs on 3 nodes.
        assert_eq!(labeled_graphs(3, None).count(), 8);
    }

    #[test]
    fn count_four_nodes() {
        assert_eq!(labeled_graphs(4, None).count(), 64);
    }

    #[test]
    fn degree_filter() {
        // On 3 nodes with Δ ≤ 1: empty graph + 3 single edges = 4.
        assert_eq!(labeled_graphs(3, Some(1)).count(), 4);
    }

    #[test]
    fn family_up_to_counts() {
        // n ≤ 2, Δ ≤ 1: K1; K2 empty; K2 with edge = 3 graphs.
        assert_eq!(family_size(2, 1), 3);
    }

    #[test]
    fn all_enumerated_graphs_are_legal() {
        for g in family_up_to(4, 3) {
            assert!(g.is_legal());
        }
    }

    #[test]
    fn enumeration_includes_triangle() {
        let found = labeled_graphs(3, None).any(|g| g.m() == 3);
        assert!(found);
    }
}
