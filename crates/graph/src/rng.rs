//! Deterministic random number generation.
//!
//! All randomness in this workspace flows from explicit [`Seed`] values
//! through [`SplitMix64`], a small, fast, well-distributed generator. This
//! models the paper's *shared random seed* `S`: every machine / node that is
//! handed the same [`Seed`] observes exactly the same random bits, and
//! experiments are reproducible bit-for-bit across runs and platforms.
//!
//! # Examples
//!
//! ```
//! use csmpc_graph::rng::{Seed, SplitMix64};
//!
//! let mut rng = SplitMix64::new(Seed(42));
//! let a = rng.next_u64();
//! let b = SplitMix64::new(Seed(42)).next_u64();
//! assert_eq!(a, b);
//! ```

/// An explicit random seed, standing in for the paper's shared random string `S`.
///
/// Seeds are plain data: copy them, store them, derive new ones with
/// [`Seed::derive`]. Two parties holding the same `Seed` observe the same
/// randomness — the *shared randomness* assumption of the paper's MPC and
/// LOCAL models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Seed(pub u64);

impl Seed {
    /// Derives a stream-separated child seed.
    ///
    /// Used to split one shared seed into per-simulation, per-node or
    /// per-repetition seeds without correlation, mirroring how the paper
    /// "divides the seed equally among the simulations" (proof of Lemma 27).
    ///
    /// ```
    /// use csmpc_graph::rng::Seed;
    /// let s = Seed(7);
    /// assert_ne!(s.derive(0), s.derive(1));
    /// assert_eq!(s.derive(3), s.derive(3));
    /// ```
    #[must_use]
    pub fn derive(self, stream: u64) -> Seed {
        // SplitMix64 finalizer applied to a stream-tagged value; the
        // finalizer is a bijection, so distinct (seed, stream) pairs map to
        // distinct outputs with good avalanche behavior.
        let mut z = self
            .0
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(stream.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        Seed(z ^ (z >> 31))
    }
}

impl From<u64> for Seed {
    fn from(v: u64) -> Self {
        Seed(v)
    }
}

impl core::fmt::Display for Seed {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Seed({:#x})", self.0)
    }
}

/// The SplitMix64 pseudorandom generator (Steele, Lea & Flood 2014).
///
/// Small state, excellent statistical quality for simulation purposes, and —
/// crucially for this reproduction — trivially portable and deterministic.
///
/// # Examples
///
/// ```
/// use csmpc_graph::rng::{Seed, SplitMix64};
/// let mut rng = SplitMix64::new(Seed(1));
/// let x = rng.range(0, 10);
/// assert!(x < 10);
/// let p = rng.f64();
/// assert!((0.0..1.0).contains(&p));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: Seed) -> Self {
        SplitMix64 { state: seed.0 }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[lo, hi)` using Lemire-style rejection.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Rejection sampling for exact uniformity.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return lo + v % span;
            }
        }
    }

    /// Returns a uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.range(0, n as u64) as usize
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Returns a single fair random bit.
    pub fn bit(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Chooses a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose from empty slice");
        &xs[self.index(xs.len())]
    }

    /// Draws a uniformly random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).collect();
        self.shuffle(&mut v);
        v
    }
}

/// A prepared uniform sampler over a fixed `[lo, hi)` range.
///
/// [`SplitMix64::range`] pays two hardware divisions per draw (the
/// rejection-zone computation and the `% span` reduction). Hot loops that
/// draw many values from one fixed range — edge placement over `M`
/// machines, per-mille transport coins — can hoist both: `FastRange`
/// precomputes the rejection zone once and replaces the per-draw remainder
/// with a multiply-high sequence (Lemire, Kaser & Kurz, *Faster Remainder
/// by Direct Computation*, 2019), which is exact for every 64-bit divisor.
///
/// The value stream is **bit-identical** to calling
/// `rng.range(lo, hi)`: the same rejection zone, the same accepted raw
/// draws, the same reduced values — reproducibility fingerprints cannot
/// observe which path produced a draw. `tests` below prove the remainder
/// exact on adversarial divisors and the stream equal draw-for-draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastRange {
    lo: u64,
    span: u64,
    zone: u64,
    /// `ceil(2^128 / span)`, the fixed-point reciprocal; unused (zero) for
    /// `span == 1`, whose remainder is identically zero.
    magic: u128,
}

impl FastRange {
    /// Prepares a sampler for `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[must_use]
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        FastRange {
            lo,
            span,
            zone: u64::MAX - (u64::MAX % span),
            // ceil(2^128 / span) == floor((2^128 - 1) / span) + 1 for any
            // span >= 2 (exact also at powers of two); span == 1 would
            // overflow and never consults the reciprocal.
            magic: if span == 1 {
                0
            } else {
                u128::MAX / span as u128 + 1
            },
        }
    }

    /// Prepares a sampler for `[0, n)`, the [`SplitMix64::index`] range.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn index(n: usize) -> Self {
        FastRange::new(0, n as u64)
    }

    // #[csmpc_hot]
    /// `v % span` without a division: the low 128 bits of `v * magic` are
    /// the fractional part of `v / span` in 128-bit fixed point;
    /// multiplying back by `span` and taking the integer part recovers the
    /// remainder exactly (LKK 2019, Theorem 1 — exact because
    /// `span * 2^64 <= 2^128` for every 64-bit `span`).
    #[inline]
    #[must_use]
    pub fn rem(&self, v: u64) -> u64 {
        if self.span == 1 {
            return 0;
        }
        let frac = self.magic.wrapping_mul(u128::from(v));
        // (frac * span) >> 128, via 64-bit limbs so nothing overflows u128.
        let lo = u128::from(frac as u64);
        let hi = u128::from((frac >> 64) as u64);
        let s = u128::from(self.span);
        ((hi * s + ((lo * s) >> 64)) >> 64) as u64
    }

    // #[csmpc_hot]
    /// Draws one value, consuming exactly the raw `next_u64` outputs (and
    /// accepting exactly the same one) that `rng.range(lo, hi)` would.
    #[inline]
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        loop {
            let v = rng.next_u64();
            if v < self.zone {
                return self.lo + self.rem(v);
            }
        }
    }

    /// Draws one value from a `[0, n)` sampler as a `usize`, the
    /// [`SplitMix64::index`] counterpart.
    #[inline]
    pub fn sample_index(&self, rng: &mut SplitMix64) -> usize {
        self.sample(rng) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(Seed(99));
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(Seed(99));
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn derive_separates_streams() {
        let s = Seed(5);
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(s.derive(i)), "collision at stream {i}");
        }
    }

    #[test]
    fn range_bounds_and_coverage() {
        let mut r = SplitMix64::new(Seed(1));
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.range(3, 13);
            assert!((3..13).contains(&v));
            seen[(v - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&x| x), "all values in range should appear");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(Seed(2));
        for _ in 0..1000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_roughly_half() {
        let mut r = SplitMix64::new(Seed(3));
        let mean: f64 = (0..10_000).map(|_| r.f64()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(Seed(4));
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn bernoulli_rate() {
        let mut r = SplitMix64::new(Seed(6));
        let hits = (0..10_000).filter(|_| r.bernoulli(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits} out of bounds");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SplitMix64::new(Seed(0)).range(5, 5);
    }

    #[test]
    fn fast_range_rem_exact_on_adversarial_divisors() {
        // Powers of two, their neighbors, tiny and near-maximal divisors —
        // the edge cases of the fixed-point reciprocal.
        let mut divisors = vec![1u64, 2, 3, 5, 7, 1000, u64::MAX, u64::MAX - 1];
        for k in 1..64 {
            let p = 1u64 << k;
            divisors.extend([p, p - 1, p + 1]);
        }
        let mut probe = SplitMix64::new(Seed(0xfa57));
        for &d in &divisors {
            let fr = FastRange::new(0, d.max(1));
            for v in [0, 1, d - 1, d, d.wrapping_add(1), u64::MAX, u64::MAX - 1] {
                assert_eq!(fr.rem(v), v % d, "v={v} d={d}");
            }
            for _ in 0..64 {
                let v = probe.next_u64();
                assert_eq!(fr.rem(v), v % d, "v={v} d={d}");
            }
        }
    }

    #[test]
    fn fast_range_stream_matches_range_draw_for_draw() {
        for (lo, hi) in [(0u64, 1u64), (0, 7), (3, 13), (0, 616), (5, u64::MAX)] {
            let fr = FastRange::new(lo, hi);
            let mut a = SplitMix64::new(Seed(0xc0de));
            let mut b = a.clone();
            for _ in 0..512 {
                assert_eq!(fr.sample(&mut a), b.range(lo, hi), "[{lo}, {hi})");
            }
            assert_eq!(a, b, "rejection streams diverged on [{lo}, {hi})");
        }
    }

    proptest::proptest! {
        #[test]
        fn fast_range_rem_matches_hardware_remainder(v in 0u64..=u64::MAX, d in 1u64..=u64::MAX) {
            let fr = FastRange::new(0, d);
            proptest::prop_assert_eq!(fr.rem(v), v % d);
        }

        #[test]
        fn fast_range_sample_matches_range(
            seed in 0u64..=u64::MAX,
            lo in 0u64..u64::MAX,
            span in 1u64..=u64::MAX,
            reps in 1usize..64,
        ) {
            let hi = lo.saturating_add(span).max(lo + 1);
            let fr = FastRange::new(lo, hi);
            let mut a = SplitMix64::new(Seed(seed));
            let mut b = a.clone();
            for _ in 0..reps {
                proptest::prop_assert_eq!(fr.sample(&mut a), b.range(lo, hi));
            }
            proptest::prop_assert_eq!(&a, &b);
        }
    }
}
