//! Centered graphs, radius balls, and `D`-radius-identical comparison
//! (paper Definition 23).
//!
//! A *centered graph* is a connected graph with a designated center; two
//! centered graphs are `D`-radius-identical when the topologies and node
//! **IDs** (names are irrelevant) of the `D`-radius balls around their
//! centers coincide. This is the indistinguishability notion on which both
//! the LOCAL lower-bound machinery and the MPC lifting rest.
//!
//! # Hot-path layout
//!
//! Ball extraction runs once per vertex per repetition inside every ball
//! evaluator and MPC graph-exponentiation sweep, so it is the single
//! hottest routine in the codebase. The implementation is built around a
//! reusable [`BallWorkspace`]: a `u64`-word visited bitset plus flat
//! `dist`/`queue` arrays and a bounded BFS that touches only the ball
//! itself (not all of `G`), with no per-call `BTreeMap` and no
//! [`GraphBuilder`] revalidation.
//! The convenience free functions [`ball`] and [`radius_identical`] borrow
//! a thread-local workspace; sweeps that want explicit control (e.g. to
//! pair the workspace with a [`CsrAdjacency`]) use
//! [`with_thread_workspace`]. The pre-workspace implementation survives in
//! [`reference`] as the differential-testing oracle.
//!
//! [`GraphBuilder`]: crate::GraphBuilder

use crate::csr::CsrAdjacency;
use crate::graph::{Graph, NodeId, NodeName};
use std::cell::RefCell;

/// A connected graph together with a designated center node index.
///
/// # Examples
///
/// ```
/// use csmpc_graph::{generators, ball::CenteredGraph};
/// let g = generators::path(5);
/// let c = CenteredGraph::new(g, 2).unwrap();
/// assert_eq!(c.radius_from_center(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CenteredGraph {
    graph: Graph,
    center: usize,
}

impl CenteredGraph {
    /// Wraps a graph with a chosen center.
    ///
    /// Returns `None` if the graph is disconnected or the center index is out
    /// of range (the paper's centered graphs are connected by definition).
    #[must_use]
    pub fn new(graph: Graph, center: usize) -> Option<Self> {
        if center >= graph.n() || !graph.is_connected() || graph.is_empty() {
            return None;
        }
        Some(CenteredGraph { graph, center })
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The center's node index.
    #[must_use]
    pub fn center(&self) -> usize {
        self.center
    }

    /// The center's ID.
    #[must_use]
    pub fn center_id(&self) -> NodeId {
        self.graph.id(self.center)
    }

    /// Maximum distance from the center to any node (its eccentricity).
    #[must_use]
    pub fn radius_from_center(&self) -> usize {
        self.graph
            .bfs_distances(self.center)
            .into_iter()
            .filter(|&d| d != usize::MAX)
            .max()
            .unwrap_or(0)
    }
}

/// Reusable scratch state for ball extraction and radius-identity checks.
///
/// All per-call bookkeeping lives in flat arrays indexed by original node
/// index. Visitation is a `u64`-word bitset — 1/32nd the memory traffic of
/// the former `u32` epoch-stamp array at million-vertex scale — kept
/// all-zero *between* calls: a call sets the bits of the nodes it visits
/// and zeroes exactly the words containing ball members before returning
/// (every set bit belongs to a ball member, so that restores all-zero).
/// Switching the workspace between graphs of any sizes therefore needs no
/// O(n) clearing and can never observe state from an earlier call (see the
/// reuse regression test in `tests/ball_workspace.rs`).
///
/// The workspace is deliberately `!Sync`; parallel sweeps give each worker
/// its own (the thread-local used by [`ball`] does exactly that).
#[derive(Debug, Default)]
pub struct BallWorkspace {
    /// Visited bitset (`n.div_ceil(64)` words), lazily grown to the
    /// largest `n` seen; all-zero except during a call.
    visited: Vec<u64>,
    /// BFS distance from the center; valid only where stamped.
    dist: Vec<u32>,
    /// BFS queue (flat, head-indexed — no `VecDeque` ring bookkeeping).
    queue: Vec<u32>,
    /// Ball members in BFS order, then sorted ascending.
    nodes: Vec<u32>,
    /// Original index → ball index; valid only where stamped.
    new_index: Vec<u32>,
    /// Scratch `(id, index)` correspondences for radius-identity.
    pairs_a: Vec<(u64, u32)>,
    /// Second correspondence buffer.
    pairs_b: Vec<(u64, u32)>,
    /// Scratch neighbor-ID sets for radius-identity.
    ids_a: Vec<u64>,
    /// Second neighbor-ID buffer.
    ids_b: Vec<u64>,
}

impl BallWorkspace {
    /// A fresh workspace; arrays grow on first use.
    #[must_use]
    pub fn new() -> Self {
        BallWorkspace::default()
    }

    /// Starts a new call on a graph of `n` nodes: grows the flat arrays if
    /// needed. The visited bitset is already all-zero (the previous call
    /// restored it on exit; fresh words are zeroed by `resize`).
    fn begin(&mut self, n: usize) {
        let words = n.div_ceil(64);
        if self.visited.len() < words {
            self.visited.resize(words, 0);
        }
        if self.dist.len() < n {
            self.dist.resize(n, 0);
            self.new_index.resize(n, 0);
        }
    }

    /// The `r`-radius ball around node `v` of `g` — same contract and
    /// bit-identical output as the top-level [`ball`] function.
    ///
    /// # Panics
    ///
    /// Panics if `v >= g.n()`.
    // #[csmpc_hot]
    #[must_use]
    pub fn ball(&mut self, g: &Graph, v: usize, r: usize) -> (Graph, usize, Vec<usize>) {
        self.ball_inner(g, None, v, r)
    }

    /// [`BallWorkspace::ball`] reading adjacency from a packed CSR view —
    /// the fastest path for whole-graph sweeps that already built one.
    ///
    /// # Panics
    ///
    /// Panics if `v >= g.n()` or `csr.n() != g.n()`.
    // #[csmpc_hot]
    #[must_use]
    pub fn ball_csr(
        &mut self,
        g: &Graph,
        csr: &CsrAdjacency,
        v: usize,
        r: usize,
    ) -> (Graph, usize, Vec<usize>) {
        assert_eq!(csr.n(), g.n(), "CSR view does not match the graph");
        self.ball_inner(g, Some(csr), v, r)
    }

    // #[csmpc_hot]
    fn ball_inner(
        &mut self,
        g: &Graph,
        csr: Option<&CsrAdjacency>,
        v: usize,
        r: usize,
    ) -> (Graph, usize, Vec<usize>) {
        assert!(v < g.n(), "node index {v} out of range");
        self.begin(g.n());
        // Distances are < n ≤ u32::MAX (adjacency is u32-indexed), so a
        // clamped radius is exact for every reachable node.
        let r32 = u32::try_from(r).unwrap_or(u32::MAX);
        self.queue.clear();
        self.nodes.clear();
        self.visited[v >> 6] |= 1 << (v & 63);
        self.dist[v] = 0;
        self.queue.push(v as u32);
        self.nodes.push(v as u32);
        let mut head = 0usize;
        while head < self.queue.len() {
            let u = self.queue[head] as usize;
            head += 1;
            let du = self.dist[u];
            if du == r32 {
                continue;
            }
            let nbrs = match csr {
                Some(c) => c.neighbors(u),
                None => g.neighbors(u),
            };
            for &w in nbrs {
                let wi = w as usize;
                if self.visited[wi >> 6] & (1 << (wi & 63)) == 0 {
                    self.visited[wi >> 6] |= 1 << (wi & 63);
                    self.dist[wi] = du + 1;
                    self.queue.push(w);
                    self.nodes.push(w);
                }
            }
        }
        // Ascending original order, matching `(0..n).filter(...)` of the
        // reference implementation bit-for-bit.
        self.nodes.sort_unstable();
        let k = self.nodes.len();
        for (i, &u) in self.nodes.iter().enumerate() {
            self.new_index[u as usize] = i as u32;
        }
        let mut ids: Vec<NodeId> = Vec::with_capacity(k);
        let mut names: Vec<NodeName> = Vec::with_capacity(k);
        let mut adj: Vec<Vec<u32>> = Vec::with_capacity(k);
        for &u in &self.nodes {
            let ui = u as usize;
            ids.push(g.id(ui));
            names.push(g.name(ui));
            let nbrs = match csr {
                Some(c) => c.neighbors(ui),
                None => g.neighbors(ui),
            };
            let mut row = Vec::new();
            for &w in nbrs {
                let wi = w as usize;
                if self.visited[wi >> 6] & (1 << (wi & 63)) != 0 {
                    // Ascending neighbors map through a monotone `new_index`,
                    // so each row stays sorted without re-sorting.
                    row.push(self.new_index[wi]);
                }
            }
            adj.push(row);
        }
        let center_pos = self.new_index[v] as usize;
        let original: Vec<usize> = self.nodes.iter().map(|&u| u as usize).collect();
        // Restore the all-zero invariant: every set bit belongs to a ball
        // member, so zeroing the members' words clears the whole set in
        // O(ball) rather than O(n).
        for &u in &self.nodes {
            self.visited[(u as usize) >> 6] = 0;
        }
        (Graph::from_parts(ids, names, adj), center_pos, original)
    }

    /// `d`-radius-identity of two centered graphs — same contract as the
    /// top-level [`radius_identical`], with flat sorted `(id, index)`
    /// correspondences in place of the reference `BTreeMap`s.
    // #[csmpc_hot]
    #[must_use]
    pub fn radius_identical(
        &mut self,
        g1: &Graph,
        c1: usize,
        g2: &Graph,
        c2: usize,
        d: usize,
    ) -> bool {
        let (b1, ctr1, _) = self.ball(g1, c1, d);
        let (b2, ctr2, _) = self.ball(g2, c2, d);
        if b1.id(ctr1) != b2.id(ctr2) || b1.n() != b2.n() || b1.m() != b2.m() {
            return false;
        }
        // ID → index correspondences as sorted flat pairs; duplicate IDs
        // inside a ball mean an ambiguous correspondence (illegal input).
        self.pairs_a.clear();
        self.pairs_b.clear();
        self.pairs_a
            .extend((0..b1.n()).map(|i| (b1.id(i).0, i as u32)));
        self.pairs_b
            .extend((0..b2.n()).map(|i| (b2.id(i).0, i as u32)));
        self.pairs_a.sort_unstable();
        self.pairs_b.sort_unstable();
        if self.pairs_a.windows(2).any(|w| w[0].0 == w[1].0)
            || self.pairs_b.windows(2).any(|w| w[0].0 == w[1].0)
        {
            return false;
        }
        for k in 0..self.pairs_a.len() {
            if self.pairs_a[k].0 != self.pairs_b[k].0 {
                return false;
            }
        }
        for k in 0..self.pairs_a.len() {
            let i1 = self.pairs_a[k].1 as usize;
            let i2 = self.pairs_b[k].1 as usize;
            self.ids_a.clear();
            self.ids_b.clear();
            self.ids_a
                .extend(b1.neighbors(i1).iter().map(|&w| b1.id(w as usize).0));
            self.ids_b
                .extend(b2.neighbors(i2).iter().map(|&w| b2.id(w as usize).0));
            self.ids_a.sort_unstable();
            self.ids_b.sort_unstable();
            if self.ids_a != self.ids_b {
                return false;
            }
        }
        // Distances from the centers must also agree: the ball of radius d
        // could otherwise match as a graph while nodes sit at different
        // depths. Balls are small, so the O(ball) distance vectors are cheap.
        let d1 = b1.bfs_distances(ctr1);
        let d2 = b2.bfs_distances(ctr2);
        for k in 0..self.pairs_a.len() {
            if d1[self.pairs_a[k].1 as usize] != d2[self.pairs_b[k].1 as usize] {
                return false;
            }
        }
        true
    }
}

thread_local! {
    static THREAD_WS: RefCell<BallWorkspace> = RefCell::new(BallWorkspace::new());
}

/// Runs `f` with this thread's shared [`BallWorkspace`].
///
/// Sweeps that extract many balls (optionally via
/// [`BallWorkspace::ball_csr`]) use this instead of constructing a fresh
/// workspace per call; the buffers persist for the life of the thread.
///
/// # Panics
///
/// Panics if called re-entrantly from within `f` (the workspace is a
/// single exclusive borrow).
pub fn with_thread_workspace<R>(f: impl FnOnce(&mut BallWorkspace) -> R) -> R {
    THREAD_WS.with(|ws| f(&mut ws.borrow_mut()))
}

/// The `r`-radius ball around node `v` of `g`: the induced subgraph on all
/// nodes within distance `r`, returned as a graph plus the center's new index
/// and the original indices of the ball's nodes.
///
/// Borrows the calling thread's [`BallWorkspace`]; output is bit-identical
/// to [`reference::ball`].
///
/// # Panics
///
/// Panics if `v >= g.n()`.
#[must_use]
pub fn ball(g: &Graph, v: usize, r: usize) -> (Graph, usize, Vec<usize>) {
    with_thread_workspace(|ws| ws.ball(g, v, r))
}

/// Tests whether the `d`-radius balls around `(g1, c1)` and `(g2, c2)` are
/// identical in topology and IDs (Definition 23). Names are ignored.
///
/// Because IDs are component-unique, the correspondence between the two
/// balls — if one exists — is forced: nodes must match by ID. The check is
/// therefore exact, not an isomorphism search. Borrows the calling thread's
/// [`BallWorkspace`]; agrees exactly with [`reference::radius_identical`].
#[must_use]
pub fn radius_identical(g1: &Graph, c1: usize, g2: &Graph, c2: usize, d: usize) -> bool {
    with_thread_workspace(|ws| ws.radius_identical(g1, c1, g2, c2, d))
}

/// Constructs the canonical pair of `D`-radius-identical centered graphs the
/// lifting argument uses in spirit: two long paths whose centers see
/// identical `D`-balls but whose far ends differ (in ID), so any problem
/// whose output at the center must reflect the far end forces sensitivity.
///
/// Returns `(G, center, G', center')` with both graphs paths of `2d + 1 + k`
/// nodes; IDs agree on the `d`-ball around the centers and differ beyond.
#[must_use]
pub fn identical_ball_path_pair(d: usize, k: usize) -> (Graph, usize, Graph, usize) {
    use crate::generators::path;
    use crate::ops::relabel_ids;
    let n = 2 * d + 1 + k;
    let center = d;
    let g = path(n);
    // g' alters IDs strictly outside the d-ball around the center.
    let gp = relabel_ids(&g, |v, id| {
        if v > 2 * d {
            NodeId(id.0 + 1_000_000)
        } else {
            id
        }
    });
    (g, center, gp, center)
}

/// The pre-workspace implementations, kept verbatim as the differential-
/// testing oracle: full-graph BFS plus [`crate::ops::induced`] for balls,
/// `BTreeMap` ID maps for radius-identity. Property tests assert the
/// workspace path agrees with these exactly on random graphs.
pub mod reference {
    use super::{Graph, NodeId};
    use crate::ops::induced;
    use std::collections::BTreeMap;

    /// Oracle implementation of [`super::ball`]: full-`n` BFS, filter,
    /// induced-subgraph rebuild through the validating builder.
    ///
    /// # Panics
    ///
    /// Panics if `v >= g.n()`.
    #[must_use]
    pub fn ball(g: &Graph, v: usize, r: usize) -> (Graph, usize, Vec<usize>) {
        let dist = g.bfs_distances(v);
        let nodes: Vec<usize> = (0..g.n()).filter(|&u| dist[u] <= r).collect();
        let center_pos = nodes
            .iter()
            .position(|&u| u == v)
            .expect("center is within its own ball");
        let (sub, original) = induced(g, &nodes);
        (sub, center_pos, original)
    }

    /// Oracle implementation of [`super::radius_identical`] over `BTreeMap`
    /// ID → index maps.
    #[must_use]
    pub fn radius_identical(g1: &Graph, c1: usize, g2: &Graph, c2: usize, d: usize) -> bool {
        let (b1, ctr1, _) = ball(g1, c1, d);
        let (b2, ctr2, _) = ball(g2, c2, d);
        if b1.id(ctr1) != b2.id(ctr2) || b1.n() != b2.n() || b1.m() != b2.m() {
            return false;
        }
        // Build ID -> index maps; duplicate IDs inside a ball are impossible
        // for legal graphs (a ball is within one component).
        let map1: BTreeMap<NodeId, usize> = (0..b1.n()).map(|i| (b1.id(i), i)).collect();
        let map2: BTreeMap<NodeId, usize> = (0..b2.n()).map(|i| (b2.id(i), i)).collect();
        if map1.len() != b1.n() || map2.len() != b2.n() {
            return false; // illegal input: ambiguous correspondence
        }
        for (id, &i1) in &map1 {
            let Some(&i2) = map2.get(id) else {
                return false;
            };
            // Compare neighbor ID sets.
            let mut n1: Vec<NodeId> = b1
                .neighbors(i1)
                .iter()
                .map(|&w| b1.id(w as usize))
                .collect();
            let mut n2: Vec<NodeId> = b2
                .neighbors(i2)
                .iter()
                .map(|&w| b2.id(w as usize))
                .collect();
            n1.sort_unstable();
            n2.sort_unstable();
            if n1 != n2 {
                return false;
            }
        }
        // Distances from the centers must also agree: the ball of radius d
        // could otherwise match as a graph while nodes sit at different
        // depths.
        let d1 = b1.bfs_distances(ctr1);
        let d2 = b2.bfs_distances(ctr2);
        for (id, &i1) in &map1 {
            if d1[i1] != d2[map2[id]] {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn ball_of_path() {
        let g = generators::path(9);
        let (b, c, orig) = ball(&g, 4, 2);
        assert_eq!(b.n(), 5);
        assert_eq!(b.m(), 4);
        assert_eq!(orig, vec![2, 3, 4, 5, 6]);
        assert_eq!(b.id(c), g.id(4));
    }

    #[test]
    fn ball_radius_zero() {
        let g = generators::cycle(5);
        let (b, c, _) = ball(&g, 3, 0);
        assert_eq!(b.n(), 1);
        assert_eq!(b.id(c), g.id(3));
    }

    #[test]
    fn ball_covers_component() {
        let g = generators::cycle(6);
        let (b, _, _) = ball(&g, 0, 10);
        assert_eq!(b.n(), 6);
        assert_eq!(b.m(), 6);
    }

    #[test]
    fn ball_matches_reference_on_generators() {
        let seeds = [3u64, 17, 99];
        for &s in &seeds {
            let g = generators::random_tree(30, crate::rng::Seed(s));
            for v in 0..g.n() {
                for r in 0..4 {
                    assert_eq!(ball(&g, v, r), reference::ball(&g, v, r), "v={v} r={r}");
                }
            }
        }
    }

    #[test]
    fn ball_csr_matches_plain_ball() {
        let g = generators::random_tree(25, crate::rng::Seed(8));
        let csr = crate::CsrAdjacency::from_graph(&g);
        let mut ws = BallWorkspace::new();
        for v in 0..g.n() {
            assert_eq!(ws.ball_csr(&g, &csr, v, 2), ws.ball(&g, v, 2));
        }
    }

    #[test]
    fn identical_pair_is_identical_up_to_d() {
        let d = 3;
        let (g, c, gp, cp) = identical_ball_path_pair(d, 4);
        for r in 0..=d {
            assert!(radius_identical(&g, c, &gp, cp, r), "radius {r}");
        }
        assert!(!radius_identical(&g, c, &gp, cp, d + 1));
    }

    #[test]
    fn different_topology_not_identical() {
        let p = generators::path(5);
        let c5 = generators::cycle(5);
        assert!(!radius_identical(&p, 2, &c5, 2, 2));
    }

    #[test]
    fn same_graph_identical_at_all_radii() {
        let g = generators::random_tree(20, crate::rng::Seed(11));
        for r in 0..5 {
            assert!(radius_identical(&g, 7, &g, 7, r));
        }
    }

    #[test]
    fn different_center_ids_not_identical() {
        let g = generators::path(5);
        assert!(!radius_identical(&g, 1, &g, 3, 0));
    }

    #[test]
    fn centered_graph_rejects_disconnected() {
        let g = generators::two_cycles(8);
        assert!(CenteredGraph::new(g, 0).is_none());
    }

    #[test]
    fn centered_graph_radius() {
        let g = generators::path(7);
        let c = CenteredGraph::new(g, 0).unwrap();
        assert_eq!(c.radius_from_center(), 6);
    }

    #[test]
    fn names_are_ignored() {
        let g = generators::path(5);
        let renamed = crate::ops::with_fresh_names(&g, 10_000);
        assert!(radius_identical(&g, 2, &renamed, 2, 2));
    }

    #[test]
    fn depth_mismatch_detected() {
        // A 6-cycle and a 6-path can have balls with equal node/edge counts
        // at radius 3 from suitable centers, but depths differ.
        let cyc = generators::cycle(6);
        let p = generators::path(6);
        assert!(!radius_identical(&cyc, 0, &p, 0, 3));
    }
}
