//! Centered graphs, radius balls, and `D`-radius-identical comparison
//! (paper Definition 23).
//!
//! A *centered graph* is a connected graph with a designated center; two
//! centered graphs are `D`-radius-identical when the topologies and node
//! **IDs** (names are irrelevant) of the `D`-radius balls around their
//! centers coincide. This is the indistinguishability notion on which both
//! the LOCAL lower-bound machinery and the MPC lifting rest.

use crate::graph::{Graph, NodeId};
use crate::ops::induced;
use std::collections::BTreeMap;

/// A connected graph together with a designated center node index.
///
/// # Examples
///
/// ```
/// use csmpc_graph::{generators, ball::CenteredGraph};
/// let g = generators::path(5);
/// let c = CenteredGraph::new(g, 2).unwrap();
/// assert_eq!(c.radius_from_center(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CenteredGraph {
    graph: Graph,
    center: usize,
}

impl CenteredGraph {
    /// Wraps a graph with a chosen center.
    ///
    /// Returns `None` if the graph is disconnected or the center index is out
    /// of range (the paper's centered graphs are connected by definition).
    #[must_use]
    pub fn new(graph: Graph, center: usize) -> Option<Self> {
        if center >= graph.n() || !graph.is_connected() || graph.is_empty() {
            return None;
        }
        Some(CenteredGraph { graph, center })
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The center's node index.
    #[must_use]
    pub fn center(&self) -> usize {
        self.center
    }

    /// The center's ID.
    #[must_use]
    pub fn center_id(&self) -> NodeId {
        self.graph.id(self.center)
    }

    /// Maximum distance from the center to any node (its eccentricity).
    #[must_use]
    pub fn radius_from_center(&self) -> usize {
        self.graph
            .bfs_distances(self.center)
            .into_iter()
            .filter(|&d| d != usize::MAX)
            .max()
            .unwrap_or(0)
    }
}

/// The `r`-radius ball around node `v` of `g`: the induced subgraph on all
/// nodes within distance `r`, returned as a graph plus the center's new index
/// and the original indices of the ball's nodes.
///
/// # Panics
///
/// Panics if `v >= g.n()`.
#[must_use]
pub fn ball(g: &Graph, v: usize, r: usize) -> (Graph, usize, Vec<usize>) {
    let dist = g.bfs_distances(v);
    let nodes: Vec<usize> = (0..g.n()).filter(|&u| dist[u] <= r).collect();
    let center_pos = nodes
        .iter()
        .position(|&u| u == v)
        .expect("center is within its own ball");
    let (sub, original) = induced(g, &nodes);
    (sub, center_pos, original)
}

/// Tests whether the `d`-radius balls around `(g1, c1)` and `(g2, c2)` are
/// identical in topology and IDs (Definition 23). Names are ignored.
///
/// Because IDs are component-unique, the correspondence between the two
/// balls — if one exists — is forced: nodes must match by ID. The check is
/// therefore exact, not an isomorphism search.
#[must_use]
pub fn radius_identical(g1: &Graph, c1: usize, g2: &Graph, c2: usize, d: usize) -> bool {
    let (b1, ctr1, _) = ball(g1, c1, d);
    let (b2, ctr2, _) = ball(g2, c2, d);
    if b1.id(ctr1) != b2.id(ctr2) || b1.n() != b2.n() || b1.m() != b2.m() {
        return false;
    }
    // Build ID -> index maps; duplicate IDs inside a ball are impossible for
    // legal graphs (a ball is within one component).
    let map1: BTreeMap<NodeId, usize> = (0..b1.n()).map(|i| (b1.id(i), i)).collect();
    let map2: BTreeMap<NodeId, usize> = (0..b2.n()).map(|i| (b2.id(i), i)).collect();
    if map1.len() != b1.n() || map2.len() != b2.n() {
        return false; // illegal input: ambiguous correspondence
    }
    for (id, &i1) in &map1 {
        let Some(&i2) = map2.get(id) else {
            return false;
        };
        // Compare neighbor ID sets.
        let mut n1: Vec<NodeId> = b1
            .neighbors(i1)
            .iter()
            .map(|&w| b1.id(w as usize))
            .collect();
        let mut n2: Vec<NodeId> = b2
            .neighbors(i2)
            .iter()
            .map(|&w| b2.id(w as usize))
            .collect();
        n1.sort_unstable();
        n2.sort_unstable();
        if n1 != n2 {
            return false;
        }
    }
    // Distances from the centers must also agree: the ball of radius d could
    // otherwise match as a graph while nodes sit at different depths.
    let d1 = b1.bfs_distances(ctr1);
    let d2 = b2.bfs_distances(ctr2);
    for (id, &i1) in &map1 {
        if d1[i1] != d2[map2[id]] {
            return false;
        }
    }
    true
}

/// Constructs the canonical pair of `D`-radius-identical centered graphs the
/// lifting argument uses in spirit: two long paths whose centers see
/// identical `D`-balls but whose far ends differ (in ID), so any problem
/// whose output at the center must reflect the far end forces sensitivity.
///
/// Returns `(G, center, G', center')` with both graphs paths of `2d + 1 + k`
/// nodes; IDs agree on the `d`-ball around the centers and differ beyond.
#[must_use]
pub fn identical_ball_path_pair(d: usize, k: usize) -> (Graph, usize, Graph, usize) {
    use crate::generators::path;
    use crate::ops::relabel_ids;
    let n = 2 * d + 1 + k;
    let center = d;
    let g = path(n);
    // g' alters IDs strictly outside the d-ball around the center.
    let gp = relabel_ids(&g, |v, id| {
        if v > 2 * d {
            NodeId(id.0 + 1_000_000)
        } else {
            id
        }
    });
    (g, center, gp, center)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn ball_of_path() {
        let g = generators::path(9);
        let (b, c, orig) = ball(&g, 4, 2);
        assert_eq!(b.n(), 5);
        assert_eq!(b.m(), 4);
        assert_eq!(orig, vec![2, 3, 4, 5, 6]);
        assert_eq!(b.id(c), g.id(4));
    }

    #[test]
    fn ball_radius_zero() {
        let g = generators::cycle(5);
        let (b, c, _) = ball(&g, 3, 0);
        assert_eq!(b.n(), 1);
        assert_eq!(b.id(c), g.id(3));
    }

    #[test]
    fn ball_covers_component() {
        let g = generators::cycle(6);
        let (b, _, _) = ball(&g, 0, 10);
        assert_eq!(b.n(), 6);
        assert_eq!(b.m(), 6);
    }

    #[test]
    fn identical_pair_is_identical_up_to_d() {
        let d = 3;
        let (g, c, gp, cp) = identical_ball_path_pair(d, 4);
        for r in 0..=d {
            assert!(radius_identical(&g, c, &gp, cp, r), "radius {r}");
        }
        assert!(!radius_identical(&g, c, &gp, cp, d + 1));
    }

    #[test]
    fn different_topology_not_identical() {
        let p = generators::path(5);
        let c5 = generators::cycle(5);
        assert!(!radius_identical(&p, 2, &c5, 2, 2));
    }

    #[test]
    fn same_graph_identical_at_all_radii() {
        let g = generators::random_tree(20, crate::rng::Seed(11));
        for r in 0..5 {
            assert!(radius_identical(&g, 7, &g, 7, r));
        }
    }

    #[test]
    fn different_center_ids_not_identical() {
        let g = generators::path(5);
        assert!(!radius_identical(&g, 1, &g, 3, 0));
    }

    #[test]
    fn centered_graph_rejects_disconnected() {
        let g = generators::two_cycles(8);
        assert!(CenteredGraph::new(g, 0).is_none());
    }

    #[test]
    fn centered_graph_radius() {
        let g = generators::path(7);
        let c = CenteredGraph::new(g, 0).unwrap();
        assert_eq!(c.radius_from_center(), 6);
    }

    #[test]
    fn names_are_ignored() {
        let g = generators::path(5);
        let renamed = crate::ops::with_fresh_names(&g, 10_000);
        assert!(radius_identical(&g, 2, &renamed, 2, 2));
    }

    #[test]
    fn depth_mismatch_detected() {
        // A 6-cycle and a 6-path can have balls with equal node/edge counts
        // at radius 3 from suitable centers, but depths differ.
        let cyc = generators::cycle(6);
        let p = generators::path(6);
        assert!(!radius_identical(&cyc, 0, &p, 0, 3));
    }
}
