//! Graph operations used throughout the framework: induced subgraphs,
//! disjoint unions, line graphs, relabelings, and component extraction.
//!
//! These are exactly the operations the paper's constructions rely on:
//! *normal families* (Definition 7) are closed under node removal
//! ([`induced`]) and disjoint union ([`disjoint_union`]); edge-labeling
//! problems are reduced to vertex labeling via the *line graph*
//! ([`line_graph`], Section 2.3); simulation graphs re-name copies while
//! keeping IDs ([`with_fresh_names`], Lemma 25).

use crate::graph::{Graph, GraphBuilder, NodeId, NodeName};

/// The induced subgraph on `nodes` (indices into `g`).
///
/// IDs and names are preserved. The returned mapping `old_index[i]` gives,
/// for each new index `i`, the index the node had in `g`.
///
/// # Panics
///
/// Panics if any index in `nodes` is out of range or repeated.
#[must_use]
pub fn induced(g: &Graph, nodes: &[usize]) -> (Graph, Vec<usize>) {
    let mut new_index = vec![usize::MAX; g.n()];
    let mut b = GraphBuilder::new();
    for (i, &v) in nodes.iter().enumerate() {
        assert!(v < g.n(), "node index {v} out of range");
        assert!(new_index[v] == usize::MAX, "node index {v} repeated");
        new_index[v] = i;
        b.add_node(g.id(v), g.name(v));
    }
    for &v in nodes {
        for &w in g.neighbors(v) {
            let w = w as usize;
            if new_index[w] != usize::MAX && v < w {
                b.add_edge(new_index[v], new_index[w]);
            }
        }
    }
    let sub = b
        .build()
        .expect("induced subgraph of a valid graph is valid");
    (sub, nodes.to_vec())
}

/// Extracts the connected component containing node index `v`.
///
/// Returns the component as a standalone graph together with the new index
/// of `v` inside it.
///
/// # Panics
///
/// Panics if `v >= g.n()`.
#[must_use]
pub fn component_of(g: &Graph, v: usize) -> (Graph, usize) {
    let labels = g.component_labels();
    let target = labels[v];
    let nodes: Vec<usize> = (0..g.n()).filter(|&u| labels[u] == target).collect();
    let pos = nodes
        .iter()
        .position(|&u| u == v)
        .expect("v is in its own component");
    let (sub, _) = induced(g, &nodes);
    (sub, pos)
}

/// Disjoint union of graphs, concatenating node sets in order.
///
/// IDs and names are copied verbatim — callers that need global name
/// uniqueness (legality) should re-name copies with [`with_fresh_names`]
/// first, exactly as the Lemma 25 construction does for the non-"true"
/// copies of `G` inside `Γ_G`.
#[must_use]
pub fn disjoint_union(parts: &[&Graph]) -> Graph {
    let mut b = GraphBuilder::new();
    let mut offset = 0usize;
    for g in parts {
        for v in 0..g.n() {
            b.add_node(g.id(v), g.name(v));
        }
        for (u, v) in g.edges() {
            b.add_edge(offset + u, offset + v);
        }
        offset += g.n();
    }
    b.build().expect("union of valid graphs is valid")
}

/// A copy of `g` whose names are replaced by `base, base+1, …` in index
/// order. IDs are untouched.
#[must_use]
pub fn with_fresh_names(g: &Graph, base: u64) -> Graph {
    let mut b = GraphBuilder::new();
    for v in 0..g.n() {
        b.add_node(g.id(v), NodeName(base + v as u64));
    }
    for (u, v) in g.edges() {
        b.add_edge(u, v);
    }
    b.build().expect("renaming preserves validity")
}

/// A copy of `g` whose IDs are replaced via `f`. Names are untouched.
#[must_use]
pub fn relabel_ids(g: &Graph, f: impl Fn(usize, NodeId) -> NodeId) -> Graph {
    let mut b = GraphBuilder::new();
    for v in 0..g.n() {
        b.add_node(f(v, g.id(v)), g.name(v));
    }
    for (u, v) in g.edges() {
        b.add_edge(u, v);
    }
    b.build().expect("relabeling preserves validity")
}

/// Appends `k` isolated nodes, all sharing `id` (legal: they are in distinct
/// components) with fresh names `name_base, name_base+1, …`.
///
/// This is the "enough isolated nodes to raise the number of nodes to
/// exactly `N^{R+2}`" step of the Lemma 25 construction.
#[must_use]
pub fn with_isolated_nodes(g: &Graph, k: usize, id: NodeId, name_base: u64) -> Graph {
    let mut b = GraphBuilder::new();
    for v in 0..g.n() {
        b.add_node(g.id(v), g.name(v));
    }
    for i in 0..k {
        b.add_node(id, NodeName(name_base + i as u64));
    }
    for (u, v) in g.edges() {
        b.add_edge(u, v);
    }
    b.build().expect("adding isolated nodes preserves validity")
}

/// The line graph `L(g)`: one node per edge of `g`, adjacent when the edges
/// share an endpoint (paper Section 2.3).
///
/// IDs and names of a line-graph node are Cantor pairings of the endpoint
/// IDs / names, making them component-unique / globally unique whenever `g`
/// is legal. The returned `edge_of[i]` maps line-graph node `i` back to the
/// `(u, v)` edge of `g` it represents (`u < v`).
#[must_use]
pub fn line_graph(g: &Graph) -> (Graph, Vec<(usize, usize)>) {
    let edges: Vec<(usize, usize)> = g.edges().collect();
    let mut b = GraphBuilder::new();
    for &(u, v) in &edges {
        let (ia, ib) = order(g.id(u).0, g.id(v).0);
        let (na, nb) = order(g.name(u).0, g.name(v).0);
        b.add_node(NodeId(cantor(ia, ib)), NodeName(cantor(na, nb)));
    }
    // Adjacency: group edge indices by endpoint.
    let mut incident: Vec<Vec<usize>> = vec![Vec::new(); g.n()];
    for (i, &(u, v)) in edges.iter().enumerate() {
        incident[u].push(i);
        incident[v].push(i);
    }
    for list in &incident {
        for a in 0..list.len() {
            for bidx in a + 1..list.len() {
                b.add_edge(list[a], list[bidx]);
            }
        }
    }
    let lg = b.build().expect("line graph of a valid graph is valid");
    (lg, edges)
}

fn order(a: u64, b: u64) -> (u64, u64) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Cantor pairing function, injective on ordered pairs.
fn cantor(a: u64, b: u64) -> u64 {
    (a + b) * (a + b + 1) / 2 + b
}

/// `k` disjoint copies of `g` that share `g`'s IDs, with copy `0` keeping
/// `g`'s names (the *true copy*) and every other copy renamed to fresh names
/// starting from `fresh_base` (Lemma 25 construction).
#[must_use]
pub fn replicated(g: &Graph, k: usize, fresh_base: u64) -> Graph {
    let mut parts: Vec<Graph> = Vec::with_capacity(k);
    for c in 0..k {
        if c == 0 {
            parts.push(g.clone());
        } else {
            let base = fresh_base + ((c - 1) as u64) * g.n() as u64;
            parts.push(with_fresh_names(g, base));
        }
    }
    let refs: Vec<&Graph> = parts.iter().collect();
    disjoint_union(&refs)
}

/// The `k`-th power `G^k`: same nodes, edges between any two distinct
/// nodes at distance ≤ `k` in `g`. (`G^1 = G`.) Used for ruling sets and
/// the `Δ^{4t}`-coloring step of Theorem 45.
///
/// # Panics
///
/// Panics if `k == 0`.
#[must_use]
pub fn power_graph(g: &Graph, k: usize) -> Graph {
    assert!(k >= 1, "power must be at least 1");
    let mut b = GraphBuilder::new();
    for v in 0..g.n() {
        b.add_node(g.id(v), g.name(v));
    }
    for v in 0..g.n() {
        let dist = g.bfs_distances(v);
        for (w, d) in dist.iter().enumerate().skip(v + 1) {
            if *d <= k {
                b.add_edge(v, w);
            }
        }
    }
    b.build().expect("graph power is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::rng::Seed;

    #[test]
    fn power_graph_of_path() {
        let g = generators::path(5);
        let g2 = power_graph(&g, 2);
        assert_eq!(g2.n(), 5);
        // Path^2 on 5 nodes: edges at distance 1 (4) + distance 2 (3).
        assert_eq!(g2.m(), 7);
        assert!(g2.has_edge(0, 2));
        assert!(!g2.has_edge(0, 3));
    }

    #[test]
    fn power_one_is_identity() {
        let g = generators::random_gnp(12, 0.3, Seed(1));
        let g1 = power_graph(&g, 1);
        assert_eq!(g1.m(), g.m());
        for (u, v) in g.edges() {
            assert!(g1.has_edge(u, v));
        }
    }

    #[test]
    fn induced_path_middle() {
        let g = generators::path(5);
        let (sub, back) = induced(&g, &[1, 2, 3]);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 2);
        assert_eq!(back, vec![1, 2, 3]);
        assert_eq!(sub.id(0), g.id(1));
    }

    #[test]
    fn component_extraction() {
        let a = generators::cycle(4);
        let b = generators::path(3);
        let b2 = with_fresh_names(&b, 100);
        let u = disjoint_union(&[&a, &b2]);
        let (comp, pos) = component_of(&u, 5); // node 5 lies in the path part
        assert_eq!(comp.n(), 3);
        assert_eq!(comp.id(pos), u.id(5));
    }

    #[test]
    fn union_counts() {
        let a = generators::cycle(4);
        let b = generators::path(3);
        let u = disjoint_union(&[&a, &b]);
        assert_eq!(u.n(), 7);
        assert_eq!(u.m(), 4 + 2);
        assert_eq!(u.component_count(), 2);
    }

    #[test]
    fn fresh_names_unique_union_is_legal() {
        let g = generators::cycle(5);
        let g2 = with_fresh_names(&g, 1000);
        let u = disjoint_union(&[&g, &g2]);
        assert!(u.is_legal(), "same IDs in different components is legal");
    }

    #[test]
    fn union_without_renaming_is_illegal() {
        let g = generators::cycle(5);
        let u = disjoint_union(&[&g, &g]);
        assert!(!u.is_legal(), "duplicate names violate Definition 6");
    }

    #[test]
    fn isolated_nodes_share_id_legally() {
        let g = generators::path(3);
        let big = with_isolated_nodes(&g, 4, NodeId(999), 500);
        assert_eq!(big.n(), 7);
        assert_eq!(big.m(), g.m());
        assert!(big.is_legal());
    }

    #[test]
    fn line_graph_of_path() {
        // Path on 4 nodes has 3 edges; its line graph is a path on 3 nodes.
        let g = generators::path(4);
        let (lg, edge_of) = line_graph(&g);
        assert_eq!(lg.n(), 3);
        assert_eq!(lg.m(), 2);
        assert_eq!(edge_of.len(), 3);
        assert!(lg.is_legal());
    }

    #[test]
    fn line_graph_of_star() {
        // Star K_{1,4}: line graph is K_4.
        let g = generators::star(4);
        let (lg, _) = line_graph(&g);
        assert_eq!(lg.n(), 4);
        assert_eq!(lg.m(), 6);
    }

    #[test]
    fn line_graph_of_triangle_is_triangle() {
        let g = generators::cycle(3);
        let (lg, _) = line_graph(&g);
        assert_eq!(lg.n(), 3);
        assert_eq!(lg.m(), 3);
    }

    #[test]
    fn replication_true_copy_keeps_names() {
        let g = generators::random_gnp(8, 0.4, Seed(5));
        let r = replicated(&g, 3, 10_000);
        assert_eq!(r.n(), 24);
        assert!(r.is_legal());
        // True copy occupies indices 0..8 with original names.
        for v in 0..8 {
            assert_eq!(r.name(v), g.name(v));
            assert_eq!(r.id(v), g.id(v));
        }
        // Other copies share IDs but not names.
        for v in 0..8 {
            assert_eq!(r.id(8 + v), g.id(v));
            assert_ne!(r.name(8 + v), g.name(v));
        }
    }

    #[test]
    fn relabel_ids_keeps_names() {
        let g = generators::path(3);
        let h = relabel_ids(&g, |_, id| NodeId(id.0 + 100));
        assert_eq!(h.id(0), NodeId(100));
        assert_eq!(h.name(0), g.name(0));
    }
}
