//! Structural graph analysis helpers used by experiments and validators:
//! bipartiteness, girth, triangle counts, and degree statistics.

use crate::graph::Graph;

/// Is the graph bipartite? (BFS 2-coloring over every component.)
#[must_use]
pub fn is_bipartite(g: &Graph) -> bool {
    let mut color = vec![u8::MAX; g.n()];
    for s in 0..g.n() {
        if color[s] != u8::MAX {
            continue;
        }
        color[s] = 0;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                let w = w as usize;
                if color[w] == u8::MAX {
                    color[w] = 1 - color[v];
                    queue.push_back(w);
                } else if color[w] == color[v] {
                    return false;
                }
            }
        }
    }
    true
}

/// The girth (length of a shortest cycle), or `None` for forests.
///
/// BFS from every node; a cross/back edge at depths `(a, b)` witnesses a
/// cycle of length `a + b + 1`.
#[must_use]
pub fn girth(g: &Graph) -> Option<usize> {
    let mut best: Option<usize> = None;
    for s in 0..g.n() {
        let mut dist = vec![usize::MAX; g.n()];
        let mut parent = vec![usize::MAX; g.n()];
        dist[s] = 0;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                let w = w as usize;
                if dist[w] == usize::MAX {
                    dist[w] = dist[v] + 1;
                    parent[w] = v;
                    queue.push_back(w);
                } else if parent[v] != w && parent[w] != v {
                    // Non-tree edge: cycle through s of this length (may
                    // overestimate for cycles not through s; scanning all
                    // start nodes fixes that).
                    let len = dist[v] + dist[w] + 1;
                    best = Some(best.map_or(len, |b| b.min(len)));
                }
            }
        }
    }
    best
}

/// Number of triangles (3-cycles), each counted once.
#[must_use]
pub fn triangle_count(g: &Graph) -> usize {
    let mut count = 0usize;
    for (u, v) in g.edges() {
        // Intersect sorted adjacency lists, counting only w > v > u to
        // dedupe.
        let (a, b) = (g.neighbors(u), g.neighbors(v));
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if (a[i] as usize) > v {
                        count += 1;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    count
}

/// Histogram of degrees: `hist[d]` = number of nodes of degree `d`.
#[must_use]
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in 0..g.n() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Average degree `2m/n` (0 for the empty graph).
#[must_use]
pub fn average_degree(g: &Graph) -> f64 {
    if g.n() == 0 {
        0.0
    } else {
        2.0 * g.m() as f64 / g.n() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::rng::Seed;

    #[test]
    fn bipartiteness() {
        assert!(is_bipartite(&generators::cycle(6)));
        assert!(!is_bipartite(&generators::cycle(5)));
        assert!(is_bipartite(&generators::random_tree(20, Seed(1))));
        assert!(is_bipartite(&generators::random_bipartite(
            20,
            0.5,
            Seed(2)
        )));
        assert!(!is_bipartite(&generators::complete(3)));
    }

    #[test]
    fn girth_values() {
        assert_eq!(girth(&generators::cycle(7)), Some(7));
        assert_eq!(girth(&generators::complete(4)), Some(3));
        assert_eq!(girth(&generators::random_tree(15, Seed(3))), None);
        assert_eq!(girth(&generators::grid(3, 3)), Some(4));
    }

    #[test]
    fn triangles() {
        assert_eq!(triangle_count(&generators::complete(4)), 4);
        assert_eq!(triangle_count(&generators::complete(5)), 10);
        assert_eq!(triangle_count(&generators::cycle(5)), 0);
        assert_eq!(triangle_count(&generators::cycle(3)), 1);
        assert_eq!(
            triangle_count(&generators::random_bipartite(20, 0.6, Seed(4))),
            0
        );
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = generators::random_gnp(30, 0.2, Seed(5));
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), 30);
    }

    #[test]
    fn average_degree_of_regular() {
        let g = generators::circulant(12, 4);
        assert!((average_degree(&g) - 4.0).abs() < 1e-12);
    }
}
