//! Compressed-sparse-row adjacency: a flat, cache-friendly view of a
//! [`Graph`]'s neighbor lists.
//!
//! [`Graph`] stores one `Vec<u32>` per node, which is convenient to build
//! but scatters neighbor lists across the heap. Hot sweeps (ball
//! collection, per-vertex LOCAL evaluation) traverse every adjacency list
//! once per vertex per repetition; packing all targets into a single
//! array with per-node offsets removes a pointer indirection per node and
//! keeps consecutive lists on the same cache lines.
//!
//! A `CsrAdjacency` is a *view*: it copies the neighbor structure once at
//! construction and is immutable afterwards. Neighbor order is preserved
//! exactly (ascending, as [`Graph::neighbors`] guarantees), so any
//! traversal that swaps `g.neighbors(v)` for `csr.neighbors(v)` visits
//! nodes in the identical order — bit-for-bit determinism is unaffected.

use crate::graph::Graph;

/// Flat adjacency of a graph: `targets[offsets[v]..offsets[v + 1]]` are the
/// neighbors of node `v`, in the same ascending order as
/// [`Graph::neighbors`].
///
/// # Examples
///
/// ```
/// use csmpc_graph::{generators, CsrAdjacency};
/// let g = generators::cycle(5);
/// let csr = CsrAdjacency::from_graph(&g);
/// assert_eq!(csr.n(), 5);
/// assert_eq!(csr.neighbors(0), g.neighbors(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrAdjacency {
    /// `n + 1` prefix offsets into `targets`.
    offsets: Vec<u32>,
    /// Concatenated neighbor lists (`2m` entries for an undirected graph).
    targets: Vec<u32>,
}

impl CsrAdjacency {
    /// Packs `g`'s adjacency lists into CSR form.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than `u32::MAX` directed edges (far
    /// beyond any instance the substrate can hold in memory).
    #[must_use]
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.n();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut total: usize = 0;
        offsets.push(0);
        for v in 0..n {
            total += g.neighbors(v).len();
            offsets.push(u32::try_from(total).expect("edge count fits u32"));
        }
        let mut targets = Vec::with_capacity(total);
        for v in 0..n {
            targets.extend_from_slice(g.neighbors(v));
        }
        CsrAdjacency { offsets, targets }
    }

    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total directed edge slots (`2m` for an undirected graph).
    #[must_use]
    pub fn directed_edges(&self) -> usize {
        self.targets.len()
    }

    /// Neighbors of `v`, ascending — identical content and order to
    /// [`Graph::neighbors`].
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.n()`.
    #[must_use]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        let lo = self.offsets[v] as usize;
        let hi = self.offsets[v + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.n()`.
    #[must_use]
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::rng::Seed;

    #[test]
    fn matches_graph_adjacency_exactly() {
        for g in [
            generators::path(7),
            generators::cycle(9),
            generators::random_tree(40, Seed(3)),
            generators::path(1),
        ] {
            let csr = CsrAdjacency::from_graph(&g);
            assert_eq!(csr.n(), g.n());
            assert_eq!(csr.directed_edges(), 2 * g.m());
            for v in 0..g.n() {
                assert_eq!(csr.neighbors(v), g.neighbors(v), "node {v}");
                assert_eq!(csr.degree(v), g.neighbors(v).len());
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = generators::path(0);
        let csr = CsrAdjacency::from_graph(&g);
        assert_eq!(csr.n(), 0);
        assert_eq!(csr.directed_edges(), 0);
    }
}
