//! Compressed-sparse-row adjacency: a flat, cache-friendly view of a
//! [`Graph`]'s neighbor lists.
//!
//! [`Graph`] stores one `Vec<u32>` per node, which is convenient to build
//! but scatters neighbor lists across the heap. Hot sweeps (ball
//! collection, per-vertex LOCAL evaluation) traverse every adjacency list
//! once per vertex per repetition; packing all targets into a single
//! array with per-node offsets removes a pointer indirection per node and
//! keeps consecutive lists on the same cache lines.
//!
//! A `CsrAdjacency` is a *view*: it copies the neighbor structure once at
//! construction and is immutable afterwards. Neighbor order is preserved
//! exactly (ascending, as [`Graph::neighbors`] guarantees), so any
//! traversal that swaps `g.neighbors(v)` for `csr.neighbors(v)` visits
//! nodes in the identical order — bit-for-bit determinism is unaffected.

use crate::graph::Graph;
use csmpc_parallel::{par_map_mut, ParallelismMode};

/// Flat adjacency of a graph: `targets[offsets[v]..offsets[v + 1]]` are the
/// neighbors of node `v`, in the same ascending order as
/// [`Graph::neighbors`].
///
/// # Examples
///
/// ```
/// use csmpc_graph::{generators, CsrAdjacency};
/// let g = generators::cycle(5);
/// let csr = CsrAdjacency::from_graph(&g);
/// assert_eq!(csr.n(), 5);
/// assert_eq!(csr.neighbors(0), g.neighbors(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrAdjacency {
    /// `n + 1` prefix offsets into `targets`.
    offsets: Vec<u32>,
    /// Concatenated neighbor lists (`2m` entries for an undirected graph).
    targets: Vec<u32>,
}

impl CsrAdjacency {
    /// Packs `g`'s adjacency lists into CSR form.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than `u32::MAX` directed edges (far
    /// beyond any instance the substrate can hold in memory).
    #[must_use]
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.n();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut total: usize = 0;
        offsets.push(0);
        for v in 0..n {
            total += g.neighbors(v).len();
            offsets.push(u32::try_from(total).expect("edge count fits u32"));
        }
        let mut targets = Vec::with_capacity(total);
        for v in 0..n {
            targets.extend_from_slice(g.neighbors(v));
        }
        CsrAdjacency { offsets, targets }
    }

    /// Builds the CSR adjacency directly from an undirected edge stream —
    /// the million-vertex ingestion path that never materializes the
    /// intermediate [`Graph`] (no per-node `Vec`s, no builder validation).
    ///
    /// Two passes over the (cheaply cloneable) stream: pass 1 counts
    /// degrees and prefix-sums them into `offsets`; pass 2 scatters both
    /// endpoints of every edge through per-node cursors. Rows are then
    /// sorted ascending in parallel over contiguous row blocks, making the
    /// result bit-identical to [`CsrAdjacency::from_graph`] on the graph
    /// with the same edge set ([`Graph::neighbors`] is ascending). The
    /// sort output is a pure per-row function, so the worker count cannot
    /// affect the bytes produced.
    ///
    /// The stream must describe a *simple* undirected graph on nodes
    /// `0..n`: every endpoint `< n`, no self-loops, each undirected edge
    /// emitted exactly once, and both clones of the stream must yield the
    /// same sequence.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n` or the directed edge count
    /// (`2 × edges`) exceeds `u32::MAX`.
    #[must_use]
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: Iterator<Item = (u32, u32)> + Clone,
    {
        if n == 0 {
            return CsrAdjacency {
                offsets: vec![0],
                targets: Vec::new(),
            };
        }
        // Pass 1: degree count (both endpoints), then an exclusive prefix
        // scan in place — offsets[v] = directed edges of nodes < v.
        let mut offsets = vec![0u32; n + 1];
        for (u, v) in edges.clone() {
            offsets[u as usize] += 1;
            offsets[v as usize] += 1;
        }
        let mut acc: u64 = 0;
        for slot in &mut offsets {
            let d = u64::from(*slot);
            *slot = u32::try_from(acc).expect("directed edge count fits u32");
            acc += d;
        }
        let total = offsets[n] as usize;
        // Pass 2: scatter both endpoints through per-node write cursors.
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![0u32; total];
        for (u, v) in edges {
            let (ui, vi) = (u as usize, v as usize);
            targets[cursor[ui] as usize] = v;
            cursor[ui] += 1;
            targets[cursor[vi] as usize] = u;
            cursor[vi] += 1;
        }
        // Per-row ascending sort, parallel over contiguous row blocks:
        // `split_at_mut` at row boundaries keeps the blocks disjoint.
        let blocks = (4 * rayon::current_num_threads()).min(n);
        let mut parts: Vec<(usize, usize, &mut [u32])> = Vec::with_capacity(blocks);
        let mut rest: &mut [u32] = &mut targets;
        let mut consumed = 0usize;
        for b in 0..blocks {
            let r0 = b * n / blocks;
            let r1 = (b + 1) * n / blocks;
            let end = offsets[r1] as usize;
            let (head, tail) = rest.split_at_mut(end - consumed);
            parts.push((r0, r1, head));
            consumed = end;
            rest = tail;
        }
        let offs = &offsets;
        let _: Vec<()> = par_map_mut(ParallelismMode::auto(), &mut parts, |_, part| {
            let (r0, r1, block) = part;
            let base = offs[*r0] as usize;
            for r in *r0..*r1 {
                let lo = offs[r] as usize - base;
                let hi = offs[r + 1] as usize - base;
                block[lo..hi].sort_unstable();
            }
        });
        CsrAdjacency { offsets, targets }
    }

    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total directed edge slots (`2m` for an undirected graph).
    #[must_use]
    pub fn directed_edges(&self) -> usize {
        self.targets.len()
    }

    /// Neighbors of `v`, ascending — identical content and order to
    /// [`Graph::neighbors`].
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.n()`.
    #[must_use]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        let lo = self.offsets[v] as usize;
        let hi = self.offsets[v + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.n()`.
    #[must_use]
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::rng::Seed;

    #[test]
    fn matches_graph_adjacency_exactly() {
        for g in [
            generators::path(7),
            generators::cycle(9),
            generators::random_tree(40, Seed(3)),
            generators::path(1),
        ] {
            let csr = CsrAdjacency::from_graph(&g);
            assert_eq!(csr.n(), g.n());
            assert_eq!(csr.directed_edges(), 2 * g.m());
            for v in 0..g.n() {
                assert_eq!(csr.neighbors(v), g.neighbors(v), "node {v}");
                assert_eq!(csr.degree(v), g.neighbors(v).len());
            }
        }
    }

    #[test]
    fn from_edges_matches_from_graph() {
        for g in [
            generators::path(7),
            generators::cycle(9),
            generators::random_tree(40, Seed(3)),
            generators::star(12),
            generators::hypercube(5),
        ] {
            let edges: Vec<(u32, u32)> = g.edges().map(|(u, v)| (u as u32, v as u32)).collect();
            let streamed = CsrAdjacency::from_edges(g.n(), edges.iter().copied());
            assert_eq!(streamed, CsrAdjacency::from_graph(&g));
        }
    }

    #[test]
    fn from_edges_empty_and_isolated() {
        let none: Vec<(u32, u32)> = Vec::new();
        let csr = CsrAdjacency::from_edges(0, none.iter().copied());
        assert_eq!(csr.n(), 0);
        // Isolated nodes: n = 3, no edges.
        let csr = CsrAdjacency::from_edges(3, none.iter().copied());
        assert_eq!(csr.n(), 3);
        assert_eq!(csr.degree(1), 0);
    }

    #[test]
    fn empty_graph() {
        let g = generators::path(0);
        let csr = CsrAdjacency::from_graph(&g);
        assert_eq!(csr.n(), 0);
        assert_eq!(csr.directed_edges(), 0);
    }
}
