//! Non-uniform advice (Lemma 54 packaging): a per-`n` table of hard-coded
//! seeds, the "different seed hard-coded for each n" object the paper's
//! non-uniform deterministic MPC algorithms carry.

use crate::mce::find_good_seed;
use std::collections::BTreeMap;

/// A non-uniform advice table: input size → hard-coded seed.
///
/// Built by exhaustive search (the proof's brute force) and then consulted
/// in `O(1)` by the deterministic algorithm — mirroring how Lemma 54's
/// machine hard-codes `S*` per `n`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdviceTable {
    seeds: BTreeMap<usize, u64>,
}

impl AdviceTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        AdviceTable::default()
    }

    /// Builds advice for one `n` by searching `0..space` with the given
    /// acceptance test ("seed is correct for *every* instance of size n").
    /// Returns whether a seed was found.
    pub fn search(&mut self, n: usize, space: u64, ok: impl FnMut(u64) -> bool) -> bool {
        let (first, _) = find_good_seed(space, ok);
        match first {
            Some(s) => {
                self.seeds.insert(n, s);
                true
            }
            None => false,
        }
    }

    /// The hard-coded seed for `n`, if the table covers it.
    #[must_use]
    pub fn seed_for(&self, n: usize) -> Option<u64> {
        self.seeds.get(&n).copied()
    }

    /// Number of input sizes covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// Is the table empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// Total advice bits stored — `O(poly(n))` in the paper's accounting
    /// (one seed per input size).
    #[must_use]
    pub fn advice_bits(&self) -> u32 {
        self.seeds
            .values()
            .map(|s| 64 - s.leading_zeros())
            .sum::<u32>()
            .max(self.len() as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut table = AdviceTable::new();
        // "Algorithm succeeds" iff seed ≡ 3 mod 5, per n.
        for n in [4usize, 8, 16] {
            assert!(table.search(n, 32, |s| s % 5 == 3));
        }
        assert_eq!(table.seed_for(8), Some(3));
        assert_eq!(table.seed_for(99), None);
        assert_eq!(table.len(), 3);
        assert!(!table.is_empty());
        assert!(table.advice_bits() >= 3);
    }

    #[test]
    fn search_failure_leaves_table_unchanged() {
        let mut table = AdviceTable::new();
        assert!(!table.search(4, 16, |_| false));
        assert!(table.is_empty());
    }
}
