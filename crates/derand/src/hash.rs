//! `k`-wise independent hash families (Section 4.1.1).
//!
//! The classical polynomial construction: with `p` prime, the family
//! `h_{a_0..a_{k−1}}(x) = Σ a_i x^i mod p` over domain `Z_p` is exactly
//! `k`-wise independent. A seed of `k·⌈log p⌉` bits specifies a function —
//! this is the (ε = 0 on domain `Z_p`) instantiation of the strongly
//! `(ε, k)`-wise independent families of Theorem 31, and the seed lengths
//! match the `O(k log |B| + log log |A|)` regime the paper's
//! derandomizations budget for.

use crate::field::{next_prime, poly_eval};
use csmpc_graph::rng::{Seed, SplitMix64};

/// One function from the degree-`(k−1)` polynomial family over `Z_p`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolyHash {
    p: u64,
    coeffs: Vec<u64>,
}

impl PolyHash {
    /// Constructs the function with the given coefficients (`a_0` first).
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty or `p < 2`.
    #[must_use]
    pub fn new(p: u64, coeffs: Vec<u64>) -> Self {
        assert!(p >= 2, "modulus must be at least 2");
        assert!(!coeffs.is_empty(), "need at least one coefficient");
        let coeffs = coeffs.into_iter().map(|c| c % p).collect();
        PolyHash { p, coeffs }
    }

    /// The modulus `p`.
    #[must_use]
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// Independence level `k` (= number of coefficients).
    #[must_use]
    pub fn k(&self) -> usize {
        self.coeffs.len()
    }

    /// Evaluates `h(x) ∈ [0, p)`.
    #[must_use]
    pub fn eval(&self, x: u64) -> u64 {
        poly_eval(&self.coeffs, x % self.p, self.p)
    }

    /// `h(x)` mapped to the unit interval `[0, 1)` — the `χ_v` values of
    /// Luby's algorithm (Section 5).
    #[must_use]
    pub fn unit(&self, x: u64) -> f64 {
        self.eval(x) as f64 / self.p as f64
    }

    /// `h(x) mod m` — a near-uniform value in `[0, m)` (bias ≤ m/p).
    #[must_use]
    pub fn range(&self, x: u64, m: u64) -> u64 {
        self.eval(x) % m
    }

    /// One pseudorandom bit: the parity of `h(x)`.
    #[must_use]
    pub fn bit(&self, x: u64) -> bool {
        self.eval(x) & 1 == 1
    }
}

/// The full family for a fixed `(p, k)`: seeds enumerate coefficient
/// vectors, so the family has exactly `p^k` members — `k·⌈log₂ p⌉` seed
/// bits, the budget all the paper's conditional-expectation arguments fix
/// `Θ(log n)` bits of per MPC round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolyFamily {
    /// The prime modulus.
    pub p: u64,
    /// Independence level.
    pub k: usize,
}

impl PolyFamily {
    /// A family with domain covering `0..domain` and independence `k`;
    /// picks `p` = smallest prime ≥ `domain.max(2)`.
    #[must_use]
    pub fn for_domain(domain: u64, k: usize) -> Self {
        PolyFamily {
            p: next_prime(domain.max(2)),
            k: k.max(1),
        }
    }

    /// Number of functions in the family (`p^k`), saturating.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.p.saturating_pow(self.k as u32)
    }

    /// Seed length in bits.
    #[must_use]
    pub fn seed_bits(&self) -> u32 {
        self.k as u32 * (64 - self.p.leading_zeros())
    }

    /// The member indexed by `index ∈ [0, p^k)` (base-`p` digits become
    /// coefficients).
    #[must_use]
    pub fn member(&self, index: u64) -> PolyHash {
        let mut coeffs = Vec::with_capacity(self.k);
        let mut rest = index;
        for _ in 0..self.k {
            coeffs.push(rest % self.p);
            rest /= self.p;
        }
        PolyHash::new(self.p, coeffs)
    }

    /// A uniformly random member.
    #[must_use]
    pub fn sample(&self, seed: Seed) -> PolyHash {
        let mut rng = SplitMix64::new(seed);
        let coeffs = (0..self.k).map(|_| rng.range(0, self.p)).collect();
        PolyHash::new(self.p, coeffs)
    }

    /// Iterates the whole family — only sensible when `size()` is small
    /// (exhaustive derandomization).
    pub fn iter(&self) -> impl Iterator<Item = PolyHash> + '_ {
        (0..self.size()).map(move |i| self.member(i))
    }
}

/// Pairwise (`k = 2`) family, the workhorse of Claim 52 / Theorem 53.
#[must_use]
pub fn pairwise_for_domain(domain: u64) -> PolyFamily {
    PolyFamily::for_domain(domain, 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_in_range() {
        let fam = PolyFamily::for_domain(100, 3);
        let h = fam.sample(Seed(1));
        for x in 0..200 {
            assert!(h.eval(x) < fam.p);
        }
    }

    /// Exact pairwise independence: over the whole family, every pair of
    /// distinct inputs takes every pair of outputs equally often.
    #[test]
    fn pairwise_exactly_independent() {
        let fam = pairwise_for_domain(5); // p = 5, 25 functions
        let (x1, x2) = (1u64, 3u64);
        let mut counts = std::collections::HashMap::new();
        for h in fam.iter() {
            *counts.entry((h.eval(x1), h.eval(x2))).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 25);
        assert!(counts.values().all(|&c| c == 1), "non-uniform pair counts");
    }

    /// Degree-1 ("1-wise") families are uniform but NOT pairwise
    /// independent — a sanity check that k matters.
    #[test]
    fn one_wise_is_not_pairwise() {
        let fam = PolyFamily { p: 5, k: 1 };
        let mut counts = std::collections::HashMap::new();
        for h in fam.iter() {
            *counts.entry((h.eval(1), h.eval(3))).or_insert(0usize) += 1;
        }
        // Constant functions: h(1) = h(3) always, only 5 pairs occur.
        assert_eq!(counts.len(), 5);
    }

    #[test]
    fn member_round_trip() {
        let fam = PolyFamily { p: 7, k: 2 };
        for i in 0..fam.size() {
            let h = fam.member(i);
            assert_eq!(h.k(), 2);
            assert!(h.eval(3) < 7);
        }
    }

    #[test]
    fn threewise_triple_uniformity() {
        let fam = PolyFamily { p: 5, k: 3 };
        let (x1, x2, x3) = (0u64, 2, 4);
        let mut counts = std::collections::HashMap::new();
        for h in fam.iter() {
            *counts
                .entry((h.eval(x1), h.eval(x2), h.eval(x3)))
                .or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 125);
        assert!(counts.values().all(|&c| c == 1));
    }

    #[test]
    fn unit_in_interval() {
        let fam = pairwise_for_domain(1000);
        let h = fam.sample(Seed(5));
        for x in 0..100 {
            let u = h.unit(x);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn seed_bits_reasonable() {
        let fam = PolyFamily::for_domain(1000, 2);
        // p = 1009 needs 10 bits; 2 coefficients = 20 bits.
        assert_eq!(fam.seed_bits(), 20);
    }

    #[test]
    fn sample_deterministic() {
        let fam = pairwise_for_domain(50);
        assert_eq!(fam.sample(Seed(9)), fam.sample(Seed(9)));
    }
}
