//! The method of conditional expectations and exhaustive seed search —
//! the two derandomization drivers the paper's upper bounds use
//! (Sections 4.1–4.3, Lemmas 35, 54–55).
//!
//! * [`best_seed_exhaustive`] — brute force over a small seed space. This is
//!   *literally* what the non-explicit PRG of Lemma 35 and the non-uniform
//!   seed of Lemma 54 are found by in the proofs; we run the same search at
//!   laptop scale.
//! * [`ConditionalExpectation`] — fixes a seed coordinate-by-coordinate so
//!   the conditional expectation of a cost never rises above its prior
//!   value; the distributed implementation in the paper fixes `Θ(log n)`
//!   bits per MPC round, so we also report how many MPC rounds the fixing
//!   schedule would take.

/// Exhaustively evaluates `cost` over seeds `0..space` and returns the
/// minimizer `(seed, cost)`.
///
/// # Panics
///
/// Panics if `space == 0`.
#[must_use]
pub fn best_seed_exhaustive(space: u64, mut cost: impl FnMut(u64) -> f64) -> (u64, f64) {
    assert!(space > 0, "empty seed space");
    let mut best = (0u64, f64::INFINITY);
    for s in 0..space {
        let c = cost(s);
        if c < best.1 {
            best = (s, c);
        }
    }
    best
}

/// Exhaustively searches seeds `0..space` for one on which `ok` holds
/// (the Lemma 54 "there must be at least one good seed" search).
/// Also returns the number of good seeds, for reporting success densities.
#[must_use]
pub fn find_good_seed(space: u64, mut ok: impl FnMut(u64) -> bool) -> (Option<u64>, u64) {
    let mut first = None;
    let mut good = 0u64;
    for s in 0..space {
        if ok(s) {
            if first.is_none() {
                first = Some(s);
            }
            good += 1;
        }
    }
    (first, good)
}

/// Coordinate-wise method of conditional expectations over a seed vector
/// with per-coordinate alphabet sizes.
///
/// The caller supplies an **exact conditional-expectation oracle**:
/// `expected(prefix)` = `E[cost]` over the remaining uniformly random
/// coordinates given the fixed `prefix`. Fixing coordinate `i` to the value
/// minimizing the oracle can never increase the expectation, so the final
/// fully-fixed cost is at most the unconditional expectation — the
/// textbook (and the paper's) argument.
#[derive(Debug, Clone)]
pub struct ConditionalExpectation {
    /// Alphabet size per coordinate (e.g. `[p, p]` for a pairwise family).
    pub alphabet: Vec<u64>,
    /// How many seed bits the paper's distributed implementation can fix
    /// per MPC round (`Θ(log n)`).
    pub bits_per_round: u32,
}

/// Result of a conditional-expectation run.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedSeed {
    /// The chosen value of each coordinate.
    pub values: Vec<u64>,
    /// The oracle value after the last fix (= exact final cost).
    pub final_cost: f64,
    /// The unconditional expectation before any fixing.
    pub prior_cost: f64,
    /// MPC rounds the distributed fixing schedule would take:
    /// `⌈seed bits / bits_per_round⌉`.
    pub mpc_rounds: usize,
}

impl ConditionalExpectation {
    /// A driver for `coords` coordinates over alphabet `p` each, fixing
    /// `bits_per_round` bits per simulated MPC round.
    #[must_use]
    pub fn uniform(coords: usize, p: u64, bits_per_round: u32) -> Self {
        ConditionalExpectation {
            alphabet: vec![p; coords],
            bits_per_round: bits_per_round.max(1),
        }
    }

    /// Total seed length in bits.
    #[must_use]
    pub fn seed_bits(&self) -> u32 {
        self.alphabet
            .iter()
            .map(|&a| 64 - a.saturating_sub(1).leading_zeros())
            .sum()
    }

    /// Runs the method: `expected(prefix)` must return the exact expected
    /// cost given that `prefix` coordinates are fixed (and the rest are
    /// uniform). Lower cost is better.
    pub fn run(&self, mut expected: impl FnMut(&[u64]) -> f64) -> FixedSeed {
        let prior = expected(&[]);
        let mut prefix: Vec<u64> = Vec::with_capacity(self.alphabet.len());
        let mut last = prior;
        for (i, &a) in self.alphabet.iter().enumerate() {
            let mut best_v = 0u64;
            let mut best_c = f64::INFINITY;
            for v in 0..a {
                prefix.push(v);
                let c = expected(&prefix);
                prefix.pop();
                if c < best_c {
                    best_c = c;
                    best_v = v;
                }
            }
            debug_assert!(
                best_c <= last + 1e-9,
                "conditional expectation rose at coordinate {i}: {best_c} > {last}"
            );
            prefix.push(best_v);
            last = best_c;
        }
        FixedSeed {
            values: prefix,
            final_cost: last,
            prior_cost: prior,
            mpc_rounds: (self.seed_bits() as usize).div_ceil(self.bits_per_round as usize),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_finds_minimum() {
        let (s, c) = best_seed_exhaustive(100, |s| ((s as f64) - 42.0).abs());
        assert_eq!(s, 42);
        assert_eq!(c, 0.0);
    }

    #[test]
    fn good_seed_search() {
        let (first, count) = find_good_seed(100, |s| s % 7 == 3);
        assert_eq!(first, Some(3));
        assert_eq!(count, 14); // s = 3, 10, …, 94
    }

    #[test]
    fn good_seed_none() {
        let (first, count) = find_good_seed(10, |_| false);
        assert_eq!(first, None);
        assert_eq!(count, 0);
    }

    /// Cost = number of 1-bits across two base-4 coordinates, in
    /// expectation over unfixed coordinates. MCE should find (0, 0).
    #[test]
    fn mce_minimizes_exactly() {
        let popcount_mean = |a: u64| -> f64 {
            // mean popcount over 0..4 = (0+1+1+2)/4 = 1.0
            let _ = a;
            1.0
        };
        let driver = ConditionalExpectation::uniform(2, 4, 2);
        let fixed = driver.run(|prefix| {
            let mut e = 0.0;
            for (i, slot) in [0usize, 1].iter().enumerate() {
                let _ = slot;
                if i < prefix.len() {
                    e += prefix[i].count_ones() as f64;
                } else {
                    e += popcount_mean(0);
                }
            }
            e
        });
        assert_eq!(fixed.values, vec![0, 0]);
        assert_eq!(fixed.final_cost, 0.0);
        assert_eq!(fixed.prior_cost, 2.0);
    }

    #[test]
    fn mce_never_beats_exhaustive_oracle() {
        // With an exact oracle the final cost is <= prior expectation.
        let driver = ConditionalExpectation::uniform(3, 3, 4);
        let fixed = driver.run(|prefix| {
            // expected value of sum of coordinates (unfixed mean = 1.0)
            let fixed_sum: u64 = prefix.iter().sum();
            fixed_sum as f64 + (3 - prefix.len()) as f64 * 1.0
        });
        assert!(fixed.final_cost <= fixed.prior_cost);
        assert_eq!(fixed.values, vec![0, 0, 0]);
    }

    #[test]
    fn mpc_round_accounting() {
        // 2 coordinates over p = 1024 -> 20 bits; at 10 bits/round -> 2.
        let driver = ConditionalExpectation::uniform(2, 1024, 10);
        assert_eq!(driver.seed_bits(), 20);
        let fixed = driver.run(|prefix| prefix.iter().sum::<u64>() as f64);
        assert_eq!(fixed.mpc_rounds, 2);
    }
}
