//! Cyclic-interval arithmetic over `Z_p`.
//!
//! Used by the exact conditional-expectation oracle for the derandomized
//! Luby step (Claim 52 / Theorem 53): with a pairwise hash
//! `h(x) = a·x + b (mod p)` and `a` fixed, each event
//! "`h(v) < T` and `h(u) ≥ T` for every neighbor `u`" holds for `b` in
//! `I_v \ ∪_u I_u`, where every `I` is a cyclic interval of length `T`.
//! Counting that set exactly turns `E_b[cost | a]` into arithmetic.

/// A half-open cyclic interval `[start, start+len) mod p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CyclicInterval {
    /// Interval start in `[0, p)`.
    pub start: u64,
    /// Interval length, `≤ p`.
    pub len: u64,
    /// The modulus.
    pub p: u64,
}

impl CyclicInterval {
    /// Creates `[start, start+len) mod p`.
    ///
    /// # Panics
    ///
    /// Panics if `len > p` or `start >= p`.
    #[must_use]
    pub fn new(start: u64, len: u64, p: u64) -> Self {
        assert!(len <= p, "length {len} exceeds modulus {p}");
        assert!(start < p, "start {start} outside [0,{p})");
        CyclicInterval { start, len, p }
    }

    /// Does the interval contain `x`?
    #[must_use]
    pub fn contains(&self, x: u64) -> bool {
        let x = x % self.p;
        let offset = (x + self.p - self.start) % self.p;
        offset < self.len
    }

    /// The set of `b` such that `(c + b) mod p < t` — a cyclic interval of
    /// length `t` starting at `p − c (mod p)`.
    #[must_use]
    pub fn shift_preimage(c: u64, t: u64, p: u64) -> Self {
        CyclicInterval::new((p - c % p) % p, t.min(p), p)
    }
}

/// Exactly counts `|base \ (i₁ ∪ i₂ ∪ …)|`.
///
/// Strategy: re-anchor the circle so `base = [0, base.len)`, clip every
/// other interval (splitting wrap-arounds) to that window, merge, and
/// subtract the union's length.
///
/// # Panics
///
/// Panics if moduli disagree.
#[must_use]
pub fn count_difference(base: CyclicInterval, others: &[CyclicInterval]) -> u64 {
    let p = base.p;
    let mut clipped: Vec<(u64, u64)> = Vec::new();
    for iv in others {
        assert_eq!(iv.p, p, "mismatched moduli");
        if iv.len == 0 {
            continue;
        }
        if iv.len >= p {
            return 0; // an interval covering everything erases the base
        }
        // Shift into base-anchored coordinates.
        let s = (iv.start + p - base.start) % p;
        let e = s + iv.len; // may exceed p -> wraps
        if e <= p {
            push_clipped(&mut clipped, s, e, base.len);
        } else {
            push_clipped(&mut clipped, s, p, base.len);
            push_clipped(&mut clipped, 0, e - p, base.len);
        }
    }
    clipped.sort_unstable();
    let mut covered = 0u64;
    let mut reach = 0u64;
    for (s, e) in clipped {
        let s = s.max(reach);
        if e > s {
            covered += e - s;
            reach = e;
        } else {
            reach = reach.max(e);
        }
    }
    base.len - covered
}

fn push_clipped(out: &mut Vec<(u64, u64)>, s: u64, e: u64, window: u64) {
    let s = s.min(window);
    let e = e.min(window);
    if e > s {
        out.push((s, e));
    }
}

/// Brute-force reference for [`count_difference`], used in tests and
/// property checks.
#[must_use]
pub fn count_difference_naive(base: CyclicInterval, others: &[CyclicInterval]) -> u64 {
    (0..base.p)
        .filter(|&b| base.contains(b) && !others.iter().any(|iv| iv.contains(b)))
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmpc_graph::rng::{Seed, SplitMix64};

    #[test]
    fn contains_wrapping() {
        let iv = CyclicInterval::new(8, 5, 10); // {8,9,0,1,2}
        for x in [8u64, 9, 0, 1, 2] {
            assert!(iv.contains(x), "{x} should be inside");
        }
        for x in [3u64, 7] {
            assert!(!iv.contains(x), "{x} should be outside");
        }
    }

    #[test]
    fn shift_preimage_correct() {
        let p = 11;
        for c in 0..p {
            for t in 0..=p {
                let iv = CyclicInterval::shift_preimage(c, t, p);
                for b in 0..p {
                    let holds = (c + b) % p < t;
                    assert_eq!(iv.contains(b), holds, "c={c}, t={t}, b={b}");
                }
            }
        }
    }

    #[test]
    fn difference_simple() {
        let p = 10;
        let base = CyclicInterval::new(0, 6, p); // {0..5}
        let cut = CyclicInterval::new(2, 2, p); // {2,3}
        assert_eq!(count_difference(base, &[cut]), 4);
    }

    #[test]
    fn difference_wrapping_cut() {
        let p = 10;
        let base = CyclicInterval::new(8, 5, p); // {8,9,0,1,2}
        let cut = CyclicInterval::new(9, 3, p); // {9,0,1}
        assert_eq!(count_difference(base, &[cut]), 2); // {8,2}
    }

    #[test]
    fn difference_matches_naive_randomized() {
        let mut rng = SplitMix64::new(Seed(77));
        for _ in 0..300 {
            let p = 2 + rng.range(0, 40);
            let base = CyclicInterval::new(rng.range(0, p), rng.range(0, p + 1), p);
            let k = rng.index(4);
            let others: Vec<CyclicInterval> = (0..k)
                .map(|_| CyclicInterval::new(rng.range(0, p), rng.range(0, p + 1), p))
                .collect();
            assert_eq!(
                count_difference(base, &others),
                count_difference_naive(base, &others),
                "p={p}, base={base:?}, others={others:?}"
            );
        }
    }

    #[test]
    fn full_cover_gives_zero() {
        let p = 7;
        let base = CyclicInterval::new(3, 4, p);
        let all = CyclicInterval::new(0, 7, p);
        assert_eq!(count_difference(base, &[all]), 0);
    }

    #[test]
    fn empty_cuts_give_base_length() {
        let p = 13;
        let base = CyclicInterval::new(5, 9, p);
        assert_eq!(count_difference(base, &[]), 9);
    }
}
