//! Prime-field arithmetic for the hash families of Section 4.1.

/// Is `n` prime? Deterministic trial division — inputs here are small
/// (`p = O(poly(n))` for graph sizes this workspace simulates).
#[must_use]
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    let mut d = 3u64;
    while d.saturating_mul(d) <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// The smallest prime `≥ n` (Bertrand guarantees one below `2n`).
///
/// # Panics
///
/// Panics on overflow (unreachable for realistic inputs).
#[must_use]
pub fn next_prime(n: u64) -> u64 {
    let mut c = n.max(2);
    loop {
        if is_prime(c) {
            return c;
        }
        c = c.checked_add(1).expect("prime search overflow");
    }
}

/// Modular multiplication via `u128`, safe for any `u64` modulus.
#[must_use]
pub fn mul_mod(a: u64, b: u64, p: u64) -> u64 {
    ((a as u128 * b as u128) % p as u128) as u64
}

/// `base^exp mod p` by square-and-multiply.
#[must_use]
pub fn pow_mod(base: u64, mut exp: u64, p: u64) -> u64 {
    let mut b = base % p;
    let mut acc = 1u64 % p;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, b, p);
        }
        b = mul_mod(b, b, p);
        exp >>= 1;
    }
    acc
}

/// Evaluates the polynomial `Σ coeffs[i]·x^i mod p` (Horner).
#[must_use]
pub fn poly_eval(coeffs: &[u64], x: u64, p: u64) -> u64 {
    let mut acc = 0u64;
    for &c in coeffs.iter().rev() {
        acc = (mul_mod(acc, x % p, p) + c % p) % p;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primality_small() {
        let primes = [2u64, 3, 5, 7, 11, 13, 101, 7919];
        for p in primes {
            assert!(is_prime(p), "{p} is prime");
        }
        for c in [0u64, 1, 4, 9, 100, 7917] {
            assert!(!is_prime(c), "{c} is composite");
        }
    }

    #[test]
    fn next_prime_examples() {
        assert_eq!(next_prime(1), 2);
        assert_eq!(next_prime(14), 17);
        assert_eq!(next_prime(17), 17);
        assert_eq!(next_prime(100), 101);
    }

    #[test]
    fn pow_mod_fermat() {
        let p = 101;
        for a in 1..20 {
            assert_eq!(pow_mod(a, p - 1, p), 1, "Fermat fails for {a}");
        }
    }

    #[test]
    fn poly_eval_matches_naive() {
        let p = 97;
        let coeffs = [5u64, 3, 2, 7]; // 5 + 3x + 2x² + 7x³
        for x in 0..10u64 {
            let naive = (5 + 3 * x + 2 * x * x + 7 * x * x * x) % p;
            assert_eq!(poly_eval(&coeffs, x, p), naive);
        }
    }

    #[test]
    fn mul_mod_no_overflow() {
        let p = (1u64 << 61) - 1;
        let big = p - 1;
        // (p-1)² mod p = 1.
        assert_eq!(mul_mod(big, big, p), 1);
    }
}
