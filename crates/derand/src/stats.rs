//! Statistical validation of hash families — the empirical counterpart of
//! the *strongly `(ε, k)`-wise independent* definition (Definition 30 /
//! Theorem 31): over the whole family, any `t ≤ k` fixed inputs must take
//! any `t` outputs with probability within `ε` of `|B|^{−t}`.

use crate::hash::PolyFamily;

/// Exact worst-case deviation of the family from `t`-wise uniformity on the
/// given distinct inputs: `max_y |Pr[h(x_i) = y_i ∀i] − p^{−t}|`, computed
/// by iterating the entire family (so only for small `p^k`).
///
/// For the polynomial family with `t ≤ k` and distinct inputs in `Z_p` the
/// result is exactly `0` — the `ε = 0` case of Definition 30.
///
/// # Panics
///
/// Panics if inputs are not distinct mod `p` or the family is too large to
/// enumerate.
#[must_use]
pub fn exact_independence_deviation(family: &PolyFamily, inputs: &[u64]) -> f64 {
    let t = inputs.len();
    assert!(t >= 1, "need at least one input");
    let p = family.p;
    for (i, &a) in inputs.iter().enumerate() {
        for &b in &inputs[i + 1..] {
            assert!(a % p != b % p, "inputs must be distinct mod p");
        }
    }
    let size = family.size();
    assert!(size <= 1 << 22, "family too large to enumerate exactly");
    // Count occurrences of each output tuple.
    let mut counts: std::collections::BTreeMap<Vec<u64>, u64> = Default::default();
    for h in family.iter() {
        let tuple: Vec<u64> = inputs.iter().map(|&x| h.eval(x)).collect();
        *counts.entry(tuple).or_insert(0) += 1;
    }
    let uniform = (size as f64) / (p as f64).powi(t as i32);
    let mut worst: f64 = 0.0;
    // Tuples never observed deviate by `uniform/size = p^{-t}` exactly.
    let total_tuples = (p as f64).powi(t as i32);
    if (counts.len() as f64) < total_tuples {
        worst = uniform / size as f64;
    }
    for &c in counts.values() {
        let dev = (c as f64 / size as f64 - uniform / size as f64).abs();
        worst = worst.max(dev);
    }
    worst
}

/// The theoretical seed-length budget of Theorem 31 for a strongly
/// `(ε, k)`-wise independent family `A → B`:
/// `O(log log |A| + k·log |B| + log(1/ε))` bits. Returned with constant 1
/// for reporting alongside the concrete polynomial family's
/// [`PolyFamily::seed_bits`].
#[must_use]
pub fn theorem31_seed_budget(domain: u64, range: u64, k: usize, epsilon: f64) -> f64 {
    let loglog_a = (domain.max(4) as f64).ln().log2();
    let k_log_b = k as f64 * (range.max(2) as f64).log2();
    let log_eps = if epsilon > 0.0 {
        (1.0 / epsilon).log2()
    } else {
        0.0
    };
    loglog_a + k_log_b + log_eps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairwise_family_has_zero_deviation() {
        let fam = PolyFamily { p: 13, k: 2 };
        assert_eq!(exact_independence_deviation(&fam, &[3, 7]), 0.0);
        assert_eq!(exact_independence_deviation(&fam, &[0, 12]), 0.0);
    }

    #[test]
    fn threewise_family_zero_on_triples() {
        let fam = PolyFamily { p: 7, k: 3 };
        assert_eq!(exact_independence_deviation(&fam, &[1, 2, 5]), 0.0);
    }

    #[test]
    fn pairwise_family_fails_triples() {
        // k = 2 cannot be 3-wise independent: deviation must be positive.
        let fam = PolyFamily { p: 7, k: 2 };
        let dev = exact_independence_deviation(&fam, &[1, 2, 4]);
        assert!(dev > 0.0, "pairwise family should fail 3-wise uniformity");
    }

    #[test]
    fn single_input_always_uniform() {
        let fam = PolyFamily { p: 11, k: 1 };
        assert_eq!(exact_independence_deviation(&fam, &[6]), 0.0);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn rejects_colliding_inputs() {
        let fam = PolyFamily { p: 5, k: 2 };
        let _ = exact_independence_deviation(&fam, &[2, 7]); // 7 ≡ 2 mod 5
    }

    #[test]
    fn seed_budget_monotone() {
        let small = theorem31_seed_budget(1 << 20, 2, 2, 1e-3);
        let large = theorem31_seed_budget(1 << 20, 2, 8, 1e-9);
        assert!(large > small);
    }
}
