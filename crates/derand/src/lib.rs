//! # csmpc-derand
//!
//! The derandomization toolkit of *"Component Stability in Low-Space
//! Massively Parallel Computation"* (PODC 2021), Sections 4.1 and 6:
//!
//! * [`field`] — prime-field arithmetic;
//! * [`hash`] — exactly `k`-wise independent polynomial hash families
//!   (the Theorem 31 / Section 4.1.1 objects at `ε = 0` over `Z_p`);
//! * [`intervals`] — cyclic-interval counting, the engine behind *exact*
//!   conditional expectations for threshold events such as Luby's step;
//! * [`mce`] — the method of conditional expectations (with MPC round
//!   accounting for the `Θ(log n)`-bits-per-round fixing schedule) and
//!   exhaustive seed search, the laptop-scale realization of the
//!   non-explicit PRG (Lemma 35) and non-uniform seed (Lemma 54) arguments.
//!
//! ```
//! use csmpc_derand::hash::pairwise_for_domain;
//!
//! let fam = pairwise_for_domain(100);
//! let h = fam.member(123 % fam.size());
//! assert!(h.unit(42) < 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod advice;
pub mod field;
pub mod hash;
pub mod intervals;
pub mod mce;
pub mod stats;

pub use hash::{pairwise_for_domain, PolyFamily, PolyHash};
pub use mce::{best_seed_exhaustive, find_good_seed, ConditionalExpectation, FixedSeed};
