//! The **deterministic `O(1)`-round component-unstable** large-IS algorithm
//! of Claim 52 / Theorem 53: a single Luby step executed with a *pairwise
//! independent* hash family and derandomized by the method of conditional
//! expectations.
//!
//! With `h_{a,b}(x) = a·x + b (mod p)` and threshold `T ≈ p/(2Δ)`, node `v`
//! joins when `h(v) < T` and every neighbor hashes `≥ T`; Claim 52 gives
//! `E[|IS|] ≥ n/(4Δ+1)`-ish under pairwise independence. The crucial
//! structural gift of this family is that for a *fixed* `a`, varying `b`
//! shifts every node's hash by the same cyclic offset — so the conditional
//! expectation `E_b[|IS| | a]` is an exact cyclic-interval count, and both
//! seed coordinates can be fixed by exhaustive minimization over `Z_p`
//! (`Θ(log n)` seed bits total, fixed at `Θ(log n)` bits per MPC round,
//! exactly the paper's schedule).

use crate::api::MpcVertexAlgorithm;
use csmpc_derand::field::next_prime;
use csmpc_derand::intervals::{count_difference, CyclicInterval};
use csmpc_derand::mce::ConditionalExpectation;
use csmpc_graph::Graph;
use csmpc_mpc::{Cluster, DistributedGraph, MpcError};

/// Parameters of the pairwise Luby step on a concrete graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairwiseLuby {
    /// Prime modulus `p ≥ n`.
    pub p: u64,
    /// Join threshold `T` (`h(v) < T` required).
    pub t: u64,
}

impl PairwiseLuby {
    /// Instance for a graph: `p` = smallest prime ≥ `max(n, 3)`,
    /// `T = max(1, ⌊p/(2Δ)⌋)`.
    #[must_use]
    pub fn for_graph(g: &Graph) -> Self {
        let p = next_prime(g.n().max(3) as u64);
        let delta = g.max_degree().max(1) as u64;
        PairwiseLuby {
            p,
            t: (p / (2 * delta)).max(1),
        }
    }

    /// Hash of node index `x` under seed `(a, b)`.
    #[must_use]
    pub fn hash(&self, a: u64, b: u64, x: u64) -> u64 {
        (csmpc_derand::field::mul_mod(a, x, self.p) + b) % self.p
    }

    /// The set the step selects under seed `(a, b)`: `v` joins iff
    /// `h(v) < T` and all neighbors hash `≥ T`. Always independent.
    #[must_use]
    pub fn select(&self, g: &Graph, a: u64, b: u64) -> Vec<bool> {
        let h: Vec<u64> = (0..g.n()).map(|v| self.hash(a, b, v as u64)).collect();
        (0..g.n())
            .map(|v| h[v] < self.t && g.neighbors(v).iter().all(|&w| h[w as usize] >= self.t))
            .collect()
    }

    /// Exact `E_b[|IS|]` for a fixed `a`, via cyclic-interval counting:
    /// node `v` joins for `b ∈ I_v \ ∪_{u∈N(v)} I_u`, where
    /// `I_x = {b : (a·x + b) mod p < T}`.
    #[must_use]
    pub fn expected_size_given_a(&self, g: &Graph, a: u64) -> f64 {
        let c: Vec<u64> = (0..g.n())
            .map(|v| csmpc_derand::field::mul_mod(a, v as u64, self.p))
            .collect();
        let mut total = 0u64;
        for v in 0..g.n() {
            let base = CyclicInterval::shift_preimage(c[v], self.t, self.p);
            let cuts: Vec<CyclicInterval> = g
                .neighbors(v)
                .iter()
                .map(|&w| CyclicInterval::shift_preimage(c[w as usize], self.t, self.p))
                .collect();
            total += count_difference(base, &cuts);
        }
        total as f64 / self.p as f64
    }

    /// The pairwise-independence expectation lower bound of Claim 52:
    /// `n · (T/p) · (1 − Δ·T/p)`.
    #[must_use]
    pub fn claim52_lower_bound(&self, g: &Graph) -> f64 {
        let tp = self.t as f64 / self.p as f64;
        let delta = g.max_degree().max(1) as f64;
        g.n() as f64 * tp * (1.0 - delta * tp)
    }
}

/// Outcome of the derandomization, exposing the seed and the expectations
/// for experiment reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct DerandomizedIsRun {
    /// Chosen labels (independent set membership).
    pub labels: Vec<bool>,
    /// Fixed seed `(a, b)`.
    pub seed: (u64, u64),
    /// Unconditional expectation `E_{a,b}[|IS|]`.
    pub prior_expectation: f64,
    /// Achieved set size (guaranteed `≥ prior_expectation` up to floor).
    pub achieved: usize,
    /// MPC rounds charged for the conditional-expectation schedule.
    pub mce_rounds: usize,
}

/// Runs the full derandomized step (no cluster accounting).
#[must_use]
pub fn derandomized_is(g: &Graph) -> DerandomizedIsRun {
    let inst = PairwiseLuby::for_graph(g);
    // Cache E_b[|IS|] per a on first use; the MCE driver probes every a.
    let mut per_a: Vec<Option<f64>> = vec![None; inst.p as usize];
    let mut mean_cache: Option<f64> = None;
    let bits_per_round = (usize::BITS - g.n().max(2).leading_zeros()).max(1);
    let driver = ConditionalExpectation::uniform(2, inst.p, bits_per_round);
    let fixed = driver.run(|prefix| match prefix.len() {
        0 => {
            let mean = *mean_cache.get_or_insert_with(|| {
                let mut acc = 0.0;
                for a in 0..inst.p {
                    let e = inst.expected_size_given_a(g, a);
                    per_a[a as usize] = Some(e);
                    acc += e;
                }
                acc / inst.p as f64
            });
            -mean
        }
        1 => {
            let a = prefix[0];
            let e = per_a[a as usize].get_or_insert_with(|| inst.expected_size_given_a(g, a));
            -*e
        }
        _ => {
            let (a, b) = (prefix[0], prefix[1]);
            -(inst.select(g, a, b).iter().filter(|&&x| x).count() as f64)
        }
    });
    let (a, b) = (fixed.values[0], fixed.values[1]);
    let labels = inst.select(g, a, b);
    DerandomizedIsRun {
        achieved: labels.iter().filter(|&&x| x).count(),
        labels,
        seed: (a, b),
        prior_expectation: -fixed.prior_cost,
        mce_rounds: fixed.mpc_rounds,
    }
}

/// The Theorem 53 algorithm as an MPC algorithm: deterministic,
/// component-unstable (the seed fixing is a global agreement), `O(1)`
/// rounds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DerandomizedLargeIs;

impl MpcVertexAlgorithm for DerandomizedLargeIs {
    type Label = bool;

    fn name(&self) -> &str {
        "derandomized-large-is (unstable, deterministic)"
    }

    fn deterministic(&self) -> bool {
        true
    }

    // Explicit: fixing the MCE seed is a global agreement across all
    // components, so the derandomized algorithm is component-unstable.
    fn component_stable(&self) -> bool {
        false
    }

    fn run(&self, g: &Graph, cluster: &mut Cluster) -> Result<Vec<bool>, MpcError> {
        let dg = DistributedGraph::distribute(g, cluster)?;
        let d = cluster
            .config()
            .tree_depth(cluster.input_n(), cluster.num_machines());
        if g.n() == 0 {
            return Ok(Vec::new());
        }
        let run = derandomized_is(g);
        // Name-rank computation (sort, 2d) + each MCE fixing round is an
        // aggregation + broadcast (2d each).
        cluster.charge_rounds(2 * d + run.mce_rounds * 2 * d);
        let _ = &dg;
        Ok(run.labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::cluster_for;
    use csmpc_graph::rng::Seed;
    use csmpc_graph::{generators, Graph};
    use csmpc_problems::mis::is_independent_set;

    #[test]
    fn selection_always_independent() {
        let g = generators::random_gnp(40, 0.2, Seed(1));
        let inst = PairwiseLuby::for_graph(&g);
        for a in 0..10 {
            for b in 0..10 {
                assert!(is_independent_set(&g, &inst.select(&g, a, b)));
            }
        }
    }

    #[test]
    fn interval_expectation_matches_enumeration() {
        let g = generators::random_gnp(12, 0.3, Seed(2));
        let inst = PairwiseLuby::for_graph(&g);
        for a in [0u64, 1, 5, 7] {
            let analytic = inst.expected_size_given_a(&g, a);
            let brute: f64 = (0..inst.p)
                .map(|b| inst.select(&g, a, b).iter().filter(|&&x| x).count() as f64)
                .sum::<f64>()
                / inst.p as f64;
            assert!(
                (analytic - brute).abs() < 1e-9,
                "a={a}: analytic {analytic} vs brute {brute}"
            );
        }
    }

    #[test]
    fn mean_over_family_meets_claim52() {
        // E_{a,b}[|IS|] >= n·(T/p)·(1 − Δ·T/p): verify on several graphs.
        for s in 0..5 {
            let g = generators::random_regular(20, 4, Seed(s));
            let inst = PairwiseLuby::for_graph(&g);
            let mean: f64 = (0..inst.p)
                .map(|a| inst.expected_size_given_a(&g, a))
                .sum::<f64>()
                / inst.p as f64;
            let bound = inst.claim52_lower_bound(&g);
            assert!(
                mean + 1e-9 >= bound,
                "seed {s}: mean {mean} below Claim 52 bound {bound}"
            );
        }
    }

    #[test]
    fn derandomized_beats_expectation() {
        for s in 0..5 {
            let g = generators::random_gnp(30, 0.15, Seed(10 + s));
            let run = derandomized_is(&g);
            assert!(
                run.achieved as f64 + 1e-9 >= run.prior_expectation,
                "seed {s}: achieved {} below expectation {}",
                run.achieved,
                run.prior_expectation
            );
            assert!(is_independent_set(&g, &run.labels));
        }
    }

    #[test]
    fn theorem53_size_guarantee_on_cycles() {
        // On a cycle Δ = 2: guarantee ≈ n/8 ≥ n/(4Δ+1) = n/9.
        let g = generators::cycle(90);
        let run = derandomized_is(&g);
        assert!(
            run.achieved >= 90 / 9,
            "size {} below n/(4Δ+1) = 10",
            run.achieved
        );
    }

    #[test]
    fn fully_deterministic() {
        let g = generators::random_gnp(25, 0.2, Seed(3));
        let a = derandomized_is(&g);
        let b = derandomized_is(&g);
        assert_eq!(a, b);
    }

    #[test]
    fn constant_mpc_rounds() {
        let mut counts = Vec::new();
        for n in [32usize, 128, 512] {
            let g = generators::cycle(n);
            let mut cl = cluster_for(&g, Seed(0));
            let _ = DerandomizedLargeIs.run(&g, &mut cl).unwrap();
            counts.push(cl.stats().rounds);
        }
        assert!(counts[2] <= counts[0] + 8, "rounds grew with n: {counts:?}");
    }

    #[test]
    fn star_graph_edge_case() {
        // Star: Δ = n−1, threshold T = max(1, p/(2Δ)) — tiny but positive.
        let g = generators::star(10);
        let run = derandomized_is(&g);
        assert!(is_independent_set(&g, &run.labels));
    }

    #[test]
    fn empty_and_single() {
        let g0 = Graph::empty();
        let mut cl = cluster_for(&g0, Seed(0));
        assert!(DerandomizedLargeIs.run(&g0, &mut cl).unwrap().is_empty());
    }
}
