//! Luby's algorithm: the single step (Section 5's `O(1)`-round IS
//! primitive), the full MIS loop, and the ball-form simulation used by
//! component-stable MPC algorithms.

use csmpc_graph::Graph;
use csmpc_local::{BallAlgorithm, LocalParams};

/// Draws the per-node values `χ_v ∈ [0,1)` from the shared seed, keyed by
/// node **ID** (what a LOCAL node can address its randomness by).
#[must_use]
pub fn random_chi(g: &Graph, params: &LocalParams) -> Vec<f64> {
    (0..g.n())
        .map(|v| params.node_rng(g.id(v), 0xc41).f64())
        .collect()
}

/// One Luby step: `v` joins iff `χ_v` is strictly below every neighbor's
/// value. The result is always an independent set.
#[must_use]
pub fn luby_step(g: &Graph, chi: &[f64]) -> Vec<bool> {
    (0..g.n())
        .map(|v| g.neighbors(v).iter().all(|&w| chi[v] < chi[w as usize]))
        .collect()
}

/// Full Luby MIS in phase-synchronous form: in each phase, local minima of
/// fresh random values join the MIS and are removed together with their
/// neighbors. Returns the MIS and the number of phases (each phase is
/// `O(1)` LOCAL rounds).
#[must_use]
pub fn luby_mis(g: &Graph, params: &LocalParams) -> (Vec<bool>, usize) {
    let n = g.n();
    let mut in_mis = vec![false; n];
    let mut alive: Vec<bool> = vec![true; n];
    let mut phases = 0usize;
    while alive.iter().any(|&a| a) {
        phases += 1;
        let chi: Vec<f64> = (0..n)
            .map(|v| params.node_rng(g.id(v), 0x100 + phases as u64).f64())
            .collect();
        let joins: Vec<usize> = (0..n)
            .filter(|&v| {
                alive[v]
                    && g.neighbors(v)
                        .iter()
                        .all(|&w| !alive[w as usize] || chi[v] < chi[w as usize])
            })
            .collect();
        if joins.is_empty() {
            // Ties with identical χ cannot happen with continuous values;
            // guard against pathological seeds anyway.
            continue;
        }
        for &v in &joins {
            in_mis[v] = true;
            alive[v] = false;
            for &w in g.neighbors(v) {
                alive[w as usize] = false;
            }
        }
    }
    (in_mis, phases)
}

/// Status of a node under the truncated (extendable) Luby simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MisStatus {
    /// Decided into the MIS.
    In,
    /// Decided out (a neighbor is in).
    Out,
    /// Undecided after the phase budget — the `⊥` label of Definition 44.
    Undecided,
}

/// Luby's MIS truncated to `phases` phases, in **ball form**: the status of
/// a node after `k` phases depends only on its `k`-radius ball, so the
/// algorithm is simultaneously a LOCAL algorithm of radius `phases` and —
/// via graph exponentiation — a component-stable MPC algorithm (this is the
/// Theorem 45/46 "extendable algorithm" shape: any valid completion of the
/// `Undecided` nodes extends the partial MIS).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TruncatedLubyMis {
    /// Phase budget.
    pub phases: usize,
}

impl TruncatedLubyMis {
    /// Runs the truncated simulation on an explicit graph (used both
    /// directly and as the ball evaluation).
    #[must_use]
    pub fn statuses(&self, g: &Graph, params: &LocalParams) -> Vec<MisStatus> {
        let n = g.n();
        let mut status = vec![MisStatus::Undecided; n];
        let mut alive: Vec<bool> = vec![true; n];
        for phase in 1..=self.phases {
            let chi: Vec<f64> = (0..n)
                .map(|v| params.node_rng(g.id(v), 0x100 + phase as u64).f64())
                .collect();
            let joins: Vec<usize> = (0..n)
                .filter(|&v| {
                    alive[v]
                        && g.neighbors(v)
                            .iter()
                            .all(|&w| !alive[w as usize] || chi[v] < chi[w as usize])
                })
                .collect();
            for &v in &joins {
                status[v] = MisStatus::In;
                alive[v] = false;
                for &w in g.neighbors(v) {
                    let w = w as usize;
                    if alive[w] {
                        status[w] = MisStatus::Out;
                        alive[w] = false;
                    }
                }
            }
        }
        status
    }
}

impl BallAlgorithm for TruncatedLubyMis {
    type Output = MisStatus;

    fn radius(&self, _params: &LocalParams) -> usize {
        // A phase is two LOCAL rounds (join decision + neighbor
        // notification), so k phases are determined by the 2k-ball — the
        // same `2t`-radius balls Theorem 45 collects.
        2 * self.phases
    }

    fn evaluate(&self, ball: &Graph, center: usize, params: &LocalParams) -> MisStatus {
        self.statuses(ball, params)[center]
    }
}

/// Deterministic greedy MIS by ascending ID — the sequential baseline used
/// for validity cross-checks and for extending partial solutions.
#[must_use]
pub fn greedy_mis(g: &Graph) -> Vec<bool> {
    let mut order: Vec<usize> = (0..g.n()).collect();
    order.sort_by_key(|&v| g.id(v));
    let mut blocked = vec![false; g.n()];
    let mut in_mis = vec![false; g.n()];
    for v in order {
        if !blocked[v] {
            in_mis[v] = true;
            blocked[v] = true;
            for &w in g.neighbors(v) {
                blocked[w as usize] = true;
            }
        }
    }
    in_mis
}

/// Completes a partial MIS (statuses with `Undecided`) greedily into a full
/// MIS — the "extendability" operation of Definition 44(i).
#[must_use]
pub fn extend_partial_mis(g: &Graph, status: &[MisStatus]) -> Vec<bool> {
    let mut in_mis: Vec<bool> = status.iter().map(|&s| s == MisStatus::In).collect();
    let mut order: Vec<usize> = (0..g.n())
        .filter(|&v| status[v] == MisStatus::Undecided)
        .collect();
    order.sort_by_key(|&v| g.id(v));
    for v in order {
        let blocked = g.neighbors(v).iter().any(|&w| in_mis[w as usize]);
        if !blocked {
            in_mis[v] = true;
        }
    }
    in_mis
}

/// Expected-size lower-bound check helper: the one-step Luby IS has
/// expected size `≥ Σ_v 1/(deg(v)+1) ≥ n/(Δ+1)`.
#[must_use]
pub fn one_step_expected_lower_bound(g: &Graph) -> f64 {
    (0..g.n()).map(|v| 1.0 / (g.degree(v) + 1) as f64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmpc_graph::generators;
    use csmpc_graph::rng::Seed;
    use csmpc_problems::mis::{is_independent_set, Mis};
    use csmpc_problems::problem::GraphProblem;

    fn params(g: &Graph, seed: u64) -> LocalParams {
        LocalParams::exact(g.n(), g.max_degree(), Seed(seed))
    }

    #[test]
    fn one_step_is_independent() {
        for s in 0..10 {
            let g = generators::random_gnp(40, 0.2, Seed(s));
            let p = params(&g, s);
            let labels = luby_step(&g, &random_chi(&g, &p));
            assert!(is_independent_set(&g, &labels), "seed {s}");
        }
    }

    #[test]
    fn one_step_size_near_expectation() {
        let g = generators::cycle(300); // Δ = 2, E[|IS|] = n/3
        let mut total = 0usize;
        let trials = 50;
        for s in 0..trials {
            let p = params(&g, s);
            total += luby_step(&g, &random_chi(&g, &p))
                .iter()
                .filter(|&&b| b)
                .count();
        }
        let mean = total as f64 / trials as f64;
        let expect = one_step_expected_lower_bound(&g); // = 100
        assert!(
            (mean - expect).abs() < 15.0,
            "mean {mean} too far from {expect}"
        );
    }

    #[test]
    fn full_luby_is_valid_mis() {
        for s in 0..10 {
            let g = generators::random_gnp(30, 0.25, Seed(100 + s));
            let p = params(&g, s);
            let (labels, phases) = luby_mis(&g, &p);
            assert!(Mis.is_valid(&g, &labels), "seed {s}");
            assert!(phases >= 1);
        }
    }

    #[test]
    fn luby_phase_count_logarithmic() {
        let g = generators::random_gnp(400, 0.05, Seed(1));
        let p = params(&g, 1);
        let (_, phases) = luby_mis(&g, &p);
        assert!(phases <= 30, "phases {phases} not O(log n)-ish");
    }

    #[test]
    fn greedy_mis_valid() {
        for s in 0..5 {
            let g = generators::random_gnp(25, 0.3, Seed(s));
            assert!(Mis.is_valid(&g, &greedy_mis(&g)));
        }
    }

    #[test]
    fn truncated_statuses_are_consistent_partial_mis() {
        let g = generators::random_gnp(50, 0.15, Seed(3));
        let p = params(&g, 3);
        let status = TruncatedLubyMis { phases: 2 }.statuses(&g, &p);
        // In-nodes are independent; Out-nodes have an In-neighbor.
        for v in 0..g.n() {
            match status[v] {
                MisStatus::In => assert!(g
                    .neighbors(v)
                    .iter()
                    .all(|&w| status[w as usize] != MisStatus::In)),
                MisStatus::Out => assert!(g
                    .neighbors(v)
                    .iter()
                    .any(|&w| status[w as usize] == MisStatus::In)),
                MisStatus::Undecided => {}
            }
        }
    }

    #[test]
    fn extension_yields_valid_mis() {
        let g = generators::random_gnp(50, 0.15, Seed(4));
        let p = params(&g, 4);
        let status = TruncatedLubyMis { phases: 1 }.statuses(&g, &p);
        let full = extend_partial_mis(&g, &status);
        assert!(Mis.is_valid(&g, &full));
        // Extension must preserve decided nodes.
        for v in 0..g.n() {
            if status[v] == MisStatus::In {
                assert!(full[v]);
            }
        }
    }

    #[test]
    fn truncation_locality_matches_ball_semantics() {
        // Status after k phases must be computable from the k-ball: check
        // ball evaluation against whole-graph evaluation.
        use csmpc_local::ball_eval::run_ball_algorithm;
        let g = generators::random_tree(40, Seed(6));
        let p = params(&g, 6);
        let alg = TruncatedLubyMis { phases: 2 };
        let via_ball = run_ball_algorithm(&g, &alg, &p);
        let direct = alg.statuses(&g, &p);
        assert_eq!(via_ball, direct);
    }

    #[test]
    fn undecided_fraction_shrinks_with_phases() {
        let g = generators::random_gnp(200, 0.05, Seed(8));
        let p = params(&g, 8);
        let undecided = |k: usize| {
            TruncatedLubyMis { phases: k }
                .statuses(&g, &p)
                .iter()
                .filter(|&&s| s == MisStatus::Undecided)
                .count()
        };
        let u1 = undecided(1);
        let u4 = undecided(4);
        let u10 = undecided(10);
        assert!(u4 <= u1);
        assert!(u10 <= u4);
    }
}
