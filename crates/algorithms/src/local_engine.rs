//! LOCAL algorithms in *message-passing* form, cross-validating the engine
//! semantics (`csmpc_local::engine`) against the ball semantics
//! (`csmpc_local::ball_eval`) that the rest of the workspace uses.
//!
//! Two artifacts:
//!
//! * [`LubyMisEngine`] — Luby's MIS as an explicit protocol (two rounds per
//!   phase: join announcements, then elimination announcements), provably
//!   equivalent to the phase-synchronous [`crate::luby::luby_mis`];
//! * [`BallCollector`] — the generic `r`-round flooding protocol that
//!   gathers each node's `r`-ball and evaluates any
//!   [`csmpc_local::BallAlgorithm`] on it, realizing the textbook claim
//!   "any `r`-round LOCAL algorithm is a function of the `r`-ball" *inside
//!   the engine*.

use csmpc_graph::{Graph, GraphBuilder, NodeId, NodeName};
use csmpc_local::engine::{Action, Incoming, LocalAlgorithm, NodeView};
use csmpc_local::{BallAlgorithm, LocalParams};

/// Per-phase χ value, derived exactly like [`crate::luby::TruncatedLubyMis`]
/// so the two implementations are comparable bit-for-bit.
fn chi(params: &LocalParams, id: NodeId, phase: usize) -> f64 {
    params.node_rng(id, 0x100 + phase as u64).f64()
}

/// Luby's MIS as a message-passing protocol: phase `p` consists of a *join*
/// round (local χ-minima among active nodes announce themselves) and an
/// *eliminate* round (their neighbors announce leaving). Each node halts as
/// soon as it is decided and its neighbors know.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LubyMisEngine;

/// Protocol messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LubyMsg {
    /// Sender joined the MIS this phase.
    Joined,
    /// Sender left (a neighbor joined).
    Eliminated,
    /// Sender is still active.
    StillActive,
}

/// Per-node protocol state.
#[derive(Debug, Clone)]
pub struct LubyState {
    active_neighbors: Vec<bool>,
    decided: Option<bool>,
    pending_halt: bool,
}

impl LocalAlgorithm for LubyMisEngine {
    type State = LubyState;
    type Message = LubyMsg;
    type Output = bool;

    fn init(&self, view: &NodeView<'_>) -> LubyState {
        LubyState {
            active_neighbors: vec![true; view.degree()],
            decided: None,
            pending_halt: false,
        }
    }

    fn round(
        &self,
        state: &mut LubyState,
        view: &NodeView<'_>,
        round: usize,
        inbox: &[Incoming<LubyMsg>],
    ) -> Action<LubyMsg, bool> {
        // Process announcements from the previous round.
        for msg in inbox {
            match msg.msg {
                LubyMsg::Joined => {
                    // A neighbor joined: I am eliminated (if undecided).
                    if state.decided.is_none() {
                        state.decided = Some(false);
                    }
                    state.active_neighbors[msg.port] = false;
                }
                LubyMsg::Eliminated => state.active_neighbors[msg.port] = false,
                LubyMsg::StillActive => {}
            }
        }
        if state.pending_halt {
            return Action::Halt(state.decided.expect("halting nodes are decided"));
        }
        // Odd rounds are join rounds of phase (round+1)/2; even rounds are
        // eliminate rounds.
        if round % 2 == 1 {
            let phase = round.div_ceil(2);
            if state.decided.is_none() {
                let my = chi(view.params, view.id, phase);
                let is_min = (0..view.degree()).all(|p| {
                    !state.active_neighbors[p] || my < chi(view.params, view.neighbor_ids[p], phase)
                });
                if is_min {
                    state.decided = Some(true);
                    state.pending_halt = true;
                    return Action::Broadcast(LubyMsg::Joined);
                }
            }
            Action::Broadcast(LubyMsg::StillActive)
        } else {
            // Eliminate round: nodes knocked out this phase tell neighbors.
            if state.decided == Some(false) && !state.pending_halt {
                state.pending_halt = true;
                return Action::Broadcast(LubyMsg::Eliminated);
            }
            Action::Broadcast(LubyMsg::StillActive)
        }
    }
}

/// The generic ball-gathering protocol: flood node records for `r` rounds,
/// reconstruct the `r`-ball, evaluate `A`.
#[derive(Debug, Clone, Copy)]
pub struct BallCollector<A> {
    /// The ball algorithm to evaluate at each center.
    pub algorithm: A,
}

/// A flooded node record: ID plus neighbor IDs.
pub type NodeRecord = (u64, Vec<u64>);

/// Collector state: all records learned so far.
#[derive(Debug, Clone)]
pub struct CollectorState {
    records: std::collections::BTreeMap<u64, Vec<u64>>,
}

impl<A: BallAlgorithm> LocalAlgorithm for BallCollector<A>
where
    A::Output: Clone,
{
    type State = CollectorState;
    type Message = Vec<NodeRecord>;
    type Output = A::Output;

    fn init(&self, view: &NodeView<'_>) -> CollectorState {
        let mut records = std::collections::BTreeMap::new();
        records.insert(view.id.0, view.neighbor_ids.iter().map(|i| i.0).collect());
        CollectorState { records }
    }

    fn round(
        &self,
        state: &mut CollectorState,
        view: &NodeView<'_>,
        round: usize,
        inbox: &[Incoming<Vec<NodeRecord>>],
    ) -> Action<Vec<NodeRecord>, A::Output> {
        for msg in inbox {
            for (id, nbrs) in &msg.msg {
                state.records.entry(*id).or_insert_with(|| nbrs.clone());
            }
        }
        let r = self.algorithm.radius(view.params);
        if round > r {
            // Reconstruct the ball: BFS over gathered records from self.
            let ball = reconstruct_ball(&state.records, view.id.0, r);
            let center = ball
                .index_of_id(NodeId(view.id.0))
                .expect("center is in its own ball");
            return Action::Halt(self.algorithm.evaluate(&ball, center, view.params));
        }
        let all: Vec<NodeRecord> = state
            .records
            .iter()
            .map(|(id, nbrs)| (*id, nbrs.clone()))
            .collect();
        Action::Broadcast(all)
    }
}

/// Builds the induced subgraph on nodes within distance `r` of `center_id`,
/// from flooded records. Records must cover the ball (guaranteed after `r`
/// flooding rounds).
fn reconstruct_ball(
    records: &std::collections::BTreeMap<u64, Vec<u64>>,
    center_id: u64,
    r: usize,
) -> Graph {
    // BFS over the record graph.
    let mut dist = std::collections::BTreeMap::new();
    dist.insert(center_id, 0usize);
    let mut queue = std::collections::VecDeque::from([center_id]);
    while let Some(x) = queue.pop_front() {
        let dx = dist[&x];
        if dx == r {
            continue;
        }
        if let Some(nbrs) = records.get(&x) {
            for &y in nbrs {
                if let std::collections::btree_map::Entry::Vacant(e) = dist.entry(y) {
                    e.insert(dx + 1);
                    queue.push_back(y);
                }
            }
        }
    }
    let ids: Vec<u64> = dist.keys().copied().collect();
    let index: std::collections::BTreeMap<u64, usize> =
        ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let mut b = GraphBuilder::new();
    for &id in &ids {
        // Names are invisible in LOCAL; reuse IDs (legal inside one ball).
        b.add_node(NodeId(id), NodeName(id));
    }
    let mut seen = std::collections::BTreeSet::new();
    for &id in &ids {
        if let Some(nbrs) = records.get(&id) {
            for &y in nbrs {
                if let Some(&j) = index.get(&y) {
                    let i = index[&id];
                    let key = (i.min(j), i.max(j));
                    if i != j && seen.insert(key) {
                        b.add_edge(key.0, key.1);
                    }
                }
            }
        }
    }
    b.build().expect("reconstructed ball is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::luby::{luby_mis, TruncatedLubyMis};
    use csmpc_graph::generators;
    use csmpc_graph::rng::Seed;
    use csmpc_local::engine::run_local;
    use csmpc_problems::mis::Mis;
    use csmpc_problems::problem::GraphProblem;

    #[test]
    fn engine_luby_produces_valid_mis() {
        for s in 0..8 {
            let g = generators::random_gnp(30, 0.15, Seed(s));
            let params = LocalParams::exact(g.n(), g.max_degree(), Seed(100 + s));
            let run = run_local(&g, &LubyMisEngine, &params, 500).unwrap();
            assert!(Mis.is_valid(&g, &run.outputs), "seed {s}");
        }
    }

    #[test]
    fn engine_luby_matches_phase_semantics() {
        // Same seed ⇒ the protocol and the phase-synchronous loop agree.
        for s in 0..6 {
            let g = generators::random_tree(25, Seed(s));
            let params = LocalParams::exact(g.n(), g.max_degree(), Seed(200 + s));
            let run = run_local(&g, &LubyMisEngine, &params, 500).unwrap();
            let (reference, phases) = luby_mis(&g, &params);
            assert_eq!(run.outputs, reference, "seed {s}");
            // Two engine rounds per phase, plus halting slack.
            assert!(
                run.rounds <= 2 * phases + 3,
                "seed {s}: {} rounds for {phases} phases",
                run.rounds
            );
        }
    }

    #[test]
    fn engine_luby_round_count_logarithmic() {
        let g = generators::random_gnp(300, 0.03, Seed(3));
        let params = LocalParams::exact(g.n(), g.max_degree(), Seed(4));
        let run = run_local(&g, &LubyMisEngine, &params, 1000).unwrap();
        assert!(run.rounds <= 60, "rounds {} not O(log n)-ish", run.rounds);
    }

    #[test]
    fn ball_collector_matches_direct_ball_evaluation() {
        // The flooding protocol must compute exactly what ball_eval does.
        use csmpc_local::ball_eval::run_ball_algorithm;
        let alg = TruncatedLubyMis { phases: 2 };
        for s in 0..5 {
            let g = generators::random_tree(20, Seed(s));
            let params = LocalParams::exact(g.n(), g.max_degree(), Seed(50 + s));
            let via_engine =
                run_local(&g, &BallCollector { algorithm: alg }, &params, 100).unwrap();
            let via_ball = run_ball_algorithm(&g, &alg, &params);
            assert_eq!(via_engine.outputs, via_ball, "seed {s}");
            // r flooding rounds + 1 halting round.
            assert_eq!(via_engine.rounds, alg.radius(&params) + 1);
        }
    }

    #[test]
    fn ball_collector_respects_radius() {
        // A radius-1 sum-of-ids algorithm must see exactly the 1-ball.
        #[derive(Clone, Copy, Debug)]
        struct SumIds;
        impl BallAlgorithm for SumIds {
            type Output = u64;
            fn radius(&self, _p: &LocalParams) -> usize {
                1
            }
            fn evaluate(&self, ball: &Graph, _c: usize, _p: &LocalParams) -> u64 {
                ball.ids().iter().map(|i| i.0).sum()
            }
        }
        let g = generators::path(5); // IDs 0..4
        let params = LocalParams::exact(5, 2, Seed(0));
        let run = run_local(&g, &BallCollector { algorithm: SumIds }, &params, 10).unwrap();
        assert_eq!(run.outputs, vec![1, 3, 6, 9, 7]);
    }
}
