//! MPC connectivity: the connectivity-conjecture baseline (one `n`-cycle vs
//! two `n/2`-cycles) and `D`-diameter `s-t` connectivity (the problem the
//! lifting reduction of Lemma 27 / Theorem 14 targets).

use csmpc_graph::{Graph, NodeName};
use csmpc_mpc::{Cluster, DistributedGraph, MpcError};

/// Verdict of the cycle-distinguishing problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleVerdict {
    /// The input is one connected cycle.
    OneCycle,
    /// The input splits into two cycles.
    TwoCycles,
}

/// Distinguishes one `n`-cycle from two `n/2`-cycles via pointer-jumping
/// connected components — the best known upper bound, `Θ(log n)` rounds,
/// which the connectivity conjecture posits is optimal.
///
/// Returns the verdict and the number of pointer-jumping iterations
/// (each `O(1)` MPC rounds).
///
/// # Errors
///
/// Propagates space violations.
pub fn distinguish_cycles(
    g: &Graph,
    cluster: &mut Cluster,
) -> Result<(CycleVerdict, usize), MpcError> {
    let dg = DistributedGraph::distribute(g, cluster)?;
    let (labels, iterations) = dg.cc_labels(cluster)?;
    let distinct: std::collections::BTreeSet<u64> = labels.iter().copied().collect();
    let verdict = if distinct.len() <= 1 {
        CycleVerdict::OneCycle
    } else {
        CycleVerdict::TwoCycles
    };
    Ok((verdict, iterations))
}

/// The `D`-diameter `s-t` connectivity problem (GKU19 Definition IV.1,
/// restated in Lemma 27's footnote): answer YES when `s` and `t` are the
/// endpoints of a path of length ≤ `D`, NO when they are disconnected;
/// anything is acceptable otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StConnInstance {
    /// Name of the source node `s`.
    pub s: NodeName,
    /// Name of the target node `t`.
    pub t: NodeName,
    /// The diameter bound `D`.
    pub d: usize,
}

/// Solves `D`-diameter `s-t` connectivity by pointer jumping restricted to
/// the ≤2-degree skeleton (nodes of degree > 2 are discarded, as the
/// problem's promise allows): `O(log D)` iterations.
///
/// # Errors
///
/// Propagates space violations. Returns `Ok(None)` if `s` or `t` is absent.
pub fn st_connected(
    g: &Graph,
    inst: StConnInstance,
    cluster: &mut Cluster,
) -> Result<Option<bool>, MpcError> {
    let s = g.index_of_name(inst.s);
    let t = g.index_of_name(inst.t);
    let (Some(s), Some(t)) = (s, t) else {
        return Ok(None);
    };
    // Discard nodes of degree > 2 (cannot be on an s-t path under the
    // promise); one round of local filtering.
    let keep: Vec<usize> = (0..g.n()).filter(|&v| g.degree(v) <= 2).collect();
    cluster.advance_rounds(1)?;
    let (sub, back) = csmpc_graph::ops::induced(g, &keep);
    let dg = DistributedGraph::distribute(&sub, cluster)?;
    let (labels, _) = dg.cc_labels(cluster)?;
    let pos = |orig: usize| back.iter().position(|&x| x == orig);
    let (Some(si), Some(ti)) = (pos(s), pos(t)) else {
        return Ok(Some(false)); // s or t had degree > 2: not a plain path
    };
    Ok(Some(labels[si] == labels[ti]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::cluster_for;
    use csmpc_graph::rng::Seed;
    use csmpc_graph::{generators, ops};

    #[test]
    fn one_cycle_detected() {
        let g = generators::cycle(64);
        let mut cl = cluster_for(&g, Seed(1));
        let (v, _) = distinguish_cycles(&g, &mut cl).unwrap();
        assert_eq!(v, CycleVerdict::OneCycle);
    }

    #[test]
    fn two_cycles_detected() {
        let g = generators::two_cycles(64);
        let mut cl = cluster_for(&g, Seed(1));
        let (v, _) = distinguish_cycles(&g, &mut cl).unwrap();
        assert_eq!(v, CycleVerdict::TwoCycles);
    }

    #[test]
    fn iteration_count_scales_logarithmically() {
        let mut iters = Vec::new();
        for n in [64usize, 256, 1024, 4096] {
            let g = generators::cycle(n);
            let mut cl = cluster_for(&g, Seed(1));
            let (_, it) = distinguish_cycles(&g, &mut cl).unwrap();
            iters.push(it);
        }
        // 64x more nodes should cost roughly +6 iterations, not 64x.
        assert!(
            iters[3] <= iters[0] + 14,
            "iterations not logarithmic: {iters:?}"
        );
        assert!(
            iters[3] > iters[0],
            "iterations suspiciously flat: {iters:?}"
        );
    }

    #[test]
    fn st_connectivity_on_path() {
        let g = generators::path(20);
        let inst = StConnInstance {
            s: g.name(0),
            t: g.name(19),
            d: 19,
        };
        let mut cl = cluster_for(&g, Seed(2));
        assert_eq!(st_connected(&g, inst, &mut cl).unwrap(), Some(true));
    }

    #[test]
    fn st_connectivity_disconnected() {
        let a = generators::path(10);
        let b = ops::with_fresh_names(&generators::path(10), 100);
        let g = ops::disjoint_union(&[&a, &b]);
        let inst = StConnInstance {
            s: g.name(0),
            t: g.name(10), // in the other path
            d: 9,
        };
        let mut cl = cluster_for(&g, Seed(3));
        assert_eq!(st_connected(&g, inst, &mut cl).unwrap(), Some(false));
    }

    #[test]
    fn missing_endpoint_reported() {
        let g = generators::path(5);
        let inst = StConnInstance {
            s: g.name(0),
            t: NodeName(999),
            d: 4,
        };
        let mut cl = cluster_for(&g, Seed(4));
        assert_eq!(st_connected(&g, inst, &mut cl).unwrap(), None);
    }

    #[test]
    fn high_degree_nodes_discarded() {
        // s-t path through a high-degree hub does not count (the promise
        // allows any answer, we answer false deterministically).
        let g = generators::star(5);
        let inst = StConnInstance {
            s: g.name(1),
            t: g.name(2),
            d: 2,
        };
        let mut cl = cluster_for(&g, Seed(5));
        assert_eq!(st_connected(&g, inst, &mut cl).unwrap(), Some(false));
    }
}
