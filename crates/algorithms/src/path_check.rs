//! The `O(1)`-round MPC algorithm for the Section 2.1 counterexample
//! problem ("is the whole graph a simple path with consecutive IDs?").
//!
//! Each node performs radius-1 checks; three global aggregations (degree-1
//! count, min/max ID, a global AND) finish the job — constant rounds, in
//! stark contrast to the problem's `n−1`-round LOCAL lower bound. Because
//! the verdict depends on `n` and on *all* components, the algorithm is
//! component-stable only thanks to its dependency on `n` — the exact
//! subtlety the paper's Section 2.1 dissects.

use crate::api::MpcVertexAlgorithm;
use csmpc_graph::Graph;
use csmpc_mpc::{Cluster, DistributedGraph, MpcError};

/// Per-node local predicate: degrees in `{1, 2}` and neighbor IDs exactly
/// the adjacent integers.
fn locally_consistent(g: &Graph, v: usize) -> bool {
    let id = g.id(v).0;
    let nbr_ids: Vec<u64> = g.neighbors(v).iter().map(|&w| g.id(w as usize).0).collect();
    match nbr_ids.len() {
        1 => nbr_ids[0] == id + 1 || (id > 0 && nbr_ids[0] == id - 1),
        2 => {
            let lo = id.checked_sub(1);
            let hi = id + 1;
            let mut sorted = nbr_ids.clone();
            sorted.sort_unstable();
            match lo {
                Some(lo) => sorted == vec![lo, hi],
                None => false,
            }
        }
        _ => false,
    }
}

/// The constant-round verdict, computed with explicit aggregation charges.
///
/// # Errors
///
/// Propagates space violations from distribution.
pub fn consecutive_path_verdict(g: &Graph, cluster: &mut Cluster) -> Result<bool, MpcError> {
    let dg = DistributedGraph::distribute(g, cluster)?;
    let n = dg.count_nodes(cluster)?;
    if n == 0 {
        return Ok(false);
    }
    if n == 1 {
        return Ok(true);
    }
    let d = cluster
        .config()
        .tree_depth(cluster.input_n(), cluster.num_machines());
    // One local round to collect radius-1 neighborhoods (IDs of neighbors
    // travel one hop), then three parallel aggregations.
    cluster.advance_rounds(1 + d)?;
    let endpoints = (0..n).filter(|&v| g.degree(v) == 1).count();
    let all_local = (0..n).all(|v| locally_consistent(g, v));
    let min_id = (0..n).map(|v| g.id(v).0).min().expect("n >= 1");
    let max_id = (0..n).map(|v| g.id(v).0).max().expect("n >= 1");
    Ok(endpoints == 2 && all_local && max_id - min_id == (n - 1) as u64)
}

/// The algorithm packaged for the framework: label = the global verdict at
/// every node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConsecutivePathCheck;

impl MpcVertexAlgorithm for ConsecutivePathCheck {
    type Label = bool;

    fn name(&self) -> &str {
        "consecutive-path-check (stable-with-n, deterministic)"
    }

    fn deterministic(&self) -> bool {
        true
    }

    // Stable *given n*: with |V| known, a component can decide locally
    // whether it is the whole consecutive-ID path (Definition 13 admits
    // outputs depending on (CC(v), v, n, Delta, S)); the implementation
    // reads only distribute/count_nodes from the global API.
    fn component_stable(&self) -> bool {
        true
    }

    fn run(&self, g: &Graph, cluster: &mut Cluster) -> Result<Vec<bool>, MpcError> {
        let verdict = consecutive_path_verdict(g, cluster)?;
        Ok(vec![verdict; g.n()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::cluster_for;
    use csmpc_graph::rng::Seed;
    use csmpc_graph::{generators, ops};
    use csmpc_problems::consecutive_path::is_consecutive_id_path;

    fn verdict(g: &Graph) -> bool {
        let mut cl = cluster_for(g, Seed(0));
        consecutive_path_verdict(g, &mut cl).unwrap()
    }

    #[test]
    fn yes_on_consecutive_path() {
        assert!(verdict(&generators::consecutive_id_path(10)));
    }

    #[test]
    fn no_on_broken_endpoint() {
        assert!(!verdict(&generators::consecutive_id_path_broken(10)));
    }

    #[test]
    fn no_on_cycle_and_forest() {
        assert!(!verdict(&generators::cycle(8)));
        assert!(!verdict(&generators::random_forest(&[4, 4], Seed(1))));
    }

    #[test]
    fn matches_ground_truth_on_many_instances() {
        let mut cases: Vec<Graph> = vec![
            generators::consecutive_id_path(2),
            generators::consecutive_id_path(7),
            generators::consecutive_id_path_broken(7),
            generators::cycle(7),
            generators::star(4),
        ];
        for s in 0..10 {
            cases.push(generators::shuffle_identity(
                &generators::path(8),
                0,
                0,
                Seed(s),
            ));
            cases.push(generators::random_tree(8, Seed(s)));
        }
        // Two consecutive paths glued as separate components.
        let a = generators::consecutive_id_path(5);
        let b = ops::with_fresh_names(
            &ops::relabel_ids(&generators::path(5), |v, _| {
                csmpc_graph::NodeId(10 + v as u64)
            }),
            100,
        );
        cases.push(ops::disjoint_union(&[&a, &b]));
        for (i, g) in cases.iter().enumerate() {
            assert_eq!(
                verdict(g),
                is_consecutive_id_path(g),
                "case {i} diverged: {g}"
            );
        }
    }

    #[test]
    fn constant_rounds_across_sizes() {
        let mut rounds = Vec::new();
        for n in [16usize, 256, 4096] {
            let g = generators::consecutive_id_path(n);
            let mut cl = cluster_for(&g, Seed(0));
            let _ = consecutive_path_verdict(&g, &mut cl).unwrap();
            rounds.push(cl.stats().rounds);
        }
        assert!(rounds[2] <= rounds[0] + 3, "rounds grew with n: {rounds:?}");
    }

    #[test]
    fn algorithm_wrapper_labels_everyone() {
        let g = generators::consecutive_id_path(5);
        let mut cl = cluster_for(&g, Seed(0));
        let labels = ConsecutivePathCheck.run(&g, &mut cl).unwrap();
        assert_eq!(labels, vec![true; 5]);
    }

    #[test]
    fn descending_id_path_is_yes() {
        let g = generators::path(6);
        let rev = ops::relabel_ids(&g, |v, _| csmpc_graph::NodeId((5 - v) as u64));
        assert!(verdict(&rev));
        assert!(is_consecutive_id_path(&rev));
    }
}
