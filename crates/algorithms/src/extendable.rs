//! Extendable algorithms and their `O(log t)`-round MPC simulation
//! (Section 4.3, Definition 44, Theorems 45–46).
//!
//! An *extendable* algorithm may leave nodes undecided (`⊥`) as long as any
//! valid completion of the undecided part extends the decided part to a
//! full solution, and it leaves fewer than half a node undecided in
//! expectation. Such a `t`-round LOCAL algorithm is simulated in MPC by
//! collecting `2t`-radius balls (graph exponentiation, `O(log t)` rounds)
//! and evaluating locally; derandomization fixes a shared seed — for the
//! randomized side by direct use of the shared seed, for the deterministic
//! side by the PRG-style exhaustive seed search of Lemma 35 over an
//! `O(log n)`-bit seed space.

use crate::api::MpcVertexAlgorithm;
use crate::luby::{extend_partial_mis, MisStatus, TruncatedLubyMis};
use csmpc_derand::mce::find_good_seed;
use csmpc_graph::rng::Seed;
use csmpc_graph::Graph;
use csmpc_local::LocalParams;
use csmpc_mpc::{Cluster, DistributedGraph, MpcError};

/// Result of one extendable-simulation pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtendableRun {
    /// Final MIS labels after extension of the residual undecided graph.
    pub labels: Vec<bool>,
    /// Number of nodes left `⊥` by the truncated simulation (before the
    /// final residual extension).
    pub undecided: usize,
    /// Phase budget `t` used.
    pub phases: usize,
}

/// Simulates the truncated Luby MIS (an extendable algorithm in the sense
/// of Definition 44) on `g` through MPC ball collection, then completes the
/// `⊥` residue. Randomness comes from `params.shared_seed`.
///
/// Rounds charged: ball collection `O(log t)·O(1/φ)` plus `O(1)` for the
/// residual handling.
///
/// # Errors
///
/// Space violations when `Δ^{2t}`-size balls no longer fit in a machine —
/// the exact side condition of Theorems 45–46.
pub fn simulate_extendable_mis(
    g: &Graph,
    cluster: &mut Cluster,
    phases: usize,
) -> Result<ExtendableRun, MpcError> {
    let dg = DistributedGraph::distribute(g, cluster)?;
    let alg = TruncatedLubyMis { phases };
    let params = LocalParams::exact(g.n(), g.max_degree(), cluster.shared_seed());
    let radius = 2 * phases;
    let balls = dg.collect_balls(cluster, radius)?;
    let status: Vec<MisStatus> = balls
        .iter()
        .map(|(ball, center)| alg.statuses(ball, &params)[*center])
        .collect();
    let undecided = status
        .iter()
        .filter(|&&s| s == MisStatus::Undecided)
        .count();
    // Residual completion: the undecided-induced subgraph is extended; the
    // paper re-runs the algorithm O(1) times — after the phase budget the
    // residue is tiny, and completing it greedily inside machines is O(1)
    // rounds once each residual component fits a machine (charged as one
    // more primitive).
    cluster.charge_rounds(2);
    let labels = extend_partial_mis(g, &status);
    Ok(ExtendableRun {
        labels,
        undecided,
        phases,
    })
}

/// The Theorem 46-style MIS algorithm: component-stable in its simulation
/// phase (ball evaluation keyed by IDs), `O(log t)` MPC rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtendableMis {
    /// Phase budget `t` (`O(log Δ + polyloglog n)` in the paper; pass 0 to
    /// auto-select `⌈log₂(Δ+2)⌉ + ⌈log₂ log₂(n+3)⌉ + 2`).
    pub phases: usize,
}

impl ExtendableMis {
    /// The phase budget actually used on an `(n, Δ)` input.
    #[must_use]
    pub fn phases_for(&self, n: usize, delta: usize) -> usize {
        if self.phases > 0 {
            self.phases
        } else {
            let a = ((delta + 2) as f64).log2().ceil() as usize;
            let b = (((n + 3) as f64).log2().max(2.0)).log2().ceil() as usize;
            a + b + 2
        }
    }
}

impl MpcVertexAlgorithm for ExtendableMis {
    type Label = bool;

    fn name(&self) -> &str {
        "extendable-luby-mis (simulated, randomized)"
    }

    fn deterministic(&self) -> bool {
        false
    }

    // Stable: the truncated-Luby simulation reads only radius-2t balls
    // (collect_balls), so the label at v is a function of its own
    // component — the canonical ball-simulation stability argument.
    fn component_stable(&self) -> bool {
        true
    }

    fn run(&self, g: &Graph, cluster: &mut Cluster) -> Result<Vec<bool>, MpcError> {
        let t = self.phases_for(g.n(), g.max_degree());
        Ok(simulate_extendable_mis(g, cluster, t)?.labels)
    }
}

/// Outcome of the deterministic seed-fixed simulation (Theorem 45's
/// derandomization).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeterministicExtendableRun {
    /// Final labels.
    pub labels: Vec<bool>,
    /// The fixed seed index in `0..seed_space`.
    pub seed_index: u64,
    /// How many seeds in the space leave zero nodes undecided.
    pub good_seeds: u64,
    /// The seed-space size searched (`2^{O(log n)}` in the paper's PRG).
    pub seed_space: u64,
}

/// Derandomizes the extendable simulation by exhaustive search over a
/// `seed_space`-sized PRG seed space (Lemma 35's brute force at laptop
/// scale): picks the first seed whose truncated run leaves **zero** nodes
/// undecided, falling back to the seed minimizing the undecided count.
///
/// The search is a global agreement on one seed — the component-*unstable*
/// ingredient of Theorem 45's MPC implementation.
///
/// # Errors
///
/// Space violations from ball collection.
pub fn deterministic_extendable_mis(
    g: &Graph,
    cluster: &mut Cluster,
    phases: usize,
    seed_space: u64,
) -> Result<DeterministicExtendableRun, MpcError> {
    let dg = DistributedGraph::distribute(g, cluster)?;
    let alg = TruncatedLubyMis { phases };
    let radius = 2 * phases;
    let balls = dg.collect_balls(cluster, radius)?;
    let undecided_for = |s: u64| -> usize {
        let params = LocalParams::exact(g.n(), g.max_degree(), Seed(s).derive(0xe7e7));
        balls
            .iter()
            .filter(|(ball, center)| alg.statuses(ball, &params)[*center] == MisStatus::Undecided)
            .count()
    };
    let (first, good) = find_good_seed(seed_space, |s| undecided_for(s) == 0);
    let seed_index = match first {
        Some(s) => s,
        None => {
            // Fall back to the minimizer (still a valid extendable output).
            (0..seed_space)
                .min_by_key(|&s| undecided_for(s))
                .unwrap_or(0)
        }
    };
    // Seed agreement: the method of conditional expectations / seed search
    // fixes O(log n) bits at Θ(log n) bits per round → O(1) charged rounds,
    // each an aggregation + broadcast.
    let d = cluster
        .config()
        .tree_depth(cluster.input_n(), cluster.num_machines());
    cluster.charge_rounds(4 * d);
    let params = LocalParams::exact(g.n(), g.max_degree(), Seed(seed_index).derive(0xe7e7));
    let status: Vec<MisStatus> = balls
        .iter()
        .map(|(ball, center)| alg.statuses(ball, &params)[*center])
        .collect();
    let labels = extend_partial_mis(g, &status);
    Ok(DeterministicExtendableRun {
        labels,
        seed_index,
        good_seeds: good,
        seed_space,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{cluster_for, roomy_cluster_for};
    use csmpc_graph::generators;
    use csmpc_problems::mis::Mis;
    use csmpc_problems::problem::GraphProblem;

    #[test]
    fn simulation_produces_valid_mis() {
        let g = generators::random_gnp(48, 0.08, Seed(1));
        let mut cl = roomy_cluster_for(&g, Seed(2), 4096);
        let run = simulate_extendable_mis(&g, &mut cl, 3).unwrap();
        assert!(Mis.is_valid(&g, &run.labels));
    }

    #[test]
    fn more_phases_fewer_undecided() {
        let g = generators::random_gnp(120, 0.04, Seed(3));
        let mut u = Vec::new();
        for t in [1usize, 3, 6] {
            let mut cl = roomy_cluster_for(&g, Seed(4), 1 << 14);
            u.push(simulate_extendable_mis(&g, &mut cl, t).unwrap().undecided);
        }
        assert!(
            u[2] <= u[1] && u[1] <= u[0],
            "undecided not shrinking: {u:?}"
        );
    }

    #[test]
    fn mpc_rounds_logarithmic_in_phases() {
        // Round cost grows like log t, not t.
        let g = generators::cycle(200);
        let rounds_for = |t: usize| {
            let mut cl = roomy_cluster_for(&g, Seed(5), 1 << 12);
            let _ = simulate_extendable_mis(&g, &mut cl, t).unwrap();
            cl.stats().rounds
        };
        let r2 = rounds_for(2);
        let r16 = rounds_for(16);
        assert!(
            r16 <= r2 + 4 * 8,
            "r(16)={r16} too large vs r(2)={r2} for O(log t) growth"
        );
    }

    #[test]
    fn ball_space_violation_on_dense_graphs() {
        // Δ^{2t} exceeding machine space must be *detected*, not silently
        // simulated — the Theorems 45/46 side condition.
        let g = generators::random_regular(300, 8, Seed(6));
        let mut cl = cluster_for(&g, Seed(6));
        let err = simulate_extendable_mis(&g, &mut cl, 6).unwrap_err();
        assert!(matches!(err, MpcError::SpaceExceeded { .. }));
    }

    #[test]
    fn auto_phase_budget_reasonable() {
        let alg = ExtendableMis { phases: 0 };
        let t = alg.phases_for(1_000_000, 8);
        assert!((5..=16).contains(&t), "budget {t} out of expected band");
    }

    #[test]
    fn deterministic_run_is_reproducible_and_valid() {
        let g = generators::random_gnp(40, 0.08, Seed(7));
        let mut c1 = roomy_cluster_for(&g, Seed(8), 4096);
        let mut c2 = roomy_cluster_for(&g, Seed(999), 4096); // cluster seed must not matter
        let r1 = deterministic_extendable_mis(&g, &mut c1, 4, 32).unwrap();
        let r2 = deterministic_extendable_mis(&g, &mut c2, 4, 32).unwrap();
        assert_eq!(r1, r2, "deterministic algorithm must ignore the seed");
        assert!(Mis.is_valid(&g, &r1.labels));
    }

    #[test]
    fn seed_search_finds_zero_undecided_seed() {
        // With a generous phase budget most seeds fully decide the graph;
        // the search should find one.
        let g = generators::random_gnp(40, 0.08, Seed(9));
        let mut cl = roomy_cluster_for(&g, Seed(10), 1 << 14);
        let run = deterministic_extendable_mis(&g, &mut cl, 8, 16).unwrap();
        assert!(run.good_seeds > 0, "no good seed in a space of 16");
    }
}
