//! # csmpc-algorithms
//!
//! The LOCAL and MPC algorithms on both sides of every separation in
//! *"Component Stability in Low-Space Massively Parallel Computation"*
//! (PODC 2021):
//!
//! | paper object | module |
//! |---|---|
//! | Luby step / MIS, truncated (extendable) Luby | [`luby`] |
//! | Θ(log n)-fold success amplification (Theorem 5, unstable) | [`amplify`] |
//! | pairwise-independent derandomized Luby (Claim 52 / Theorem 53) | [`det_is`] |
//! | extendable-algorithm MPC simulation (Theorems 45–46) | [`extendable`] |
//! | constructive LLL, parallel Moser–Tardos (Lemma 37) | [`lll`] |
//! | sinkless orientation upper bounds (Theorem 39) | [`sinkless`] |
//! | colorings: greedy, Cole–Vishkin `O(log* n)`, forest Δ-edge-coloring (Theorems 40–43) | [`coloring`] |
//! | connectivity baseline + `D`-diameter s-t connectivity (conjecture, Lemma 27) | [`connectivity`] |
//! | the `O(1)`-round consecutive-path checker (Section 2.1) | [`path_check`] |
//!
//! All MPC algorithms implement [`api::MpcVertexAlgorithm`] so the
//! component-stability framework in `csmpc-core` can run and classify them
//! uniformly.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod amplify;
pub mod api;
pub mod coloring;
pub mod connectivity;
pub mod det_is;
pub mod extendable;
pub mod linial;
pub mod lll;
pub mod local_engine;
pub mod luby;
pub mod mpc_edge;
pub mod path_check;
pub mod sinkless;

pub use api::{cluster_for, MpcEdgeAlgorithm, MpcVertexAlgorithm};
