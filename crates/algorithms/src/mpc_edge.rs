//! Edge-labeling MPC algorithms, exercising the paper's line-graph
//! reduction (Section 2.3) with honest round accounting.

use crate::api::{MpcEdgeAlgorithm, MpcVertexAlgorithm};
use crate::extendable::simulate_extendable_mis;
use crate::sinkless::{sinkless_deterministic, sinkless_randomized};
use csmpc_graph::ops::line_graph;
use csmpc_graph::Graph;
use csmpc_mpc::{Cluster, MpcError};
use csmpc_problems::sinkless::EdgeDir;

/// Maximal matching via MIS on the line graph: the exact reduction the
/// paper uses for every edge problem. Component-stable in its simulation
/// phase; randomized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaximalMatchingMpc {
    /// Phase budget for the truncated Luby simulation (0 = auto).
    pub phases: usize,
}

impl MpcEdgeAlgorithm for MaximalMatchingMpc {
    type Label = bool;

    fn name(&self) -> &str {
        "maximal-matching-via-line-graph-mis"
    }

    fn deterministic(&self) -> bool {
        false
    }

    fn run(&self, g: &Graph, cluster: &mut Cluster) -> Result<Vec<bool>, MpcError> {
        // Line-graph conversion: one O(1)-round local reshuffle (every edge
        // record learns its endpoints' incident edges), charged as one
        // neighbor aggregation.
        let d = cluster
            .config()
            .tree_depth(cluster.input_n(), cluster.num_machines());
        cluster.charge_rounds(2 * d);
        let (lg, _) = line_graph(g);
        if lg.is_empty() {
            return Ok(Vec::new());
        }
        let phases = if self.phases > 0 {
            self.phases
        } else {
            crate::extendable::ExtendableMis { phases: 0 }.phases_for(lg.n(), lg.max_degree())
        };
        let run = simulate_extendable_mis(&lg, cluster, phases)?;
        Ok(run.labels)
    }
}

/// Sinkless orientation as an MPC edge algorithm: each Moser–Tardos
/// resampling round is `O(1)` MPC rounds (conflict detection is a per-node
/// aggregation over incident edges), so the total is `O(MT rounds · 1/φ)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinklessOrientationMpc;

impl MpcEdgeAlgorithm for SinklessOrientationMpc {
    type Label = EdgeDir;

    fn name(&self) -> &str {
        "sinkless-orientation-moser-tardos"
    }

    fn deterministic(&self) -> bool {
        false
    }

    fn run(&self, g: &Graph, cluster: &mut Cluster) -> Result<Vec<EdgeDir>, MpcError> {
        let d = cluster
            .config()
            .tree_depth(cluster.input_n(), cluster.num_machines());
        let run = sinkless_randomized(g, cluster.shared_seed())
            .map_err(|_| MpcError::RoundLimitExceeded { limit: 10_000 })?;
        cluster.charge_rounds((run.rounds + 1) * 2 * d);
        Ok(run.orientation)
    }
}

/// Deterministic sinkless orientation: seed search (Lemma 37's
/// derandomization stand-in) plus the winning Moser–Tardos run. The seed
/// agreement makes it component-unstable; deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeterministicSinklessMpc {
    /// Seed space searched (`2^{O(log n)}` in the paper's PRG).
    pub seed_space: u64,
}

impl MpcEdgeAlgorithm for DeterministicSinklessMpc {
    type Label = EdgeDir;

    fn name(&self) -> &str {
        "sinkless-orientation-deterministic (unstable)"
    }

    fn deterministic(&self) -> bool {
        true
    }

    fn run(&self, g: &Graph, cluster: &mut Cluster) -> Result<Vec<EdgeDir>, MpcError> {
        let d = cluster
            .config()
            .tree_depth(cluster.input_n(), cluster.num_machines());
        let (run, _seed) = sinkless_deterministic(g, self.seed_space)
            .map_err(|_| MpcError::RoundLimitExceeded { limit: 10_000 })?;
        // Seed agreement (O(1) aggregations) + the winning run's rounds.
        cluster.charge_rounds(4 * d + (run.rounds + 1) * 2 * d);
        Ok(run.orientation)
    }
}

/// A component-stable deterministic vertex algorithm: `(Δ+1)`-coloring by
/// simulating the ID-greedy LOCAL coloring within collected balls of radius
/// `r` — correct whenever every monotone ID-descending path is shorter than
/// `r` (true for random IDs w.h.p. at `r = O(log n)`; validity is always
/// *checked*, never assumed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BallGreedyColoringMpc {
    /// Ball radius to collect.
    pub radius: usize,
}

impl MpcVertexAlgorithm for BallGreedyColoringMpc {
    type Label = usize;

    fn name(&self) -> &str {
        "ball-greedy-coloring (stable, deterministic)"
    }

    fn deterministic(&self) -> bool {
        true
    }

    fn component_stable(&self) -> bool {
        true
    }

    fn run(&self, g: &Graph, cluster: &mut Cluster) -> Result<Vec<usize>, MpcError> {
        let dg = csmpc_mpc::DistributedGraph::distribute(g, cluster)?;
        let balls = dg.collect_balls(cluster, self.radius)?;
        let mut colors = Vec::with_capacity(g.n());
        for (ball, center) in balls.iter() {
            // Greedy by ID *within the ball*: the center's color equals the
            // global greedy color when its ID-descending dependency chain
            // fits inside the ball.
            let mut order: Vec<usize> = (0..ball.n()).collect();
            order.sort_by_key(|&v| ball.id(v));
            let local = crate::coloring::greedy_coloring(ball, &order);
            colors.push(local[*center]);
        }
        Ok(colors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::roomy_cluster_for;
    use csmpc_graph::generators;
    use csmpc_graph::rng::Seed;
    use csmpc_problems::coloring::VertexColoring;
    use csmpc_problems::matching::{EdgeProblem, MaximalMatching};
    use csmpc_problems::problem::GraphProblem;
    use csmpc_problems::sinkless::SinklessOrientation;

    #[test]
    fn matching_via_line_graph_is_maximal() {
        for s in 0..5 {
            let g = generators::random_gnp(24, 0.12, Seed(s));
            if g.m() == 0 {
                continue;
            }
            let mut cl = roomy_cluster_for(&g, Seed(10 + s), 1 << 15);
            let labels = MaximalMatchingMpc { phases: 4 }.run(&g, &mut cl).unwrap();
            assert!(MaximalMatching.validate(&g, &labels).is_ok(), "seed {s}");
        }
    }

    #[test]
    fn matching_on_empty_graph() {
        let g = csmpc_graph::GraphBuilder::with_sequential_nodes(5)
            .build()
            .unwrap();
        let mut cl = roomy_cluster_for(&g, Seed(0), 1 << 12);
        let labels = MaximalMatchingMpc { phases: 2 }.run(&g, &mut cl).unwrap();
        assert!(labels.is_empty());
    }

    #[test]
    fn sinkless_mpc_valid_with_round_accounting() {
        let g = generators::random_regular(40, 4, Seed(1));
        let mut cl = roomy_cluster_for(&g, Seed(2), 1 << 12);
        let labels = SinklessOrientationMpc.run(&g, &mut cl).unwrap();
        assert!(SinklessOrientation.validate(&g, &labels).is_ok());
        assert!(cl.stats().rounds >= 2, "rounds must be charged");
    }

    #[test]
    fn deterministic_sinkless_reproducible() {
        let g = generators::random_regular(24, 4, Seed(3));
        let mut c1 = roomy_cluster_for(&g, Seed(4), 1 << 12);
        let mut c2 = roomy_cluster_for(&g, Seed(999), 1 << 12);
        let l1 = DeterministicSinklessMpc { seed_space: 32 }
            .run(&g, &mut c1)
            .unwrap();
        let l2 = DeterministicSinklessMpc { seed_space: 32 }
            .run(&g, &mut c2)
            .unwrap();
        assert_eq!(l1, l2);
        assert!(SinklessOrientation.validate(&g, &l1).is_ok());
    }

    #[test]
    fn ball_greedy_coloring_proper_when_radius_suffices() {
        // Small graphs: a radius of n covers everything, so the local
        // greedy equals the global greedy and the coloring is proper.
        for s in 0..5 {
            let g = generators::random_tree(18, Seed(s));
            let mut cl = roomy_cluster_for(&g, Seed(s), 1 << 14);
            let colors = BallGreedyColoringMpc { radius: 18 }
                .run(&g, &mut cl)
                .unwrap();
            let p = VertexColoring::delta_plus_one(&g);
            assert!(p.is_valid(&g, &colors), "seed {s}");
        }
    }

    #[test]
    fn ball_greedy_coloring_is_component_stable() {
        // csmpc-core depends on this crate, so we cannot call its verifier
        // here; instead check the Definition 13 consequence directly.
        let comp = generators::cycle(8);
        let sib_a = csmpc_graph::ops::with_fresh_names(&generators::cycle(8), 100);
        let sib_b = csmpc_graph::ops::with_fresh_names(
            &generators::shuffle_identity(&generators::cycle(8), 30, 0, Seed(1)),
            100,
        );
        let ga = csmpc_graph::ops::disjoint_union(&[&comp, &sib_a]);
        let gb = csmpc_graph::ops::disjoint_union(&[&comp, &sib_b]);
        let alg = BallGreedyColoringMpc { radius: 8 };
        let la = alg
            .run(&ga, &mut roomy_cluster_for(&ga, Seed(2), 1 << 14))
            .unwrap();
        let lb = alg
            .run(&gb, &mut roomy_cluster_for(&gb, Seed(2), 1 << 14))
            .unwrap();
        assert_eq!(&la[..8], &lb[..8]);
    }
}
