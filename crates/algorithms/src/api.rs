//! Uniform interfaces for MPC algorithms, so the component-stability
//! framework (crate `csmpc-core`) can run, compare, and classify them.

use csmpc_graph::Graph;
use csmpc_mpc::{Cluster, MpcError};

/// An MPC algorithm producing one label per node.
///
/// The cluster supplies everything Definition 13 allows an algorithm to see:
/// the distributed input graph (hence `n`, `Δ`), and the shared seed.
/// Whether the algorithm's outputs *actually* depend only on
/// `(CC(v), v, n, Δ, S)` — component stability — is checked empirically by
/// the verifier in `csmpc-core`, not assumed.
pub trait MpcVertexAlgorithm {
    /// Output label per node.
    type Label: Clone + PartialEq + std::fmt::Debug;

    /// Algorithm name for reporting.
    fn name(&self) -> &str;

    /// `true` when the algorithm ignores the shared seed.
    fn deterministic(&self) -> bool;

    /// `true` when the algorithm *declares* itself component-stable
    /// (Definition 13): output at `v` depends only on `(CC(v), v, n, Δ, S)`.
    ///
    /// The declaration is a claim, not a proof — it is checked two ways:
    /// empirically by `csmpc_core::stability::verify_component_stability`,
    /// and at runtime by the provenance detector, which flags any
    /// cross-component data flow performed by a stable-declared algorithm.
    /// Defaults to `false` (the safe direction: unstable algorithms are
    /// never flagged).
    fn component_stable(&self) -> bool {
        false
    }

    /// Runs on `g` using (and charging) `cluster`. Outputs are indexed by
    /// node index of `g`.
    ///
    /// # Errors
    ///
    /// Any [`MpcError`] raised by the primitives (space violations, etc.).
    fn run(&self, g: &Graph, cluster: &mut Cluster) -> Result<Vec<Self::Label>, MpcError>;
}

/// An MPC algorithm producing one label per edge (in `g.edges()` order).
pub trait MpcEdgeAlgorithm {
    /// Output label per edge.
    type Label: Clone + PartialEq + std::fmt::Debug;

    /// Algorithm name for reporting.
    fn name(&self) -> &str;

    /// `true` when the algorithm ignores the shared seed.
    fn deterministic(&self) -> bool;

    /// Runs on `g` using (and charging) `cluster`.
    ///
    /// # Errors
    ///
    /// Any [`MpcError`] raised by the primitives.
    fn run(&self, g: &Graph, cluster: &mut Cluster) -> Result<Vec<Self::Label>, MpcError>;
}

/// Convenience: provision a cluster for `g` with the standard `φ = 0.5`
/// configuration and the given seed.
#[must_use]
pub fn cluster_for(g: &Graph, seed: csmpc_graph::rng::Seed) -> Cluster {
    Cluster::new(
        csmpc_mpc::MpcConfig::default(),
        g.n(),
        csmpc_mpc::graph_words(g),
        seed,
    )
}

/// Like [`cluster_for`] but with an elevated machine-space floor —
/// representing parameter regimes where the paper's side conditions
/// (e.g. `Δ^{O(T)} ≤ n^φ` for ball collection) hold with room to spare on
/// test-scale inputs.
#[must_use]
pub fn roomy_cluster_for(g: &Graph, seed: csmpc_graph::rng::Seed, min_space: usize) -> Cluster {
    let cfg = csmpc_mpc::MpcConfig {
        min_space,
        ..Default::default()
    };
    Cluster::new(cfg, g.n(), csmpc_mpc::graph_words(g), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmpc_graph::{generators, rng::Seed};

    struct ConstLabel;
    impl MpcVertexAlgorithm for ConstLabel {
        type Label = u8;
        fn name(&self) -> &str {
            "const"
        }
        fn deterministic(&self) -> bool {
            true
        }
        fn run(&self, g: &Graph, cluster: &mut Cluster) -> Result<Vec<u8>, MpcError> {
            cluster.charge_rounds(1);
            Ok(vec![7; g.n()])
        }
    }

    #[test]
    fn trait_object_usable() {
        let g = generators::path(4);
        let mut cl = cluster_for(&g, Seed(0));
        let alg = ConstLabel;
        let out = alg.run(&g, &mut cl).unwrap();
        assert_eq!(out, vec![7, 7, 7, 7]);
        assert_eq!(cl.stats().rounds, 1);
    }
}
