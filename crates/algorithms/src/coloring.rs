//! Coloring algorithms on both sides of the Section 4.2 separations:
//! greedy `(Δ+1)`-vertex and `(2Δ−1)`-edge coloring baselines, a
//! Cole–Vishkin-style `O(log* n)` cycle coloring (the `log*` regime that
//! Theorem 5's lower bound lives in), randomized LOCAL coloring with round
//! counting, a deterministic `Δ`-edge-coloring of forests (surpassing the
//! component-stable `(2Δ−2)` conditional bound of Theorem 40), and
//! 2-coloring of bipartite/triangle-free instances (Theorem 43's regime).

use csmpc_graph::Graph;
use csmpc_local::LocalParams;

/// Greedy vertex coloring in the given order; uses at most `Δ+1` colors.
///
/// # Panics
///
/// Panics if `order` is not a permutation of the node indices.
#[must_use]
pub fn greedy_coloring(g: &Graph, order: &[usize]) -> Vec<usize> {
    assert_eq!(order.len(), g.n(), "order must cover all nodes");
    let mut color = vec![usize::MAX; g.n()];
    for &v in order {
        let mut used: Vec<usize> = g
            .neighbors(v)
            .iter()
            .map(|&w| color[w as usize])
            .filter(|&c| c != usize::MAX)
            .collect();
        used.sort_unstable();
        used.dedup();
        let mut c = 0usize;
        for u in used {
            if u == c {
                c += 1;
            } else if u > c {
                break;
            }
        }
        color[v] = c;
    }
    color
}

/// Greedy edge coloring (on the line graph), using at most `2Δ−1` colors.
#[must_use]
pub fn greedy_edge_coloring(g: &Graph) -> Vec<usize> {
    let (lg, _) = csmpc_graph::ops::line_graph(g);
    let order: Vec<usize> = (0..lg.n()).collect();
    greedy_coloring(&lg, &order)
}

/// Deterministic `Δ`-edge coloring of a **forest** by root-to-leaf
/// assignment: each node hands its child edges the smallest colors distinct
/// from its parent edge's color. Uses exactly `Δ` colors (forests are
/// Class 1) — strictly fewer than the `2Δ−2` of the component-stable
/// conditional lower bound (Theorem 40) once `Δ ≥ 3`.
///
/// # Panics
///
/// Panics if `g` has a cycle.
#[must_use]
pub fn forest_edge_coloring(g: &Graph) -> Vec<usize> {
    assert!(
        g.m() + g.component_count() == g.n(),
        "forest_edge_coloring requires an acyclic graph"
    );
    let edges: Vec<(usize, usize)> = g.edges().collect();
    let mut edge_index = std::collections::BTreeMap::new();
    for (i, &(u, v)) in edges.iter().enumerate() {
        edge_index.insert((u.min(v), u.max(v)), i);
    }
    let mut colors = vec![usize::MAX; edges.len()];
    let mut visited = vec![false; g.n()];
    for root in 0..g.n() {
        if visited[root] {
            continue;
        }
        // BFS; at each node assign child edges colors ≠ parent edge color.
        let mut queue = std::collections::VecDeque::new();
        visited[root] = true;
        queue.push_back((root, usize::MAX)); // (node, color of parent edge)
        while let Some((v, parent_color)) = queue.pop_front() {
            let mut next_color = 0usize;
            for &w in g.neighbors(v) {
                let w = w as usize;
                if visited[w] {
                    continue;
                }
                if next_color == parent_color {
                    next_color += 1;
                }
                let i = edge_index[&(v.min(w), v.max(w))];
                colors[i] = next_color;
                visited[w] = true;
                queue.push_back((w, next_color));
                next_color += 1;
            }
        }
    }
    colors
}

/// Proper 2-coloring of a bipartite graph via BFS, or `None` if an odd
/// cycle is found. (Triangle-free bipartite inputs realize the Theorem 43
/// regime trivially: 2 « Δ/log Δ.)
#[must_use]
pub fn bipartite_two_coloring(g: &Graph) -> Option<Vec<usize>> {
    let mut color = vec![usize::MAX; g.n()];
    for s in 0..g.n() {
        if color[s] != usize::MAX {
            continue;
        }
        color[s] = 0;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                let w = w as usize;
                if color[w] == usize::MAX {
                    color[w] = 1 - color[v];
                    queue.push_back(w);
                } else if color[w] == color[v] {
                    return None;
                }
            }
        }
    }
    Some(color)
}

/// Result of an iterative LOCAL coloring run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColoringRun {
    /// The proper coloring.
    pub colors: Vec<usize>,
    /// LOCAL rounds used.
    pub rounds: usize,
}

/// Randomized `(Δ+1)`-coloring by parallel color trials: undecided nodes
/// propose a uniformly random color not used by decided neighbors and
/// commit when no adjacent undecided node proposed the same. `O(log n)`
/// rounds w.h.p.
///
/// # Panics
///
/// Panics if it fails to terminate in `10·(log₂ n + 10)` rounds (vanishing
/// probability).
#[must_use]
pub fn randomized_coloring(g: &Graph, params: &LocalParams) -> ColoringRun {
    let palette = g.max_degree() + 1;
    let n = g.n();
    let mut colors = vec![usize::MAX; n];
    let cap = 10 * ((n.max(2) as f64).log2() as usize + 10);
    for round in 1..=cap {
        if colors.iter().all(|&c| c != usize::MAX) {
            return ColoringRun {
                colors,
                rounds: round - 1,
            };
        }
        // Propose.
        let proposals: Vec<Option<usize>> = (0..n)
            .map(|v| {
                if colors[v] != usize::MAX {
                    return None;
                }
                let mut rng = params.node_rng(g.id(v), 0xc0_10 + round as u64);
                let used: std::collections::BTreeSet<usize> = g
                    .neighbors(v)
                    .iter()
                    .filter_map(|&w| {
                        let c = colors[w as usize];
                        (c != usize::MAX).then_some(c)
                    })
                    .collect();
                let free: Vec<usize> = (0..palette).filter(|c| !used.contains(c)).collect();
                Some(free[rng.index(free.len())])
            })
            .collect();
        // Commit.
        for v in 0..n {
            if let Some(c) = proposals[v] {
                let conflict = g
                    .neighbors(v)
                    .iter()
                    .any(|&w| proposals[w as usize] == Some(c));
                if !conflict {
                    colors[v] = c;
                }
            }
        }
    }
    assert!(
        colors.iter().all(|&c| c != usize::MAX),
        "randomized coloring failed to converge within {cap} rounds"
    );
    ColoringRun {
        colors,
        rounds: cap,
    }
}

/// Cole–Vishkin color reduction on an **oriented cycle** (nodes indexed in
/// ring order, as produced by `generators::cycle`): starting from the node
/// IDs as colors, each step re-colors to `2i + bit` where `i` is the lowest
/// bit position differing from the successor's color — reaching a constant
/// palette in `O(log* n)` steps, then shifting down to 3 colors.
///
/// Returns the 3-coloring and the number of reduction steps (the `log*`
/// quantity the Theorem 5 bound is about).
#[must_use]
pub fn cole_vishkin_cycle(g: &Graph) -> ColoringRun {
    let n = g.n();
    assert!(n >= 3, "needs a cycle");
    let succ = |v: usize| (v + 1) % n;
    let mut colors: Vec<u64> = (0..n).map(|v| g.id(v).0).collect();
    let mut steps = 0usize;
    // Reduce to < 6 colors.
    loop {
        let max_color = colors.iter().copied().max().unwrap_or(0);
        if max_color < 6 {
            break;
        }
        steps += 1;
        let next: Vec<u64> = (0..n)
            .map(|v| {
                let a = colors[v];
                let b = colors[succ(v)];
                let diff = a ^ b;
                let i = diff.trailing_zeros() as u64;
                2 * i + ((a >> i) & 1)
            })
            .collect();
        colors = next;
    }
    // Shift-down + recolor to eliminate colors 5, 4, 3.
    for kill in (3..6u64).rev() {
        steps += 1;
        // Shift: adopt successor's color (makes each color class an
        // independent set in the shifted coloring ... then nodes with the
        // kill color pick the smallest free color < 3).
        let shifted: Vec<u64> = (0..n).map(|v| colors[succ(v)]).collect();
        let mut next = shifted.clone();
        for v in 0..n {
            if shifted[v] == kill {
                let pred = (v + n - 1) % n;
                let a = next[pred];
                let b = shifted[succ(v)];
                let c = (0..3u64).find(|c| *c != a && *c != b).expect("3 colors");
                next[v] = c;
            }
        }
        colors = next;
    }
    ColoringRun {
        colors: colors.iter().map(|&c| c as usize).collect(),
        rounds: steps,
    }
}

/// Validity of a cycle coloring under the ring orientation used by
/// [`cole_vishkin_cycle`] (adjacent ring positions differ).
#[must_use]
pub fn is_proper_ring_coloring(n: usize, colors: &[usize]) -> bool {
    (0..n).all(|v| colors[v] != colors[(v + 1) % n])
}

/// `log*` (iterated logarithm, base 2) — the scale of the Theorem 5 bound.
#[must_use]
pub fn log_star(mut x: f64) -> usize {
    let mut k = 0usize;
    while x > 1.0 {
        x = x.log2();
        k += 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmpc_graph::generators;
    use csmpc_graph::rng::Seed;
    use csmpc_problems::coloring::{EdgeColoring, VertexColoring};
    use csmpc_problems::matching::EdgeProblem;
    use csmpc_problems::problem::GraphProblem;

    #[test]
    fn greedy_uses_at_most_delta_plus_one() {
        for s in 0..5 {
            let g = generators::random_gnp(30, 0.2, Seed(s));
            let order: Vec<usize> = (0..g.n()).collect();
            let colors = greedy_coloring(&g, &order);
            let p = VertexColoring::delta_plus_one(&g);
            assert!(p.is_valid(&g, &colors), "seed {s}");
        }
    }

    #[test]
    fn greedy_edge_coloring_within_palette() {
        let g = generators::random_gnp(20, 0.3, Seed(1));
        let colors = greedy_edge_coloring(&g);
        let p = EdgeColoring::two_delta_minus_one(&g);
        assert!(p.validate(&g, &colors).is_ok());
    }

    #[test]
    fn forest_edge_coloring_uses_delta_colors() {
        for s in 0..5 {
            let g = generators::random_tree(40, Seed(s));
            let colors = forest_edge_coloring(&g);
            let palette_used = colors.iter().copied().max().map_or(0, |c| c + 1);
            assert!(
                palette_used <= g.max_degree(),
                "seed {s}: used {palette_used} > Δ = {}",
                g.max_degree()
            );
            let p = EdgeColoring {
                palette: g.max_degree().max(1),
            };
            assert!(p.validate(&g, &colors).is_ok(), "seed {s}");
        }
    }

    #[test]
    fn forest_beats_stable_lower_bound_palette() {
        // Theorem 40's conditional bound concerns (2Δ−2) colors; our
        // deterministic forest coloring uses Δ < 2Δ−2 whenever Δ ≥ 3.
        let g = generators::caterpillar(6, 3); // Δ = 5
        let colors = forest_edge_coloring(&g);
        let used = colors.iter().copied().max().unwrap() + 1;
        assert!(used <= 5);
        assert!(used < 2 * 5 - 2);
    }

    #[test]
    fn bipartite_two_coloring_works() {
        let g = generators::random_bipartite(30, 0.3, Seed(2));
        let colors = bipartite_two_coloring(&g).expect("bipartite");
        let p = VertexColoring { palette: 2 };
        assert!(p.is_valid(&g, &colors));
    }

    #[test]
    fn odd_cycle_rejected_by_two_coloring() {
        assert!(bipartite_two_coloring(&generators::cycle(5)).is_none());
    }

    #[test]
    fn randomized_coloring_valid_and_fast() {
        let g = generators::random_gnp(80, 0.08, Seed(3));
        let params = LocalParams::exact(g.n(), g.max_degree(), Seed(4));
        let run = randomized_coloring(&g, &params);
        let p = VertexColoring::delta_plus_one(&g);
        assert!(p.is_valid(&g, &run.colors));
        assert!(run.rounds <= 40, "rounds {} too high", run.rounds);
    }

    #[test]
    fn cole_vishkin_three_colors_in_log_star_steps() {
        for n in [16usize, 64, 256, 1024] {
            let g = generators::shuffle_identity(&generators::cycle(n), 0, 0, Seed(n as u64));
            let run = cole_vishkin_cycle(&g);
            assert!(
                run.colors.iter().all(|&c| c < 3),
                "n={n}: more than 3 colors"
            );
            assert!(is_proper_ring_coloring(n, &run.colors), "n={n}: improper");
            let bound = log_star(n as f64) + 8;
            assert!(
                run.rounds <= bound,
                "n={n}: {} steps exceeds log*-ish bound {bound}",
                run.rounds
            );
        }
    }

    #[test]
    fn log_star_values() {
        assert_eq!(log_star(1.0), 0);
        assert_eq!(log_star(2.0), 1);
        assert_eq!(log_star(4.0), 2);
        assert_eq!(log_star(16.0), 3);
        assert_eq!(log_star(65536.0), 4);
    }
}
