//! Sinkless orientation via the constructive LLL (Theorem 39's upper bound,
//! on top of [`crate::lll`]), in randomized and deterministic
//! (seed-searched, component-unstable) variants.

use crate::lll::{deterministic_lll, parallel_moser_tardos, LllInstance, MtDiverged, PatternEvent};
use csmpc_graph::rng::Seed;
use csmpc_graph::Graph;
use csmpc_problems::sinkless::EdgeDir;

/// Builds the LLL instance: one boolean per edge (`true` = `Forward`,
/// i.e. `u → v` for the edge `(u, v)` with `u < v`), one bad event per node
/// of degree ≥ 3 ("every incident edge points inward").
#[must_use]
pub fn sinkless_instance(g: &Graph) -> LllInstance {
    let edges: Vec<(usize, usize)> = g.edges().collect();
    let mut incident: Vec<Vec<usize>> = vec![Vec::new(); g.n()];
    for (i, &(u, v)) in edges.iter().enumerate() {
        incident[u].push(i);
        incident[v].push(i);
    }
    let mut events = Vec::new();
    for (v, inc) in incident.iter().enumerate() {
        if g.degree(v) < 3 {
            continue;
        }
        let vars = inc.clone();
        // Edge i = (a, b), a < b. Incoming to v: if v == b, Forward (true);
        // if v == a, Backward (false). Bad pattern = all incoming.
        let pattern: Vec<bool> = vars.iter().map(|&i| edges[i].1 == v).collect();
        events.push(PatternEvent::new(vars, pattern));
    }
    LllInstance {
        num_vars: edges.len(),
        events,
    }
}

/// Maps an LLL assignment back to edge directions.
#[must_use]
pub fn assignment_to_orientation(assignment: &[bool]) -> Vec<EdgeDir> {
    assignment
        .iter()
        .map(|&b| {
            if b {
                EdgeDir::Forward
            } else {
                EdgeDir::Backward
            }
        })
        .collect()
}

/// Result of a sinkless-orientation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinklessRun {
    /// The orientation, in `g.edges()` order.
    pub orientation: Vec<EdgeDir>,
    /// Moser–Tardos resampling rounds used.
    pub rounds: usize,
}

/// Randomized sinkless orientation (the LLL upper bound): `O(log n)`
/// resampling rounds w.h.p. for `Δ ≥ 3`-regular-ish graphs.
///
/// # Errors
///
/// [`MtDiverged`] on pathological non-convergence.
pub fn sinkless_randomized(g: &Graph, seed: Seed) -> Result<SinklessRun, MtDiverged> {
    let inst = sinkless_instance(g);
    let run = parallel_moser_tardos(&inst, seed, 10_000)?;
    Ok(SinklessRun {
        orientation: assignment_to_orientation(&run.assignment),
        rounds: run.rounds,
    })
}

/// Deterministic sinkless orientation by exhaustive seed search over the
/// Moser–Tardos randomness (the Lemma 37 derandomization at laptop scale).
/// Component-unstable: the machines globally agree on the seed.
///
/// # Errors
///
/// [`MtDiverged`] if no seed in the space works.
pub fn sinkless_deterministic(
    g: &Graph,
    seed_space: u64,
) -> Result<(SinklessRun, u64), MtDiverged> {
    let inst = sinkless_instance(g);
    let (run, seed) = deterministic_lll(&inst, seed_space, 10_000)?;
    Ok((
        SinklessRun {
            orientation: assignment_to_orientation(&run.assignment),
            rounds: run.rounds,
        },
        seed,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmpc_graph::generators;
    use csmpc_problems::matching::EdgeProblem;
    use csmpc_problems::sinkless::SinklessOrientation;

    #[test]
    fn instance_shape_on_regular_graph() {
        let g = generators::random_regular(20, 4, Seed(1));
        let inst = sinkless_instance(&g);
        assert_eq!(inst.num_vars, g.m());
        assert_eq!(inst.events.len(), 20);
        assert_eq!(inst.max_probability(), 0.5f64.powi(4));
    }

    #[test]
    fn lll_criterion_holds_for_degree_five() {
        // p = 2^-5, d ≤ 2·(5-1)+... each event shares edges with ≤ 5
        // neighbors' events; e·p·(d+1) = e·(1/32)·6 ≈ 0.51 ≤ 1.
        let g = generators::random_regular(24, 5, Seed(2));
        assert!(sinkless_instance(&g).satisfies_lll_criterion());
    }

    #[test]
    fn randomized_orientation_is_sinkless() {
        for s in 0..10 {
            let g = generators::random_regular(30, 4, Seed(s));
            let run = sinkless_randomized(&g, Seed(100 + s)).unwrap();
            assert!(
                SinklessOrientation.validate(&g, &run.orientation).is_ok(),
                "seed {s}"
            );
        }
    }

    #[test]
    fn rounds_grow_slowly_with_n() {
        let mut maxima = Vec::new();
        for n in [32usize, 128, 512] {
            let mut worst = 0usize;
            for s in 0..5 {
                let g = generators::random_regular(n, 4, Seed(s));
                let run = sinkless_randomized(&g, Seed(s + 50)).unwrap();
                worst = worst.max(run.rounds);
            }
            maxima.push(worst);
        }
        // O(log n)-ish: the 16x larger instance should not need 16x rounds.
        assert!(
            maxima[2] <= 4 * maxima[0].max(2),
            "round growth looks superlogarithmic: {maxima:?}"
        );
    }

    #[test]
    fn deterministic_variant_valid_and_reproducible() {
        let g = generators::random_regular(24, 4, Seed(7));
        let (r1, s1) = sinkless_deterministic(&g, 32).unwrap();
        let (r2, s2) = sinkless_deterministic(&g, 32).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(r1, r2);
        assert!(SinklessOrientation.validate(&g, &r1.orientation).is_ok());
    }

    #[test]
    fn low_degree_nodes_are_unconstrained() {
        // On a cycle there are no events at all.
        let g = generators::cycle(10);
        let inst = sinkless_instance(&g);
        assert!(inst.events.is_empty());
        let run = sinkless_randomized(&g, Seed(1)).unwrap();
        assert_eq!(run.rounds, 0);
    }
}
