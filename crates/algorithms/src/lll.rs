//! The constructive Lovász Local Lemma: a parallel Moser–Tardos solver
//! (the algorithmic engine behind Lemma 37 and the Section 4.2 upper
//! bounds).
//!
//! Instances are over independent fair random bits (exactly the variable
//! model Lemma 37 assumes); bad events observe a subset of variables. The
//! parallel solver resamples all violated events' variables each round —
//! under the LLL criterion the number of rounds is `O(log n)` w.h.p., and
//! each round is `O(1)` LOCAL rounds on the dependency graph.

use csmpc_graph::rng::{Seed, SplitMix64};

/// A bad event that holds exactly when its variables match a fixed pattern
/// (probability `2^{-k}` over fair bits — e.g. "all `deg(v)` edges point
/// into `v`" for sinkless orientation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternEvent {
    /// Indices of observed variables.
    pub vars: Vec<usize>,
    /// The forbidden pattern (same length as `vars`).
    pub pattern: Vec<bool>,
}

impl PatternEvent {
    /// Creates an event; `vars` and `pattern` must have equal lengths.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or an empty variable set.
    #[must_use]
    pub fn new(vars: Vec<usize>, pattern: Vec<bool>) -> Self {
        assert_eq!(vars.len(), pattern.len(), "pattern length mismatch");
        assert!(
            !vars.is_empty(),
            "events must observe at least one variable"
        );
        PatternEvent { vars, pattern }
    }

    /// Does the event occur under `assignment`?
    #[must_use]
    pub fn occurs(&self, assignment: &[bool]) -> bool {
        self.vars
            .iter()
            .zip(&self.pattern)
            .all(|(&v, &p)| assignment[v] == p)
    }

    /// The event's probability over fair bits: `2^{-k}`.
    #[must_use]
    pub fn probability(&self) -> f64 {
        0.5f64.powi(self.vars.len() as i32)
    }
}

/// An LLL instance: `num_vars` fair random bits and a family of bad events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LllInstance {
    /// Number of boolean variables.
    pub num_vars: usize,
    /// The bad events.
    pub events: Vec<PatternEvent>,
}

impl LllInstance {
    /// Dependency degree `d`: the maximum, over events, of the number of
    /// *other* events sharing a variable.
    #[must_use]
    pub fn dependency_degree(&self) -> usize {
        let mut by_var: Vec<Vec<usize>> = vec![Vec::new(); self.num_vars];
        for (i, e) in self.events.iter().enumerate() {
            for &v in &e.vars {
                by_var[v].push(i);
            }
        }
        let mut best = 0usize;
        for (i, e) in self.events.iter().enumerate() {
            let mut nbrs: Vec<usize> = e
                .vars
                .iter()
                .flat_map(|&v| by_var[v].iter().copied())
                .filter(|&j| j != i)
                .collect();
            nbrs.sort_unstable();
            nbrs.dedup();
            best = best.max(nbrs.len());
        }
        best
    }

    /// `p = max_A Pr[A]` over fair bits.
    #[must_use]
    pub fn max_probability(&self) -> f64 {
        self.events
            .iter()
            .map(PatternEvent::probability)
            .fold(0.0, f64::max)
    }

    /// Does the instance satisfy the symmetric criterion `e·p·(d+1) ≤ 1`?
    #[must_use]
    pub fn satisfies_lll_criterion(&self) -> bool {
        std::f64::consts::E * self.max_probability() * (self.dependency_degree() + 1) as f64 <= 1.0
    }

    /// Indices of events violated by `assignment`.
    #[must_use]
    pub fn violated(&self, assignment: &[bool]) -> Vec<usize> {
        (0..self.events.len())
            .filter(|&i| self.events[i].occurs(assignment))
            .collect()
    }
}

/// Result of a Moser–Tardos run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MtRun {
    /// A good assignment (no bad event holds).
    pub assignment: Vec<bool>,
    /// Parallel resampling rounds used (0 = the initial sample was good).
    pub rounds: usize,
    /// Total variable resamples across all rounds.
    pub resamples: usize,
}

/// Error from the solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MtDiverged {
    /// The round cap that was exhausted.
    pub limit: usize,
    /// Events still violated.
    pub violated: usize,
}

impl std::fmt::Display for MtDiverged {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Moser-Tardos did not converge in {} rounds ({} events violated)",
            self.limit, self.violated
        )
    }
}

impl std::error::Error for MtDiverged {}

/// The parallel Moser–Tardos algorithm: sample all variables, then
/// repeatedly resample every variable observed by a violated event, all at
/// once, until no event holds.
///
/// # Errors
///
/// [`MtDiverged`] if `max_rounds` is exhausted (expected only when the LLL
/// criterion is badly violated).
pub fn parallel_moser_tardos(
    inst: &LllInstance,
    seed: Seed,
    max_rounds: usize,
) -> Result<MtRun, MtDiverged> {
    let mut rng = SplitMix64::new(seed.derive(0x11f));
    let mut assignment: Vec<bool> = (0..inst.num_vars).map(|_| rng.bit()).collect();
    let mut resamples = 0usize;
    for round in 0..=max_rounds {
        let bad = inst.violated(&assignment);
        if bad.is_empty() {
            return Ok(MtRun {
                assignment,
                rounds: round,
                resamples,
            });
        }
        if round == max_rounds {
            return Err(MtDiverged {
                limit: max_rounds,
                violated: bad.len(),
            });
        }
        let mut to_resample: Vec<usize> = bad
            .iter()
            .flat_map(|&i| inst.events[i].vars.iter().copied())
            .collect();
        to_resample.sort_unstable();
        to_resample.dedup();
        for v in to_resample {
            assignment[v] = rng.bit();
            resamples += 1;
        }
    }
    unreachable!("loop always returns")
}

/// Deterministic LLL via exhaustive seed search (the Lemma 37 / Lemma 35
/// stand-in): finds the first seed in `0..seed_space` whose Moser–Tardos
/// run converges within `max_rounds`, yielding a deterministic,
/// reproducible assignment. Returns the run and the seed used.
///
/// # Errors
///
/// [`MtDiverged`] if no seed in the space converges.
pub fn deterministic_lll(
    inst: &LllInstance,
    seed_space: u64,
    max_rounds: usize,
) -> Result<(MtRun, u64), MtDiverged> {
    let mut last_err = MtDiverged {
        limit: max_rounds,
        violated: inst.events.len(),
    };
    for s in 0..seed_space {
        match parallel_moser_tardos(inst, Seed(s), max_rounds) {
            Ok(run) => return Ok((run, s)),
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// k disjoint events on k disjoint variable pairs: trivially satisfiable.
    fn disjoint_instance(k: usize) -> LllInstance {
        LllInstance {
            num_vars: 2 * k,
            events: (0..k)
                .map(|i| PatternEvent::new(vec![2 * i, 2 * i + 1], vec![true, true]))
                .collect(),
        }
    }

    #[test]
    fn pattern_event_probability() {
        let e = PatternEvent::new(vec![0, 1, 2], vec![true, false, true]);
        assert_eq!(e.probability(), 0.125);
        assert!(e.occurs(&[true, false, true]));
        assert!(!e.occurs(&[true, true, true]));
    }

    #[test]
    fn dependency_degree_disjoint_is_zero() {
        assert_eq!(disjoint_instance(5).dependency_degree(), 0);
    }

    #[test]
    fn dependency_degree_chain() {
        // Events on {0,1}, {1,2}, {2,3}: middle one touches both others.
        let inst = LllInstance {
            num_vars: 4,
            events: vec![
                PatternEvent::new(vec![0, 1], vec![true, true]),
                PatternEvent::new(vec![1, 2], vec![true, true]),
                PatternEvent::new(vec![2, 3], vec![true, true]),
            ],
        };
        assert_eq!(inst.dependency_degree(), 2);
    }

    #[test]
    fn moser_tardos_solves_disjoint() {
        let inst = disjoint_instance(50);
        let run = parallel_moser_tardos(&inst, Seed(1), 1000).unwrap();
        assert!(inst.violated(&run.assignment).is_empty());
    }

    #[test]
    fn moser_tardos_rounds_small_under_criterion() {
        // Events of probability 2^-6 with dependency degree ~6 satisfy the
        // criterion comfortably; rounds should be tiny.
        let k = 60;
        let events: Vec<PatternEvent> = (0..k)
            .map(|i| {
                let vars: Vec<usize> = (0..6).map(|j| (i + j) % k).collect();
                PatternEvent::new(vars, vec![true; 6])
            })
            .collect();
        let inst = LllInstance {
            num_vars: k,
            events,
        };
        assert!(inst.satisfies_lll_criterion());
        for s in 0..10 {
            let run = parallel_moser_tardos(&inst, Seed(s), 200).unwrap();
            assert!(run.rounds <= 20, "seed {s}: {} rounds", run.rounds);
        }
    }

    #[test]
    fn unsatisfiable_instance_diverges() {
        // Two events covering both patterns of one variable: always violated.
        let inst = LllInstance {
            num_vars: 1,
            events: vec![
                PatternEvent::new(vec![0], vec![true]),
                PatternEvent::new(vec![0], vec![false]),
            ],
        };
        let err = parallel_moser_tardos(&inst, Seed(0), 50).unwrap_err();
        assert_eq!(err.limit, 50);
        assert!(err.violated >= 1);
    }

    #[test]
    fn deterministic_lll_reproducible() {
        let inst = disjoint_instance(20);
        let (r1, s1) = deterministic_lll(&inst, 16, 100).unwrap();
        let (r2, s2) = deterministic_lll(&inst, 16, 100).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(r1.assignment, r2.assignment);
    }

    #[test]
    fn criterion_detects_bad_instances() {
        // A single-variable always-risky family: p = 1/2, d = huge.
        let inst = LllInstance {
            num_vars: 1,
            events: (0..10)
                .map(|_| PatternEvent::new(vec![0], vec![true]))
                .collect(),
        };
        assert!(!inst.satisfies_lll_criterion());
    }
}
