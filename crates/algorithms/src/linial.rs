//! Linial's deterministic color reduction — the `O(log* n)` machinery the
//! paper invokes twice: Theorem 45 reduces the name space by
//! `Δ^{4t}`-coloring the power graph `G^{2t}` "within `O(log* N)`
//! deterministic rounds [Kuh09]", and the final `5Δ'`-edge-coloring step of
//! Theorem 41 simulates "Linial's (deterministic) vertex-coloring
//! algorithm [Lin92]".
//!
//! One reduction step: given a proper `k`-coloring, encode each color as a
//! degree-`d` polynomial over `F_q` (base-`q` digits). Since two distinct
//! degree-`d` polynomials agree on at most `d` points, a node with `≤ Δ`
//! neighbors has at most `d·Δ < q` "bad" evaluation points, so it can pick
//! `x` with `p_v(x) ≠ p_u(x)` for every neighbor `u`; the new color
//! `(x, p_v(x))` lives in a palette of `q² ≪ k`. Iterating collapses any
//! `poly(n)`-size palette to `O(Δ²)` in `O(log* n)` steps; a greedy
//! color-class sweep then reaches `Δ + 1`.

use csmpc_derand::field::{next_prime, poly_eval};
use csmpc_graph::Graph;

/// Chooses `(d, q)` for one reduction step: the smallest degree `d ≥ 1`
/// and prime `q > d·Δ` such that `q^{d+1} ≥ k` (so every color in `[k]`
/// has a distinct polynomial encoding).
#[must_use]
pub fn step_parameters(k: u64, delta: usize) -> (u32, u64) {
    let delta = delta.max(1) as u64;
    for d in 1u32..=64 {
        let q = next_prime(u64::from(d) * delta + 2);
        // q^(d+1) >= k, computed saturating.
        let mut cap = 1u128;
        for _ in 0..=d {
            cap = cap.saturating_mul(u128::from(q));
            if cap >= u128::from(k) {
                return (d, q);
            }
        }
    }
    unreachable!("k fits in q^65 for any q >= 2")
}

/// One Linial reduction step: maps a proper coloring with palette `k` to a
/// proper coloring with palette `q²` (`q` as chosen by
/// [`step_parameters`]). One LOCAL round (nodes exchange current colors).
///
/// # Panics
///
/// Panics if the input coloring is not proper or exceeds the stated
/// palette.
#[must_use]
pub fn linial_step(g: &Graph, colors: &[u64], k: u64) -> (Vec<u64>, u64) {
    let (d, q) = step_parameters(k, g.max_degree());
    let digits = |mut c: u64| -> Vec<u64> {
        assert!(c < k, "color {c} outside palette {k}");
        let mut out = Vec::with_capacity(d as usize + 1);
        for _ in 0..=d {
            out.push(c % q);
            c /= q;
        }
        out
    };
    let polys: Vec<Vec<u64>> = colors.iter().map(|&c| digits(c)).collect();
    let next: Vec<u64> = (0..g.n())
        .map(|v| {
            for &w in g.neighbors(v) {
                assert_ne!(
                    colors[v], colors[w as usize],
                    "input coloring is not proper at edge ({v},{w})"
                );
            }
            let x = (0..q)
                .find(|&x| {
                    let mine = poly_eval(&polys[v], x, q);
                    g.neighbors(v)
                        .iter()
                        .all(|&w| poly_eval(&polys[w as usize], x, q) != mine)
                })
                .expect("q > d·Δ guarantees a good evaluation point");
            x * q + poly_eval(&polys[v], x, q)
        })
        .collect();
    (next, q * q)
}

/// Result of the iterated reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinialRun {
    /// The final proper coloring.
    pub colors: Vec<u64>,
    /// Its palette size.
    pub palette: u64,
    /// Reduction steps taken (`O(log* initial_palette)`).
    pub steps: usize,
}

/// Iterates [`linial_step`] starting from the node IDs (a proper
/// "coloring" with palette `max_id + 1`) until the palette stops
/// shrinking — reaching `O(Δ²)` colors in `O(log* n)` steps.
#[must_use]
pub fn linial_coloring(g: &Graph) -> LinialRun {
    let mut colors: Vec<u64> = (0..g.n()).map(|v| g.id(v).0).collect();
    let mut k = colors.iter().copied().max().unwrap_or(0) + 1;
    let mut steps = 0usize;
    loop {
        let (next, k2) = linial_step(g, &colors, k);
        steps += 1;
        if k2 >= k {
            // No more progress; keep the smaller palette.
            return LinialRun {
                colors,
                palette: k,
                steps: steps - 1,
            };
        }
        colors = next;
        k = k2;
    }
}

/// Reduces a proper `k`-coloring to palette `Δ + 1` by sweeping color
/// classes from the top: each class is an independent set, so all its
/// nodes simultaneously re-pick the smallest color unused in their
/// neighborhood. Takes `k − (Δ+1)` LOCAL rounds — the standard final
/// stage after Linial.
///
/// # Panics
///
/// Panics on an improper input coloring.
#[must_use]
pub fn reduce_to_delta_plus_one(g: &Graph, colors: &[u64], k: u64) -> Vec<u64> {
    let target = g.max_degree() as u64 + 1;
    let mut colors = colors.to_vec();
    let mut c = k;
    while c > target {
        c -= 1;
        // All nodes currently colored `c` re-pick simultaneously.
        let next: Vec<u64> = (0..g.n())
            .map(|v| {
                if colors[v] != c {
                    return colors[v];
                }
                let used: std::collections::BTreeSet<u64> =
                    g.neighbors(v).iter().map(|&w| colors[w as usize]).collect();
                (0..target)
                    .find(|x| !used.contains(x))
                    .expect("Δ neighbors cannot block Δ+1 colors")
            })
            .collect();
        colors = next;
    }
    colors
}

/// The Theorem 45 name-space reduction: colors `G^{2t}` so that any two
/// nodes within distance `2t` get distinct colors, shrinking IDs from
/// `O(log N)` bits to `O(t log Δ)` bits in `O(log* n)` steps. Returns the
/// coloring of the *original* nodes and the palette.
#[must_use]
pub fn power_graph_coloring(g: &Graph, t: usize) -> LinialRun {
    let power = csmpc_graph::ops::power_graph(g, (2 * t).max(1));
    linial_coloring(&power)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmpc_graph::generators;
    use csmpc_graph::rng::Seed;
    use csmpc_problems::coloring::VertexColoring;
    use csmpc_problems::problem::GraphProblem;

    fn assert_proper(g: &Graph, colors: &[u64]) {
        for (u, v) in g.edges() {
            assert_ne!(colors[u], colors[v], "edge ({u},{v}) monochromatic");
        }
    }

    #[test]
    fn parameters_satisfy_invariants() {
        for k in [10u64, 1000, 1 << 30] {
            for delta in [1usize, 2, 5, 16] {
                let (d, q) = step_parameters(k, delta);
                assert!(q > u64::from(d) * delta as u64, "q must exceed d·Δ");
                let cap = (0..=d).fold(1u128, |a, _| a.saturating_mul(u128::from(q)));
                assert!(cap >= u128::from(k), "q^(d+1) must cover the palette");
            }
        }
    }

    #[test]
    fn single_step_stays_proper_and_shrinks() {
        // Linial's step shrinks palettes well above Δ²·polylog; start from
        // a spread-out ID space (the realistic O(log n)-bit regime).
        let g = generators::random_regular(60, 4, Seed(1));
        let colors: Vec<u64> = (0..60u64).map(|v| v * 1_000_003 + 17).collect();
        let k = colors.iter().max().unwrap() + 1;
        let (next, k2) = linial_step(&g, &colors, k);
        assert_proper(&g, &next);
        assert!(next.iter().all(|&c| c < k2));
        assert!(k2 < k / 1000, "palette must shrink drastically: {k2}");
    }

    #[test]
    fn iterated_reduction_reaches_delta_squared_regime() {
        for s in 0..5 {
            let g = csmpc_graph::ops::relabel_ids(
                &generators::random_regular(80, 4, Seed(s)),
                |v, _| csmpc_graph::NodeId((v as u64) * 999_983 + 5),
            );
            let run = linial_coloring(&g);
            assert_proper(&g, &run.colors);
            // Fixed point for Δ = 4 is ≈ next_prime(2Δ+2)² = 121 = O(Δ²·log²).
            assert!(
                run.palette <= 9 * (4 + 3) * (4 + 3),
                "palette {} not O(Δ² polylog Δ)",
                run.palette
            );
            assert!(run.steps >= 1, "big IDs must force at least one step");
        }
    }

    #[test]
    fn steps_are_log_star_flat() {
        // Steps barely grow as the ID space explodes.
        let small = {
            let g = generators::cycle(16);
            linial_coloring(&g).steps
        };
        let big = {
            let g = csmpc_graph::ops::relabel_ids(&generators::cycle(4096), |v, _| {
                csmpc_graph::NodeId((v as u64) * 1_000_003 + 17)
            });
            linial_coloring(&g).steps
        };
        assert!(big <= small + 3, "steps {small} -> {big} not log*-flat");
    }

    #[test]
    fn final_reduction_to_delta_plus_one() {
        for s in 0..5 {
            let g = generators::random_gnp(40, 0.15, Seed(10 + s));
            let run = linial_coloring(&g);
            let final_colors = reduce_to_delta_plus_one(&g, &run.colors, run.palette);
            let as_usize: Vec<usize> = final_colors.iter().map(|&c| c as usize).collect();
            let p = VertexColoring::delta_plus_one(&g);
            assert!(p.is_valid(&g, &as_usize), "seed {s}");
        }
    }

    #[test]
    fn power_graph_coloring_separates_balls() {
        let g = generators::cycle(30);
        let t = 2;
        let run = power_graph_coloring(&g, t);
        // Any two nodes within distance 2t must differ.
        for v in 0..g.n() {
            let dist = g.bfs_distances(v);
            for (w, &dw) in dist.iter().enumerate() {
                if w != v && dw <= 2 * t {
                    assert_ne!(run.colors[v], run.colors[w], "({v},{w})");
                }
            }
        }
        // New "IDs" are much smaller than n on long cycles.
        assert!(run.palette < 30 * 30);
    }

    #[test]
    #[should_panic(expected = "not proper")]
    fn improper_input_rejected() {
        let g = generators::path(3);
        let _ = linial_step(&g, &[5, 5, 1], 10);
    }
}
