//! Success-probability amplification — the paper's canonical
//! **component-unstable** technique (Theorem 5, Lemma 55, Theorem 29).
//!
//! `Θ(log n)` independent repetitions of a basic randomized algorithm run in
//! parallel on disjoint machine groups; the globally best repetition is
//! selected and broadcast. Selection depends on outcomes in *all*
//! components simultaneously, which is exactly why the resulting algorithm
//! is not component-stable.

use crate::api::MpcVertexAlgorithm;
use crate::luby::luby_step;
use csmpc_graph::Graph;
use csmpc_mpc::{Cluster, DistributedGraph, MpcError};

/// Result of an amplification run.
#[derive(Debug, Clone, PartialEq)]
pub struct Amplified<L> {
    /// Labels of the winning repetition.
    pub labels: Vec<L>,
    /// Index of the winning repetition.
    pub winner: usize,
    /// Score of every repetition (higher is better).
    pub scores: Vec<f64>,
}

/// Runs `repetitions` parallel repetitions and picks the best by `score`.
///
/// Round accounting is the caller's job (all repetitions run concurrently
/// on disjoint machines, so the parallel cost is one repetition's cost plus
/// one aggregation and one broadcast).
pub fn amplify<L: Clone>(
    repetitions: usize,
    mut run_rep: impl FnMut(usize) -> Vec<L>,
    mut score: impl FnMut(&[L]) -> f64,
) -> Amplified<L> {
    assert!(repetitions > 0, "need at least one repetition");
    let mut best: Option<(usize, Vec<L>, f64)> = None;
    let mut scores = Vec::with_capacity(repetitions);
    for rep in 0..repetitions {
        let labels = run_rep(rep);
        let s = score(&labels);
        scores.push(s);
        let better = match &best {
            None => true,
            Some((_, _, bs)) => s > *bs,
        };
        if better {
            best = Some((rep, labels, s));
        }
    }
    let (winner, labels, _) = best.expect("repetitions > 0");
    Amplified {
        labels,
        winner,
        scores,
    }
}

/// The `O(1)`-round **component-unstable randomized** algorithm of
/// Theorem 5: `Θ(log n)` parallel Luby steps, keep the largest independent
/// set.
///
/// Per-repetition randomness is keyed by node *name* and repetition index —
/// perfectly legitimate for an unstable algorithm — and the global argmax
/// over repetitions is the unstable step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AmplifiedLargeIs {
    /// Number of parallel repetitions (`Θ(log n)`; pass 0 to auto-select
    /// `⌈4·log₂ n⌉`).
    pub repetitions: usize,
}

impl AmplifiedLargeIs {
    /// The repetition count actually used on an `n`-node input.
    #[must_use]
    pub fn repetitions_for(&self, n: usize) -> usize {
        if self.repetitions > 0 {
            self.repetitions
        } else {
            (4.0 * (n.max(2) as f64).log2()).ceil() as usize
        }
    }
}

impl MpcVertexAlgorithm for AmplifiedLargeIs {
    type Label = bool;

    fn name(&self) -> &str {
        "amplified-large-is (unstable, randomized)"
    }

    fn deterministic(&self) -> bool {
        false
    }

    // Explicit: the global winner selection (select_best_global) makes the
    // amplified algorithm component-unstable (Theorem 5's canonical step).
    fn component_stable(&self) -> bool {
        false
    }

    fn run(&self, g: &Graph, cluster: &mut Cluster) -> Result<Vec<bool>, MpcError> {
        let dg = DistributedGraph::distribute(g, cluster)?;
        let d = cluster
            .config()
            .tree_depth(cluster.input_n(), cluster.num_machines());
        let reps = self.repetitions_for(g.n());
        let seed = cluster.shared_seed();
        let candidates: Vec<Vec<bool>> = (0..reps)
            .map(|rep| {
                let rep_seed = seed.derive(0xa3b0).derive(rep as u64);
                let chi: Vec<f64> = (0..g.n())
                    .map(|v| csmpc_graph::rng::SplitMix64::new(rep_seed.derive(g.name(v).0)).f64())
                    .collect();
                luby_step(g, &chi)
            })
            .collect();
        // Parallel cost: one Luby step across all repetitions at once
        // (2d: neighbor-min). The global winner selection (per-rep size
        // aggregation + argmax + winner broadcast, 3d) is the accounted —
        // and provenance-tracked — unstable step.
        cluster.advance_rounds(2 * d)?;
        let (winner, labels, scores) = dg.select_best_global(cluster, &candidates, |labels| {
            labels.iter().filter(|&&b| b).count() as f64
        })?;
        let _ = (winner, scores);
        Ok(labels)
    }
}

/// The **component-stable randomized** counterpart: a single Luby step with
/// ID-keyed randomness, simulated through 1-ball collection. Output at `v`
/// is a deterministic function of `(CC(v), v, n, Δ, S)` — stable — but the
/// size guarantee only holds in expectation, not w.h.p.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StableOneShotIs;

impl MpcVertexAlgorithm for StableOneShotIs {
    type Label = bool;

    fn name(&self) -> &str {
        "one-shot-luby-is (stable, randomized)"
    }

    fn deterministic(&self) -> bool {
        false
    }

    fn component_stable(&self) -> bool {
        true
    }

    fn run(&self, g: &Graph, cluster: &mut Cluster) -> Result<Vec<bool>, MpcError> {
        let dg = DistributedGraph::distribute(g, cluster)?;
        let seed = cluster.shared_seed();
        let chi: Vec<f64> = (0..g.n())
            .map(|v| csmpc_graph::rng::SplitMix64::new(seed.derive(g.id(v).0)).f64())
            .collect();
        let mins = dg.neighbor_reduce(cluster, &chi, f64::min)?;
        Ok((0..g.n())
            .map(|v| match mins[v] {
                Some(m) => chi[v] < m,
                None => true, // isolated nodes always join
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::cluster_for;
    use csmpc_graph::rng::Seed;
    use csmpc_graph::{generators, ops};
    use csmpc_problems::mis::{is_independent_set, set_size};

    #[test]
    fn amplify_picks_max() {
        let out = amplify(5, |rep| vec![rep], |labels| labels[0] as f64);
        assert_eq!(out.winner, 4);
        assert_eq!(out.scores.len(), 5);
    }

    #[test]
    fn amplified_is_large_whp() {
        // On a cycle (Δ = 2) the threshold n/(4Δ+1) is comfortably beaten
        // by the best of Θ(log n) repetitions for every seed we try.
        let g = generators::cycle(120);
        let alg = AmplifiedLargeIs { repetitions: 0 };
        for s in 0..20 {
            let mut cl = cluster_for(&g, Seed(s));
            let labels = alg.run(&g, &mut cl).unwrap();
            assert!(is_independent_set(&g, &labels));
            assert!(
                set_size(&labels) >= 120 / 9,
                "seed {s}: size {} too small",
                set_size(&labels)
            );
        }
    }

    #[test]
    fn amplified_runs_in_constant_rounds() {
        // Round count must not grow with n.
        let mut counts = Vec::new();
        for n in [64usize, 256, 1024] {
            let g = generators::cycle(n);
            let mut cl = cluster_for(&g, Seed(1));
            let _ = AmplifiedLargeIs { repetitions: 0 }
                .run(&g, &mut cl)
                .unwrap();
            counts.push(cl.stats().rounds);
        }
        // Rounds scale with the O(1/φ) tree depth, never with n itself:
        // n = 256 and n = 1024 share a tree depth, so counts must agree.
        assert_eq!(counts[1], counts[2], "rounds grew with n: {counts:?}");
        assert!(counts[2] <= counts[0] + 8, "rounds exploded: {counts:?}");
    }

    #[test]
    fn stable_one_shot_is_independent() {
        for s in 0..10 {
            let g = generators::random_gnp(60, 0.1, Seed(s));
            let mut cl = cluster_for(&g, Seed(1000 + s));
            let labels = StableOneShotIs.run(&g, &mut cl).unwrap();
            assert!(is_independent_set(&g, &labels));
        }
    }

    #[test]
    fn stable_algorithm_is_componentwise_reproducible() {
        // The stable algorithm's output on a component must not change when
        // an unrelated component is swapped (same n, Δ, seed).
        let comp = generators::cycle(12);
        let other_a = ops::with_fresh_names(&generators::cycle(12), 500);
        let other_b = ops::with_fresh_names(
            &ops::relabel_ids(&generators::cycle(12), |_, id| {
                csmpc_graph::NodeId(id.0 + 40)
            }),
            500,
        );
        let ga = ops::disjoint_union(&[&comp, &other_a]);
        let gb = ops::disjoint_union(&[&comp, &other_b]);
        let mut ca = cluster_for(&ga, Seed(5));
        let mut cb = cluster_for(&gb, Seed(5));
        let la = StableOneShotIs.run(&ga, &mut ca).unwrap();
        let lb = StableOneShotIs.run(&gb, &mut cb).unwrap();
        assert_eq!(&la[..12], &lb[..12], "stable algorithm changed output");
    }

    #[test]
    fn amplified_algorithm_is_component_unstable() {
        // Changing the *other* component changes which repetition wins, and
        // thereby the output on the unchanged component — instability.
        // Same n and Δ, same names on the other component, but different
        // topology (one 12-cycle vs two 6-cycles): per-repetition global
        // scores change, so the winning repetition — and hence the output on
        // the *unchanged* component — can change.
        let comp = generators::cycle(12);
        let other_a = ops::with_fresh_names(&generators::cycle(12), 500);
        let other_b = ops::with_fresh_names(&generators::two_cycles(12), 500);
        let ga = ops::disjoint_union(&[&comp, &other_a]);
        let gb = ops::disjoint_union(&[&comp, &other_b]);
        let mut witnessed = false;
        for s in 0..30u64 {
            let alg = AmplifiedLargeIs { repetitions: 8 };
            let mut ca = cluster_for(&ga, Seed(s));
            let mut cb = cluster_for(&gb, Seed(s));
            let la = alg.run(&ga, &mut ca).unwrap();
            let lb = alg.run(&gb, &mut cb).unwrap();
            if la[..12] != lb[..12] {
                witnessed = true;
                break;
            }
        }
        assert!(witnessed, "no instability witness found in 30 seeds");
    }
}
