//! # csmpc-mpc
//!
//! A simulator for the **low-space Massively Parallel Computation (MPC)**
//! model of the PODC 2021 paper *"Component Stability in Low-Space Massively
//! Parallel Computation"* (Sections 1, 2.4.2): `M = poly(n)` machines, each
//! with `S = Θ(n^φ)` words (`φ < 1`), synchronous rounds, per-round
//! send/receive volume capped at `S`.
//!
//! * [`config`] — the `φ`, `S`, machine-count arithmetic;
//! * [`cluster`] — the resource ledger, the exact word-moving engine with
//!   bandwidth/space enforcement, and the accounting API used by
//!   higher-level primitives;
//! * [`route`] — the counting-sort message fabric: per-round grouping of
//!   in-flight messages by destination machine, stable per destination
//!   and allocation-free at steady state;
//! * [`distributed`] — a graph distributed over machines with the textbook
//!   low-space primitives (aggregation trees, neighbor reductions, graph
//!   exponentiation, pointer-jumping connectivity), each charging its
//!   documented round cost and asserting space feasibility;
//! * [`scale`] — the million-vertex path: streaming CSR ingestion and
//!   workspace-backed per-vertex sweeps (pointer-jumping connectivity,
//!   Luby MIS, Jones–Plassmann coloring) with zero steady-state
//!   allocations at fixed topology;
//! * [`faults`] — deterministic fault injection (crashes, stragglers,
//!   message drop/duplication/corruption/reordering, round-scoped
//!   partitions) and checkpoint/recovery, with every recovery charged to
//!   the ledger;
//! * [`supervise`] — straggler speculation, quarantine, exponential
//!   backoff, and component-scoped graceful degradation backed by the
//!   paper's component-stability property (Definition 13).
//!
//! ```
//! use csmpc_graph::{generators, rng::Seed};
//! use csmpc_mpc::{Cluster, MpcConfig, DistributedGraph, graph_words};
//!
//! let g = generators::cycle(64);
//! let mut cluster = Cluster::new(MpcConfig::with_phi(0.5), g.n(), graph_words(&g), Seed(1));
//! let dg = DistributedGraph::distribute(&g, &mut cluster)?;
//! let n = dg.count_nodes(&mut cluster)?;
//! assert_eq!(n, 64);
//! println!("rounds so far: {}", cluster.stats().rounds);
//! # Ok::<(), csmpc_mpc::MpcError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ball_cache;
pub mod cluster;
pub mod config;
pub mod distributed;
pub mod faults;
pub mod phase;
pub mod primitives;
pub mod provenance;
pub mod route;
pub mod scale;
pub mod supervise;

pub use ball_cache::BallCache;
pub use cluster::{Cluster, Envelope, MachineProgram, Message, MpcError, Stats};
pub use config::MpcConfig;
pub use csmpc_parallel::ParallelismMode;
pub use distributed::{graph_words, DistributedGraph};
pub use faults::{
    Checkpoint, FaultEvent, FaultKind, FaultPlan, Partition, RecoveryEvent, RecoveryPolicy,
};
pub use phase::{PhaseTimer, PhaseTimes};
pub use primitives::{
    exact_aggregate_sum, exact_aggregate_sum_with_faults, prefix_sums, sort_keys,
};
pub use provenance::{ComponentId, CrossComponentFlow, ProvenanceLog};
pub use route::RouteArena;
pub use scale::ScaleWorkspace;
pub use supervise::{
    run_supervised, salvage_graph, ComponentVerdict, PartialOutput, SupervisedOutcome,
    SupervisedRun, SupervisionEvent, SupervisorConfig,
};
