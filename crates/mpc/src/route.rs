//! Counting-sort message fabric: the engine's per-round routing hot path.
//!
//! Every round of every algorithm in the paper is "local compute, then
//! deliver at most S = n^phi words per machine", so the cost of grouping
//! in-flight messages by destination multiplies directly into every
//! round count the bench suite reports. The previous router index-sorted
//! the staging buffer by `(to, index)` — O(m log m) comparisons per
//! round. Destinations are machine ids in `0..M`, a dense key space, so
//! a two-pass counting sort does the same grouping in O(m + M):
//!
//! 1. **Count**: one pass over the staging buffer increments a reused
//!    `Vec<u32>` histogram slot per destination machine.
//! 2. **Scan + scatter**: an exclusive prefix scan turns the histogram
//!    into per-machine delivery ranges and write cursors in place; a
//!    second pass moves each payload into its cursor slot.
//!
//! **Stability.** Counting sort is stable by construction: pass 2 visits
//! the staging buffer in arrival order and each destination's cursor
//! only moves forward, so per-destination arrival order — the only order
//! a machine can observe — is exactly what the index tie-break of the
//! sort-based router produced. The sort-based router is kept as
//! [`reference::scatter`], and `tests/routing_equivalence.rs` proves the
//! two produce element-for-element identical buffers and ranges over
//! random message multisets.
//!
//! **Arena lifetimes.** All three spines (`buf`, `ranges`, `counts`)
//! live in one [`RouteArena`] hoisted outside the engine's round loop,
//! alongside the step-result and tag arenas: after a warm-up round they
//! reach steady-state capacity and the fabric allocates nothing at fixed
//! topology (`tests/steady_state_alloc.rs` counts). The staging buffer
//! and `buf` double-buffer each other across rounds exactly as before.
//!
//! **Transport coins are unchanged.** The fabric only *groups* messages;
//! drop/corrupt/duplicate coins are drawn in the merge phase in machine
//! and send order, and the reorder coin is drawn per non-empty inbox in
//! machine order — all downstream of (and unperturbed by) how the
//! grouping was computed. Identical per-destination order therefore
//! implies a draw-for-draw identical coin stream, which the chaos and
//! equivalence suites fingerprint before/after.

use crate::cluster::Message;

/// Reusable counting-sort routing arena: one per engine execution,
/// hoisted outside the round loop.
#[derive(Debug, Default)]
pub struct RouteArena {
    /// Destination-grouped routing buffer. Machine `id`'s inbox for the
    /// round is the contiguous `buf[ranges[id].0..ranges[id].1]` slice.
    pub buf: Vec<Message>,
    /// Per-machine `(lo, hi)` delivery ranges over [`RouteArena::buf`].
    pub ranges: Vec<(usize, usize)>,
    /// Per-destination histogram, reused as write cursors during the
    /// scatter pass (cursor `id` starts at `ranges[id].0` and ends at
    /// `ranges[id].1`).
    counts: Vec<u32>,
}

impl RouteArena {
    /// An arena routing to `machines` destinations.
    #[must_use]
    pub fn new(machines: usize) -> Self {
        RouteArena {
            buf: Vec::new(),
            ranges: vec![(0, 0); machines],
            counts: vec![0; machines],
        }
    }

    /// Number of destination machines the arena routes to.
    #[must_use]
    pub fn machines(&self) -> usize {
        self.ranges.len()
    }

    // #[csmpc_hot]
    /// Groups `incoming` by destination into the arena: counting-sort
    /// scatter, stable per destination, O(len + machines), allocation-free
    /// once the spines are warm. Payloads are *moved* (`incoming` is left
    /// empty with its spine intact); the previous round's delivered
    /// payloads in `buf` are dropped, exactly as the sort-based router's
    /// `route.clear()` did.
    ///
    /// Every `incoming[i].to` must be `< self.machines()` — the engine
    /// validates destinations at send time (`MpcError::UnknownMachine`).
    pub fn scatter(&mut self, incoming: &mut Vec<Message>) {
        // Pass 1: histogram of messages per destination.
        self.counts.fill(0);
        for msg in incoming.iter() {
            debug_assert!(msg.to < self.ranges.len(), "unvalidated destination");
            self.counts[msg.to] += 1;
        }
        // Exclusive prefix scan, in place: `ranges` becomes the delivery
        // ranges and `counts[id]` becomes machine `id`'s write cursor.
        let mut lo = 0usize;
        for (range, count) in self.ranges.iter_mut().zip(self.counts.iter_mut()) {
            let hi = lo + *count as usize;
            *range = (lo, hi);
            *count = lo as u32;
            lo = hi;
        }
        // Pass 2: scatter in arrival order. Each destination's cursor only
        // moves forward, so per-destination arrival order is preserved —
        // counting sort's stability, by construction. The placeholder
        // `Message`s written by `resize_with` carry an empty `Vec` (no
        // heap block), so refilling a warm spine allocates nothing.
        self.buf.clear();
        self.buf.resize_with(incoming.len(), || Message {
            to: 0,
            words: Vec::new(),
        });
        for msg in incoming.iter_mut() {
            let slot = self.counts[msg.to] as usize;
            self.counts[msg.to] += 1;
            self.buf[slot] = Message {
                to: msg.to,
                words: std::mem::take(&mut msg.words),
            };
        }
        incoming.clear();
    }
}

/// The retired sort-based router, kept as the oracle the counting-sort
/// fabric is property-tested against.
pub mod reference {
    use super::Message;

    /// Routes `incoming` exactly as the pre-fabric engine did: index sort
    /// by `(to, index)` (the index tie-break makes it stable per
    /// destination), payloads moved into a fresh buffer, per-machine
    /// ranges swept out of the sorted result. O(len log len).
    #[must_use]
    pub fn scatter(
        machines: usize,
        incoming: &mut Vec<Message>,
    ) -> (Vec<Message>, Vec<(usize, usize)>) {
        let mut order: Vec<usize> = (0..incoming.len()).collect();
        order.sort_unstable_by_key(|&i| (incoming[i].to, i));
        let buf: Vec<Message> = order
            .iter()
            .map(|&i| Message {
                to: incoming[i].to,
                words: std::mem::take(&mut incoming[i].words),
            })
            .collect();
        incoming.clear();
        let mut ranges = vec![(0, 0); machines];
        let mut lo = 0usize;
        for (id, range) in ranges.iter_mut().enumerate() {
            let mut hi = lo;
            while hi < buf.len() && buf[hi].to == id {
                hi += 1;
            }
            *range = (lo, hi);
            lo = hi;
        }
        (buf, ranges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(to: usize, words: &[u64]) -> Message {
        Message {
            to,
            words: words.to_vec(),
        }
    }

    #[test]
    fn scatter_groups_by_destination_preserving_arrival_order() {
        let mut arena = RouteArena::new(3);
        let mut incoming = vec![
            msg(2, &[20]),
            msg(0, &[1]),
            msg(2, &[21]),
            msg(0, &[2]),
            msg(2, &[22]),
        ];
        arena.scatter(&mut incoming);
        assert!(incoming.is_empty());
        assert_eq!(arena.ranges, vec![(0, 2), (2, 2), (2, 5)]);
        let words: Vec<u64> = arena.buf.iter().map(|m| m.words[0]).collect();
        assert_eq!(words, vec![1, 2, 20, 21, 22]);
        assert!(arena.buf.iter().map(|m| m.to).eq([0, 0, 2, 2, 2]));
    }

    #[test]
    fn empty_round_yields_empty_ranges() {
        let mut arena = RouteArena::new(4);
        let mut incoming = Vec::new();
        arena.scatter(&mut incoming);
        assert_eq!(arena.ranges, vec![(0, 0); 4]);
        assert!(arena.buf.is_empty());
    }

    #[test]
    fn matches_reference_on_a_mixed_batch() {
        let batch = vec![
            msg(1, &[9, 9]),
            msg(0, &[]),
            msg(1, &[7]),
            msg(3, &[3]),
            msg(0, &[4, 5, 6]),
            msg(1, &[8]),
        ];
        let mut arena = RouteArena::new(4);
        let mut a_in = batch.clone();
        arena.scatter(&mut a_in);
        let mut r_in = batch;
        let (r_buf, r_ranges) = reference::scatter(4, &mut r_in);
        assert_eq!(arena.buf, r_buf);
        assert_eq!(arena.ranges, r_ranges);
    }
}
