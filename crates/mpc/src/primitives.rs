//! Data-parallel MPC primitives beyond graphs: sorting, prefix sums, and a
//! *genuinely distributed* aggregation tree executed on the exact engine.
//!
//! Sorting and prefix sums are the `O(1/φ)`-round workhorses of low-space
//! MPC (Goodrich-style sample sort; tree scans); the accounted versions
//! charge those costs. The exact aggregation exists to validate the charged
//! costs against a real message-by-message execution.

use crate::cluster::{Cluster, MachineProgram, Message, MpcError};

/// Sorts `keys` and returns `(sorted, rank_of_input)` where
/// `rank_of_input[i]` is the position of `keys[i]` in the sorted order
/// (ties broken by input index). Charges `2·d` rounds (sample-sort:
/// splitter broadcast + routed exchange).
pub fn sort_keys(cluster: &mut Cluster, keys: &[u64]) -> (Vec<u64>, Vec<usize>) {
    let d = cluster
        .config()
        .tree_depth(cluster.input_n(), cluster.num_machines());
    cluster.charge_rounds(2 * d);
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_by_key(|&i| (keys[i], i));
    let mut rank = vec![0usize; keys.len()];
    for (r, &i) in order.iter().enumerate() {
        rank[i] = r;
    }
    let sorted = order.iter().map(|&i| keys[i]).collect();
    (sorted, rank)
}

/// Exclusive prefix sums: `out[i] = Σ_{j<i} values[j]`. Charges `2·d`
/// rounds (up-sweep + down-sweep over the machine tree).
pub fn prefix_sums(cluster: &mut Cluster, values: &[u64]) -> Vec<u64> {
    let d = cluster
        .config()
        .tree_depth(cluster.input_n(), cluster.num_machines());
    cluster.charge_rounds(2 * d);
    let mut out = Vec::with_capacity(values.len());
    let mut acc = 0u64;
    for &v in values {
        out.push(acc);
        acc += v;
    }
    out
}

/// An `S`-ary aggregation tree over machines, executed message-by-message
/// on the exact engine: each machine holds one value; the sum arrives at
/// machine 0. Returns `(sum, rounds_used)`.
///
/// # Errors
///
/// Propagates engine errors (bandwidth/space violations).
pub fn exact_aggregate_sum(
    cluster: &mut Cluster,
    values: &[u64],
) -> Result<(u64, usize), MpcError> {
    struct TreeSum {
        fan_in: usize,
        machines: usize,
        acc: Vec<u64>,
        expected: Vec<usize>,
        received: Vec<usize>,
        sent: Vec<bool>,
    }
    impl TreeSum {
        fn parent(&self, id: usize) -> usize {
            (id - 1) / self.fan_in
        }
        fn children(&self, id: usize) -> usize {
            // Number of children of `id` in the complete fan_in-ary tree.
            let first = id * self.fan_in + 1;
            if first >= self.machines {
                0
            } else {
                (self.machines - first).min(self.fan_in)
            }
        }
    }
    impl MachineProgram for TreeSum {
        fn round(&mut self, id: usize, inbox: &[Message]) -> Vec<Message> {
            for m in inbox {
                self.acc[id] += m.words.iter().sum::<u64>();
                self.received[id] += 1;
            }
            if id != 0 && !self.sent[id] && self.received[id] == self.expected[id] {
                self.sent[id] = true;
                return vec![Message {
                    to: self.parent(id),
                    words: vec![self.acc[id]],
                }];
            }
            Vec::new()
        }
        fn storage_words(&self, _id: usize) -> usize {
            4
        }
    }

    let machines = cluster.num_machines();
    let fan_in = cluster.config().tree_fan_in(cluster.input_n()).min(
        // Keep received words per machine within S.
        cluster.local_space().max(2),
    );
    let mut acc = vec![0u64; machines];
    for (i, &v) in values.iter().enumerate() {
        acc[i % machines] += v;
    }
    let mut prog = TreeSum {
        fan_in,
        machines,
        expected: (0..machines)
            .map(|id| {
                let first = id * fan_in + 1;
                if first >= machines {
                    0
                } else {
                    (machines - first).min(fan_in)
                }
            })
            .collect(),
        received: vec![0; machines],
        sent: vec![false; machines],
        acc,
    };
    // Leaves with no children must be able to send in round 1; internal
    // nodes wait for all children. Depth ≤ log_fan_in(machines) + 1.
    let before = cluster.stats().rounds;
    cluster.run_program(&mut prog, Vec::new(), 4 * machines + 4)?;
    let rounds = cluster.stats().rounds - before;
    let _ = prog.children(0);
    Ok((prog.acc[0], rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpcConfig;
    use csmpc_graph::rng::Seed;

    fn small_cluster() -> Cluster {
        Cluster::new(MpcConfig::with_phi(0.5), 400, 800, Seed(1))
    }

    #[test]
    fn sort_ranks_consistent() {
        let mut cl = small_cluster();
        let keys = vec![30u64, 10, 20, 10, 50];
        let (sorted, rank) = sort_keys(&mut cl, &keys);
        assert_eq!(sorted, vec![10, 10, 20, 30, 50]);
        assert_eq!(rank, vec![3, 0, 2, 1, 4]);
        assert!(cl.stats().rounds >= 2);
    }

    #[test]
    fn prefix_sums_exclusive() {
        let mut cl = small_cluster();
        let out = prefix_sums(&mut cl, &[3, 1, 4, 1, 5]);
        assert_eq!(out, vec![0, 3, 4, 8, 9]);
    }

    #[test]
    fn exact_tree_sum_correct() {
        let mut cl = small_cluster();
        let values: Vec<u64> = (1..=100).collect();
        let (sum, rounds) = exact_aggregate_sum(&mut cl, &values).unwrap();
        assert_eq!(sum, 5050);
        // Depth of the S-ary tree over M machines, plus a quiescence round.
        let m = cl.num_machines();
        let s = cl.local_space();
        let depth = ((m as f64).ln() / (s as f64).ln()).ceil().max(1.0) as usize;
        assert!(
            rounds <= 3 * (depth + 2),
            "rounds {rounds} too high for depth {depth} (M={m}, S={s})"
        );
    }

    #[test]
    fn exact_tree_sum_matches_charged_depth() {
        // The accounted tree_depth and the measured exact rounds agree to a
        // small constant — the cross-validation of the charging discipline.
        let mut cl = small_cluster();
        let (_, rounds) = exact_aggregate_sum(&mut cl, &[7; 32]).unwrap();
        let charged = cl.config().tree_depth(cl.input_n(), cl.num_machines());
        assert!(
            rounds <= 3 * charged + 4,
            "measured {rounds} vs charged {charged}"
        );
    }

    #[test]
    fn empty_values_sum_zero() {
        let mut cl = small_cluster();
        let (sum, _) = exact_aggregate_sum(&mut cl, &[]).unwrap();
        assert_eq!(sum, 0);
    }
}
