//! Data-parallel MPC primitives beyond graphs: sorting, prefix sums, and a
//! *genuinely distributed* aggregation tree executed on the exact engine.
//!
//! Sorting and prefix sums are the `O(1/φ)`-round workhorses of low-space
//! MPC (Goodrich-style sample sort; tree scans); the accounted versions
//! charge those costs. The exact aggregation exists to validate the charged
//! costs against a real message-by-message execution — including under
//! injected faults: [`exact_aggregate_sum_with_faults`] runs the same tree
//! program through [`Cluster::run_program_with_faults`], and its
//! [`MachineProgram::snapshot`]/`restore` implementation makes it
//! recoverable from checkpoints.

use crate::cluster::{Cluster, MachineProgram, Message, MpcError};
use crate::faults::{FaultPlan, RecoveryPolicy};

/// Sorts `keys` and returns `(sorted, rank_of_input)` where
/// `rank_of_input[i]` is the position of `keys[i]` in the sorted order
/// (ties broken by input index). Charges `2·d` rounds (sample-sort:
/// splitter broadcast + routed exchange).
///
/// # Errors
///
/// [`MpcError::MachineFailed`] from an armed fault plan.
#[allow(clippy::type_complexity)]
pub fn sort_keys(cluster: &mut Cluster, keys: &[u64]) -> Result<(Vec<u64>, Vec<usize>), MpcError> {
    let d = cluster
        .config()
        .tree_depth(cluster.input_n(), cluster.num_machines());
    cluster.advance_rounds(2 * d)?;
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_by_key(|&i| (keys[i], i));
    let mut rank = vec![0usize; keys.len()];
    for (r, &i) in order.iter().enumerate() {
        rank[i] = r;
    }
    let sorted = order.iter().map(|&i| keys[i]).collect();
    Ok((sorted, rank))
}

/// Exclusive prefix sums: `out[i] = Σ_{j<i} values[j]`. Charges `2·d`
/// rounds (up-sweep + down-sweep over the machine tree).
///
/// # Errors
///
/// [`MpcError::MachineFailed`] from an armed fault plan.
pub fn prefix_sums(cluster: &mut Cluster, values: &[u64]) -> Result<Vec<u64>, MpcError> {
    let d = cluster
        .config()
        .tree_depth(cluster.input_n(), cluster.num_machines());
    cluster.advance_rounds(2 * d)?;
    let mut out = Vec::with_capacity(values.len());
    let mut acc = 0u64;
    for &v in values {
        out.push(acc);
        acc += v;
    }
    Ok(out)
}

/// One machine's shard of an `S`-ary sum tree for the exact engine: the
/// machine accumulates its children's partial sums and forwards one word to
/// its parent; the total arrives at machine 0.
struct TreeSum {
    fan_in: usize,
    acc: u64,
    /// Children this machine waits for in the complete `fan_in`-ary tree.
    expected: usize,
    received: usize,
    sent: bool,
}

impl TreeSum {
    fn parent(&self, id: usize) -> usize {
        (id - 1) / self.fan_in
    }
}

impl MachineProgram for TreeSum {
    fn round(&mut self, id: usize, inbox: &[Message]) -> Vec<Message> {
        for m in inbox {
            self.acc += m.words.iter().sum::<u64>();
            self.received += 1;
        }
        if id != 0 && !self.sent && self.received == self.expected {
            self.sent = true;
            return vec![Message {
                to: self.parent(id),
                words: vec![self.acc],
            }];
        }
        Vec::new()
    }
    fn storage_words(&self) -> usize {
        4
    }
    fn snapshot(&self) -> Vec<u64> {
        // The mutable state is (acc, received, sent); fan_in / expected are
        // static configuration.
        vec![self.acc, self.received as u64, u64::from(self.sent)]
    }
    fn restore(&mut self, snapshot: &[u64]) {
        assert_eq!(snapshot.len(), 3, "malformed TreeSum snapshot");
        self.acc = snapshot[0];
        self.received = snapshot[1] as usize;
        self.sent = snapshot[2] != 0;
    }
}

/// An `S`-ary aggregation tree over machines, executed message-by-message
/// on the exact engine: each machine holds one value; the sum arrives at
/// machine 0. Returns `(sum, rounds_used)`.
///
/// # Errors
///
/// Propagates engine errors (bandwidth/space violations).
pub fn exact_aggregate_sum(
    cluster: &mut Cluster,
    values: &[u64],
) -> Result<(u64, usize), MpcError> {
    let quiet = FaultPlan::quiet(cluster.shared_seed());
    exact_aggregate_sum_with_faults(cluster, values, &quiet, RecoveryPolicy::FailFast)
}

/// [`exact_aggregate_sum`] under a fault plan: the tree program carries a
/// full [`MachineProgram::snapshot`]/`restore` implementation, so crashes
/// under [`RecoveryPolicy::RestartFromCheckpoint`] recover to the correct
/// sum while the recovery shows up in the ledger.
///
/// # Errors
///
/// Engine violations, plus [`MpcError::MachineFailed`] for unrecoverable
/// crashes.
pub fn exact_aggregate_sum_with_faults(
    cluster: &mut Cluster,
    values: &[u64],
    plan: &FaultPlan,
    policy: RecoveryPolicy,
) -> Result<(u64, usize), MpcError> {
    let machines = cluster.num_machines();
    let fan_in = cluster.config().tree_fan_in(cluster.input_n()).min(
        // Keep received words per machine within S.
        cluster.local_space().max(2),
    );
    let mut acc = vec![0u64; machines];
    for (i, &v) in values.iter().enumerate() {
        acc[i % machines] += v;
    }
    let mut shards: Vec<TreeSum> = acc
        .into_iter()
        .enumerate()
        .map(|(id, acc)| {
            let first = id * fan_in + 1;
            let expected = if first >= machines {
                0
            } else {
                (machines - first).min(fan_in)
            };
            TreeSum {
                fan_in,
                acc,
                expected,
                received: 0,
                sent: false,
            }
        })
        .collect();
    // Leaves with no children must be able to send in round 1; internal
    // nodes wait for all children. Depth ≤ log_fan_in(machines) + 1, with
    // generous headroom for straggler stalls and recovery replays.
    let before = cluster.stats().rounds;
    cluster.run_program_with_faults(&mut shards, Vec::new(), 8 * machines + 64, plan, policy)?;
    let rounds = cluster.stats().rounds - before;
    Ok((shards[0].acc, rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpcConfig;
    use csmpc_graph::rng::Seed;

    fn small_cluster() -> Cluster {
        Cluster::new(MpcConfig::with_phi(0.5), 400, 800, Seed(1))
    }

    #[test]
    fn sort_ranks_consistent() {
        let mut cl = small_cluster();
        let keys = vec![30u64, 10, 20, 10, 50];
        let (sorted, rank) = sort_keys(&mut cl, &keys).unwrap();
        assert_eq!(sorted, vec![10, 10, 20, 30, 50]);
        assert_eq!(rank, vec![3, 0, 2, 1, 4]);
        assert!(cl.stats().rounds >= 2);
    }

    #[test]
    fn prefix_sums_exclusive() {
        let mut cl = small_cluster();
        let out = prefix_sums(&mut cl, &[3, 1, 4, 1, 5]).unwrap();
        assert_eq!(out, vec![0, 3, 4, 8, 9]);
    }

    #[test]
    fn exact_tree_sum_correct() {
        let mut cl = small_cluster();
        let values: Vec<u64> = (1..=100).collect();
        let (sum, rounds) = exact_aggregate_sum(&mut cl, &values).unwrap();
        assert_eq!(sum, 5050);
        // Depth of the S-ary tree over M machines, plus a quiescence round.
        let m = cl.num_machines();
        let s = cl.local_space();
        let depth = ((m as f64).ln() / (s as f64).ln()).ceil().max(1.0) as usize;
        assert!(
            rounds <= 3 * (depth + 2),
            "rounds {rounds} too high for depth {depth} (M={m}, S={s})"
        );
    }

    #[test]
    fn exact_tree_sum_matches_charged_depth() {
        // The accounted tree_depth and the measured exact rounds agree to a
        // small constant — the cross-validation of the charging discipline.
        let mut cl = small_cluster();
        let (_, rounds) = exact_aggregate_sum(&mut cl, &[7; 32]).unwrap();
        let charged = cl.config().tree_depth(cl.input_n(), cl.num_machines());
        assert!(
            rounds <= 3 * charged + 4,
            "measured {rounds} vs charged {charged}"
        );
    }

    #[test]
    fn empty_values_sum_zero() {
        let mut cl = small_cluster();
        let (sum, _) = exact_aggregate_sum(&mut cl, &[]).unwrap();
        assert_eq!(sum, 0);
    }

    #[test]
    fn tree_sum_snapshot_round_trips() {
        let mut a = TreeSum {
            fan_in: 2,
            acc: 5,
            expected: 2,
            received: 1,
            sent: false,
        };
        let snap = a.snapshot();
        a.acc = 0;
        a.received = 9;
        a.sent = true;
        a.restore(&snap);
        assert_eq!(a.acc, 5);
        assert_eq!(a.received, 1);
        assert!(!a.sent);
    }

    #[test]
    fn exact_sum_survives_crash_with_recovery() {
        let values: Vec<u64> = (1..=100).collect();

        let mut clean = small_cluster();
        let (sum_clean, _) = exact_aggregate_sum(&mut clean, &values).unwrap();
        let clean_stats = clean.stats().clone();

        let mut faulty = small_cluster();
        let plan = FaultPlan::quiet(Seed(77)).crash(1, 2);
        let (sum_faulty, _) = exact_aggregate_sum_with_faults(
            &mut faulty,
            &values,
            &plan,
            RecoveryPolicy::restart(3),
        )
        .unwrap();

        assert_eq!(sum_clean, 5050);
        assert_eq!(sum_faulty, 5050, "recovery must reconstruct the sum");
        assert_eq!(faulty.recovery_log().len(), 1);
        assert!(
            faulty.stats().rounds > clean_stats.rounds
                && faulty.stats().total_words > clean_stats.total_words,
            "recovery is never free: {} vs {}",
            faulty.stats(),
            clean_stats
        );
    }

    #[test]
    fn exact_sum_fail_fast_crash_errors() {
        let mut cl = small_cluster();
        let plan = FaultPlan::quiet(Seed(77)).crash(1, 2);
        let err =
            exact_aggregate_sum_with_faults(&mut cl, &[1, 2, 3], &plan, RecoveryPolicy::FailFast)
                .unwrap_err();
        assert!(matches!(err, MpcError::MachineFailed { machine: 1, .. }));
    }
}
