//! Deterministic fault injection and checkpoint/recovery.
//!
//! Component stability (Definition 13) is a robustness property: a
//! component-stable algorithm's output at `v` must be invariant to
//! perturbations of the rest of the graph. This module supplies the
//! *machine-level* analogue — crashes, stragglers, and message-transport
//! faults — so that question can be asked executably: does destroying
//! machines that hold only *other* components' data change a
//! component-stable algorithm's output?
//!
//! Everything here is **replayable bit-for-bit**: a [`FaultPlan`] is plain
//! data derived from a [`Seed`], so the same seed and plan produce the same
//! faults, the same recoveries, the same output, the same [`Stats`] ledger
//! and the same provenance log on every run (Definition 9, replicability).
//!
//! Two layers consume a plan:
//!
//! * the **exact engine** ([`crate::Cluster::run_program_with_faults`])
//!   injects faults message-by-message and recovers by restoring a
//!   round-boundary [`Checkpoint`] (inboxes, program state via
//!   [`crate::MachineProgram::snapshot`]/`restore`, provenance tags, RNG
//!   position) and deterministically re-executing the lost rounds;
//! * the **accounted primitives** observe the plan through
//!   [`crate::Cluster::advance_rounds`]: a crash under
//!   [`RecoveryPolicy::RestartFromCheckpoint`] charges the replayed rounds
//!   and re-shipped words to the ledger (recovery is never free), a crash
//!   under [`RecoveryPolicy::FailFast`] surfaces as
//!   [`crate::MpcError::MachineFailed`], and a straggler stalls the
//!   synchronous barrier for its duration. Message drop/duplication/
//!   corruption/reordering only has meaning where real messages move,
//!   i.e. on the exact engine.
//!
//! Beyond the PR 2 fault classes, plans can now schedule **adversarial
//! transport faults**: payload corruption (tampered bits, always *detected*
//! via the checksummed [`crate::Envelope`] and never silently applied),
//! in-round inbox reordering, and round-scoped network [`Partition`]s that
//! hold boundary-crossing traffic until the partition heals. Crash handling
//! gains [`RecoveryPolicy::RestartWithBackoff`] (bounded exponential
//! backoff, every idle round charged) and, via
//! [`crate::SupervisorConfig`], straggler speculation and machine
//! quarantine.
//!
//! [`Stats`]: crate::Stats
//! [`Seed`]: csmpc_graph::rng::Seed

use crate::cluster::Message;
use crate::provenance::{ProvenanceLog, TagTable};
use csmpc_graph::rng::{Seed, SplitMix64};
use std::fmt;
use std::sync::Arc;

/// What happens to a machine at a scheduled round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The machine fails: its in-flight state is lost at the start of the
    /// round. Fatal under [`RecoveryPolicy::FailFast`]; otherwise recovered
    /// from the last checkpoint at a ledger cost.
    Crash,
    /// The machine stalls for the given number of rounds: it processes no
    /// messages and sends nothing while the barrier (and the round ledger)
    /// keeps advancing.
    Straggle {
        /// Rounds the machine stays unresponsive.
        rounds: usize,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// 1-indexed execution round the fault strikes at.
    pub round: usize,
    /// The afflicted machine.
    pub machine: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A round-scoped network partition: for rounds `start ..
/// start + rounds - 1` (1-indexed, inclusive), messages crossing the
/// boundary between `members` and the rest of the cluster are held by the
/// transport and delivered — and charged a second time — when the
/// partition heals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// First execution round the partition is active (1-indexed).
    pub start: usize,
    /// Rounds the partition stays up (`0` is a no-op).
    pub rounds: usize,
    /// Machines on one side of the cut (the complement forms the other).
    pub members: Vec<usize>,
}

impl Partition {
    /// `true` while the partition is active at execution round `round`.
    #[must_use]
    pub fn active_at(&self, round: usize) -> bool {
        self.rounds > 0 && round >= self.start && round < self.start + self.rounds
    }

    /// First round at which held traffic may flow again.
    #[must_use]
    pub fn heal_round(&self) -> usize {
        self.start.saturating_add(self.rounds)
    }

    /// `true` when a message from `from` to `to` crosses the cut.
    #[must_use]
    pub fn cuts(&self, from: usize, to: usize) -> bool {
        self.members.contains(&from) != self.members.contains(&to)
    }
}

/// A seeded, fully deterministic fault schedule.
///
/// Plans are plain data: the same plan injected into the same execution
/// yields identical behavior, which is what makes chaos runs replayable.
#[must_use]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: Seed,
    events: Vec<FaultEvent>,
    /// Per-message drop probability in 1/1000 (exact engine only). A
    /// dropped message is retransmitted by the transport one round later —
    /// delivery is reliable but delayed, and the retransmission is charged.
    drop_per_mille: u16,
    /// Per-message duplication probability in 1/1000 (exact engine only).
    /// The duplicate transmission is charged; the receiver deduplicates.
    dup_per_mille: u16,
    /// Per-message payload-corruption probability in 1/1000 (exact engine
    /// only). A corrupted payload always fails [`crate::Envelope`]
    /// verification: the receiver discards it and the transport
    /// retransmits the original one round later, both charged.
    corrupt_per_mille: u16,
    /// Per-inbox in-round reordering probability in 1/1000 (exact engine
    /// only). A reordered inbox is delivered in adversarially reversed
    /// arrival order.
    reorder_per_mille: u16,
    /// Round-scoped network partitions.
    partitions: Vec<Partition>,
}

impl FaultPlan {
    /// A plan with no faults (useful as the identity element of chaos
    /// sweeps).
    pub fn quiet(seed: Seed) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
            drop_per_mille: 0,
            dup_per_mille: 0,
            corrupt_per_mille: 0,
            reorder_per_mille: 0,
            partitions: Vec::new(),
        }
    }

    /// Adds a crash of `machine` at execution round `round` (1-indexed).
    pub fn crash(mut self, machine: usize, round: usize) -> Self {
        self.push(FaultEvent {
            round,
            machine,
            kind: FaultKind::Crash,
        });
        self
    }

    /// Adds a straggler: `machine` stalls for `rounds` rounds starting at
    /// execution round `round`.
    pub fn straggle(mut self, machine: usize, round: usize, rounds: usize) -> Self {
        self.push(FaultEvent {
            round,
            machine,
            kind: FaultKind::Straggle { rounds },
        });
        self
    }

    /// Sets message-transport fault rates (per mille; exact engine only).
    pub fn with_message_faults(mut self, drop_per_mille: u16, dup_per_mille: u16) -> Self {
        self.drop_per_mille = drop_per_mille.min(1000);
        self.dup_per_mille = dup_per_mille.min(1000);
        self
    }

    /// Sets the per-message payload-corruption rate (per mille, clamped to
    /// 1000; exact engine only). Corruption is adversarial but always
    /// *detected*: the tampered envelope fails checksum verification, the
    /// receiver discards it, and the original is retransmitted (and
    /// re-charged) one round later. Output never silently differs.
    pub fn with_corruption(mut self, corrupt_per_mille: u16) -> Self {
        self.corrupt_per_mille = corrupt_per_mille.min(1000);
        self
    }

    /// Sets the per-inbox in-round reordering rate (per mille, clamped to
    /// 1000; exact engine only). A reordered inbox is handed to the machine
    /// in adversarially reversed arrival order — programs whose round
    /// functions are order-sensitive will diverge, which is exactly what
    /// the chaos suite checks they do not.
    pub fn with_reordering(mut self, reorder_per_mille: u16) -> Self {
        self.reorder_per_mille = reorder_per_mille.min(1000);
        self
    }

    /// Adds a round-scoped network partition: for `rounds` rounds starting
    /// at execution round `start` (1-indexed), traffic between `members`
    /// and the rest of the cluster is held by the transport and delivered
    /// (and charged again) once the partition heals.
    pub fn partition(mut self, start: usize, rounds: usize, members: Vec<usize>) -> Self {
        let mut members = members;
        members.sort_unstable();
        members.dedup();
        self.partitions.push(Partition {
            start: start.max(1),
            rounds,
            members,
        });
        self.partitions
            .sort_by(|a, b| (a.start, a.rounds, &a.members).cmp(&(b.start, b.rounds, &b.members)));
        self
    }

    /// A randomized-but-seeded plan for chaos sweeps: `crashes` crash
    /// events and `stragglers` stall events, uniformly over `machines`
    /// machines and rounds `1..=horizon`. Identical arguments always
    /// produce the identical plan.
    pub fn random(
        seed: Seed,
        machines: usize,
        horizon: usize,
        crashes: usize,
        stragglers: usize,
    ) -> Self {
        let mut rng = SplitMix64::new(seed.derive(0xc4a0));
        let mut plan = FaultPlan::quiet(seed);
        let horizon = horizon.max(1);
        let machines = machines.max(1);
        for _ in 0..crashes {
            let m = rng.index(machines);
            let r = 1 + rng.index(horizon);
            plan = plan.crash(m, r);
        }
        for _ in 0..stragglers {
            let m = rng.index(machines);
            let r = 1 + rng.index(horizon);
            let stall = 1 + rng.index(3);
            plan = plan.straggle(m, r, stall);
        }
        plan
    }

    fn push(&mut self, ev: FaultEvent) {
        self.events.push(ev);
        self.events.sort_by_key(|e| {
            (
                e.round,
                e.machine,
                matches!(e.kind, FaultKind::Straggle { .. }),
            )
        });
    }

    /// The plan's seed (drives message-level coin flips).
    #[must_use]
    pub fn seed(&self) -> Seed {
        self.seed
    }

    /// All scheduled events, sorted by round.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Per-message drop probability in 1/1000.
    #[must_use]
    pub fn drop_per_mille(&self) -> u16 {
        self.drop_per_mille
    }

    /// Per-message duplication probability in 1/1000.
    #[must_use]
    pub fn dup_per_mille(&self) -> u16 {
        self.dup_per_mille
    }

    /// Per-message payload-corruption probability in 1/1000.
    #[must_use]
    pub fn corrupt_per_mille(&self) -> u16 {
        self.corrupt_per_mille
    }

    /// Per-inbox in-round reordering probability in 1/1000.
    #[must_use]
    pub fn reorder_per_mille(&self) -> u16 {
        self.reorder_per_mille
    }

    /// All scheduled network partitions, sorted by start round.
    #[must_use]
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// `true` when the plan schedules nothing at all.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.events.is_empty()
            && self.drop_per_mille == 0
            && self.dup_per_mille == 0
            && self.corrupt_per_mille == 0
            && self.reorder_per_mille == 0
            && self.partitions.iter().all(|p| p.rounds == 0)
    }
}

/// What the cluster does when a machine crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Surface the crash immediately as
    /// [`crate::MpcError::MachineFailed`].
    FailFast,
    /// Restore the last round-boundary checkpoint and deterministically
    /// re-execute, up to `max_retries` recoveries per execution. Every
    /// recovery charges the replayed rounds and the re-shipped checkpoint
    /// words to the [`crate::Stats`] ledger.
    RestartFromCheckpoint {
        /// Recoveries allowed before the execution is declared failed.
        max_retries: usize,
    },
    /// Like [`RecoveryPolicy::RestartFromCheckpoint`], but the `k`-th retry
    /// first idles the barrier for `base_backoff_rounds << (k - 1)` rounds
    /// of bounded exponential backoff. Every backoff round is charged to
    /// the ledger and surfaced in [`crate::Stats::recovery_rounds`] —
    /// backing off is never free.
    RestartWithBackoff {
        /// Recoveries allowed before the execution is declared failed.
        max_retries: usize,
        /// Backoff idle rounds before the first retry; doubles per retry.
        base_backoff_rounds: usize,
    },
}

impl RecoveryPolicy {
    /// The default recovery posture for chaos runs: restart with a small
    /// bounded retry budget.
    #[must_use]
    pub fn restart(max_retries: usize) -> Self {
        RecoveryPolicy::RestartFromCheckpoint { max_retries }
    }

    /// Restart with bounded exponential backoff: retry `k` idles
    /// `base_backoff_rounds << (k - 1)` charged rounds before restoring.
    #[must_use]
    pub fn restart_with_backoff(max_retries: usize, base_backoff_rounds: usize) -> Self {
        RecoveryPolicy::RestartWithBackoff {
            max_retries,
            base_backoff_rounds,
        }
    }

    /// Retry budget allowed by this policy (`0` under
    /// [`RecoveryPolicy::FailFast`]).
    #[must_use]
    pub fn max_retries(&self) -> usize {
        match *self {
            RecoveryPolicy::FailFast => 0,
            RecoveryPolicy::RestartFromCheckpoint { max_retries }
            | RecoveryPolicy::RestartWithBackoff { max_retries, .. } => max_retries,
        }
    }

    /// Charged idle rounds before retry number `retry` (1-indexed); zero
    /// for policies without backoff. The shift is clamped so the charge
    /// saturates instead of overflowing.
    #[must_use]
    pub fn backoff_rounds(&self, retry: usize) -> usize {
        match *self {
            RecoveryPolicy::RestartWithBackoff {
                base_backoff_rounds,
                ..
            } if retry >= 1 => {
                let shift = (retry - 1).min(usize::BITS as usize - 1) as u32;
                if base_backoff_rounds > 0 && shift > base_backoff_rounds.leading_zeros() {
                    usize::MAX
                } else {
                    base_backoff_rounds << shift
                }
            }
            _ => 0,
        }
    }
}

/// One completed crash recovery, as recorded in
/// [`crate::Cluster::recovery_log`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// The machine that crashed.
    pub machine: usize,
    /// Ledger round at which the crash struck.
    pub crash_round: usize,
    /// Execution round of the checkpoint restored from.
    pub checkpoint_round: usize,
    /// Rounds deterministically re-executed (charged to the ledger).
    pub replayed_rounds: usize,
    /// Words re-shipped to restore machine state (charged to the ledger).
    pub reshipped_words: usize,
}

impl fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "machine {} crashed at round {}; restored checkpoint of round {}, \
             replayed {} round(s), re-shipped {} word(s)",
            self.machine,
            self.crash_round,
            self.checkpoint_round,
            self.replayed_rounds,
            self.reshipped_words
        )
    }
}

/// A round-boundary snapshot of everything the exact engine needs to
/// deterministically re-execute: pending inboxes, the program's machine
/// storage (via [`crate::MachineProgram::snapshot`]), component-provenance
/// tags, the provenance log, the transport RNG position, and in-flight
/// straggler/retransmission state.
///
/// The bulky fields are **copy-on-write**: each per-machine inbox and
/// program snapshot, the component-tag table, and the provenance log sit
/// behind an [`Arc`] that consecutive captures share whenever the content
/// is unchanged (content equality is checked before sharing, so a restore
/// from a shared slot is value-identical to one from a deep copy). A
/// checkpoint of a mostly-idle round therefore costs a handful of
/// reference bumps instead of a full state clone.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Execution round the snapshot was taken at (state *after* this many
    /// rounds completed).
    pub round: usize,
    /// Pending per-machine inboxes (per-destination arrival order), shared
    /// with the previous capture when unchanged.
    pub inboxes: Vec<Arc<Vec<Message>>>,
    /// Per-machine program state, indexed by machine id, as captured by
    /// [`crate::MachineProgram::snapshot`] on each shard; shared with the
    /// previous capture when unchanged.
    pub program: Vec<Arc<Vec<u64>>>,
    /// Component tags of every machine at the boundary.
    pub machine_components: Arc<TagTable>,
    /// Provenance log at the boundary.
    pub provenance: Arc<ProvenanceLog>,
    /// Transport RNG position (message drop/duplication coins).
    pub rng: SplitMix64,
    /// Per-machine stall deadlines at the boundary.
    pub straggle_until: Vec<usize>,
    /// Messages awaiting transport retransmission at the boundary.
    pub pending_retransmit: Vec<Message>,
    /// Messages held by active network partitions at the boundary, with
    /// the round at which each becomes deliverable.
    pub partition_held: Vec<(usize, Message)>,
}

impl Checkpoint {
    /// Words a restore must re-ship: the program snapshot plus everything
    /// in flight (pending inbox and retransmission payloads). Sharing does
    /// not discount the bill — a restore re-ships the words regardless of
    /// how the host deduplicated the snapshot in memory.
    #[must_use]
    pub fn words(&self) -> usize {
        let inbox: usize = self
            .inboxes
            .iter()
            .flat_map(|ms| ms.iter().map(|m| m.words.len()))
            .sum();
        let pending: usize = self.pending_retransmit.iter().map(|m| m.words.len()).sum();
        let held: usize = self.partition_held.iter().map(|(_, m)| m.words.len()).sum();
        let program: usize = self.program.iter().map(|p| p.len()).sum();
        program + inbox + pending + held
    }
}

/// Runtime fault bookkeeping for the accounted layer, installed by
/// [`crate::Cluster::arm_faults`].
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    pub(crate) policy: RecoveryPolicy,
    /// One flag per plan event: events fire exactly once per execution,
    /// including across recovery replays.
    pub(crate) fired: Vec<bool>,
    pub(crate) retries_used: usize,
    /// One flag per plan partition: the accounted layer charges each
    /// partition's barrier stall exactly once per execution.
    pub(crate) partitions_charged: Vec<bool>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, policy: RecoveryPolicy) -> Self {
        let fired = vec![false; plan.events().len()];
        let partitions_charged = vec![false; plan.partitions().len()];
        FaultState {
            plan,
            policy,
            fired,
            retries_used: 0,
            partitions_charged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_sort_events_by_round() {
        let plan = FaultPlan::quiet(Seed(1))
            .crash(3, 9)
            .straggle(1, 2, 4)
            .crash(0, 5);
        let rounds: Vec<usize> = plan.events().iter().map(|e| e.round).collect();
        assert_eq!(rounds, vec![2, 5, 9]);
    }

    #[test]
    fn random_plans_are_reproducible() {
        let a = FaultPlan::random(Seed(7), 16, 10, 3, 2);
        let b = FaultPlan::random(Seed(7), 16, 10, 3, 2);
        assert_eq!(a, b);
        assert_eq!(a.events().len(), 5);
        let c = FaultPlan::random(Seed(8), 16, 10, 3, 2);
        assert_ne!(a, c, "different seeds should give different plans");
    }

    #[test]
    fn random_plan_respects_bounds() {
        let plan = FaultPlan::random(Seed(3), 8, 6, 10, 10);
        for ev in plan.events() {
            assert!(ev.machine < 8);
            assert!((1..=6).contains(&ev.round));
            if let FaultKind::Straggle { rounds } = ev.kind {
                assert!((1..=3).contains(&rounds));
            }
        }
    }

    #[test]
    fn quiet_plan_is_quiet() {
        assert!(FaultPlan::quiet(Seed(0)).is_quiet());
        assert!(!FaultPlan::quiet(Seed(0)).crash(0, 1).is_quiet());
        assert!(!FaultPlan::quiet(Seed(0))
            .with_message_faults(10, 0)
            .is_quiet());
        assert!(!FaultPlan::quiet(Seed(0)).with_corruption(10).is_quiet());
        assert!(!FaultPlan::quiet(Seed(0)).with_reordering(10).is_quiet());
        assert!(!FaultPlan::quiet(Seed(0))
            .partition(2, 3, vec![0, 1])
            .is_quiet());
        // A zero-length partition window schedules nothing.
        assert!(FaultPlan::quiet(Seed(0))
            .partition(2, 0, vec![0])
            .is_quiet());
    }

    #[test]
    fn message_fault_rates_are_clamped() {
        let plan = FaultPlan::quiet(Seed(0))
            .with_message_faults(5000, 2000)
            .with_corruption(9999)
            .with_reordering(1001);
        assert_eq!(plan.drop_per_mille(), 1000);
        assert_eq!(plan.dup_per_mille(), 1000);
        assert_eq!(plan.corrupt_per_mille(), 1000);
        assert_eq!(plan.reorder_per_mille(), 1000);
    }

    #[test]
    fn partitions_normalize_members_and_sort() {
        let plan = FaultPlan::quiet(Seed(0))
            .partition(5, 2, vec![3, 1, 3])
            .partition(0, 1, vec![0]);
        let ps = plan.partitions();
        assert_eq!(ps.len(), 2);
        // `start` is clamped to round 1 and entries sort by start round.
        assert_eq!(ps[0].start, 1);
        assert_eq!(ps[1].members, vec![1, 3]);
        assert!(ps[1].active_at(5));
        assert!(ps[1].active_at(6));
        assert!(!ps[1].active_at(7));
        assert_eq!(ps[1].heal_round(), 7);
        assert!(ps[1].cuts(1, 0));
        assert!(ps[1].cuts(0, 3));
        assert!(!ps[1].cuts(1, 3));
        assert!(!ps[1].cuts(0, 2));
    }

    #[test]
    fn backoff_schedule_doubles_and_saturates() {
        let p = RecoveryPolicy::restart_with_backoff(4, 2);
        assert_eq!(p.backoff_rounds(1), 2);
        assert_eq!(p.backoff_rounds(2), 4);
        assert_eq!(p.backoff_rounds(3), 8);
        assert_eq!(p.max_retries(), 4);
        // Non-backoff policies never idle.
        assert_eq!(RecoveryPolicy::restart(4).backoff_rounds(3), 0);
        assert_eq!(RecoveryPolicy::FailFast.backoff_rounds(1), 0);
        assert_eq!(RecoveryPolicy::FailFast.max_retries(), 0);
        // A huge retry count saturates instead of overflowing the shift.
        let big = RecoveryPolicy::restart_with_backoff(usize::MAX, 3);
        assert_eq!(big.backoff_rounds(4000), usize::MAX);
    }

    #[test]
    fn random_plan_handles_degenerate_dimensions() {
        // Zero machines / zero horizon clamp to 1 rather than panicking,
        // and the result is still perfectly reproducible.
        let a = FaultPlan::random(Seed(5), 0, 0, 4, 4);
        let b = FaultPlan::random(Seed(5), 0, 0, 4, 4);
        assert_eq!(a, b);
        assert_eq!(a.events().len(), 8);
        for ev in a.events() {
            assert_eq!(ev.machine, 0, "only machine 0 exists after clamping");
            assert_eq!(ev.round, 1, "only round 1 exists after clamping");
        }
        // Zero requested events yields a quiet plan.
        assert!(FaultPlan::random(Seed(5), 8, 8, 0, 0).is_quiet());
    }

    #[test]
    fn random_plan_determinism_is_argument_sensitive() {
        let base = FaultPlan::random(Seed(9), 16, 10, 3, 2);
        assert_eq!(base, FaultPlan::random(Seed(9), 16, 10, 3, 2));
        assert_ne!(base, FaultPlan::random(Seed(9), 16, 10, 2, 3));
        assert_ne!(base, FaultPlan::random(Seed(9), 8, 10, 3, 2));
        // Transport rates survive the builder chain on random plans too.
        let dressed = FaultPlan::random(Seed(9), 16, 10, 3, 2)
            .with_message_faults(50, 50)
            .with_corruption(25)
            .with_reordering(25);
        assert_eq!(dressed.events(), base.events());
        assert_eq!(dressed.corrupt_per_mille(), 25);
    }

    #[test]
    fn recovery_event_display_names_everything() {
        let ev = RecoveryEvent {
            machine: 4,
            crash_round: 9,
            checkpoint_round: 8,
            replayed_rounds: 1,
            reshipped_words: 17,
        };
        let s = ev.to_string();
        assert!(s.contains("machine 4"), "{s}");
        assert!(s.contains("round 9"), "{s}");
        assert!(s.contains("17 word(s)"), "{s}");
    }
}
