//! Deterministic fault injection and checkpoint/recovery.
//!
//! Component stability (Definition 13) is a robustness property: a
//! component-stable algorithm's output at `v` must be invariant to
//! perturbations of the rest of the graph. This module supplies the
//! *machine-level* analogue — crashes, stragglers, and message-transport
//! faults — so that question can be asked executably: does destroying
//! machines that hold only *other* components' data change a
//! component-stable algorithm's output?
//!
//! Everything here is **replayable bit-for-bit**: a [`FaultPlan`] is plain
//! data derived from a [`Seed`], so the same seed and plan produce the same
//! faults, the same recoveries, the same output, the same [`Stats`] ledger
//! and the same provenance log on every run (Definition 9, replicability).
//!
//! Two layers consume a plan:
//!
//! * the **exact engine** ([`crate::Cluster::run_program_with_faults`])
//!   injects faults message-by-message and recovers by restoring a
//!   round-boundary [`Checkpoint`] (inboxes, program state via
//!   [`crate::MachineProgram::snapshot`]/`restore`, provenance tags, RNG
//!   position) and deterministically re-executing the lost rounds;
//! * the **accounted primitives** observe the plan through
//!   [`crate::Cluster::advance_rounds`]: a crash under
//!   [`RecoveryPolicy::RestartFromCheckpoint`] charges the replayed rounds
//!   and re-shipped words to the ledger (recovery is never free), a crash
//!   under [`RecoveryPolicy::FailFast`] surfaces as
//!   [`crate::MpcError::MachineFailed`], and a straggler stalls the
//!   synchronous barrier for its duration. Message drop/duplication only
//!   has meaning where real messages move, i.e. on the exact engine.
//!
//! [`Stats`]: crate::Stats
//! [`Seed`]: csmpc_graph::rng::Seed

use crate::cluster::Message;
use crate::provenance::{ComponentId, ProvenanceLog};
use csmpc_graph::rng::{Seed, SplitMix64};
use std::collections::BTreeSet;
use std::fmt;

/// What happens to a machine at a scheduled round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The machine fails: its in-flight state is lost at the start of the
    /// round. Fatal under [`RecoveryPolicy::FailFast`]; otherwise recovered
    /// from the last checkpoint at a ledger cost.
    Crash,
    /// The machine stalls for the given number of rounds: it processes no
    /// messages and sends nothing while the barrier (and the round ledger)
    /// keeps advancing.
    Straggle {
        /// Rounds the machine stays unresponsive.
        rounds: usize,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// 1-indexed execution round the fault strikes at.
    pub round: usize,
    /// The afflicted machine.
    pub machine: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A seeded, fully deterministic fault schedule.
///
/// Plans are plain data: the same plan injected into the same execution
/// yields identical behavior, which is what makes chaos runs replayable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: Seed,
    events: Vec<FaultEvent>,
    /// Per-message drop probability in 1/1000 (exact engine only). A
    /// dropped message is retransmitted by the transport one round later —
    /// delivery is reliable but delayed, and the retransmission is charged.
    drop_per_mille: u16,
    /// Per-message duplication probability in 1/1000 (exact engine only).
    /// The duplicate transmission is charged; the receiver deduplicates.
    dup_per_mille: u16,
}

impl FaultPlan {
    /// A plan with no faults (useful as the identity element of chaos
    /// sweeps).
    #[must_use]
    pub fn quiet(seed: Seed) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
            drop_per_mille: 0,
            dup_per_mille: 0,
        }
    }

    /// Adds a crash of `machine` at execution round `round` (1-indexed).
    #[must_use]
    pub fn crash(mut self, machine: usize, round: usize) -> Self {
        self.push(FaultEvent {
            round,
            machine,
            kind: FaultKind::Crash,
        });
        self
    }

    /// Adds a straggler: `machine` stalls for `rounds` rounds starting at
    /// execution round `round`.
    #[must_use]
    pub fn straggle(mut self, machine: usize, round: usize, rounds: usize) -> Self {
        self.push(FaultEvent {
            round,
            machine,
            kind: FaultKind::Straggle { rounds },
        });
        self
    }

    /// Sets message-transport fault rates (per mille; exact engine only).
    #[must_use]
    pub fn with_message_faults(mut self, drop_per_mille: u16, dup_per_mille: u16) -> Self {
        self.drop_per_mille = drop_per_mille.min(1000);
        self.dup_per_mille = dup_per_mille.min(1000);
        self
    }

    /// A randomized-but-seeded plan for chaos sweeps: `crashes` crash
    /// events and `stragglers` stall events, uniformly over `machines`
    /// machines and rounds `1..=horizon`. Identical arguments always
    /// produce the identical plan.
    #[must_use]
    pub fn random(
        seed: Seed,
        machines: usize,
        horizon: usize,
        crashes: usize,
        stragglers: usize,
    ) -> Self {
        let mut rng = SplitMix64::new(seed.derive(0xc4a0));
        let mut plan = FaultPlan::quiet(seed);
        let horizon = horizon.max(1);
        let machines = machines.max(1);
        for _ in 0..crashes {
            let m = rng.index(machines);
            let r = 1 + rng.index(horizon);
            plan = plan.crash(m, r);
        }
        for _ in 0..stragglers {
            let m = rng.index(machines);
            let r = 1 + rng.index(horizon);
            let stall = 1 + rng.index(3);
            plan = plan.straggle(m, r, stall);
        }
        plan
    }

    fn push(&mut self, ev: FaultEvent) {
        self.events.push(ev);
        self.events.sort_by_key(|e| {
            (
                e.round,
                e.machine,
                matches!(e.kind, FaultKind::Straggle { .. }),
            )
        });
    }

    /// The plan's seed (drives message-level coin flips).
    #[must_use]
    pub fn seed(&self) -> Seed {
        self.seed
    }

    /// All scheduled events, sorted by round.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Per-message drop probability in 1/1000.
    #[must_use]
    pub fn drop_per_mille(&self) -> u16 {
        self.drop_per_mille
    }

    /// Per-message duplication probability in 1/1000.
    #[must_use]
    pub fn dup_per_mille(&self) -> u16 {
        self.dup_per_mille
    }

    /// `true` when the plan schedules nothing at all.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.events.is_empty() && self.drop_per_mille == 0 && self.dup_per_mille == 0
    }
}

/// What the cluster does when a machine crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Surface the crash immediately as
    /// [`crate::MpcError::MachineFailed`].
    FailFast,
    /// Restore the last round-boundary checkpoint and deterministically
    /// re-execute, up to `max_retries` recoveries per execution. Every
    /// recovery charges the replayed rounds and the re-shipped checkpoint
    /// words to the [`crate::Stats`] ledger.
    RestartFromCheckpoint {
        /// Recoveries allowed before the execution is declared failed.
        max_retries: usize,
    },
}

impl RecoveryPolicy {
    /// The default recovery posture for chaos runs: restart with a small
    /// bounded retry budget.
    #[must_use]
    pub fn restart(max_retries: usize) -> Self {
        RecoveryPolicy::RestartFromCheckpoint { max_retries }
    }
}

/// One completed crash recovery, as recorded in
/// [`crate::Cluster::recovery_log`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// The machine that crashed.
    pub machine: usize,
    /// Ledger round at which the crash struck.
    pub crash_round: usize,
    /// Execution round of the checkpoint restored from.
    pub checkpoint_round: usize,
    /// Rounds deterministically re-executed (charged to the ledger).
    pub replayed_rounds: usize,
    /// Words re-shipped to restore machine state (charged to the ledger).
    pub reshipped_words: usize,
}

impl fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "machine {} crashed at round {}; restored checkpoint of round {}, \
             replayed {} round(s), re-shipped {} word(s)",
            self.machine,
            self.crash_round,
            self.checkpoint_round,
            self.replayed_rounds,
            self.reshipped_words
        )
    }
}

/// A round-boundary snapshot of everything the exact engine needs to
/// deterministically re-execute: pending inboxes, the program's machine
/// storage (via [`crate::MachineProgram::snapshot`]), component-provenance
/// tags, the provenance log, the transport RNG position, and in-flight
/// straggler/retransmission state.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Execution round the snapshot was taken at (state *after* this many
    /// rounds completed).
    pub round: usize,
    /// Pending per-machine inboxes.
    pub inboxes: Vec<Vec<Message>>,
    /// Per-machine program state, indexed by machine id, as captured by
    /// [`crate::MachineProgram::snapshot`] on each shard.
    pub program: Vec<Vec<u64>>,
    /// Component tags of every machine at the boundary.
    pub machine_components: Vec<BTreeSet<ComponentId>>,
    /// Provenance log at the boundary.
    pub provenance: ProvenanceLog,
    /// Transport RNG position (message drop/duplication coins).
    pub rng: SplitMix64,
    /// Per-machine stall deadlines at the boundary.
    pub straggle_until: Vec<usize>,
    /// Messages awaiting transport retransmission at the boundary.
    pub pending_retransmit: Vec<Message>,
}

impl Checkpoint {
    /// Words a restore must re-ship: the program snapshot plus everything
    /// in flight (pending inbox and retransmission payloads).
    #[must_use]
    pub fn words(&self) -> usize {
        let inbox: usize = self
            .inboxes
            .iter()
            .flat_map(|ms| ms.iter().map(|m| m.words.len()))
            .sum();
        let pending: usize = self.pending_retransmit.iter().map(|m| m.words.len()).sum();
        let program: usize = self.program.iter().map(Vec::len).sum();
        program + inbox + pending
    }
}

/// Runtime fault bookkeeping for the accounted layer, installed by
/// [`crate::Cluster::arm_faults`].
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    pub(crate) policy: RecoveryPolicy,
    /// One flag per plan event: events fire exactly once per execution,
    /// including across recovery replays.
    pub(crate) fired: Vec<bool>,
    pub(crate) retries_used: usize,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, policy: RecoveryPolicy) -> Self {
        let fired = vec![false; plan.events().len()];
        FaultState {
            plan,
            policy,
            fired,
            retries_used: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_sort_events_by_round() {
        let plan = FaultPlan::quiet(Seed(1))
            .crash(3, 9)
            .straggle(1, 2, 4)
            .crash(0, 5);
        let rounds: Vec<usize> = plan.events().iter().map(|e| e.round).collect();
        assert_eq!(rounds, vec![2, 5, 9]);
    }

    #[test]
    fn random_plans_are_reproducible() {
        let a = FaultPlan::random(Seed(7), 16, 10, 3, 2);
        let b = FaultPlan::random(Seed(7), 16, 10, 3, 2);
        assert_eq!(a, b);
        assert_eq!(a.events().len(), 5);
        let c = FaultPlan::random(Seed(8), 16, 10, 3, 2);
        assert_ne!(a, c, "different seeds should give different plans");
    }

    #[test]
    fn random_plan_respects_bounds() {
        let plan = FaultPlan::random(Seed(3), 8, 6, 10, 10);
        for ev in plan.events() {
            assert!(ev.machine < 8);
            assert!((1..=6).contains(&ev.round));
            if let FaultKind::Straggle { rounds } = ev.kind {
                assert!((1..=3).contains(&rounds));
            }
        }
    }

    #[test]
    fn quiet_plan_is_quiet() {
        assert!(FaultPlan::quiet(Seed(0)).is_quiet());
        assert!(!FaultPlan::quiet(Seed(0)).crash(0, 1).is_quiet());
        assert!(!FaultPlan::quiet(Seed(0))
            .with_message_faults(10, 0)
            .is_quiet());
    }

    #[test]
    fn message_fault_rates_are_clamped() {
        let plan = FaultPlan::quiet(Seed(0)).with_message_faults(5000, 2000);
        assert_eq!(plan.drop_per_mille(), 1000);
        assert_eq!(plan.dup_per_mille(), 1000);
    }

    #[test]
    fn recovery_event_display_names_everything() {
        let ev = RecoveryEvent {
            machine: 4,
            crash_round: 9,
            checkpoint_round: 8,
            replayed_rounds: 1,
            reshipped_words: 17,
        };
        let s = ev.to_string();
        assert!(s.contains("machine 4"), "{s}");
        assert!(s.contains("round 9"), "{s}");
        assert!(s.contains("17 word(s)"), "{s}");
    }
}
