//! Component-provenance tracking — the runtime half of the model-conformance
//! analyzer.
//!
//! Definition 13 (component stability) allows an algorithm's output at `v`
//! to depend only on `(CC(v), v, n, Δ, S)`. The simulator therefore tags
//! data with the connected component it originated from and records every
//! **cross-component flow**: a word derived from component `a` reaching
//! machines or outputs associated with component `b ≠ a`. For an algorithm
//! that *declares* itself component-stable such a flow is a concrete
//! conformance violation (the runtime counterpart of
//! `csmpc_core::stability::InstabilityWitness`); for an unstable algorithm
//! (e.g. global success amplification, Theorem 5) it is expected behavior
//! and merely documented in the log.
//!
//! Two layers feed the log:
//!
//! * the **exact engine** ([`crate::Cluster::run_program`]) propagates
//!   per-machine component tag sets message by message and records a flow
//!   whenever a delivery hands a machine words from a component it serves
//!   but did not previously hold;
//! * the **accounted primitives** ([`crate::DistributedGraph`]) record flows
//!   for the operations that mix components by construction (global
//!   aggregation, global winner selection, broadcast of component-derived
//!   values). Purely edge-local primitives (`neighbor_reduce`,
//!   `collect_balls`, `cc_labels`) never cross a component boundary and
//!   record nothing. Reading `n` or `Δ` is allowed by Definition 13 and
//!   records nothing either.

use std::collections::BTreeSet;

/// Identifier of a connected component of the input graph (its index in
/// `Graph::component_labels` numbering).
pub type ComponentId = u32;

/// One observed cross-component data flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossComponentFlow {
    /// The primitive (or engine path) that moved the data.
    pub primitive: &'static str,
    /// Value of the cluster round counter when the flow was recorded.
    pub round: usize,
    /// Component the data originated from.
    pub from_component: ComponentId,
    /// Component whose machines or outputs observed the data.
    pub to_component: ComponentId,
}

impl core::fmt::Display for CrossComponentFlow {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "round {}: {} moved data from component {} into component {}",
            self.round, self.primitive, self.from_component, self.to_component
        )
    }
}

/// Ledger of component provenance across one execution.
///
/// Flows are deduplicated by `(primitive, from, to)` — the first round a
/// given flow is observed is kept — so the log stays small even for long
/// executions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProvenanceLog {
    flows: Vec<CrossComponentFlow>,
    seen: BTreeSet<(&'static str, ComponentId, ComponentId)>,
}

impl ProvenanceLog {
    /// A fresh, empty log.
    #[must_use]
    pub fn new() -> Self {
        ProvenanceLog::default()
    }

    /// Records a cross-component flow (no-op for `from == to` or for a
    /// `(primitive, from, to)` triple already recorded).
    pub fn record(
        &mut self,
        primitive: &'static str,
        round: usize,
        from_component: ComponentId,
        to_component: ComponentId,
    ) {
        if from_component == to_component {
            return;
        }
        if self.seen.insert((primitive, from_component, to_component)) {
            self.flows.push(CrossComponentFlow {
                primitive,
                round,
                from_component,
                to_component,
            });
        }
    }

    /// Records a global mix: data from every listed component reaches every
    /// other — the signature of aggregation/selection over the whole input.
    pub fn record_global_mix(
        &mut self,
        primitive: &'static str,
        round: usize,
        components: impl IntoIterator<Item = ComponentId>,
    ) {
        let distinct: BTreeSet<ComponentId> = components.into_iter().collect();
        for &from in &distinct {
            for &to in &distinct {
                self.record(primitive, round, from, to);
            }
        }
    }

    /// All recorded flows, in observation order.
    #[must_use]
    pub fn flows(&self) -> &[CrossComponentFlow] {
        &self.flows
    }

    /// `true` when at least one cross-component flow was observed.
    #[must_use]
    pub fn has_cross_component_flow(&self) -> bool {
        !self.flows.is_empty()
    }

    /// Clears the log (e.g. between repetitions).
    pub fn clear(&mut self) {
        self.flows.clear();
        self.seen.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_ignores_self_flows() {
        let mut log = ProvenanceLog::new();
        log.record("p", 1, 3, 3);
        assert!(!log.has_cross_component_flow());
    }

    #[test]
    fn record_dedupes_by_triple() {
        let mut log = ProvenanceLog::new();
        log.record("p", 1, 0, 1);
        log.record("p", 9, 0, 1);
        log.record("q", 9, 0, 1);
        assert_eq!(log.flows().len(), 2);
        assert_eq!(log.flows()[0].round, 1, "first observation wins");
    }

    #[test]
    fn global_mix_records_all_ordered_pairs() {
        let mut log = ProvenanceLog::new();
        log.record_global_mix("agg", 2, [0, 1, 2]);
        assert_eq!(log.flows().len(), 6);
    }

    #[test]
    fn global_mix_single_component_is_silent() {
        let mut log = ProvenanceLog::new();
        log.record_global_mix("agg", 2, [5, 5, 5]);
        assert!(!log.has_cross_component_flow());
    }

    #[test]
    fn clear_resets() {
        let mut log = ProvenanceLog::new();
        log.record("p", 1, 0, 1);
        log.clear();
        assert!(!log.has_cross_component_flow());
        log.record("p", 4, 0, 1);
        assert_eq!(log.flows().len(), 1);
        assert_eq!(log.flows()[0].round, 4);
    }
}
