//! Component-provenance tracking — the runtime half of the model-conformance
//! analyzer.
//!
//! Definition 13 (component stability) allows an algorithm's output at `v`
//! to depend only on `(CC(v), v, n, Δ, S)`. The simulator therefore tags
//! data with the connected component it originated from and records every
//! **cross-component flow**: a word derived from component `a` reaching
//! machines or outputs associated with component `b ≠ a`. For an algorithm
//! that *declares* itself component-stable such a flow is a concrete
//! conformance violation (the runtime counterpart of
//! `csmpc_core::stability::InstabilityWitness`); for an unstable algorithm
//! (e.g. global success amplification, Theorem 5) it is expected behavior
//! and merely documented in the log.
//!
//! Two layers feed the log:
//!
//! * the **exact engine** ([`crate::Cluster::run_program`]) propagates
//!   per-machine component tag sets message by message and records a flow
//!   whenever a delivery hands a machine words from a component it serves
//!   but did not previously hold;
//! * the **accounted primitives** ([`crate::DistributedGraph`]) record flows
//!   for the operations that mix components by construction (global
//!   aggregation, global winner selection, broadcast of component-derived
//!   values). Purely edge-local primitives (`neighbor_reduce`,
//!   `collect_balls`, `cc_labels`) never cross a component boundary and
//!   record nothing. Reading `n` or `Δ` is allowed by Definition 13 and
//!   records nothing either.

use std::collections::BTreeSet;

/// Identifier of a connected component of the input graph (its index in
/// `Graph::component_labels` numbering).
pub type ComponentId = u32;

/// One observed cross-component data flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossComponentFlow {
    /// The primitive (or engine path) that moved the data.
    pub primitive: &'static str,
    /// Value of the cluster round counter when the flow was recorded.
    pub round: usize,
    /// Component the data originated from.
    pub from_component: ComponentId,
    /// Component whose machines or outputs observed the data.
    pub to_component: ComponentId,
}

impl core::fmt::Display for CrossComponentFlow {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "round {}: {} moved data from component {} into component {}",
            self.round, self.primitive, self.from_component, self.to_component
        )
    }
}

/// Ledger of component provenance across one execution.
///
/// Flows are deduplicated by `(primitive, from, to)` — the first round a
/// given flow is observed is kept — so the log stays small even for long
/// executions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProvenanceLog {
    flows: Vec<CrossComponentFlow>,
    seen: BTreeSet<(&'static str, ComponentId, ComponentId)>,
}

impl ProvenanceLog {
    /// A fresh, empty log.
    #[must_use]
    pub fn new() -> Self {
        ProvenanceLog::default()
    }

    /// Records a cross-component flow (no-op for `from == to` or for a
    /// `(primitive, from, to)` triple already recorded).
    pub fn record(
        &mut self,
        primitive: &'static str,
        round: usize,
        from_component: ComponentId,
        to_component: ComponentId,
    ) {
        if from_component == to_component {
            return;
        }
        if self.seen.insert((primitive, from_component, to_component)) {
            self.flows.push(CrossComponentFlow {
                primitive,
                round,
                from_component,
                to_component,
            });
        }
    }

    /// Records a global mix: data from every listed component reaches every
    /// other — the signature of aggregation/selection over the whole input.
    pub fn record_global_mix(
        &mut self,
        primitive: &'static str,
        round: usize,
        components: impl IntoIterator<Item = ComponentId>,
    ) {
        let distinct: BTreeSet<ComponentId> = components.into_iter().collect();
        for &from in &distinct {
            for &to in &distinct {
                self.record(primitive, round, from, to);
            }
        }
    }

    /// All recorded flows, in observation order.
    #[must_use]
    pub fn flows(&self) -> &[CrossComponentFlow] {
        &self.flows
    }

    /// `true` when at least one cross-component flow was observed.
    #[must_use]
    pub fn has_cross_component_flow(&self) -> bool {
        !self.flows.is_empty()
    }

    /// Clears the log (e.g. between repetitions).
    pub fn clear(&mut self) {
        self.flows.clear();
        self.seen.clear();
    }
}

/// Flat per-machine component-tag table: which components' words each
/// machine currently holds.
///
/// Semantically a `Vec<BTreeSet<ComponentId>>` — and that is exactly what
/// it replaces — but stored as sorted runs inside one shared spine, so
/// the engine hot path never allocates a node-based set: distribution-time
/// seeding is one bulk `set` per machine, and the per-round tag merge is a
/// sorted-merge append. Each machine's tags read back in ascending order,
/// the iteration order the `BTreeSet` produced, so provenance record order
/// (and with it every reproducibility fingerprint) is unchanged.
///
/// Updates append a machine's new run at the spine's tail and retire the
/// old one in place; the table compacts itself once retired runs outweigh
/// live ones. Equality compares live runs only — two tables with equal
/// per-machine tags are equal no matter how their spines are laid out.
#[derive(Debug, Clone, Default)]
pub struct TagTable {
    /// Concatenated tag runs; machine `m`'s live run is
    /// `data[spans[m].0..][..spans[m].1]`, sorted ascending and distinct.
    data: Vec<ComponentId>,
    /// Per-machine `(start, len)` into `data`.
    spans: Vec<(usize, usize)>,
    /// Total length of all live runs (`data.len() - live` is garbage).
    live: usize,
}

impl TagTable {
    /// An empty table for `machines` machines.
    #[must_use]
    pub fn new(machines: usize) -> Self {
        TagTable {
            data: Vec::new(),
            spans: vec![(0, 0); machines],
            live: 0,
        }
    }

    /// Number of machines the table covers.
    #[must_use]
    pub fn machines(&self) -> usize {
        self.spans.len()
    }

    /// The components `machine` holds, ascending. Out-of-range machines
    /// hold nothing.
    #[must_use]
    pub fn machine(&self, machine: usize) -> &[ComponentId] {
        self.spans
            .get(machine)
            .map_or(&[][..], |&(start, len)| &self.data[start..start + len])
    }

    /// Whether `machine` holds `component`.
    #[must_use]
    pub fn contains(&self, machine: usize, component: ComponentId) -> bool {
        self.machine(machine).binary_search(&component).is_ok()
    }

    /// Clears every machine's tags, keeping the spine's capacity.
    pub fn clear(&mut self) {
        self.data.clear();
        self.spans.fill((0, 0));
        self.live = 0;
    }

    /// Tags `machine` as holding `component` (no-op if already tagged or
    /// out of range).
    pub fn insert(&mut self, machine: usize, component: ComponentId) {
        let Some(&(start, len)) = self.spans.get(machine) else {
            return;
        };
        let Err(pos) = self.data[start..start + len].binary_search(&component) else {
            return;
        };
        let new_start = self.data.len();
        self.data.extend_from_within(start..start + pos);
        self.data.push(component);
        self.data.extend_from_within(start + pos..start + len);
        self.spans[machine] = (new_start, len + 1);
        self.live += 1;
        self.maybe_compact();
    }

    /// Replaces `machine`'s tags with `tags` in one bulk write — the
    /// distribution-time seeding path. `tags` must be sorted ascending and
    /// distinct; out-of-range machines are ignored.
    pub fn set(&mut self, machine: usize, tags: &[ComponentId]) {
        debug_assert!(tags.windows(2).all(|w| w[0] < w[1]), "unsorted tag run");
        let Some(&(_, old_len)) = self.spans.get(machine) else {
            return;
        };
        let new_start = self.data.len();
        self.data.extend_from_slice(tags);
        self.spans[machine] = (new_start, tags.len());
        self.live = self.live - old_len + tags.len();
        self.maybe_compact();
    }

    /// Bulk form of [`TagTable::set`] for the distribution-time seeding
    /// sweep: machine `mid`'s run becomes the set bits of `masks[mid]`
    /// (bit `i` ⇒ component `i`, so runs come out ascending and distinct
    /// by construction). Machines with an empty mask keep their run; one
    /// compaction check covers the whole batch instead of one per call.
    pub fn seed_from_masks(&mut self, masks: &[u64]) {
        let covered = self.spans.len().min(masks.len());
        for (mid, &bits) in masks.iter().enumerate().take(covered) {
            if bits == 0 {
                continue;
            }
            let start = self.data.len();
            let mut b = bits;
            while b != 0 {
                self.data.push(b.trailing_zeros());
                b &= b - 1;
            }
            let len = self.data.len() - start;
            self.live = self.live - self.spans[mid].1 + len;
            self.spans[mid] = (start, len);
        }
        self.maybe_compact();
    }

    /// Bulk seeding for a connected input: each yielded machine's run
    /// becomes exactly `[0]`. Out-of-range machines are ignored; one
    /// compaction check covers the batch.
    pub fn seed_component_zero(&mut self, machines: impl Iterator<Item = usize>) {
        for mid in machines {
            let Some(&(_, old_len)) = self.spans.get(mid) else {
                continue;
            };
            let start = self.data.len();
            self.data.push(0);
            self.live = self.live - old_len + 1;
            self.spans[mid] = (start, 1);
        }
        self.maybe_compact();
    }

    // #[csmpc_hot]
    /// Merges `fresh` (sorted ascending, distinct) into `machine`'s tags —
    /// the engine's per-round tag propagation. Tags already held are a
    /// no-op that touches nothing, so the steady state of a converged
    /// execution writes (and allocates) nothing.
    pub fn extend(&mut self, machine: usize, fresh: &[ComponentId]) {
        debug_assert!(fresh.windows(2).all(|w| w[0] < w[1]), "unsorted tag run");
        let Some(&(start, len)) = self.spans.get(machine) else {
            return;
        };
        let run = &self.data[start..start + len];
        if fresh.iter().all(|c| run.binary_search(c).is_ok()) {
            return;
        }
        // Sorted merge of the live run and the fresh tags into a new run
        // at the tail; the old run is retired in place.
        let new_start = self.data.len();
        let (mut i, end, mut j) = (start, start + len, 0);
        while i < end && j < fresh.len() {
            let (a, b) = (self.data[i], fresh[j]);
            let v = a.min(b);
            i += usize::from(a <= b);
            j += usize::from(b <= a);
            self.data.push(v);
        }
        self.data.extend_from_within(i..end);
        self.data.extend_from_slice(&fresh[j..]);
        let new_len = self.data.len() - new_start;
        self.spans[machine] = (new_start, new_len);
        self.live = self.live - len + new_len;
        self.maybe_compact();
    }

    /// Rewrites the spine without retired runs once they outweigh the live
    /// ones, bounding memory at ~2× the live tag count.
    fn maybe_compact(&mut self) {
        if self.data.len() <= self.live * 2 + 64 {
            return;
        }
        let mut packed = Vec::with_capacity(self.live);
        for span in &mut self.spans {
            let (start, len) = *span;
            let new_start = packed.len();
            packed.extend_from_slice(&self.data[start..start + len]);
            *span = (new_start, len);
        }
        self.data = packed;
    }
}

impl PartialEq for TagTable {
    fn eq(&self, other: &Self) -> bool {
        self.spans.len() == other.spans.len()
            && (0..self.spans.len()).all(|m| self.machine(m) == other.machine(m))
    }
}

impl Eq for TagTable {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_ignores_self_flows() {
        let mut log = ProvenanceLog::new();
        log.record("p", 1, 3, 3);
        assert!(!log.has_cross_component_flow());
    }

    #[test]
    fn record_dedupes_by_triple() {
        let mut log = ProvenanceLog::new();
        log.record("p", 1, 0, 1);
        log.record("p", 9, 0, 1);
        log.record("q", 9, 0, 1);
        assert_eq!(log.flows().len(), 2);
        assert_eq!(log.flows()[0].round, 1, "first observation wins");
    }

    #[test]
    fn global_mix_records_all_ordered_pairs() {
        let mut log = ProvenanceLog::new();
        log.record_global_mix("agg", 2, [0, 1, 2]);
        assert_eq!(log.flows().len(), 6);
    }

    #[test]
    fn global_mix_single_component_is_silent() {
        let mut log = ProvenanceLog::new();
        log.record_global_mix("agg", 2, [5, 5, 5]);
        assert!(!log.has_cross_component_flow());
    }

    #[test]
    fn clear_resets() {
        let mut log = ProvenanceLog::new();
        log.record("p", 1, 0, 1);
        log.clear();
        assert!(!log.has_cross_component_flow());
        log.record("p", 4, 0, 1);
        assert_eq!(log.flows().len(), 1);
        assert_eq!(log.flows()[0].round, 4);
    }

    /// Oracle for the flat table: the `Vec<BTreeSet>` it replaced.
    fn oracle_matches(table: &TagTable, oracle: &[BTreeSet<ComponentId>]) {
        assert_eq!(table.machines(), oracle.len());
        for (m, set) in oracle.iter().enumerate() {
            let want: Vec<ComponentId> = set.iter().copied().collect();
            assert_eq!(table.machine(m), &want[..], "machine {m}");
            for c in 0..8 {
                assert_eq!(table.contains(m, c), set.contains(&c), "machine {m} c {c}");
            }
        }
    }

    #[test]
    fn tag_table_matches_btreeset_oracle_under_mixed_updates() {
        let mut table = TagTable::new(4);
        let mut oracle = vec![BTreeSet::new(); 4];
        let inserts: &[(usize, ComponentId)] = &[(1, 3), (1, 1), (1, 3), (0, 5), (3, 0), (1, 2)];
        for &(m, c) in inserts {
            table.insert(m, c);
            oracle[m].insert(c);
        }
        oracle_matches(&table, &oracle);
        table.set(2, &[0, 2, 7]);
        oracle[2] = BTreeSet::from([0, 2, 7]);
        oracle_matches(&table, &oracle);
        for (m, fresh) in [(1, vec![0, 2, 6]), (2, vec![0, 2]), (0, vec![5])] {
            table.extend(m, &fresh);
            oracle[m].extend(fresh.iter().copied());
            oracle_matches(&table, &oracle);
        }
        // Out-of-range machines: silently ignored, like `Vec::get_mut`.
        table.insert(9, 1);
        table.extend(9, &[1]);
        assert_eq!(table.machine(9), &[] as &[ComponentId]);
        table.clear();
        oracle_matches(&table, &vec![BTreeSet::new(); 4]);
    }

    #[test]
    fn tag_table_equality_ignores_spine_layout() {
        let mut a = TagTable::new(3);
        a.set(0, &[1, 2]);
        a.set(1, &[4]);
        let mut b = TagTable::new(3);
        // Same live contents via a different update history (b's spine
        // carries retired runs where a's does not).
        b.insert(1, 4);
        b.insert(0, 2);
        b.insert(0, 1);
        assert_eq!(a, b);
        b.insert(2, 9);
        assert_ne!(a, b);
        assert_ne!(a, TagTable::new(2));
    }

    #[test]
    fn tag_table_compaction_bounds_retired_runs() {
        let mut table = TagTable::new(2);
        // Churn one machine's run far past the compaction threshold; the
        // spine must stay bounded and the contents exact.
        for c in 0..2000u32 {
            table.insert(0, c);
        }
        table.set(1, &[7]);
        assert_eq!(table.machine(0).len(), 2000);
        assert!(table.machine(0).windows(2).all(|w| w[0] < w[1]));
        assert_eq!(table.machine(1), &[7]);
        assert!(
            table.data.len() <= table.live * 2 + 64,
            "spine {} vs live {}",
            table.data.len(),
            table.live
        );
    }
}
