//! Supervision and component-scoped graceful degradation.
//!
//! The paper's component-stability property (Definition 13) says a
//! component-stable algorithm's output at `v` depends only on `v`'s own
//! component (topology + IDs), `v` itself, and the globals `(n, Δ, S)` —
//! never on other components' structure, IDs, or any names. This module
//! turns that theorem into a production behavior: when a fault plan
//! exhausts the cluster's recovery budget, the run does not simply fail.
//! Instead, [`run_supervised`] computes per-component verdicts from the
//! machine-level fault/quarantine record and the component-provenance
//! tags, salvages every component whose machines were never touched, and
//! returns a [`PartialOutput`] in which — for algorithms declared
//! `component_stable()` — the healthy components' labels are bit-identical
//! to the fault-free run.
//!
//! Three supervision mechanisms feed this (armed via
//! [`crate::Cluster::supervise`]):
//!
//! * **straggler speculation** — a stall past
//!   [`SupervisorConfig::deadline_rounds`] is clamped: a spare re-executes
//!   the machine from its last snapshot off the critical path, charging
//!   the duplicated work to [`crate::Stats::speculative_rounds`] and the
//!   re-shipped state to the word ledger;
//! * **quarantine** — a machine whose fault count exceeds
//!   [`SupervisorConfig::failure_threshold`] is decommissioned at a
//!   charged migration cost; its components are tainted and its future
//!   faults stop consuming retries;
//! * **bounded backoff** — [`crate::RecoveryPolicy::RestartWithBackoff`]
//!   idles exponentially growing (charged) round budgets before each
//!   retry.
//!
//! The salvage step is itself a Definition 13 probe, not a bookkeeping
//! trick: tainted components are replaced by *structural stand-ins* —
//! same topology (hence the same per-component `n_c` and `Δ_c`, so the
//! global `(n, Δ)` are preserved) with freshly permuted IDs and fresh
//! names — and the computation re-runs fault-free. A component-stable
//! algorithm cannot tell the difference on the healthy components, so
//! their salvaged labels equal the fault-free run's bit-for-bit; an
//! unstable algorithm may diverge, which is exactly what
//! `csmpc_core::verify_degraded_immunity` detects empirically.
//!
//! Everything stays deterministic per seed, in either
//! [`crate::ParallelismMode`].

use crate::cluster::{Cluster, MpcError, Stats};
use crate::faults::{FaultPlan, RecoveryEvent, RecoveryPolicy};
use crate::provenance::ComponentId;
use csmpc_graph::rng::{Seed, SplitMix64};
use csmpc_graph::{Graph, GraphBuilder, NodeId, NodeName};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identity space for stand-in components, far above anything the test
/// and experiment graphs use; names offset per component so stand-ins
/// stay globally unique.
const STANDIN_IDENTITY_BASE: u64 = 1 << 40;

/// Supervision policy: per-round deadline budgets for stragglers and a
/// failure threshold for quarantine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Barrier rounds the cluster is willing to wait on a straggler
    /// before a spare speculatively re-executes it from the last
    /// snapshot. Stalls at or under the deadline are simply waited out.
    pub deadline_rounds: usize,
    /// Fault events (crashes, speculated straggles) a machine may survive
    /// before the supervisor quarantines it.
    pub failure_threshold: usize,
}

impl Default for SupervisorConfig {
    /// Wait at most 2 rounds on a straggler; quarantine after the third
    /// fault on one machine.
    fn default() -> Self {
        SupervisorConfig {
            deadline_rounds: 2,
            failure_threshold: 2,
        }
    }
}

/// One supervision action, as recorded in
/// [`crate::Cluster::supervision_log`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupervisionEvent {
    /// A straggler stalled past the deadline; a spare re-executed it
    /// speculatively.
    Speculation {
        /// The straggling machine.
        machine: usize,
        /// Round the speculation started.
        round: usize,
        /// Barrier rounds the speculation saved (charged as
        /// [`crate::Stats::speculative_rounds`] instead).
        stall_avoided: usize,
        /// Words re-shipped to seed the spare (charged).
        reshipped_words: usize,
    },
    /// A machine exceeded the failure threshold and was decommissioned.
    Quarantine {
        /// The decommissioned machine.
        machine: usize,
        /// Round of the quarantine.
        round: usize,
        /// Components whose words the machine held — tainted from here on.
        components: Vec<ComponentId>,
    },
    /// Exponential-backoff idling charged before a retry.
    Backoff {
        /// The machine whose crash triggered the retry.
        machine: usize,
        /// Round the backoff ended.
        round: usize,
        /// Retry number (1-indexed) the backoff preceded.
        retry: usize,
        /// Charged idle rounds.
        stall_rounds: usize,
    },
}

impl fmt::Display for SupervisionEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SupervisionEvent::Speculation {
                machine,
                round,
                stall_avoided,
                reshipped_words,
            } => write!(
                f,
                "machine {machine} speculated at round {round}: avoided {stall_avoided} \
                 stall round(s), re-shipped {reshipped_words} word(s)"
            ),
            SupervisionEvent::Quarantine {
                machine,
                round,
                components,
            } => write!(
                f,
                "machine {machine} quarantined at round {round} ({} tainted component(s))",
                components.len()
            ),
            SupervisionEvent::Backoff {
                machine,
                round,
                retry,
                stall_rounds,
            } => write!(
                f,
                "machine {machine} backed off {stall_rounds} round(s) before retry \
                 {retry}, through round {round}"
            ),
        }
    }
}

/// Per-component verdict in a degraded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentVerdict {
    /// No machine holding this component's words was ever faulted or
    /// quarantined: for a component-stable algorithm its labels are
    /// bit-identical to the fault-free run.
    Healthy,
    /// A fault or quarantine touched this component's machines; its
    /// labels are withheld.
    Tainted,
}

/// The degraded result of a supervised run whose recovery budget ran out
/// (or that quarantined machines): every node of a healthy component
/// keeps its label, tainted components' labels are withheld.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialOutput<L> {
    /// Per-node labels; `None` exactly on nodes of tainted components.
    pub labels: Vec<Option<L>>,
    /// Verdict for every component of the input graph, keyed by component
    /// number (the [`Graph::component_labels`] order).
    pub verdicts: BTreeMap<ComponentId, ComponentVerdict>,
    /// Nodes carrying a label.
    pub healthy_nodes: usize,
    /// Nodes whose label was withheld.
    pub tainted_nodes: usize,
    /// Ledger of the fault-free salvage re-run (already absorbed into the
    /// primary ledger as recovery overhead), if one ran.
    pub salvage_stats: Option<Stats>,
}

/// Outcome of [`run_supervised`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupervisedOutcome<L> {
    /// The run finished with every component intact.
    Complete(Vec<L>),
    /// The run degraded: healthy components salvaged, tainted withheld.
    Degraded(PartialOutput<L>),
}

/// Everything a supervised execution reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisedRun<L> {
    /// Labels (complete or partial).
    pub outcome: SupervisedOutcome<L>,
    /// The primary ledger, including all recovery, speculation,
    /// quarantine, backoff, and salvage charges.
    pub stats: Stats,
    /// Crash recoveries completed before the outcome.
    pub recoveries: Vec<RecoveryEvent>,
    /// Supervision actions taken.
    pub supervision: Vec<SupervisionEvent>,
    /// Machines quarantined, ascending.
    pub quarantined: Vec<usize>,
}

impl<L> SupervisedRun<L> {
    /// `true` when the outcome is degraded.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        matches!(self.outcome, SupervisedOutcome::Degraded(_))
    }

    /// Per-node labels with tainted nodes as `None` (complete runs are
    /// all `Some`).
    #[must_use]
    pub fn labels(&self) -> Vec<Option<L>>
    where
        L: Clone,
    {
        match &self.outcome {
            SupervisedOutcome::Complete(ls) => ls.iter().cloned().map(Some).collect(),
            SupervisedOutcome::Degraded(p) => p.labels.clone(),
        }
    }
}

/// Replaces every tainted component of `g` with a structural stand-in:
/// identical topology at the same node indices — so each component's
/// `(n_c, Δ_c)`, and therefore the global `(n, Δ)`, are preserved — but
/// freshly permuted IDs and fresh globally unique names, both derived
/// deterministically from `seed`. Healthy components are untouched.
///
/// For a component-stable algorithm this substitution is invisible on the
/// healthy components (Definition 13: their output may not depend on
/// other components' identity), which is what makes salvage labels
/// comparable bit-for-bit against the fault-free run.
#[must_use]
pub fn salvage_graph(g: &Graph, tainted: &BTreeSet<ComponentId>, seed: Seed) -> Graph {
    let mut ids: Vec<NodeId> = g.ids().to_vec();
    let mut names: Vec<NodeName> = g.names().to_vec();
    for (c, members) in g.components().iter().enumerate() {
        let c_id = ComponentId::try_from(c).unwrap_or(ComponentId::MAX);
        if !tainted.contains(&c_id) {
            continue;
        }
        let mut rng = SplitMix64::new(seed.derive(0x5a17_0000 + c as u64));
        let idp = rng.permutation(members.len());
        let namep = rng.permutation(members.len());
        // IDs only need component-uniqueness; names get a per-component
        // offset so stand-ins never collide globally.
        let name_base = STANDIN_IDENTITY_BASE + (c as u64 + 1) * g.n() as u64;
        for (k, &v) in members.iter().enumerate() {
            ids[v] = NodeId(STANDIN_IDENTITY_BASE + idp[k] as u64);
            names[v] = NodeName(name_base + namep[k] as u64);
        }
    }
    let mut b = GraphBuilder::new();
    for v in 0..g.n() {
        b.add_node(ids[v], names[v]);
    }
    for (u, v) in g.edges() {
        b.add_edge(u, v);
    }
    b.build().expect("stand-in relabeling preserves legality")
}

/// Components tainted by the given machines' provenance tags, read at the
/// moment the run stopped. A faulted machine taints exactly the
/// components whose words it held *then*: the failed execution's state is
/// discarded wholesale and the salvage re-runs fault-free from the input
/// graph, so a machine that died before any placement (empty tags) taints
/// nothing.
fn tainted_components(
    cluster: &Cluster,
    machines: impl IntoIterator<Item = usize>,
) -> BTreeSet<ComponentId> {
    let mut tainted = BTreeSet::new();
    for m in machines {
        tainted.extend(cluster.machine_components(m).iter().copied());
    }
    tainted
}

/// Builds the partial output for `g` given `labels` from a trusted run
/// and the tainted component set.
fn degrade<L: Clone>(
    g: &Graph,
    labels: &[L],
    tainted: &BTreeSet<ComponentId>,
    salvage_stats: Option<Stats>,
) -> PartialOutput<L> {
    let comp_of = g.component_labels();
    let mut verdicts = BTreeMap::new();
    for c in 0..g.component_count() {
        let c_id = ComponentId::try_from(c).unwrap_or(ComponentId::MAX);
        let verdict = if tainted.contains(&c_id) {
            ComponentVerdict::Tainted
        } else {
            ComponentVerdict::Healthy
        };
        verdicts.insert(c_id, verdict);
    }
    let mut out = Vec::with_capacity(g.n());
    let mut healthy_nodes = 0usize;
    let mut tainted_nodes = 0usize;
    for (v, label) in labels.iter().enumerate() {
        let c_id = ComponentId::try_from(comp_of[v]).unwrap_or(ComponentId::MAX);
        if tainted.contains(&c_id) {
            tainted_nodes += 1;
            out.push(None);
        } else {
            healthy_nodes += 1;
            out.push(Some(label.clone()));
        }
    }
    PartialOutput {
        labels: out,
        verdicts,
        healthy_nodes,
        tainted_nodes,
        salvage_stats,
    }
}

/// Runs `run` on a supervised clone of `template` under `plan`/`policy`,
/// degrading gracefully instead of failing when the recovery budget runs
/// out.
///
/// * If the run completes without quarantines, the result is
///   [`SupervisedOutcome::Complete`].
/// * If it completes but machines were quarantined, the quarantined
///   machines' components are tainted and their labels withheld
///   ([`SupervisedOutcome::Degraded`]); the healthy labels come from the
///   completed run itself.
/// * If the run fails with [`MpcError::MachineFailed`] (exhausted
///   retries, fail-fast, or lost quorum), every component touched by a
///   fired fault or quarantine is tainted, the tainted components are
///   replaced by structural stand-ins ([`salvage_graph`]), and the
///   computation re-runs fault-free on spare machines. The salvage
///   ledger is charged to the primary ledger as recovery overhead
///   (degrading is never free), and the healthy components' labels are
///   taken from the salvage run — bit-identical to the fault-free run
///   for component-stable algorithms.
///
/// Other errors (bandwidth, space, addressing, round limits) are real
/// model violations and propagate unchanged.
///
/// Fully deterministic in (`template`, `plan`, `policy`, `cfg`, the
/// closure), in either [`crate::ParallelismMode`].
///
/// # Errors
///
/// Whatever `run` raises other than [`MpcError::MachineFailed`], and any
/// error of the fault-free salvage re-run.
pub fn run_supervised<L, F>(
    g: &Graph,
    template: &Cluster,
    plan: &FaultPlan,
    policy: RecoveryPolicy,
    cfg: SupervisorConfig,
    run: F,
) -> Result<SupervisedRun<L>, MpcError>
where
    L: Clone,
    F: Fn(&Graph, &mut Cluster) -> Result<Vec<L>, MpcError>,
{
    let mut cluster = template.clone();
    cluster.reset_for_repetition();
    cluster.arm_faults(plan.clone(), policy);
    cluster.supervise(cfg);
    let primary = run(g, &mut cluster);
    let report = |cluster: &Cluster, outcome: SupervisedOutcome<L>| SupervisedRun {
        outcome,
        stats: cluster.stats().clone(),
        recoveries: cluster.recovery_log().to_vec(),
        supervision: cluster.supervision_log().to_vec(),
        quarantined: cluster.quarantined_machines().iter().copied().collect(),
    };
    match primary {
        Ok(labels) => {
            // The run completed; recovered faults are exact (replayed from
            // checkpoints), so only quarantined machines taint components.
            let tainted = tainted_components(
                &cluster,
                cluster
                    .quarantined_machines()
                    .iter()
                    .copied()
                    .collect::<Vec<_>>(),
            );
            if tainted.is_empty() {
                return Ok(report(&cluster, SupervisedOutcome::Complete(labels)));
            }
            let partial = degrade(g, &labels, &tainted, None);
            Ok(report(&cluster, SupervisedOutcome::Degraded(partial)))
        }
        Err(MpcError::MachineFailed { .. }) => {
            // Budget exhausted: an interrupted recovery may have left any
            // fault-touched component inconsistent, so all of them are
            // tainted — not just the quarantined ones.
            let suspects: Vec<usize> = cluster.faulted_machines().iter().copied().collect();
            let tainted = tainted_components(&cluster, suspects);
            // Healthy components re-run fault-free on spares, against a
            // graph whose tainted components are structural stand-ins.
            let salvage = salvage_graph(g, &tainted, plan.seed().derive(0xde9a));
            let mut spare = template.clone();
            spare.reset_for_repetition();
            let salvage_labels = run(&salvage, &mut spare)?;
            let salvage_stats = spare.stats().clone();
            // Salvage work lands on the primary ledger: every round and
            // word of the re-run is recovery overhead.
            let salvage_words = usize::try_from(salvage_stats.total_words)
                .unwrap_or(usize::MAX)
                .max(1);
            cluster.charge_recovery(salvage_stats.rounds.max(1), salvage_words);
            let partial = degrade(g, &salvage_labels, &tainted, Some(salvage_stats));
            Ok(report(&cluster, SupervisedOutcome::Degraded(partial)))
        }
        Err(other) => Err(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmpc_graph::{generators, ops};

    fn two_comp() -> Graph {
        let a = generators::cycle(6);
        let b = ops::with_fresh_names(&generators::cycle(10), 700);
        ops::disjoint_union(&[&a, &b])
    }

    #[test]
    fn salvage_preserves_healthy_identity_and_global_shape() {
        let g = two_comp();
        let tainted: BTreeSet<ComponentId> = [1].into_iter().collect();
        let s = salvage_graph(&g, &tainted, Seed(9));
        assert_eq!(s.n(), g.n());
        assert_eq!(s.m(), g.m());
        assert_eq!(s.max_degree(), g.max_degree());
        assert!(s.is_legal());
        let comp = g.component_labels();
        for (v, &c) in comp.iter().enumerate() {
            if c == 0 {
                assert_eq!(s.id(v), g.id(v), "healthy node {v} id changed");
                assert_eq!(s.name(v), g.name(v), "healthy node {v} name changed");
            } else {
                assert_ne!(s.name(v), g.name(v), "tainted node {v} kept its name");
            }
        }
        // Same seed, same stand-in; different seed, different stand-in.
        assert_eq!(s, salvage_graph(&g, &tainted, Seed(9)));
        assert_ne!(s, salvage_graph(&g, &tainted, Seed(10)));
    }

    #[test]
    fn salvage_with_no_taint_is_identity() {
        let g = two_comp();
        let s = salvage_graph(&g, &BTreeSet::new(), Seed(1));
        assert_eq!(s, g);
    }

    #[test]
    fn supervisor_config_default_is_sane() {
        let cfg = SupervisorConfig::default();
        assert!(cfg.deadline_rounds >= 1);
        assert!(cfg.failure_threshold >= 1);
    }

    #[test]
    fn supervision_event_displays_name_everything() {
        let spec = SupervisionEvent::Speculation {
            machine: 3,
            round: 7,
            stall_avoided: 2,
            reshipped_words: 11,
        };
        let s = spec.to_string();
        assert!(s.contains("machine 3"), "{s}");
        assert!(s.contains("11 word(s)"), "{s}");
        let q = SupervisionEvent::Quarantine {
            machine: 5,
            round: 9,
            components: vec![0, 2],
        };
        let s = q.to_string();
        assert!(s.contains("machine 5"), "{s}");
        assert!(s.contains("2 tainted component(s)"), "{s}");
        let b = SupervisionEvent::Backoff {
            machine: 1,
            round: 12,
            retry: 2,
            stall_rounds: 4,
        };
        let s = b.to_string();
        assert!(s.contains("retry"), "{s}");
        assert!(s.contains("4 round(s)"), "{s}");
    }
}
