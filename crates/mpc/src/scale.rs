//! Million-vertex scale workloads over streaming CSR ingestion.
//!
//! The [`crate::distributed`] primitives are faithful to the paper's
//! accounting but carry per-node `Vec`s, name maps, and a materialized
//! [`csmpc_graph::Graph`] — fine at the conformance-suite sizes (n ≤ 4000),
//! prohibitive at n = 10⁶. This module is the scale path: inputs arrive as
//! a [`StreamFamily`] and are ingested straight into a
//! [`CsrAdjacency`] (two passes over the edge stream, no intermediate
//! `Graph`), node *names are node indices* (so the pointer-jumping lookup
//! is an array index, not a `BTreeMap` probe), and every per-vertex sweep
//! writes into a caller-held [`ScaleWorkspace`] buffer via
//! [`csmpc_parallel::par_map_range_into`].
//!
//! Steady-state contract: after the first repetition at a fixed topology
//! has warmed the workspace, further repetitions allocate **nothing** on
//! the hot path in [`crate::ParallelismMode::Sequential`] (ci.sh enforces this
//! with the `alloc-count` feature; parallel dispatch adds only the O(1)
//! pool control blocks documented on `par_map_range_into`).
//!
//! Round accounting mirrors [`crate::distributed`]: each measured
//! iteration of a sweep primitive charges `2d` rounds
//! (`d = ⌈log_S M⌉`), ingestion charges 1 round plus the graph's word
//! footprint, and every iteration passes through
//! [`Cluster::advance_rounds`] so armed fault plans strike here exactly
//! as they do on the materialized path.
//!
//! Determinism: every sweep is a pure per-vertex map over the previous
//! iteration's buffers, materialized in vertex order — bit-identical
//! across [`crate::ParallelismMode`]s and worker counts. Randomness (Luby
//! priorities, coloring priorities) flows from an explicit
//! [`Seed`] through a stateless splitmix-style mix, so a seed
//! replays the same run.

use crate::cluster::{Cluster, MpcError};
use crate::phase::{PhaseTimer, PhaseTimes};
use csmpc_graph::rng::Seed;
use csmpc_graph::{CsrAdjacency, StreamFamily};
use csmpc_parallel::par_map_range_into;

/// Sentinel for a vertex not yet colored by [`ball_coloring`].
const UNCOLORED: u32 = u32::MAX;

/// Reusable per-vertex buffers for the scale workloads.
///
/// All buffers grow to the largest `n` seen and are never shrunk; a
/// second run at the same topology performs no heap allocation on the
/// sweep path ([`crate::ParallelismMode::Sequential`]). One workspace serves all
/// three workloads — they share buffers, so results live in the workspace
/// only until the next call.
#[derive(Debug, Default)]
pub struct ScaleWorkspace {
    /// Component labels ([`cc_labels`] output: minimum node index in the
    /// component).
    pub label: Vec<u64>,
    /// Double buffer: min-over-neighborhood sweep output.
    next: Vec<u64>,
    /// Double buffer: pointer-jump sweep output.
    jumped: Vec<u64>,
    /// Per-vertex seeded priorities (Luby / Jones–Plassmann).
    priority: Vec<u64>,
    /// MIS state ([`luby_mis`] output): 0 undecided, 1 in the MIS, 2 out.
    pub state: Vec<u8>,
    /// Double buffer for the MIS state sweeps.
    state_next: Vec<u8>,
    /// Vertex colors ([`ball_coloring`] output).
    pub color: Vec<u32>,
    /// Double buffer for the coloring sweep.
    color_next: Vec<u32>,
}

impl ScaleWorkspace {
    /// A workspace with no capacity; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Stateless splitmix-style mixer: the per-vertex hash behind Luby and
/// Jones–Plassmann priorities. Every bit flows from the caller's [`Seed`]
/// (plus a salt identifying the round), so runs replay exactly.
fn mix(seed: u64, salt: u64, v: u64) -> u64 {
    let mut z =
        seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ v.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Aggregation-tree depth for the cluster's current configuration.
fn depth(cluster: &Cluster) -> usize {
    cluster
        .config()
        .tree_depth(cluster.input_n(), cluster.num_machines())
}

/// Streams `family` into a [`CsrAdjacency`] and charges the ingestion to
/// the ledger: 1 round, the graph's word footprint (`2n + 2m`) spread
/// evenly over machines, and a space-feasibility check on the per-machine
/// share. The intermediate [`csmpc_graph::Graph`] is never materialized.
///
/// Attributed to the route phase (it is data placement, not computation).
///
/// # Errors
///
/// [`MpcError::SpaceExceeded`] if a machine's share of the input does not
/// fit in `S`; [`MpcError::MachineFailed`] from an armed fault plan.
pub fn ingest(family: StreamFamily, cluster: &mut Cluster) -> Result<CsrAdjacency, MpcError> {
    let timer = PhaseTimer::start();
    let csr = family.stream_csr();
    let words = 2 * family.n() + 2 * family.m();
    cluster.advance_rounds(1)?;
    let per_machine = words.div_ceil(cluster.num_machines().max(1));
    cluster.charge_words(per_machine, words as u64);
    cluster.require_fits(per_machine)?;
    cluster.record_phase(&PhaseTimes {
        route_ns: timer.elapsed_ns(),
        ..PhaseTimes::default()
    });
    Ok(csr)
}

/// Connected-component labels by pointer jumping, the scale analogue of
/// [`crate::DistributedGraph::cc_labels`]. Node names are node indices,
/// so the jump resolves through plain array indexing. On return
/// `ws.label[v]` is the minimum node index in `v`'s component. Charges
/// `2d` rounds per measured iteration; returns the iteration count.
///
/// Bit-identical to the materialized primitive on any graph whose node
/// names equal node indices (every seeded [`StreamFamily`] qualifies).
///
/// # Errors
///
/// [`MpcError::MachineFailed`] from an armed fault plan.
pub fn cc_labels(
    cluster: &mut Cluster,
    csr: &CsrAdjacency,
    ws: &mut ScaleWorkspace,
) -> Result<usize, MpcError> {
    let n = csr.n();
    let mode = cluster.config().parallelism;
    let d = depth(cluster);
    let ScaleWorkspace {
        label,
        next,
        jumped,
        ..
    } = ws;
    par_map_range_into(mode, n, label, |v| v as u64);
    let mut iterations = 0usize;
    let mut sweep_ns = 0u64;
    let mut merge_ns = 0u64;
    loop {
        iterations += 1;
        cluster.advance_rounds(2 * d)?;
        let timer = PhaseTimer::start();
        // Hook: min over the closed neighborhood of the previous labels.
        {
            let label_s: &[u64] = label;
            par_map_range_into(mode, n, next, |v| {
                let mut nv = label_s[v];
                for &w in csr.neighbors(v) {
                    nv = nv.min(label_s[w as usize]);
                }
                nv
            });
        }
        // Jump: follow the label (a node index) one more hop. With
        // identity names, `by_name[next[v]]` degenerates to `next[v]`.
        {
            let label_s: &[u64] = label;
            let next_s: &[u64] = next;
            par_map_range_into(mode, n, jumped, |v| {
                let t = next_s[v] as usize;
                next_s[v].min(label_s[t]).min(next_s[t])
            });
        }
        sweep_ns = sweep_ns.saturating_add(timer.elapsed_ns());
        let converge_timer = PhaseTimer::start();
        let converged = jumped == label;
        merge_ns = merge_ns.saturating_add(converge_timer.elapsed_ns());
        if converged {
            break;
        }
        std::mem::swap(label, jumped);
    }
    cluster.record_phase(&PhaseTimes {
        step_ns: sweep_ns,
        merge_ns,
        ..PhaseTimes::default()
    });
    Ok(iterations)
}

/// Luby's maximal independent set. Per round every undecided vertex draws
/// a fresh seeded priority; strict local minima (ties broken by index)
/// join the set and their neighbors drop out. On return `ws.state[v]` is
/// 1 (in the MIS) or 2 (out). Charges `2d` rounds per measured round;
/// returns `(mis_size, rounds)`.
///
/// Terminates because the global minimum among undecided vertices is
/// always a local minimum, so every round decides at least one vertex.
///
/// # Errors
///
/// [`MpcError::MachineFailed`] from an armed fault plan.
pub fn luby_mis(
    cluster: &mut Cluster,
    csr: &CsrAdjacency,
    seed: Seed,
    ws: &mut ScaleWorkspace,
) -> Result<(usize, usize), MpcError> {
    let n = csr.n();
    let mode = cluster.config().parallelism;
    let d = depth(cluster);
    let ScaleWorkspace {
        priority,
        state,
        state_next,
        ..
    } = ws;
    par_map_range_into(mode, n, state, |_| 0u8);
    let mut rounds = 0usize;
    let mut sweep_ns = 0u64;
    let mut merge_ns = 0u64;
    let mut undecided = n;
    while undecided > 0 {
        rounds += 1;
        cluster.advance_rounds(2 * d)?;
        let timer = PhaseTimer::start();
        let salt = rounds as u64;
        par_map_range_into(mode, n, priority, |v| mix(seed.0, salt, v as u64));
        // Join: an undecided strict local minimum of (priority, index)
        // enters the MIS. Adjacent vertices are strictly ordered, so two
        // neighbors can never join in the same round.
        {
            let st: &[u8] = state;
            let pr: &[u64] = priority;
            par_map_range_into(mode, n, state_next, |v| {
                if st[v] != 0 {
                    return st[v];
                }
                let pv = (pr[v], v as u32);
                for &w in csr.neighbors(v) {
                    let wi = w as usize;
                    if st[wi] == 0 && (pr[wi], w) < pv {
                        return 0;
                    }
                }
                1
            });
        }
        std::mem::swap(state, state_next);
        // Retire: an undecided vertex adjacent to any MIS member is out.
        {
            let st: &[u8] = state;
            par_map_range_into(mode, n, state_next, |v| {
                if st[v] != 0 {
                    return st[v];
                }
                for &w in csr.neighbors(v) {
                    if st[w as usize] == 1 {
                        return 2;
                    }
                }
                0
            });
        }
        std::mem::swap(state, state_next);
        sweep_ns = sweep_ns.saturating_add(timer.elapsed_ns());
        let count_timer = PhaseTimer::start();
        undecided = state.iter().filter(|&&s| s == 0).count();
        merge_ns = merge_ns.saturating_add(count_timer.elapsed_ns());
    }
    cluster.record_phase(&PhaseTimes {
        step_ns: sweep_ns,
        merge_ns,
        ..PhaseTimes::default()
    });
    let size = state.iter().filter(|&&s| s == 1).count();
    Ok((size, rounds))
}

/// Smallest color not used by any already-colored neighbor. Degrees below
/// 64 use a one-word exclusion mask (greedy colors of such a vertex's
/// *free* slots all sit below 64, so larger neighbor colors cannot block
/// the answer); larger degrees fall back to a probe loop.
fn smallest_free(nbrs: &[u32], colors: &[u32]) -> u32 {
    if nbrs.len() < 64 {
        let mut mask: u64 = 0;
        for &w in nbrs {
            let c = colors[w as usize];
            if c != UNCOLORED && c < 64 {
                mask |= 1 << c;
            }
        }
        (!mask).trailing_zeros()
    } else {
        let mut c = 0u32;
        'probe: loop {
            for &w in nbrs {
                if colors[w as usize] == c {
                    c += 1;
                    continue 'probe;
                }
            }
            return c;
        }
    }
}

/// Jones–Plassmann greedy coloring — the scale member of the
/// ball-coloring workload family. Priorities are fixed per vertex
/// (seeded); each round, every uncolored vertex that is a strict local
/// maximum of (priority, index) among its *uncolored* neighbors takes the
/// smallest color unused by its colored neighbors. On return
/// `ws.color[v]` is `v`'s color. Charges `2d` rounds per measured round;
/// returns `(colors_used, rounds)`.
///
/// The coloring is proper: a local maximum's uncolored neighbors stay
/// uncolored that round (they see the maximum above them), and its
/// colored neighbors are exactly the set the greedy choice excludes.
///
/// # Errors
///
/// [`MpcError::MachineFailed`] from an armed fault plan.
pub fn ball_coloring(
    cluster: &mut Cluster,
    csr: &CsrAdjacency,
    seed: Seed,
    ws: &mut ScaleWorkspace,
) -> Result<(u32, usize), MpcError> {
    let n = csr.n();
    let mode = cluster.config().parallelism;
    let d = depth(cluster);
    let ScaleWorkspace {
        priority,
        color,
        color_next,
        ..
    } = ws;
    par_map_range_into(mode, n, priority, |v| {
        mix(seed.0, 0x636f_6c6f_7269_6e67, v as u64)
    });
    par_map_range_into(mode, n, color, |_| UNCOLORED);
    let mut rounds = 0usize;
    let mut sweep_ns = 0u64;
    let mut merge_ns = 0u64;
    let mut uncolored = n;
    while uncolored > 0 {
        rounds += 1;
        cluster.advance_rounds(2 * d)?;
        let timer = PhaseTimer::start();
        {
            let pr: &[u64] = priority;
            let col: &[u32] = color;
            par_map_range_into(mode, n, color_next, |v| {
                if col[v] != UNCOLORED {
                    return col[v];
                }
                let pv = (pr[v], v as u32);
                for &w in csr.neighbors(v) {
                    let wi = w as usize;
                    if col[wi] == UNCOLORED && (pr[wi], w) > pv {
                        return UNCOLORED;
                    }
                }
                smallest_free(csr.neighbors(v), col)
            });
        }
        std::mem::swap(color, color_next);
        sweep_ns = sweep_ns.saturating_add(timer.elapsed_ns());
        let count_timer = PhaseTimer::start();
        uncolored = color.iter().filter(|&&c| c == UNCOLORED).count();
        merge_ns = merge_ns.saturating_add(count_timer.elapsed_ns());
    }
    cluster.record_phase(&PhaseTimes {
        step_ns: sweep_ns,
        merge_ns,
        ..PhaseTimes::default()
    });
    let used = color.iter().map(|&c| c + 1).max().unwrap_or(0);
    Ok((used, rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpcConfig;
    use crate::faults::{FaultPlan, RecoveryPolicy};
    use csmpc_parallel::ParallelismMode;

    fn cluster_for(family: StreamFamily, mode: ParallelismMode) -> Cluster {
        let words = 2 * family.n() + 2 * family.m();
        let cfg = MpcConfig {
            parallelism: mode,
            ..MpcConfig::with_phi(0.5)
        };
        Cluster::new(cfg, family.n(), words, Seed(7))
    }

    /// Union-find oracle: minimum node index per component.
    fn oracle_labels(csr: &CsrAdjacency) -> Vec<u64> {
        let n = csr.n();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for v in 0..n {
            for &w in csr.neighbors(v) {
                let (a, b) = (find(&mut parent, v), find(&mut parent, w as usize));
                // Union by min so the root is the component minimum.
                let (lo, hi) = (a.min(b), a.max(b));
                parent[hi] = lo;
            }
        }
        (0..n).map(|v| find(&mut parent, v) as u64).collect()
    }

    fn families() -> Vec<StreamFamily> {
        vec![
            StreamFamily::Path { n: 97 },
            StreamFamily::Cycle { n: 64 },
            StreamFamily::TwoCycles { n: 120 },
            StreamFamily::Star { leaves: 50 },
            StreamFamily::Hypercube { dim: 6 },
            StreamFamily::RandomTree {
                n: 150,
                seed: Seed(11),
            },
        ]
    }

    #[test]
    fn cc_labels_match_union_find_oracle() {
        for family in families() {
            let mut cl = cluster_for(family, ParallelismMode::Sequential);
            let mut ws = ScaleWorkspace::new();
            let csr = ingest(family, &mut cl).unwrap();
            let iters = cc_labels(&mut cl, &csr, &mut ws).unwrap();
            assert!(iters >= 1);
            assert_eq!(ws.label, oracle_labels(&csr), "family {}", family.name());
            assert!(cl.stats().rounds > 1, "rounds must be charged");
        }
    }

    #[test]
    fn luby_mis_is_independent_and_maximal() {
        for family in families() {
            let mut cl = cluster_for(family, ParallelismMode::Sequential);
            let mut ws = ScaleWorkspace::new();
            let csr = ingest(family, &mut cl).unwrap();
            let (size, rounds) = luby_mis(&mut cl, &csr, Seed(3), &mut ws).unwrap();
            assert!(rounds >= 1 || csr.n() == 0);
            assert_eq!(size, ws.state.iter().filter(|&&s| s == 1).count());
            for v in 0..csr.n() {
                assert_ne!(ws.state[v], 0, "every vertex decided");
                if ws.state[v] == 1 {
                    for &w in csr.neighbors(v) {
                        assert_ne!(ws.state[w as usize], 1, "independence at {v}-{w}");
                    }
                } else {
                    let covered = csr.neighbors(v).iter().any(|&w| ws.state[w as usize] == 1);
                    assert!(covered, "maximality: {v} is out with no MIS neighbor");
                }
            }
        }
    }

    #[test]
    fn ball_coloring_is_proper_and_bounded() {
        for family in families() {
            let mut cl = cluster_for(family, ParallelismMode::Sequential);
            let mut ws = ScaleWorkspace::new();
            let csr = ingest(family, &mut cl).unwrap();
            let (used, _rounds) = ball_coloring(&mut cl, &csr, Seed(5), &mut ws).unwrap();
            let max_deg = (0..csr.n()).map(|v| csr.degree(v)).max().unwrap_or(0);
            assert!(used as usize <= max_deg + 1, "family {}", family.name());
            for v in 0..csr.n() {
                assert_ne!(ws.color[v], UNCOLORED);
                for &w in csr.neighbors(v) {
                    assert_ne!(ws.color[v], ws.color[w as usize], "edge {v}-{w}");
                }
            }
        }
    }

    #[test]
    fn high_degree_probe_path_matches_mask_path() {
        // A star center has degree >= 64, exercising the probe loop in
        // `smallest_free`; leaves exercise the mask path.
        let family = StreamFamily::Star { leaves: 80 };
        let mut cl = cluster_for(family, ParallelismMode::Sequential);
        let mut ws = ScaleWorkspace::new();
        let csr = ingest(family, &mut cl).unwrap();
        let (used, _) = ball_coloring(&mut cl, &csr, Seed(9), &mut ws).unwrap();
        assert_eq!(used, 2, "a star is 2-colorable");
    }

    #[test]
    fn modes_agree_bit_identically() {
        for family in families() {
            let mut results: Vec<(Vec<u64>, Vec<u8>, Vec<u32>)> = Vec::new();
            for mode in [ParallelismMode::Sequential, ParallelismMode::Parallel] {
                let mut cl = cluster_for(family, mode);
                let mut ws = ScaleWorkspace::new();
                let csr = ingest(family, &mut cl).unwrap();
                cc_labels(&mut cl, &csr, &mut ws).unwrap();
                luby_mis(&mut cl, &csr, Seed(3), &mut ws).unwrap();
                ball_coloring(&mut cl, &csr, Seed(5), &mut ws).unwrap();
                results.push((ws.label.clone(), ws.state.clone(), ws.color.clone()));
            }
            assert_eq!(results[0], results[1], "family {}", family.name());
        }
    }

    #[test]
    fn matches_distributed_cc_labels_on_identity_names() {
        // The materialized primitive labels by minimum *name*; seeded
        // families name nodes by index, so the two paths agree exactly.
        use crate::distributed::{graph_words, DistributedGraph};
        let family = StreamFamily::TwoCycles { n: 40 };
        let g = family.materialize();
        let mut cl = Cluster::new(MpcConfig::with_phi(0.5), g.n(), graph_words(&g), Seed(7));
        let dg = DistributedGraph::distribute(&g, &mut cl).unwrap();
        let (dist_labels, _) = dg.cc_labels(&mut cl).unwrap();

        let mut cl2 = cluster_for(family, ParallelismMode::Sequential);
        let mut ws = ScaleWorkspace::new();
        let csr = ingest(family, &mut cl2).unwrap();
        cc_labels(&mut cl2, &csr, &mut ws).unwrap();
        assert_eq!(ws.label, dist_labels);
    }

    #[test]
    fn armed_faults_strike_scale_sweeps() {
        let family = StreamFamily::Cycle { n: 32 };
        let mut cl = cluster_for(family, ParallelismMode::Sequential);
        cl.arm_faults(
            FaultPlan::quiet(Seed(1)).crash(0, 2),
            RecoveryPolicy::FailFast,
        );
        let mut ws = ScaleWorkspace::new();
        let csr = ingest(family, &mut cl).unwrap();
        let err = cc_labels(&mut cl, &csr, &mut ws).unwrap_err();
        assert!(matches!(err, MpcError::MachineFailed { .. }));
    }

    #[test]
    fn empty_graph_is_a_noop() {
        let family = StreamFamily::Path { n: 0 };
        let mut cl = cluster_for(family, ParallelismMode::Sequential);
        let mut ws = ScaleWorkspace::new();
        let csr = ingest(family, &mut cl).unwrap();
        assert_eq!(cc_labels(&mut cl, &csr, &mut ws).unwrap(), 1);
        let (size, _) = luby_mis(&mut cl, &csr, Seed(1), &mut ws).unwrap();
        assert_eq!(size, 0);
        let (used, _) = ball_coloring(&mut cl, &csr, Seed(1), &mut ws).unwrap();
        assert_eq!(used, 0);
    }
}
