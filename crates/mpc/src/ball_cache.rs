//! Memoized ball collection, keyed by exact graph content.
//!
//! The repetition loops in `csmpc-core` (success-probability, stability,
//! and sensitivity trials) re-run ball-collecting algorithms on the *same*
//! input graph dozens to hundreds of times with different seeds. Ball
//! extents depend only on the graph and the radius — not the seed — so the
//! sweep's output is identical across trials. This cache shares one
//! computed ball set (behind an [`Arc`]) across those trials.
//!
//! **Correctness over speed**: a cache key is the *entire* graph content —
//! node count, edge count, radius, every ID, every name, and every
//! adjacency list — not a lossy hash. A 64-bit fingerprint provides the
//! fast reject; on fingerprint match the full key is compared word for
//! word before an entry is reused, so a fault-mutated or otherwise edited
//! graph can never be served stale balls. Charges are unaffected: callers
//! charge the same rounds/words/space whether the set was computed or
//! reused (the model's observables measure the simulated algorithm, which
//! always "performs" the collection).
//!
//! The cache is process-global, bounded (LRU), and shared across threads;
//! entries are immutable once inserted, so a hit in parallel mode returns
//! the same bits a sequential run computes ([`BallWorkspace`] output is
//! mode-independent by construction).
//!
//! [`BallWorkspace`]: csmpc_graph::ball::BallWorkspace

use csmpc_graph::ball::with_thread_workspace;
use csmpc_graph::{CsrAdjacency, Graph};
use csmpc_parallel::{par_map_range, ParallelismMode};
use std::sync::{Arc, Mutex, OnceLock};

/// One collected ball set: `(ball graph, center index)` per vertex.
pub type BallSet = Arc<Vec<(Graph, usize)>>;

/// Exact content key: `[n, m, r, ids…, names…, per-node degree+targets…]`.
fn content_key(g: &Graph, r: usize) -> Vec<u64> {
    let mut key = Vec::with_capacity(3 + 3 * g.n() + 2 * g.m());
    key.push(g.n() as u64);
    key.push(g.m() as u64);
    key.push(r as u64);
    for v in 0..g.n() {
        key.push(g.id(v).0);
        key.push(g.name(v).0);
    }
    for v in 0..g.n() {
        let nbrs = g.neighbors(v);
        key.push(nbrs.len() as u64);
        for &w in nbrs {
            key.push(u64::from(w));
        }
    }
    key
}

/// FNV-1a over the key words — the fast-reject fingerprint.
fn fingerprint(key: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &word in key {
        for b in word.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

struct Entry {
    fingerprint: u64,
    key: Vec<u64>,
    balls: BallSet,
    /// `max(graph_words(ball))` over the set — cached so hits charge the
    /// identical space figure without rescanning.
    worst_words: usize,
}

/// A bounded LRU cache of collected ball sets.
///
/// Most callers want the process-wide [`global`] instance; tests build
/// their own to observe hit/miss behavior in isolation.
pub struct BallCache {
    entries: Mutex<Vec<Entry>>,
    capacity: usize,
}

impl std::fmt::Debug for BallCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let len = self.entries.lock().map(|e| e.len()).unwrap_or(0);
        f.debug_struct("BallCache")
            .field("capacity", &self.capacity)
            .field("entries", &len)
            .finish()
    }
}

impl BallCache {
    /// An empty cache holding at most `capacity` ball sets.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BallCache {
            entries: Mutex::new(Vec::new()),
            capacity: capacity.max(1),
        }
    }

    /// Returns the `r`-radius ball set of `g` (plus the worst-case
    /// `graph_words` over the set), computing and inserting it on a miss.
    ///
    /// The computation sweeps every vertex with a per-thread
    /// [`csmpc_graph::ball::BallWorkspace`] over a CSR adjacency view;
    /// output is bit-identical in both [`ParallelismMode`]s, so cached
    /// results are mode-agnostic.
    #[must_use]
    pub fn collect(&self, g: &Graph, r: usize, mode: ParallelismMode) -> (BallSet, usize) {
        let key = content_key(g, r);
        let fp = fingerprint(&key);
        if let Some(found) = self.lookup(fp, &key) {
            return found;
        }
        let csr = csr_global().get(g);
        let balls: Vec<(Graph, usize)> = par_map_range(mode, g.n(), |v| {
            // csmpc-allow(par-closure-race): the workspace is thread_local! — each worker mutates only its own RefCell, never shared state
            with_thread_workspace(|ws| {
                let (b, c, _) = ws.ball_csr(g, &csr, v, r);
                (b, c)
            })
        });
        let worst = balls
            .iter()
            .map(|(b, _)| crate::distributed::graph_words(b))
            .max()
            .unwrap_or(0);
        let set: BallSet = Arc::new(balls);
        self.insert(fp, key, Arc::clone(&set), worst);
        (set, worst)
    }

    /// Exact-match lookup: fingerprint fast-reject, then full key compare.
    /// A hit is moved to the front (most recently used).
    fn lookup(&self, fp: u64, key: &[u64]) -> Option<(BallSet, usize)> {
        let mut entries = self.entries.lock().expect("ball cache poisoned");
        let pos = entries
            .iter()
            .position(|e| e.fingerprint == fp && e.key == key)?;
        let entry = entries.remove(pos);
        let found = (Arc::clone(&entry.balls), entry.worst_words);
        entries.insert(0, entry);
        Some(found)
    }

    fn insert(&self, fp: u64, key: Vec<u64>, balls: BallSet, worst_words: usize) {
        let mut entries = self.entries.lock().expect("ball cache poisoned");
        // A racing thread may have inserted the same key; keep one copy.
        if entries.iter().any(|e| e.fingerprint == fp && e.key == key) {
            return;
        }
        entries.insert(
            0,
            Entry {
                fingerprint: fp,
                key,
                balls,
                worst_words,
            },
        );
        entries.truncate(self.capacity);
    }

    /// Number of cached ball sets.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().expect("ball cache poisoned").len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-wide cache used by
/// [`crate::DistributedGraph::collect_balls`]. Sized to hold the working
/// set of a repetition loop (a handful of distinct `(graph, radius)`
/// pairs) without accumulating unbounded ball sets.
pub fn global() -> &'static BallCache {
    static GLOBAL: OnceLock<BallCache> = OnceLock::new();
    GLOBAL.get_or_init(|| BallCache::with_capacity(8))
}

/// Topology-only content key for CSR sharing: `[n, m, per-node
/// degree+targets…]`. IDs, names, and radius are deliberately excluded —
/// a CSR spine is pure index-space adjacency, so two graphs that differ
/// only in identity share one spine.
fn csr_key(g: &Graph) -> Vec<u64> {
    let mut key = Vec::with_capacity(2 + g.n() + 2 * g.m());
    key.push(g.n() as u64);
    key.push(g.m() as u64);
    for v in 0..g.n() {
        let nbrs = g.neighbors(v);
        key.push(nbrs.len() as u64);
        for &w in nbrs {
            key.push(u64::from(w));
        }
    }
    key
}

struct CsrEntry {
    fingerprint: u64,
    key: Vec<u64>,
    csr: Arc<CsrAdjacency>,
}

/// A bounded LRU cache of shared CSR adjacency spines, keyed by exact
/// graph topology — the process-wide extension of the content-keyed
/// cache family that lets N concurrent jobs on the same graph pay for
/// one adjacency spine instead of N.
///
/// Same correctness posture as [`BallCache`]: the key is the *entire*
/// topology (fingerprint fast-reject, then word-for-word compare), so a
/// stale spine can never be served; entries are immutable behind an
/// [`Arc`], so concurrent readers share bits without coordination. The
/// CSR is a host-side representation detail, not a model observable —
/// sharing it changes no [`crate::Stats`] charge anywhere.
pub struct CsrCache {
    entries: Mutex<Vec<CsrEntry>>,
    capacity: usize,
}

impl std::fmt::Debug for CsrCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let len = self.entries.lock().map(|e| e.len()).unwrap_or(0);
        f.debug_struct("CsrCache")
            .field("capacity", &self.capacity)
            .field("entries", &len)
            .finish()
    }
}

impl CsrCache {
    /// An empty cache holding at most `capacity` spines.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        CsrCache {
            entries: Mutex::new(Vec::new()),
            capacity: capacity.max(1),
        }
    }

    /// Returns the shared CSR spine of `g`, building and inserting it on
    /// a miss. Hits move to the front (most recently used).
    #[must_use]
    pub fn get(&self, g: &Graph) -> Arc<CsrAdjacency> {
        let key = csr_key(g);
        let fp = fingerprint(&key);
        {
            let mut entries = self.entries.lock().expect("csr cache poisoned");
            if let Some(pos) = entries
                .iter()
                .position(|e| e.fingerprint == fp && e.key == key)
            {
                let entry = entries.remove(pos);
                let csr = Arc::clone(&entry.csr);
                entries.insert(0, entry);
                return csr;
            }
        }
        let csr = Arc::new(CsrAdjacency::from_graph(g));
        let mut entries = self.entries.lock().expect("csr cache poisoned");
        // A racing thread may have inserted the same topology; keep one.
        if let Some(pos) = entries
            .iter()
            .position(|e| e.fingerprint == fp && e.key == key)
        {
            return Arc::clone(&entries[pos].csr);
        }
        entries.insert(
            0,
            CsrEntry {
                fingerprint: fp,
                key,
                csr: Arc::clone(&csr),
            },
        );
        entries.truncate(self.capacity);
        csr
    }

    /// Number of cached spines.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().expect("csr cache poisoned").len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-wide CSR spine cache shared by the job-service layer and
/// [`BallCache::collect`]: a fleet of jobs on the same input graph pays
/// for one adjacency spine.
pub fn csr_global() -> &'static CsrCache {
    static GLOBAL: OnceLock<CsrCache> = OnceLock::new();
    GLOBAL.get_or_init(|| CsrCache::with_capacity(16))
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmpc_graph::generators;
    use csmpc_graph::ops::{relabel_ids, with_fresh_names};
    use csmpc_graph::rng::Seed;

    #[test]
    fn hit_returns_the_shared_set() {
        let cache = BallCache::with_capacity(4);
        let g = generators::random_tree(40, Seed(3));
        let (a, wa) = cache.collect(&g, 2, ParallelismMode::Sequential);
        let (b, wb) = cache.collect(&g, 2, ParallelismMode::Sequential);
        assert!(Arc::ptr_eq(&a, &b), "second call must hit");
        assert_eq!(wa, wb);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_radius_is_a_different_entry() {
        let cache = BallCache::with_capacity(4);
        let g = generators::cycle(12);
        let (a, _) = cache.collect(&g, 1, ParallelismMode::Sequential);
        let (b, _) = cache.collect(&g, 2, ParallelismMode::Sequential);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn mutated_ids_and_names_never_reuse_stale_balls() {
        // Same topology, different IDs (beyond some node) and different
        // names: both must be cache-distinct — ball graphs carry ids AND
        // names, so either difference changes the output.
        let cache = BallCache::with_capacity(8);
        let g = generators::path(9);
        let relabeled = relabel_ids(&g, |v, id| {
            if v > 4 {
                csmpc_graph::NodeId(id.0 + 500)
            } else {
                id
            }
        });
        let renamed = with_fresh_names(&g, 9_000);
        let (a, _) = cache.collect(&g, 2, ParallelismMode::Sequential);
        let (b, _) = cache.collect(&relabeled, 2, ParallelismMode::Sequential);
        let (c, _) = cache.collect(&renamed, 2, ParallelismMode::Sequential);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(b[8].0.id(b[8].1).0, g.id(8).0 + 500);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn lru_evicts_beyond_capacity() {
        let cache = BallCache::with_capacity(2);
        let g1 = generators::path(5);
        let g2 = generators::cycle(5);
        let g3 = generators::star(4);
        let (first, _) = cache.collect(&g1, 1, ParallelismMode::Sequential);
        let _ = cache.collect(&g2, 1, ParallelismMode::Sequential);
        let _ = cache.collect(&g3, 1, ParallelismMode::Sequential);
        assert_eq!(cache.len(), 2);
        // g1 was least recently used and must have been evicted: a fresh
        // collect recomputes (a different allocation).
        let (again, _) = cache.collect(&g1, 1, ParallelismMode::Sequential);
        assert!(!Arc::ptr_eq(&first, &again));
    }

    #[test]
    fn cached_set_matches_fresh_compute_bit_for_bit() {
        let cache = BallCache::with_capacity(4);
        let g = generators::random_tree(30, Seed(9));
        let (cached, worst) = cache.collect(&g, 3, ParallelismMode::Sequential);
        for (v, (b, c)) in cached.iter().enumerate() {
            let (rb, rc, _) = csmpc_graph::ball::reference::ball(&g, v, 3);
            assert_eq!((b, c), (&rb, &rc), "vertex {v}");
        }
        let recomputed_worst = cached
            .iter()
            .map(|(b, _)| crate::distributed::graph_words(b))
            .max()
            .unwrap_or(0);
        assert_eq!(worst, recomputed_worst);
    }
}
