//! Configuration of the low-space MPC model (paper Sections 1 and 2.4.2).
//!
//! The model has `M = poly(n)` machines, each with `S = Θ(n^φ)` words of
//! local space for a constant `φ ∈ (0, 1)`. All messages sent and received
//! by a machine in one round, as well as its stored state, must fit in `S`.

/// Parameters of a low-space MPC deployment.
///
/// # Examples
///
/// ```
/// use csmpc_mpc::MpcConfig;
/// let cfg = MpcConfig::with_phi(0.5);
/// // S = ceil(10_000^0.5) = 100 words per machine
/// assert_eq!(cfg.local_space(10_000), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpcConfig {
    /// The space exponent `φ ∈ (0, 1)`: each machine holds `Θ(n^φ)` words.
    pub phi: f64,
    /// Floor on machine space so that asymptotic statements survive tiny
    /// test inputs (the model is asymptotic; a 20-node graph with `φ = 0.5`
    /// would otherwise give 5-word machines).
    pub min_space: usize,
    /// Multiplier on `n^φ` (the `Θ(·)` constant).
    pub space_factor: f64,
    /// Exact-engine rounds between recovery checkpoints: under
    /// [`crate::RecoveryPolicy::RestartFromCheckpoint`] the cluster
    /// snapshots state every this many rounds, so a crash replays at most
    /// this many rounds (all charged to the ledger).
    pub checkpoint_interval: usize,
    /// Default retry budget for restart-from-checkpoint recovery.
    pub max_recovery_retries: usize,
    /// How the simulators execute internally parallelizable sweeps (machine
    /// steps within an exact-engine round, per-vertex sweeps in the
    /// accounted primitives). Both modes are bit-identical in every
    /// observable — outputs, [`crate::Stats`], provenance, recovery log —
    /// for the same seed; the mode only affects wall-clock time.
    pub parallelism: csmpc_parallel::ParallelismMode,
}

impl MpcConfig {
    /// A configuration with the given `φ` and default constants.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < φ < 1`.
    #[must_use]
    pub fn with_phi(phi: f64) -> Self {
        assert!(phi > 0.0 && phi < 1.0, "phi must lie in (0,1), got {phi}");
        MpcConfig {
            phi,
            min_space: 32,
            space_factor: 1.0,
            checkpoint_interval: 4,
            max_recovery_retries: 8,
            parallelism: csmpc_parallel::ParallelismMode::default(),
        }
    }

    /// Local space `S` (in words) for an `n`-node input.
    #[must_use]
    pub fn local_space(&self, n: usize) -> usize {
        let s = ((n as f64).powf(self.phi) * self.space_factor).ceil() as usize;
        s.max(self.min_space)
    }

    /// Number of machines needed to hold `total_words` of input with local
    /// space `S`, with constant-factor headroom for intermediate data.
    #[must_use]
    pub fn machines_for(&self, n: usize, total_words: usize) -> usize {
        let s = self.local_space(n);
        (4 * total_words).div_ceil(s).max(2)
    }

    /// The fan-in of aggregation/broadcast trees: a machine can merge up to
    /// `S` children's summaries per round, so trees have branching factor
    /// `S` and depth `⌈log_S M⌉ = O(1/φ)`.
    #[must_use]
    pub fn tree_fan_in(&self, n: usize) -> usize {
        self.local_space(n).max(2)
    }

    /// Depth of an `S`-ary tree over `m` leaves — the round cost of one
    /// aggregation or broadcast.
    ///
    /// Computed with an integer loop (`⌈log_b leaves⌉` as the least `d`
    /// with `b^d ≥ leaves`): the floating `ln`-ratio form can be off by one
    /// at exact powers of the fan-in, where `ln(b^k)/ln(b)` lands a hair
    /// above `k` and ceils to `k + 1`.
    #[must_use]
    pub fn tree_depth(&self, n: usize, leaves: usize) -> usize {
        if leaves <= 1 {
            return 1;
        }
        let b = self.tree_fan_in(n);
        let mut depth = 0usize;
        let mut cover = 1usize;
        while cover < leaves {
            cover = cover.saturating_mul(b);
            depth += 1;
        }
        depth
    }
}

impl Default for MpcConfig {
    /// `φ = 0.5`, the canonical strongly sublinear regime.
    fn default() -> Self {
        MpcConfig::with_phi(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_scales_with_phi() {
        let c = MpcConfig::with_phi(0.5);
        assert_eq!(c.local_space(10_000), 100);
        let c2 = MpcConfig::with_phi(0.25);
        assert_eq!(c2.local_space(65_536), 32); // floor dominates 65536^0.25 = 16
    }

    #[test]
    fn min_space_floor_applies() {
        let c = MpcConfig::with_phi(0.5);
        assert_eq!(c.local_space(4), 32);
    }

    #[test]
    #[should_panic(expected = "phi must lie in (0,1)")]
    fn rejects_bad_phi() {
        let _ = MpcConfig::with_phi(1.5);
    }

    #[test]
    fn machines_cover_input() {
        let c = MpcConfig::with_phi(0.5);
        let m = c.machines_for(10_000, 50_000);
        assert!(m * c.local_space(10_000) >= 50_000);
    }

    #[test]
    fn tree_depth_small_for_large_fanin() {
        let c = MpcConfig::with_phi(0.5);
        // S = 100, 10_000 leaves -> depth 2.
        assert_eq!(c.tree_depth(10_000, 10_000), 2);
        assert_eq!(c.tree_depth(10_000, 1), 1);
    }

    #[test]
    fn tree_depth_exact_at_fan_in_boundaries() {
        // S = 100 for n = 10_000; the boundaries leaves = S, S², S² + 1
        // are where the old ln-ratio formula risked an off-by-one.
        let c = MpcConfig::with_phi(0.5);
        let s = c.tree_fan_in(10_000);
        assert_eq!(s, 100);
        assert_eq!(c.tree_depth(10_000, s), 1, "leaves = S is one level");
        assert_eq!(c.tree_depth(10_000, s * s), 2, "leaves = S^2 is two");
        assert_eq!(
            c.tree_depth(10_000, s * s + 1),
            3,
            "one leaf past S^2 forces a third level"
        );
        assert_eq!(c.tree_depth(10_000, s + 1), 2);
    }

    #[test]
    fn tree_depth_monotone_in_leaves() {
        let c = MpcConfig::with_phi(0.5);
        let mut last = 0;
        for leaves in [1, 2, 99, 100, 101, 9_999, 10_000, 10_001, 1_000_000] {
            let d = c.tree_depth(10_000, leaves);
            assert!(d >= last, "depth must not decrease as leaves grow");
            last = d;
        }
    }

    #[test]
    fn default_recovery_knobs_are_sane() {
        let c = MpcConfig::default();
        assert!(c.checkpoint_interval >= 1);
        assert!(c.max_recovery_retries >= 1);
    }
}
