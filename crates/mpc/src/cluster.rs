//! The MPC cluster: machines, round execution, and resource accounting.
//!
//! Two execution layers share one [`Stats`] ledger:
//!
//! * the **exact engine** ([`Cluster::run_program`]) moves explicit word
//!   messages between machines, enforcing the per-round send/receive caps —
//!   used by the genuinely distributed primitives (aggregate, broadcast)
//!   and by tests that demonstrate cap enforcement;
//! * the **accounted primitives** (in [`crate::distributed`]) perform graph
//!   operations in-process but *charge* the documented round cost and
//!   *assert* space feasibility, which is the standard way research code
//!   simulates MPC faithfully: the model's observable resources (rounds,
//!   per-machine words) are enforced, local computation is free — as in the
//!   paper, which explicitly allows unbounded local computation.

use crate::config::MpcConfig;
use csmpc_graph::rng::Seed;
use std::fmt;

/// Resource ledger for one MPC execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Synchronous communication rounds elapsed.
    pub rounds: usize,
    /// Largest number of words any machine sent or received in one round.
    pub max_round_words: usize,
    /// Largest number of words any machine stored at any time.
    pub max_storage_words: usize,
    /// Total words moved across the whole execution.
    pub total_words: u64,
}

impl Stats {
    /// Merges another ledger (e.g. a sub-computation) into this one,
    /// summing rounds and taking maxima of space figures.
    pub fn absorb(&mut self, other: &Stats) {
        self.rounds += other.rounds;
        self.max_round_words = self.max_round_words.max(other.max_round_words);
        self.max_storage_words = self.max_storage_words.max(other.max_storage_words);
        self.total_words += other.total_words;
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rounds={}, max round words={}, max storage words={}, total words={}",
            self.rounds, self.max_round_words, self.max_storage_words, self.total_words
        )
    }
}

/// Error raised when an execution violates the low-space constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpcError {
    /// A machine tried to send or receive more than `S` words in one round.
    BandwidthExceeded {
        /// Machine index.
        machine: usize,
        /// Words attempted.
        words: usize,
        /// The cap `S`.
        limit: usize,
    },
    /// A machine's storage exceeded `S` words.
    SpaceExceeded {
        /// Machine index (or a representative).
        machine: usize,
        /// Words stored.
        words: usize,
        /// The cap `S`.
        limit: usize,
    },
    /// A message was addressed to a machine that does not exist.
    UnknownMachine {
        /// The bad address.
        machine: usize,
        /// Number of machines.
        count: usize,
    },
    /// An operation needed more rounds than the caller's cap.
    RoundLimitExceeded {
        /// The cap.
        limit: usize,
    },
}

impl fmt::Display for MpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpcError::BandwidthExceeded {
                machine,
                words,
                limit,
            } => write!(
                f,
                "machine {machine} moved {words} words in a round (limit {limit})"
            ),
            MpcError::SpaceExceeded {
                machine,
                words,
                limit,
            } => write!(
                f,
                "machine {machine} stored {words} words (limit {limit})"
            ),
            MpcError::UnknownMachine { machine, count } => {
                write!(f, "machine {machine} does not exist ({count} machines)")
            }
            MpcError::RoundLimitExceeded { limit } => {
                write!(f, "round limit {limit} exceeded")
            }
        }
    }
}

impl std::error::Error for MpcError {}

/// A word-addressed message between machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Destination machine.
    pub to: usize,
    /// Payload words.
    pub words: Vec<u64>,
}

/// A machine-resident program for the exact engine: one callback per round.
pub trait MachineProgram {
    /// Executes one round on machine `id` with the messages received this
    /// round; returns outgoing messages. Return an empty set from every
    /// machine to quiesce.
    fn round(&mut self, id: usize, inbox: &[Message]) -> Vec<Message>;

    /// Current storage footprint of machine `id`, in words, for space
    /// enforcement.
    fn storage_words(&self, id: usize) -> usize;
}

/// A low-space MPC cluster for an `n`-node input.
#[derive(Debug, Clone)]
pub struct Cluster {
    cfg: MpcConfig,
    n_input: usize,
    local_space: usize,
    num_machines: usize,
    shared_seed: Seed,
    stats: Stats,
}

impl Cluster {
    /// Creates a cluster sized for an `n`-node, `total_words`-word input.
    #[must_use]
    pub fn new(cfg: MpcConfig, n: usize, total_words: usize, shared_seed: Seed) -> Self {
        let local_space = cfg.local_space(n);
        let num_machines = cfg.machines_for(n, total_words.max(1));
        Cluster {
            cfg,
            n_input: n,
            local_space,
            num_machines,
            shared_seed,
            stats: Stats::default(),
        }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &MpcConfig {
        &self.cfg
    }

    /// Local space `S` per machine, in words.
    #[must_use]
    pub fn local_space(&self) -> usize {
        self.local_space
    }

    /// Number of machines `M`.
    #[must_use]
    pub fn num_machines(&self) -> usize {
        self.num_machines
    }

    /// Input size `n` this cluster was provisioned for.
    #[must_use]
    pub fn input_n(&self) -> usize {
        self.n_input
    }

    /// The shared random seed `S` available to all machines.
    #[must_use]
    pub fn shared_seed(&self) -> Seed {
        self.shared_seed
    }

    /// The resource ledger so far.
    #[must_use]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Resets the ledger (e.g. between repetitions).
    pub fn reset_stats(&mut self) {
        self.stats = Stats::default();
    }

    /// Charges `rounds` rounds to the ledger (used by accounted primitives).
    pub fn charge_rounds(&mut self, rounds: usize) {
        self.stats.rounds += rounds;
    }

    /// Charges a communication volume observation.
    pub fn charge_words(&mut self, per_machine_max: usize, total: u64) {
        self.stats.max_round_words = self.stats.max_round_words.max(per_machine_max);
        self.stats.total_words += total;
    }

    /// Records a storage high-water mark and enforces the space cap.
    ///
    /// # Errors
    ///
    /// [`MpcError::SpaceExceeded`] if `words > S`.
    pub fn charge_storage(&mut self, machine: usize, words: usize) -> Result<(), MpcError> {
        self.stats.max_storage_words = self.stats.max_storage_words.max(words);
        if words > self.local_space {
            return Err(MpcError::SpaceExceeded {
                machine,
                words,
                limit: self.local_space,
            });
        }
        Ok(())
    }

    /// Asserts that a per-machine working set fits in `S` without
    /// attributing it to a specific machine.
    ///
    /// # Errors
    ///
    /// [`MpcError::SpaceExceeded`] if `words > S`.
    pub fn require_fits(&mut self, words: usize) -> Result<(), MpcError> {
        self.charge_storage(usize::MAX, words)
    }

    /// Runs `program` on the exact engine until it quiesces (a round in
    /// which no machine sends) or `max_rounds` is hit.
    ///
    /// Every round, each machine's total sent words and received words are
    /// checked against `S`, as is its reported storage.
    ///
    /// # Errors
    ///
    /// Bandwidth, space, addressing, or round-limit violations.
    pub fn run_program<P: MachineProgram>(
        &mut self,
        program: &mut P,
        initial: Vec<Message>,
        max_rounds: usize,
    ) -> Result<(), MpcError> {
        let mut inboxes: Vec<Vec<Message>> = vec![Vec::new(); self.num_machines];
        for msg in initial {
            if msg.to >= self.num_machines {
                return Err(MpcError::UnknownMachine {
                    machine: msg.to,
                    count: self.num_machines,
                });
            }
            inboxes[msg.to].push(msg);
        }
        for _ in 0..max_rounds {
            let mut outgoing: Vec<Vec<Message>> = vec![Vec::new(); self.num_machines];
            let mut any_sent = false;
            let mut round_max = 0usize;
            let mut round_total = 0u64;
            for id in 0..self.num_machines {
                let inbox = std::mem::take(&mut inboxes[id]);
                let received: usize = inbox.iter().map(|m| m.words.len()).sum();
                if received > self.local_space {
                    return Err(MpcError::BandwidthExceeded {
                        machine: id,
                        words: received,
                        limit: self.local_space,
                    });
                }
                let outs = program.round(id, &inbox);
                let sent: usize = outs.iter().map(|m| m.words.len()).sum();
                if sent > self.local_space {
                    return Err(MpcError::BandwidthExceeded {
                        machine: id,
                        words: sent,
                        limit: self.local_space,
                    });
                }
                let storage = program.storage_words(id);
                self.charge_storage(id, storage)?;
                round_max = round_max.max(sent.max(received));
                round_total += sent as u64;
                if !outs.is_empty() {
                    any_sent = true;
                }
                for m in outs {
                    if m.to >= self.num_machines {
                        return Err(MpcError::UnknownMachine {
                            machine: m.to,
                            count: self.num_machines,
                        });
                    }
                    outgoing[m.to].push(m);
                }
            }
            self.stats.rounds += 1;
            self.charge_words(round_max, round_total);
            if !any_sent {
                return Ok(());
            }
            inboxes = outgoing;
        }
        Err(MpcError::RoundLimitExceeded { limit: max_rounds })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each leaf machine sends its value toward machine 0 in one hop;
    /// machine 0 accumulates. (Deliberately ignores fan-in trees — small.)
    struct SumToZero {
        values: Vec<u64>,
        acc: u64,
        sent: Vec<bool>,
    }

    impl MachineProgram for SumToZero {
        fn round(&mut self, id: usize, inbox: &[Message]) -> Vec<Message> {
            if id == 0 {
                for m in inbox {
                    self.acc += m.words.iter().sum::<u64>();
                }
                Vec::new()
            } else if !self.sent[id] {
                self.sent[id] = true;
                vec![Message {
                    to: 0,
                    words: vec![self.values[id]],
                }]
            } else {
                Vec::new()
            }
        }
        fn storage_words(&self, _id: usize) -> usize {
            2
        }
    }

    #[test]
    fn exact_engine_moves_words() {
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        // Restrict to 3 machines' worth of traffic for the toy program.
        let m = cluster.num_machines();
        let mut prog = SumToZero {
            values: (0..m as u64).collect(),
            acc: 0,
            sent: vec![false; m],
        };
        cluster.run_program(&mut prog, Vec::new(), 10).unwrap();
        assert_eq!(prog.acc, (0..m as u64).sum::<u64>());
        assert!(cluster.stats().rounds >= 2);
    }

    /// A program that tries to send more than S words at once.
    struct Flooder {
        limit: usize,
        fired: bool,
    }

    impl MachineProgram for Flooder {
        fn round(&mut self, id: usize, _inbox: &[Message]) -> Vec<Message> {
            if id == 1 && !self.fired {
                self.fired = true;
                vec![Message {
                    to: 0,
                    words: vec![0; self.limit + 1],
                }]
            } else {
                Vec::new()
            }
        }
        fn storage_words(&self, _id: usize) -> usize {
            0
        }
    }

    #[test]
    fn bandwidth_cap_enforced() {
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        let s = cluster.local_space();
        let mut prog = Flooder {
            limit: s,
            fired: false,
        };
        let err = cluster.run_program(&mut prog, Vec::new(), 10).unwrap_err();
        assert!(matches!(err, MpcError::BandwidthExceeded { .. }));
    }

    /// A program whose storage exceeds S.
    struct Hoarder;

    impl MachineProgram for Hoarder {
        fn round(&mut self, _id: usize, _inbox: &[Message]) -> Vec<Message> {
            Vec::new()
        }
        fn storage_words(&self, id: usize) -> usize {
            if id == 0 {
                1_000_000
            } else {
                0
            }
        }
    }

    #[test]
    fn storage_cap_enforced() {
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        let err = cluster.run_program(&mut Hoarder, Vec::new(), 10).unwrap_err();
        assert!(matches!(err, MpcError::SpaceExceeded { .. }));
    }

    #[test]
    fn stats_absorb_sums_rounds() {
        let mut a = Stats {
            rounds: 3,
            max_round_words: 10,
            max_storage_words: 20,
            total_words: 100,
        };
        let b = Stats {
            rounds: 2,
            max_round_words: 50,
            max_storage_words: 5,
            total_words: 7,
        };
        a.absorb(&b);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.max_round_words, 50);
        assert_eq!(a.max_storage_words, 20);
        assert_eq!(a.total_words, 107);
    }

    #[test]
    fn unknown_machine_rejected() {
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        let err = cluster
            .run_program(
                &mut Hoarder,
                vec![Message {
                    to: 10_000_000,
                    words: vec![],
                }],
                10,
            )
            .unwrap_err();
        assert!(matches!(err, MpcError::UnknownMachine { .. }));
    }
}
