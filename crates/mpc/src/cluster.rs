//! The MPC cluster: machines, round execution, and resource accounting.
//!
//! Two execution layers share one [`Stats`] ledger:
//!
//! * the **exact engine** ([`Cluster::run_program`]) moves explicit word
//!   messages between machines, enforcing the per-round send/receive caps —
//!   used by the genuinely distributed primitives (aggregate, broadcast)
//!   and by tests that demonstrate cap enforcement;
//! * the **accounted primitives** (in [`crate::distributed`]) perform graph
//!   operations in-process but *charge* the documented round cost and
//!   *assert* space feasibility, which is the standard way research code
//!   simulates MPC faithfully: the model's observable resources (rounds,
//!   per-machine words) are enforced, local computation is free — as in the
//!   paper, which explicitly allows unbounded local computation.

use crate::config::MpcConfig;
use crate::provenance::{ComponentId, ProvenanceLog};
use csmpc_graph::rng::Seed;
use std::collections::BTreeSet;
use std::fmt;

/// Resource ledger for one MPC execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Synchronous communication rounds elapsed.
    pub rounds: usize,
    /// Largest number of words any machine sent or received in one round.
    pub max_round_words: usize,
    /// Largest number of words any machine stored at any time.
    pub max_storage_words: usize,
    /// Total words moved across the whole execution.
    pub total_words: u64,
}

impl Stats {
    /// Merges another ledger (e.g. a sub-computation) into this one,
    /// summing rounds and taking maxima of space figures.
    pub fn absorb(&mut self, other: &Stats) {
        self.rounds += other.rounds;
        self.max_round_words = self.max_round_words.max(other.max_round_words);
        self.max_storage_words = self.max_storage_words.max(other.max_storage_words);
        self.total_words += other.total_words;
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rounds={}, max round words={}, max storage words={}, total words={}",
            self.rounds, self.max_round_words, self.max_storage_words, self.total_words
        )
    }
}

/// Error raised when an execution violates the low-space constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpcError {
    /// A machine tried to send or receive more than `S` words in one round.
    BandwidthExceeded {
        /// Machine index.
        machine: usize,
        /// Words attempted.
        words: usize,
        /// The cap `S`.
        limit: usize,
        /// Value of the round counter when the violation occurred.
        round: usize,
    },
    /// A machine's storage exceeded `S` words.
    SpaceExceeded {
        /// Machine index (or a representative).
        machine: usize,
        /// Words stored.
        words: usize,
        /// The cap `S`.
        limit: usize,
        /// Value of the round counter when the violation occurred.
        round: usize,
    },
    /// A message was addressed to a machine that does not exist.
    UnknownMachine {
        /// The bad address.
        machine: usize,
        /// Number of machines.
        count: usize,
    },
    /// An operation needed more rounds than the caller's cap.
    RoundLimitExceeded {
        /// The cap.
        limit: usize,
    },
}

impl fmt::Display for MpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpcError::BandwidthExceeded {
                machine,
                words,
                limit,
                round,
            } => write!(
                f,
                "machine {machine} moved {words} words in round {round} (limit {limit})"
            ),
            MpcError::SpaceExceeded {
                machine,
                words,
                limit,
                round,
            } => write!(
                f,
                "machine {machine} stored {words} words in round {round} (limit {limit})"
            ),
            MpcError::UnknownMachine { machine, count } => {
                write!(f, "machine {machine} does not exist ({count} machines)")
            }
            MpcError::RoundLimitExceeded { limit } => {
                write!(f, "round limit {limit} exceeded")
            }
        }
    }
}

impl std::error::Error for MpcError {}

/// A word-addressed message between machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Destination machine.
    pub to: usize,
    /// Payload words.
    pub words: Vec<u64>,
}

/// A machine-resident program for the exact engine: one callback per round.
pub trait MachineProgram {
    /// Executes one round on machine `id` with the messages received this
    /// round; returns outgoing messages. Return an empty set from every
    /// machine to quiesce.
    fn round(&mut self, id: usize, inbox: &[Message]) -> Vec<Message>;

    /// Current storage footprint of machine `id`, in words, for space
    /// enforcement.
    fn storage_words(&self, id: usize) -> usize;
}

/// A low-space MPC cluster for an `n`-node input.
#[derive(Debug, Clone)]
pub struct Cluster {
    cfg: MpcConfig,
    n_input: usize,
    local_space: usize,
    num_machines: usize,
    shared_seed: Seed,
    stats: Stats,
    provenance: ProvenanceLog,
    /// Components whose words each machine currently holds, for the exact
    /// engine's message-level provenance propagation.
    machine_components: Vec<BTreeSet<ComponentId>>,
}

impl Cluster {
    /// Creates a cluster sized for an `n`-node, `total_words`-word input.
    #[must_use]
    pub fn new(cfg: MpcConfig, n: usize, total_words: usize, shared_seed: Seed) -> Self {
        let local_space = cfg.local_space(n);
        let num_machines = cfg.machines_for(n, total_words.max(1));
        Cluster {
            cfg,
            n_input: n,
            local_space,
            num_machines,
            shared_seed,
            stats: Stats::default(),
            provenance: ProvenanceLog::new(),
            machine_components: vec![BTreeSet::new(); num_machines],
        }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &MpcConfig {
        &self.cfg
    }

    /// Local space `S` per machine, in words.
    #[must_use]
    pub fn local_space(&self) -> usize {
        self.local_space
    }

    /// Number of machines `M`.
    #[must_use]
    pub fn num_machines(&self) -> usize {
        self.num_machines
    }

    /// Input size `n` this cluster was provisioned for.
    #[must_use]
    pub fn input_n(&self) -> usize {
        self.n_input
    }

    /// The shared random seed `S` available to all machines.
    #[must_use]
    pub fn shared_seed(&self) -> Seed {
        self.shared_seed
    }

    /// The resource ledger so far.
    #[must_use]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Resets the ledger (e.g. between repetitions).
    pub fn reset_stats(&mut self) {
        self.stats = Stats::default();
    }

    /// The component-provenance log of this execution.
    #[must_use]
    pub fn provenance(&self) -> &ProvenanceLog {
        &self.provenance
    }

    /// Mutable access to the provenance log, for accounted primitives that
    /// record flows and for clearing between repetitions.
    pub fn provenance_mut(&mut self) -> &mut ProvenanceLog {
        &mut self.provenance
    }

    /// Tags `machine` as holding words originating from `component`. Called
    /// when input data is first placed on machines (e.g. by
    /// [`crate::DistributedGraph::distribute`]); the exact engine then
    /// propagates tags along messages.
    pub fn tag_machine(&mut self, machine: usize, component: ComponentId) {
        if let Some(set) = self.machine_components.get_mut(machine) {
            set.insert(component);
        }
    }

    /// The components whose words `machine` currently holds.
    #[must_use]
    pub fn machine_components(&self, machine: usize) -> &BTreeSet<ComponentId> {
        static EMPTY: BTreeSet<ComponentId> = BTreeSet::new();
        self.machine_components.get(machine).unwrap_or(&EMPTY)
    }

    /// Charges `rounds` rounds to the ledger (used by accounted primitives).
    pub fn charge_rounds(&mut self, rounds: usize) {
        self.stats.rounds += rounds;
    }

    /// Charges a communication volume observation.
    pub fn charge_words(&mut self, per_machine_max: usize, total: u64) {
        self.stats.max_round_words = self.stats.max_round_words.max(per_machine_max);
        self.stats.total_words += total;
    }

    /// Records a storage high-water mark and enforces the space cap.
    ///
    /// # Errors
    ///
    /// [`MpcError::SpaceExceeded`] if `words > S`.
    pub fn charge_storage(&mut self, machine: usize, words: usize) -> Result<(), MpcError> {
        self.stats.max_storage_words = self.stats.max_storage_words.max(words);
        if words > self.local_space {
            return Err(MpcError::SpaceExceeded {
                machine,
                words,
                limit: self.local_space,
                round: self.stats.rounds,
            });
        }
        Ok(())
    }

    /// Asserts that a per-machine working set fits in `S` without
    /// attributing it to a specific machine.
    ///
    /// # Errors
    ///
    /// [`MpcError::SpaceExceeded`] if `words > S`.
    pub fn require_fits(&mut self, words: usize) -> Result<(), MpcError> {
        self.charge_storage(usize::MAX, words)
    }

    /// Runs `program` on the exact engine until it quiesces (a round in
    /// which no machine sends) or `max_rounds` is hit.
    ///
    /// Every round, each machine's total sent words and received words are
    /// checked against `S`, as is its reported storage.
    ///
    /// # Errors
    ///
    /// Bandwidth, space, addressing, or round-limit violations.
    pub fn run_program<P: MachineProgram>(
        &mut self,
        program: &mut P,
        initial: Vec<Message>,
        max_rounds: usize,
    ) -> Result<(), MpcError> {
        let mut inboxes: Vec<Vec<Message>> = vec![Vec::new(); self.num_machines];
        for msg in initial {
            if msg.to >= self.num_machines {
                return Err(MpcError::UnknownMachine {
                    machine: msg.to,
                    count: self.num_machines,
                });
            }
            inboxes[msg.to].push(msg);
        }
        for _ in 0..max_rounds {
            let mut outgoing: Vec<Vec<Message>> = vec![Vec::new(); self.num_machines];
            // Component tags travel with messages: a delivery hands the
            // receiver every component tag the sender held.
            let mut incoming_tags: Vec<BTreeSet<ComponentId>> =
                vec![BTreeSet::new(); self.num_machines];
            let mut any_sent = false;
            let mut round_max = 0usize;
            let mut round_total = 0u64;
            let round = self.stats.rounds + 1;
            for (id, inbox_slot) in inboxes.iter_mut().enumerate() {
                let inbox = std::mem::take(inbox_slot);
                let received: usize = inbox.iter().map(|m| m.words.len()).sum();
                if received > self.local_space {
                    return Err(MpcError::BandwidthExceeded {
                        machine: id,
                        words: received,
                        limit: self.local_space,
                        round,
                    });
                }
                let outs = program.round(id, &inbox);
                let sent: usize = outs.iter().map(|m| m.words.len()).sum();
                if sent > self.local_space {
                    return Err(MpcError::BandwidthExceeded {
                        machine: id,
                        words: sent,
                        limit: self.local_space,
                        round,
                    });
                }
                let storage = program.storage_words(id);
                // Stamp the in-flight round (the ledger's counter advances
                // only once the round completes).
                if let Err(err) = self.charge_storage(id, storage) {
                    return Err(match err {
                        MpcError::SpaceExceeded {
                            machine,
                            words,
                            limit,
                            ..
                        } => MpcError::SpaceExceeded {
                            machine,
                            words,
                            limit,
                            round,
                        },
                        other => other,
                    });
                }
                round_max = round_max.max(sent.max(received));
                round_total += sent as u64;
                if !outs.is_empty() {
                    any_sent = true;
                }
                for m in outs {
                    if m.to >= self.num_machines {
                        return Err(MpcError::UnknownMachine {
                            machine: m.to,
                            count: self.num_machines,
                        });
                    }
                    if m.to != id && !m.words.is_empty() {
                        incoming_tags[m.to].extend(self.machine_components[id].iter().copied());
                    }
                    outgoing[m.to].push(m);
                }
            }
            // Merge propagated tags and record cross-component deliveries:
            // a machine already holding component `a` that receives words
            // tagged with component `b ≠ a` has observed a cross-component
            // flow.
            for (to, tags) in incoming_tags.into_iter().enumerate() {
                if tags.is_empty() {
                    continue;
                }
                let fresh: Vec<ComponentId> = tags
                    .iter()
                    .copied()
                    .filter(|c| !self.machine_components[to].contains(c))
                    .collect();
                for &from in &fresh {
                    for &held in self.machine_components[to].iter() {
                        self.provenance
                            .record("exact-engine message", round, from, held);
                    }
                }
                self.machine_components[to].extend(tags);
            }
            self.stats.rounds += 1;
            self.charge_words(round_max, round_total);
            if !any_sent {
                return Ok(());
            }
            inboxes = outgoing;
        }
        Err(MpcError::RoundLimitExceeded { limit: max_rounds })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each leaf machine sends its value toward machine 0 in one hop;
    /// machine 0 accumulates. (Deliberately ignores fan-in trees — small.)
    struct SumToZero {
        values: Vec<u64>,
        acc: u64,
        sent: Vec<bool>,
    }

    impl MachineProgram for SumToZero {
        fn round(&mut self, id: usize, inbox: &[Message]) -> Vec<Message> {
            if id == 0 {
                for m in inbox {
                    self.acc += m.words.iter().sum::<u64>();
                }
                Vec::new()
            } else if !self.sent[id] {
                self.sent[id] = true;
                vec![Message {
                    to: 0,
                    words: vec![self.values[id]],
                }]
            } else {
                Vec::new()
            }
        }
        fn storage_words(&self, _id: usize) -> usize {
            2
        }
    }

    #[test]
    fn exact_engine_moves_words() {
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        // Restrict to 3 machines' worth of traffic for the toy program.
        let m = cluster.num_machines();
        let mut prog = SumToZero {
            values: (0..m as u64).collect(),
            acc: 0,
            sent: vec![false; m],
        };
        cluster.run_program(&mut prog, Vec::new(), 10).unwrap();
        assert_eq!(prog.acc, (0..m as u64).sum::<u64>());
        assert!(cluster.stats().rounds >= 2);
    }

    /// A program that tries to send more than S words at once.
    struct Flooder {
        limit: usize,
        fired: bool,
    }

    impl MachineProgram for Flooder {
        fn round(&mut self, id: usize, _inbox: &[Message]) -> Vec<Message> {
            if id == 1 && !self.fired {
                self.fired = true;
                vec![Message {
                    to: 0,
                    words: vec![0; self.limit + 1],
                }]
            } else {
                Vec::new()
            }
        }
        fn storage_words(&self, _id: usize) -> usize {
            0
        }
    }

    #[test]
    fn bandwidth_cap_enforced() {
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        let s = cluster.local_space();
        let mut prog = Flooder {
            limit: s,
            fired: false,
        };
        let err = cluster.run_program(&mut prog, Vec::new(), 10).unwrap_err();
        assert!(matches!(err, MpcError::BandwidthExceeded { .. }));
    }

    /// A program whose storage exceeds S.
    struct Hoarder;

    impl MachineProgram for Hoarder {
        fn round(&mut self, _id: usize, _inbox: &[Message]) -> Vec<Message> {
            Vec::new()
        }
        fn storage_words(&self, id: usize) -> usize {
            if id == 0 {
                1_000_000
            } else {
                0
            }
        }
    }

    #[test]
    fn storage_cap_enforced() {
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        let err = cluster
            .run_program(&mut Hoarder, Vec::new(), 10)
            .unwrap_err();
        assert!(matches!(err, MpcError::SpaceExceeded { .. }));
    }

    #[test]
    fn stats_absorb_sums_rounds() {
        let mut a = Stats {
            rounds: 3,
            max_round_words: 10,
            max_storage_words: 20,
            total_words: 100,
        };
        let b = Stats {
            rounds: 2,
            max_round_words: 50,
            max_storage_words: 5,
            total_words: 7,
        };
        a.absorb(&b);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.max_round_words, 50);
        assert_eq!(a.max_storage_words, 20);
        assert_eq!(a.total_words, 107);
    }

    #[test]
    fn stats_absorb_default_is_identity() {
        let mut a = Stats {
            rounds: 4,
            max_round_words: 11,
            max_storage_words: 13,
            total_words: 99,
        };
        let before = a.clone();
        a.absorb(&Stats::default());
        assert_eq!(a, before);
    }

    #[test]
    fn stats_absorb_accumulates_across_sub_computations() {
        // Three absorbed sub-computations: rounds and total_words add up,
        // space figures take the running maximum.
        let mut main = Stats::default();
        let subs = [
            Stats {
                rounds: 2,
                max_round_words: 8,
                max_storage_words: 64,
                total_words: 100,
            },
            Stats {
                rounds: 0, // a free (local-only) sub-computation
                max_round_words: 0,
                max_storage_words: 0,
                total_words: 0,
            },
            Stats {
                rounds: 5,
                max_round_words: 32,
                max_storage_words: 16,
                total_words: 250,
            },
        ];
        for s in &subs {
            main.absorb(s);
        }
        assert_eq!(main.rounds, 7);
        assert_eq!(main.max_round_words, 32);
        assert_eq!(main.max_storage_words, 64);
        assert_eq!(main.total_words, 350);
    }

    #[test]
    fn absorbed_cluster_run_matches_own_ledger() {
        // Running a sub-computation on its own cluster and absorbing its
        // ledger must land the same totals as the sub-cluster reports.
        let cfg = MpcConfig::with_phi(0.5);
        let mut sub = Cluster::new(cfg, 100, 100, Seed(0));
        let m = sub.num_machines();
        let mut prog = SumToZero {
            values: (0..m as u64).collect(),
            acc: 0,
            sent: vec![false; m],
        };
        sub.run_program(&mut prog, Vec::new(), 10).unwrap();
        let sub_stats = sub.stats().clone();
        assert!(sub_stats.total_words > 0);

        let mut main = Cluster::new(cfg, 100, 100, Seed(1));
        main.charge_rounds(3);
        main.charge_words(1, 5);
        let mut expect = main.stats().clone();
        expect.absorb(&sub_stats);
        let mut merged = main.stats().clone();
        merged.absorb(&sub_stats);
        assert_eq!(merged, expect);
        assert_eq!(merged.rounds, 3 + sub_stats.rounds);
        assert_eq!(merged.total_words, 5 + sub_stats.total_words);
    }

    /// Sends exactly `words` words from machine 1 to machine 0, once.
    struct ExactSender {
        words: usize,
        fired: bool,
    }

    impl MachineProgram for ExactSender {
        fn round(&mut self, id: usize, _inbox: &[Message]) -> Vec<Message> {
            if id == 1 && !self.fired {
                self.fired = true;
                vec![Message {
                    to: 0,
                    words: vec![7; self.words],
                }]
            } else {
                Vec::new()
            }
        }
        fn storage_words(&self, _id: usize) -> usize {
            0
        }
    }

    #[test]
    fn send_exactly_at_cap_is_legal() {
        // The cap is inclusive: moving exactly S words must succeed and be
        // recorded as the round high-water mark.
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        let s = cluster.local_space();
        let mut prog = ExactSender {
            words: s,
            fired: false,
        };
        cluster.run_program(&mut prog, Vec::new(), 10).unwrap();
        assert_eq!(cluster.stats().max_round_words, s);
        assert_eq!(cluster.stats().total_words, s as u64);
    }

    #[test]
    fn one_word_over_cap_is_rejected() {
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        let s = cluster.local_space();
        let mut prog = ExactSender {
            words: s + 1,
            fired: false,
        };
        let err = cluster.run_program(&mut prog, Vec::new(), 10).unwrap_err();
        match err {
            MpcError::BandwidthExceeded {
                machine,
                words,
                limit,
                round,
            } => {
                assert_eq!(machine, 1);
                assert_eq!(words, s + 1);
                assert_eq!(limit, s);
                assert_eq!(round, 1, "violation must name the in-flight round");
            }
            other => panic!("expected BandwidthExceeded, got {other:?}"),
        }
    }

    /// Sends zero-word messages forever (up to the round limit).
    struct ZeroWordChatter {
        rounds_left: usize,
    }

    impl MachineProgram for ZeroWordChatter {
        fn round(&mut self, id: usize, _inbox: &[Message]) -> Vec<Message> {
            if id == 1 && self.rounds_left > 0 {
                self.rounds_left -= 1;
                vec![Message {
                    to: 0,
                    words: Vec::new(),
                }]
            } else {
                Vec::new()
            }
        }
        fn storage_words(&self, _id: usize) -> usize {
            0
        }
    }

    #[test]
    fn zero_word_rounds_count_rounds_but_no_words() {
        // Empty messages still cost a synchronous round (the barrier is the
        // resource) but move no words.
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        let mut prog = ZeroWordChatter { rounds_left: 3 };
        cluster.run_program(&mut prog, Vec::new(), 10).unwrap();
        assert!(cluster.stats().rounds >= 3);
        assert_eq!(cluster.stats().max_round_words, 0);
        assert_eq!(cluster.stats().total_words, 0);
    }

    #[test]
    fn space_violation_in_engine_names_round_one() {
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        let err = cluster
            .run_program(&mut Hoarder, Vec::new(), 10)
            .unwrap_err();
        match err {
            MpcError::SpaceExceeded { machine, round, .. } => {
                assert_eq!(machine, 0);
                assert_eq!(
                    round, 1,
                    "engine space violations stamp the in-flight round"
                );
            }
            other => panic!("expected SpaceExceeded, got {other:?}"),
        }
    }

    #[test]
    fn violation_display_includes_round() {
        let err = MpcError::BandwidthExceeded {
            machine: 2,
            words: 300,
            limit: 256,
            round: 4,
        };
        let s = err.to_string();
        assert!(s.contains("machine 2"), "{s}");
        assert!(s.contains("round 4"), "{s}");
    }

    #[test]
    fn unknown_machine_rejected() {
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        let err = cluster
            .run_program(
                &mut Hoarder,
                vec![Message {
                    to: 10_000_000,
                    words: vec![],
                }],
                10,
            )
            .unwrap_err();
        assert!(matches!(err, MpcError::UnknownMachine { .. }));
    }
}
