//! The MPC cluster: machines, round execution, and resource accounting.
//!
//! Two execution layers share one [`Stats`] ledger:
//!
//! * the **exact engine** ([`Cluster::run_program`]) moves explicit word
//!   messages between machines, enforcing the per-round send/receive caps —
//!   used by the genuinely distributed primitives (aggregate, broadcast)
//!   and by tests that demonstrate cap enforcement;
//! * the **accounted primitives** (in [`crate::distributed`]) perform graph
//!   operations in-process but *charge* the documented round cost and
//!   *assert* space feasibility, which is the standard way research code
//!   simulates MPC faithfully: the model's observable resources (rounds,
//!   per-machine words) are enforced, local computation is free — as in the
//!   paper, which explicitly allows unbounded local computation.

use crate::config::MpcConfig;
use crate::faults::{Checkpoint, FaultKind, FaultPlan, FaultState, RecoveryEvent, RecoveryPolicy};
use crate::phase::{PhaseTimer, PhaseTimes};
use crate::provenance::{ComponentId, ProvenanceLog, TagTable};
use crate::route::RouteArena;
use crate::supervise::{SupervisionEvent, SupervisorConfig};
use csmpc_graph::rng::{Seed, SplitMix64};
use csmpc_parallel::par_map_mut_into;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Resource ledger for one MPC execution.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Synchronous communication rounds elapsed.
    pub rounds: usize,
    /// Largest number of words any machine sent or received in one round.
    pub max_round_words: usize,
    /// Largest number of words any machine stored at any time.
    pub max_storage_words: usize,
    /// Total words moved across the whole execution.
    pub total_words: u64,
    /// Rounds spent on recovery — checkpoint replays, restore barriers,
    /// backoff idling, quarantine migrations. Also counted in [`rounds`]:
    /// this field attributes overhead, it does not extend the ledger.
    ///
    /// [`rounds`]: Stats::rounds
    pub recovery_rounds: usize,
    /// Words re-shipped by recovery and speculation (also counted in
    /// [`total_words`](Stats::total_words)).
    pub recovery_words: u64,
    /// Machine-rounds of speculative re-execution run by supervisor
    /// spares off the critical path: they cost work (and their shipped
    /// state costs words) but not barrier rounds.
    pub speculative_rounds: usize,
    /// Corrupted envelopes detected (and discarded) by checksum
    /// verification. Detection is total: a tampered payload is never
    /// handed to a machine, so this counter is exactly the number of
    /// corruption faults that struck.
    pub corrupted_detected: u64,
    /// Wall-clock attribution of engine work by phase (route, intake,
    /// step, merge, checkpoint). **Observability only**: excluded from
    /// `Stats` equality, so bit-identity comparisons between executions
    /// (sequential vs parallel, replay determinism) never see host timing
    /// noise.
    pub phase: PhaseTimes,
}

/// Equality covers every *model observable* — rounds, word volumes,
/// space high-water marks, recovery/speculation/corruption counters —
/// and deliberately ignores [`Stats::phase`]: two executions that moved
/// the same words in the same rounds are equal no matter how long the
/// host took to simulate them.
impl PartialEq for Stats {
    fn eq(&self, other: &Self) -> bool {
        self.rounds == other.rounds
            && self.max_round_words == other.max_round_words
            && self.max_storage_words == other.max_storage_words
            && self.total_words == other.total_words
            && self.recovery_rounds == other.recovery_rounds
            && self.recovery_words == other.recovery_words
            && self.speculative_rounds == other.speculative_rounds
            && self.corrupted_detected == other.corrupted_detected
    }
}

impl Eq for Stats {}

impl Stats {
    /// Merges another ledger (e.g. a sub-computation, or one machine's
    /// per-round delta in the parallel engine) into this one, summing
    /// rounds and word totals (saturating at the type maxima) and taking
    /// maxima of space figures.
    ///
    /// `absorb` is associative and commutative (`+` and `max` both are, and
    /// saturation preserves that), so a set of per-machine deltas merges to
    /// the same ledger in any order — the property the parallel engine's
    /// fixed-order merge relies on, verified by a property test.
    pub fn absorb(&mut self, other: &Stats) {
        self.rounds = self.rounds.saturating_add(other.rounds);
        self.max_round_words = self.max_round_words.max(other.max_round_words);
        self.max_storage_words = self.max_storage_words.max(other.max_storage_words);
        self.total_words = self.total_words.saturating_add(other.total_words);
        self.recovery_rounds = self.recovery_rounds.saturating_add(other.recovery_rounds);
        self.recovery_words = self.recovery_words.saturating_add(other.recovery_words);
        self.speculative_rounds = self
            .speculative_rounds
            .saturating_add(other.speculative_rounds);
        self.corrupted_detected = self
            .corrupted_detected
            .saturating_add(other.corrupted_detected);
        self.phase.absorb(&other.phase);
    }

    /// Charges journal-replay work onto a bare ledger — the service-layer
    /// analogue of [`Cluster::charge_recovery`], for recovery paths that
    /// run *before* any cluster exists (replaying a crashed service's
    /// write-ahead log). Same discipline: replay rounds and words land in
    /// both the headline totals and the dedicated recovery columns, so
    /// recovery is never free and never hidden.
    pub fn charge_replay(&mut self, rounds: usize, words: u64) {
        self.rounds = self.rounds.saturating_add(rounds);
        self.total_words = self.total_words.saturating_add(words);
        self.max_round_words = self.max_round_words.max(words as usize);
        self.recovery_rounds = self.recovery_rounds.saturating_add(rounds);
        self.recovery_words = self.recovery_words.saturating_add(words);
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rounds={}, max round words={}, max storage words={}, total words={}, \
             recovery rounds={}, recovery words={}, speculative rounds={}, \
             corrupted detected={}",
            self.rounds,
            self.max_round_words,
            self.max_storage_words,
            self.total_words,
            self.recovery_rounds,
            self.recovery_words,
            self.speculative_rounds,
            self.corrupted_detected
        )
    }
}

/// Error raised when an execution violates the low-space constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpcError {
    /// A machine tried to send or receive more than `S` words in one round.
    BandwidthExceeded {
        /// Machine index.
        machine: usize,
        /// Words attempted.
        words: usize,
        /// The cap `S`.
        limit: usize,
        /// Value of the round counter when the violation occurred.
        round: usize,
    },
    /// A machine's storage exceeded `S` words.
    SpaceExceeded {
        /// Machine index (or a representative).
        machine: usize,
        /// Words stored.
        words: usize,
        /// The cap `S`.
        limit: usize,
        /// Value of the round counter when the violation occurred.
        round: usize,
    },
    /// A message was addressed to a machine that does not exist.
    UnknownMachine {
        /// The bad address.
        machine: usize,
        /// Number of machines.
        count: usize,
    },
    /// An operation needed more rounds than the caller's cap.
    RoundLimitExceeded {
        /// The cap.
        limit: usize,
    },
    /// A machine crashed and the execution could not (or was not allowed
    /// to) recover: fail-fast policy, exhausted retry budget, or a lost
    /// quorum (a majority of machines down in one round).
    MachineFailed {
        /// The crashed machine.
        machine: usize,
        /// Value of the round counter when the crash struck.
        round: usize,
    },
}

impl fmt::Display for MpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpcError::BandwidthExceeded {
                machine,
                words,
                limit,
                round,
            } => write!(
                f,
                "machine {machine} moved {words} words in round {round} (limit {limit})"
            ),
            MpcError::SpaceExceeded {
                machine,
                words,
                limit,
                round,
            } => {
                // `Cluster::require_fits` reports space pressure that is not
                // attributable to one machine, using `usize::MAX` as the
                // sentinel; printing that sentinel as a machine index is
                // nonsense.
                if *machine == usize::MAX {
                    write!(
                        f,
                        "unattributed machine stored {words} words in round {round} (limit {limit})"
                    )
                } else {
                    write!(
                        f,
                        "machine {machine} stored {words} words in round {round} (limit {limit})"
                    )
                }
            }
            MpcError::UnknownMachine { machine, count } => {
                write!(f, "machine {machine} does not exist ({count} machines)")
            }
            MpcError::RoundLimitExceeded { limit } => {
                write!(f, "round limit {limit} exceeded")
            }
            MpcError::MachineFailed { machine, round } => {
                write!(
                    f,
                    "machine {machine} failed in round {round} beyond recovery"
                )
            }
        }
    }
}

impl std::error::Error for MpcError {}

/// A word-addressed message between machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Destination machine.
    pub to: usize,
    /// Payload words.
    pub words: Vec<u64>,
}

/// FNV-1a over the destination, the payload length, and a stream of
/// payload words — the transport checksum sealed into an [`Envelope`].
/// Streaming lets callers checksum a *hypothetical* payload (e.g. one
/// tampered word substituted in flight) without materializing it.
fn transport_checksum_stream(to: usize, len: usize, words: impl Iterator<Item = u64>) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mix = |h: u64, x: u64| -> u64 {
        let mut h = h;
        for b in x.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
        h
    };
    h = mix(h, to as u64);
    h = mix(h, len as u64);
    for w in words {
        h = mix(h, w);
    }
    h
}

/// FNV-1a transport checksum of a concrete payload slice.
fn transport_checksum(to: usize, words: &[u64]) -> u64 {
    transport_checksum_stream(to, words.len(), words.iter().copied())
}

/// A checksummed transport envelope around a [`Message`].
///
/// The exact engine seals every payload it exposes to the corruption
/// fault class: an adversarial in-flight bit-flip makes the envelope fail
/// [`Envelope::verify`], so the receiver discards it, the transport
/// retransmits the original (both transmissions charged), and
/// [`Stats::corrupted_detected`] counts the strike. A tampered payload is
/// *never* handed to a machine — corruption is detected, not silently
/// applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    message: Message,
    checksum: u64,
}

impl Envelope {
    /// Seals `message` with its transport checksum.
    #[must_use]
    pub fn seal(message: Message) -> Self {
        let checksum = transport_checksum(message.to, &message.words);
        Envelope { message, checksum }
    }

    /// `true` when the payload still matches the sealed checksum.
    #[must_use]
    pub fn verify(&self) -> bool {
        transport_checksum(self.message.to, &self.message.words) == self.checksum
    }

    /// The enclosed message (payload as currently carried, tampered or
    /// not — callers must [`Envelope::verify`] before trusting it).
    #[must_use]
    pub fn message(&self) -> &Message {
        &self.message
    }

    /// The adversary's move: XORs `mask` into payload word `word` without
    /// re-sealing. A nonzero mask on a valid index makes
    /// [`Envelope::verify`] fail (FNV-1a mixes every payload byte).
    #[must_use]
    pub fn tampered(mut self, word: usize, mask: u64) -> Self {
        if let Some(w) = self.message.words.get_mut(word) {
            *w ^= mask;
        }
        self
    }

    /// The sealed transport checksum (FNV-1a over destination, length,
    /// and payload words).
    #[must_use]
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// The checksum [`Envelope::seal`] would stamp on `message`, computed
    /// on the borrowed payload — no clone, no envelope allocation. The
    /// engine's clean path uses this for zero-copy verification.
    #[must_use]
    pub fn checksum_of(message: &Message) -> u64 {
        transport_checksum(message.to, &message.words)
    }

    /// The checksum a receiver would recompute after the adversary XORs
    /// `mask` into payload word `word` in flight — again on the borrowed
    /// payload. Out-of-range `word` leaves the payload untouched (the
    /// same no-op as [`Envelope::tampered`]).
    #[must_use]
    pub fn tampered_checksum_of(message: &Message, word: usize, mask: u64) -> u64 {
        transport_checksum_stream(
            message.to,
            message.words.len(),
            message
                .words
                .iter()
                .enumerate()
                .map(|(i, &w)| if i == word { w ^ mask } else { w }),
        )
    }

    /// Unwraps the message if the checksum verifies; `None` for a
    /// detected corruption.
    #[must_use]
    pub fn open(self) -> Option<Message> {
        if self.verify() {
            Some(self.message)
        } else {
            None
        }
    }
}

/// One machine's resident program for the exact engine: one callback per
/// round.
///
/// The engine drives a slice of these — one shard per machine, indexed by
/// machine id — so that a round can step all machines concurrently
/// ([`crate::MpcConfig::parallelism`]). A shard owns only its machine's
/// state: `round` sees its own inbox and returns its own outgoing
/// messages, and must not share mutable state with other shards (the
/// `Send` bound plus `&mut self` access enforce exclusivity).
pub trait MachineProgram: Send {
    /// Executes one round on machine `id` with the messages received this
    /// round; returns outgoing messages. Return an empty set from every
    /// machine to quiesce.
    fn round(&mut self, id: usize, inbox: &[Message]) -> Vec<Message>;

    /// Current storage footprint of this machine, in words, for space
    /// enforcement.
    fn storage_words(&self) -> usize;

    /// Serializes this machine's resident state into words for a recovery
    /// [`Checkpoint`]. The default (empty) is correct only for programs
    /// whose `round` logic is insensitive to replay; programs that
    /// accumulate state should capture it here so restart-from-checkpoint
    /// recovery re-executes from a consistent snapshot.
    fn snapshot(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Restores state previously captured by [`MachineProgram::snapshot`].
    fn restore(&mut self, snapshot: &[u64]) {
        let _ = snapshot;
    }
}

/// A low-space MPC cluster for an `n`-node input.
#[derive(Debug, Clone)]
pub struct Cluster {
    cfg: MpcConfig,
    n_input: usize,
    local_space: usize,
    num_machines: usize,
    shared_seed: Seed,
    stats: Stats,
    provenance: ProvenanceLog,
    /// Components whose words each machine currently holds, for the exact
    /// engine's message-level provenance propagation.
    machine_components: TagTable,
    /// Armed fault plan and recovery policy for the accounted layer, if any.
    faults: Option<FaultState>,
    /// Completed crash recoveries, in order.
    recovery_log: Vec<RecoveryEvent>,
    /// Armed supervision policy (straggler speculation + quarantine), if
    /// any. See [`Cluster::supervise`].
    supervisor: Option<SupervisorConfig>,
    /// Supervision actions taken so far, in order.
    supervision_log: Vec<SupervisionEvent>,
    /// Per-machine count of fault events survived (crashes, speculated
    /// straggles) — the quarantine trigger.
    failure_counts: Vec<usize>,
    /// Machines decommissioned by the supervisor; their fault events no
    /// longer fire and their components are considered tainted.
    quarantined: BTreeSet<usize>,
    /// Machines struck by any fired fault event this execution, for the
    /// degraded-output taint computation.
    faulted: BTreeSet<usize>,
    /// Armed job-level deadline: total ledger rounds the execution may
    /// consume before the barrier refuses to advance. `None` = unlimited.
    /// See [`Cluster::arm_job_deadline`].
    job_deadline: Option<usize>,
    /// Per-execution marker: `true` once the armed job deadline has been
    /// tripped. Cleared by [`Cluster::reset_for_repetition`] (the armed
    /// deadline itself stays, like the fault plan).
    deadline_tripped: bool,
}

impl Cluster {
    /// Creates a cluster sized for an `n`-node, `total_words`-word input.
    #[must_use]
    pub fn new(cfg: MpcConfig, n: usize, total_words: usize, shared_seed: Seed) -> Self {
        let local_space = cfg.local_space(n);
        let num_machines = cfg.machines_for(n, total_words.max(1));
        Cluster {
            cfg,
            n_input: n,
            local_space,
            num_machines,
            shared_seed,
            stats: Stats::default(),
            provenance: ProvenanceLog::new(),
            machine_components: TagTable::new(num_machines),
            faults: None,
            recovery_log: Vec::new(),
            supervisor: None,
            supervision_log: Vec::new(),
            failure_counts: vec![0; num_machines],
            quarantined: BTreeSet::new(),
            faulted: BTreeSet::new(),
            job_deadline: None,
            deadline_tripped: false,
        }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &MpcConfig {
        &self.cfg
    }

    /// Local space `S` per machine, in words.
    #[must_use]
    pub fn local_space(&self) -> usize {
        self.local_space
    }

    /// Number of machines `M`.
    #[must_use]
    pub fn num_machines(&self) -> usize {
        self.num_machines
    }

    /// Input size `n` this cluster was provisioned for.
    #[must_use]
    pub fn input_n(&self) -> usize {
        self.n_input
    }

    /// The shared random seed `S` available to all machines.
    #[must_use]
    pub fn shared_seed(&self) -> Seed {
        self.shared_seed
    }

    /// The resource ledger so far.
    #[must_use]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Resets the ledger (e.g. between repetitions).
    ///
    /// Note this clears *only* the [`Stats`] ledger: provenance flows,
    /// machine component tags, and the recovery log survive. Repeated
    /// independent runs on one cluster should use
    /// [`Cluster::reset_for_repetition`] instead, or stale tags from trial
    /// `t` leak into trial `t + 1`.
    pub fn reset_stats(&mut self) {
        self.stats = Stats::default();
    }

    /// Resets everything one repetition of an experiment observes: the
    /// [`Stats`] ledger, the provenance log, the per-machine component
    /// tags, the recovery log, the supervision log and its
    /// failure/quarantine/taint bookkeeping, and any armed fault plan's
    /// fired/retry/partition cursors. After this, the cluster behaves as
    /// freshly built for the next trial (the supervision *policy* itself
    /// stays armed, like the fault plan does).
    pub fn reset_for_repetition(&mut self) {
        self.stats = Stats::default();
        self.provenance.clear();
        self.machine_components.clear();
        self.recovery_log.clear();
        self.supervision_log.clear();
        self.failure_counts.fill(0);
        self.quarantined.clear();
        self.faulted.clear();
        // Deadline bookkeeping is per-execution state; the armed deadline
        // itself (the policy) survives, exactly like the fault plan.
        self.deadline_tripped = false;
        if let Some(fs) = &mut self.faults {
            *fs = FaultState::new(fs.plan.clone(), fs.policy);
        }
    }

    /// Re-seeds the shared randomness (e.g. one derived stream per trial of
    /// a repeated experiment on a reused cluster).
    pub fn set_shared_seed(&mut self, seed: Seed) {
        self.shared_seed = seed;
    }

    /// Arms a fault plan for the *accounted* layer: subsequent
    /// [`Cluster::advance_rounds`] calls (and therefore every accounted
    /// primitive) observe the plan's crashes and stragglers under `policy`.
    /// The exact engine takes its plan per call via
    /// [`Cluster::run_program_with_faults`] instead.
    pub fn arm_faults(&mut self, plan: FaultPlan, policy: RecoveryPolicy) {
        self.faults = Some(FaultState::new(plan, policy));
    }

    /// Removes any armed fault plan.
    pub fn disarm_faults(&mut self) {
        self.faults = None;
    }

    /// Arms a [`SupervisorConfig`]: stragglers past the deadline budget are
    /// speculatively re-executed by spares (charged, off the critical
    /// path), and machines whose fault count exceeds the failure threshold
    /// are quarantined instead of consuming retries.
    pub fn supervise(&mut self, cfg: SupervisorConfig) {
        self.supervisor = Some(cfg);
    }

    /// Removes any armed supervision policy.
    pub fn unsupervise(&mut self) {
        self.supervisor = None;
    }

    /// Arms a job-level deadline: once the ledger's round counter exceeds
    /// `rounds`, the synchronous barrier refuses to advance and the
    /// execution fails with [`MpcError::RoundLimitExceeded`]. This is the
    /// per-job deadline hook of the service layer, enforced at the same
    /// barrier where the supervision machinery (straggler deadlines,
    /// backoff, quarantine) already runs — stalls, backoff idling, and
    /// partition waits all consume the deadline budget, so a job cannot
    /// hide overruns in recovery overhead.
    pub fn arm_job_deadline(&mut self, rounds: usize) {
        self.job_deadline = Some(rounds);
        self.deadline_tripped = false;
    }

    /// Removes any armed job deadline (and its tripped marker).
    pub fn disarm_job_deadline(&mut self) {
        self.job_deadline = None;
        self.deadline_tripped = false;
    }

    /// The armed job deadline (total ledger rounds), if any.
    #[must_use]
    pub fn job_deadline(&self) -> Option<usize> {
        self.job_deadline
    }

    /// `true` once this execution has tripped the armed job deadline.
    /// Per-execution bookkeeping: cleared by
    /// [`Cluster::reset_for_repetition`].
    #[must_use]
    pub fn deadline_tripped(&self) -> bool {
        self.deadline_tripped
    }

    /// Fails the execution when the ledger has advanced past the armed
    /// job deadline. Called at every barrier advance, after fault and
    /// supervision processing, so recovery stalls count against the
    /// budget too.
    fn check_job_deadline(&mut self) -> Result<(), MpcError> {
        if let Some(limit) = self.job_deadline {
            if self.stats.rounds > limit {
                self.deadline_tripped = true;
                return Err(MpcError::RoundLimitExceeded { limit });
            }
        }
        Ok(())
    }

    /// The supervision policy in force, if any.
    #[must_use]
    pub fn supervisor(&self) -> Option<&SupervisorConfig> {
        self.supervisor.as_ref()
    }

    /// Supervision actions taken so far, in order.
    #[must_use]
    pub fn supervision_log(&self) -> &[SupervisionEvent] {
        &self.supervision_log
    }

    /// Machines decommissioned by the supervisor, ascending.
    #[must_use]
    pub fn quarantined_machines(&self) -> &BTreeSet<usize> {
        &self.quarantined
    }

    /// Machines struck by any fired fault event this execution (crashes
    /// and straggles, whether or not they were recovered), ascending.
    /// Quarantined machines are included. This is the machine-level input
    /// to the degraded-output taint computation.
    #[must_use]
    pub fn faulted_machines(&self) -> &BTreeSet<usize> {
        &self.faulted
    }

    /// Crash recoveries completed so far, in order.
    #[must_use]
    pub fn recovery_log(&self) -> &[RecoveryEvent] {
        &self.recovery_log
    }

    /// The component-provenance log of this execution.
    #[must_use]
    pub fn provenance(&self) -> &ProvenanceLog {
        &self.provenance
    }

    /// Mutable access to the provenance log, for accounted primitives that
    /// record flows and for clearing between repetitions.
    pub fn provenance_mut(&mut self) -> &mut ProvenanceLog {
        &mut self.provenance
    }

    /// Tags `machine` as holding words originating from `component`. Called
    /// when input data is first placed on machines (e.g. by
    /// [`crate::DistributedGraph::distribute`]); the exact engine then
    /// propagates tags along messages.
    pub fn tag_machine(&mut self, machine: usize, component: ComponentId) {
        self.machine_components.insert(machine, component);
    }

    /// Replaces `machine`'s component tags with `tags` (ascending,
    /// distinct) in one bulk write — the distribution-time seeding path,
    /// equivalent to [`Cluster::tag_machine`] per element on a machine
    /// with no prior tags but without the per-element set maintenance.
    pub fn seed_machine_tags(&mut self, machine: usize, tags: &[ComponentId]) {
        self.machine_components.set(machine, tags);
    }

    /// Bulk tag seeding from per-machine component bitmasks (bit `i` ⇒
    /// component `i`); machines with an empty mask are untouched. One
    /// spine append per machine — the distribution sweep's fast path.
    pub fn seed_machine_tag_masks(&mut self, masks: &[u64]) {
        self.machine_components.seed_from_masks(masks);
    }

    /// Bulk tag seeding for a connected input: every yielded machine's
    /// tag run becomes exactly `[component 0]`.
    pub fn seed_machines_component_zero(&mut self, machines: impl Iterator<Item = usize>) {
        self.machine_components.seed_component_zero(machines);
    }

    /// The components whose words `machine` currently holds, ascending.
    #[must_use]
    pub fn machine_components(&self, machine: usize) -> &[ComponentId] {
        self.machine_components.machine(machine)
    }

    /// Charges `rounds` rounds to the ledger (used by accounted primitives).
    /// Saturates at `usize::MAX` rather than wrapping.
    pub fn charge_rounds(&mut self, rounds: usize) {
        self.stats.rounds = self.stats.rounds.saturating_add(rounds);
    }

    /// Absorbs a wall-clock phase attribution recorded by an accounted
    /// primitive. Observability only — [`Stats::phase`] is excluded from
    /// `Stats` equality and never feeds a model observable.
    pub fn record_phase(&mut self, delta: &PhaseTimes) {
        self.stats.phase.absorb(delta);
    }

    /// Advances the round counter one synchronous barrier at a time,
    /// letting any armed [`FaultPlan`] strike. This is what accounted
    /// primitives call instead of [`Cluster::charge_rounds`]: with no plan
    /// armed it is exactly `charge_rounds(rounds)`; with a plan armed,
    /// stragglers stall the barrier (extra ledger rounds), and crashes
    /// either fail the computation ([`RecoveryPolicy::FailFast`]) or
    /// trigger a charged restart-from-checkpoint recovery.
    ///
    /// # Errors
    ///
    /// [`MpcError::MachineFailed`] if a crash strikes under fail-fast or
    /// after the retry budget is exhausted;
    /// [`MpcError::RoundLimitExceeded`] once an armed job deadline
    /// ([`Cluster::arm_job_deadline`]) is tripped.
    pub fn advance_rounds(&mut self, rounds: usize) -> Result<(), MpcError> {
        if self.faults.is_none() {
            self.stats.rounds = self.stats.rounds.saturating_add(rounds);
            return self.check_job_deadline();
        }
        for _ in 0..rounds {
            self.stats.rounds = self.stats.rounds.saturating_add(1);
            self.process_accounted_faults()?;
            self.check_job_deadline()?;
        }
        Ok(())
    }

    /// Fires every armed fault event whose round has been reached. Events
    /// fire exactly once per execution (or per repetition after
    /// [`Cluster::reset_for_repetition`]).
    fn process_accounted_faults(&mut self) -> Result<(), MpcError> {
        let Some(mut fs) = self.faults.take() else {
            return Ok(());
        };
        let result = self.drive_accounted_faults(&mut fs);
        self.faults = Some(fs);
        result
    }

    fn drive_accounted_faults(&mut self, fs: &mut FaultState) -> Result<(), MpcError> {
        // A straggler extends the ledger, which can pull later events (and
        // partitions) into range, so re-scan until nothing fires.
        loop {
            let now = self.stats.rounds;
            // Each partition window charges its barrier stall exactly once:
            // while the cut is up, boundary-crossing traffic is held and
            // the synchronous computation waits out the window.
            if let Some(i) = (0..fs.plan.partitions().len()).find(|&i| {
                let p = &fs.plan.partitions()[i];
                !fs.partitions_charged[i] && p.rounds > 0 && p.start <= now
            }) {
                fs.partitions_charged[i] = true;
                let stall = fs.plan.partitions()[i].rounds;
                self.stats.rounds = self.stats.rounds.saturating_add(stall);
                continue;
            }
            let next = fs
                .plan
                .events()
                .iter()
                .enumerate()
                .find(|(i, ev)| !fs.fired[*i] && ev.round <= now);
            let Some((idx, ev)) = next else {
                return Ok(());
            };
            let ev = *ev;
            fs.fired[idx] = true;
            if self.quarantined.contains(&ev.machine) {
                // A decommissioned machine's spare already carries its
                // state; further scheduled faults on it are moot.
                continue;
            }
            self.faulted.insert(ev.machine);
            match ev.kind {
                FaultKind::Straggle { rounds } => {
                    let stall = self.speculate_straggler(ev.machine, rounds);
                    // The synchronous barrier waits for the slowest
                    // machine: everyone pays the (possibly clamped) stall.
                    self.stats.rounds = self.stats.rounds.saturating_add(stall);
                }
                FaultKind::Crash => {
                    self.failure_counts[ev.machine] += 1;
                    if self.should_quarantine(ev.machine) {
                        self.quarantine_machine(ev.machine);
                        continue;
                    }
                    match fs.policy {
                        RecoveryPolicy::FailFast => {
                            return Err(MpcError::MachineFailed {
                                machine: ev.machine,
                                round: self.stats.rounds,
                            });
                        }
                        RecoveryPolicy::RestartFromCheckpoint { max_retries }
                        | RecoveryPolicy::RestartWithBackoff { max_retries, .. } => {
                            fs.retries_used += 1;
                            if fs.retries_used > max_retries {
                                return Err(MpcError::MachineFailed {
                                    machine: ev.machine,
                                    round: self.stats.rounds,
                                });
                            }
                            self.charge_backoff(ev.machine, fs.policy, fs.retries_used);
                            self.recover_accounted_crash(ev.machine);
                        }
                    }
                }
            }
        }
    }

    /// `true` when `machine`'s accumulated failure count crosses the armed
    /// supervisor's quarantine threshold.
    fn should_quarantine(&self, machine: usize) -> bool {
        self.supervisor.as_ref().is_some_and(|sup| {
            !self.quarantined.contains(&machine)
                && self.failure_counts[machine] > sup.failure_threshold
        })
    }

    /// Decommissions `machine`: its salvageable state migrates to a spare
    /// (one synchronous round plus the re-shipped words, charged — even
    /// giving up on a machine is never free), its components are marked
    /// tainted for the degraded-output contract, and subsequent fault
    /// events on it no longer fire or consume retries.
    fn quarantine_machine(&mut self, machine: usize) {
        let migrated = self.stats.max_storage_words.max(1);
        self.charge_recovery(1, migrated);
        self.quarantined.insert(machine);
        self.faulted.insert(machine);
        let components: Vec<ComponentId> = self.machine_components(machine).to_vec();
        self.supervision_log.push(SupervisionEvent::Quarantine {
            machine,
            round: self.stats.rounds,
            components,
        });
    }

    /// Applies the supervisor's straggler deadline to a `stall`-round
    /// stall on `machine`, returning the barrier rounds actually paid.
    /// With no supervisor (or a stall within the deadline) that is the
    /// full stall. Past the deadline, a spare speculatively re-executes
    /// the machine from its last snapshot: the barrier only waits out the
    /// deadline budget, while the spare's duplicated work is charged as
    /// [`Stats::speculative_rounds`] and its re-shipped state as words —
    /// speculation trades rounds for work, it is not free.
    fn speculate_straggler(&mut self, machine: usize, stall: usize) -> usize {
        let Some(sup) = self.supervisor else {
            return stall;
        };
        if stall <= sup.deadline_rounds {
            return stall;
        }
        let speculated = stall - sup.deadline_rounds;
        let reshipped = self.stats.max_storage_words.max(1);
        self.charge_words(reshipped, reshipped as u64);
        self.stats.recovery_words = self.stats.recovery_words.saturating_add(reshipped as u64);
        self.stats.speculative_rounds = self.stats.speculative_rounds.saturating_add(speculated);
        self.failure_counts[machine] += 1;
        self.supervision_log.push(SupervisionEvent::Speculation {
            machine,
            round: self.stats.rounds,
            stall_avoided: speculated,
            reshipped_words: reshipped,
        });
        sup.deadline_rounds
    }

    /// Charges the exponential-backoff idle rounds owed before retry
    /// number `retry` under `policy` (zero for non-backoff policies). The
    /// barrier idles, so the rounds land on the ledger and are attributed
    /// to recovery.
    fn charge_backoff(&mut self, machine: usize, policy: RecoveryPolicy, retry: usize) {
        let stall = policy.backoff_rounds(retry);
        if stall == 0 {
            return;
        }
        self.charge_rounds(stall);
        self.stats.recovery_rounds = self.stats.recovery_rounds.saturating_add(stall);
        self.supervision_log.push(SupervisionEvent::Backoff {
            machine,
            round: self.stats.rounds,
            retry,
            stall_rounds: stall,
        });
    }

    /// Books one restart-from-checkpoint recovery on the accounted layer:
    /// the rounds since the last conceptual checkpoint are re-executed and
    /// the crashed machine's state is re-shipped, all charged to the
    /// ledger. Recovery is never free — at least one round and one word.
    fn recover_accounted_crash(&mut self, machine: usize) {
        let interval = self.cfg.checkpoint_interval.max(1);
        let crash_round = self.stats.rounds;
        let checkpoint_round = (crash_round.saturating_sub(1) / interval) * interval;
        let replayed = (crash_round - checkpoint_round).max(1);
        let reshipped = self.stats.max_storage_words.max(1);
        self.charge_recovery(replayed, reshipped);
        self.recovery_log.push(RecoveryEvent {
            machine,
            crash_round,
            checkpoint_round,
            replayed_rounds: replayed,
            reshipped_words: reshipped,
        });
    }

    /// Charges `rounds` recovery rounds and `words` re-shipped recovery
    /// words to the ledger, attributing both to recovery overhead
    /// ([`Stats::recovery_rounds`]/[`Stats::recovery_words`]). Used by
    /// every recovery-class path — checkpoint replay, quarantine
    /// migration, degraded-mode salvage — so the overhead of surviving
    /// faults is always visible in one place.
    pub fn charge_recovery(&mut self, rounds: usize, words: usize) {
        self.charge_rounds(rounds);
        self.charge_words(words, words as u64);
        self.stats.recovery_rounds = self.stats.recovery_rounds.saturating_add(rounds);
        self.stats.recovery_words = self.stats.recovery_words.saturating_add(words as u64);
    }

    /// Charges a communication volume observation. The running total
    /// saturates at `u64::MAX` rather than wrapping — large-`n` parallel
    /// sweeps can push the cumulative volume far beyond test-scale values.
    pub fn charge_words(&mut self, per_machine_max: usize, total: u64) {
        self.stats.max_round_words = self.stats.max_round_words.max(per_machine_max);
        self.stats.total_words = self.stats.total_words.saturating_add(total);
    }

    /// Records a storage high-water mark and enforces the space cap.
    ///
    /// # Errors
    ///
    /// [`MpcError::SpaceExceeded`] if `words > S`.
    pub fn charge_storage(&mut self, machine: usize, words: usize) -> Result<(), MpcError> {
        self.stats.max_storage_words = self.stats.max_storage_words.max(words);
        if words > self.local_space {
            return Err(MpcError::SpaceExceeded {
                machine,
                words,
                limit: self.local_space,
                round: self.stats.rounds,
            });
        }
        Ok(())
    }

    /// Asserts that a per-machine working set fits in `S` without
    /// attributing it to a specific machine.
    ///
    /// # Errors
    ///
    /// [`MpcError::SpaceExceeded`] if `words > S`.
    pub fn require_fits(&mut self, words: usize) -> Result<(), MpcError> {
        self.charge_storage(usize::MAX, words)
    }

    /// Runs a program — one [`MachineProgram`] shard per machine, indexed
    /// by machine id — on the exact engine until it quiesces (a round in
    /// which no machine sends) or `max_rounds` is hit.
    ///
    /// Every round, each machine's total sent words and received words are
    /// checked against `S`, as is its reported storage. Under
    /// [`crate::MpcConfig::parallelism`]`== ParallelismMode::Parallel` the
    /// machines of a round step concurrently; results are bit-identical to
    /// sequential execution either way.
    ///
    /// # Panics
    ///
    /// If `machines.len() != self.num_machines()`.
    ///
    /// # Errors
    ///
    /// Bandwidth, space, addressing, or round-limit violations.
    pub fn run_program<P: MachineProgram>(
        &mut self,
        machines: &mut [P],
        initial: Vec<Message>,
        max_rounds: usize,
    ) -> Result<(), MpcError> {
        let quiet = FaultPlan::quiet(self.shared_seed);
        self.run_program_with_faults(
            machines,
            initial,
            max_rounds,
            &quiet,
            RecoveryPolicy::FailFast,
        )
    }

    /// Runs `program` on the exact engine under a [`FaultPlan`].
    ///
    /// Per execution round (1-indexed), in order: pending transport
    /// retransmissions are delivered (and re-charged); the plan's events at
    /// this round strike — stragglers stall their machine's participation
    /// while its inbox buffers, crashes either fail the run
    /// ([`RecoveryPolicy::FailFast`], exhausted retries, or a majority of
    /// machines down at once = lost quorum) or restore the most recent
    /// round-boundary [`Checkpoint`] and deterministically re-execute the
    /// lost rounds, charging the replay and the re-shipped state to the
    /// ledger; then surviving machines run one normal round, with each
    /// delivered message subject to the plan's seeded drop (retransmitted
    /// one round later, charged twice) and duplication (delivered once,
    /// charged twice) coins.
    ///
    /// Under [`RecoveryPolicy::RestartFromCheckpoint`] the cluster
    /// snapshots inboxes, program state ([`MachineProgram::snapshot`]),
    /// component tags, the provenance log, the transport RNG position, and
    /// in-flight straggler/retransmission state every
    /// [`MpcConfig::checkpoint_interval`] rounds. Fault events fire exactly
    /// once per execution, including across recovery replays.
    ///
    /// Everything is deterministic in (`machines`, `initial`, the plan, the
    /// policy): replaying the same call yields the same result, the same
    /// [`Stats`] ledger, and the same provenance log — in **either**
    /// [`crate::MpcConfig::parallelism`] mode. The round body is one shared
    /// code path: inbox intake and cap checks happen in machine-index order,
    /// the per-machine step is a pure map over shards (sequential or
    /// chunked across worker threads), and the merge — per-machine
    /// [`Stats`] deltas absorbed associatively, component-tag propagation,
    /// transport drop/duplication coins, and outbox bucketing — runs
    /// sequentially in fixed machine-index order, so the transport RNG
    /// consumes exactly the same coin stream either way.
    ///
    /// # Panics
    ///
    /// If `machines.len() != self.num_machines()`.
    ///
    /// # Errors
    ///
    /// Bandwidth, space, addressing, or round-limit violations, plus
    /// [`MpcError::MachineFailed`] for unrecoverable crashes.
    pub fn run_program_with_faults<P: MachineProgram>(
        &mut self,
        machines: &mut [P],
        initial: Vec<Message>,
        max_rounds: usize,
        plan: &FaultPlan,
        policy: RecoveryPolicy,
    ) -> Result<(), MpcError> {
        let m = self.num_machines;
        assert_eq!(
            machines.len(),
            m,
            "the engine takes one program shard per machine"
        );
        let mode = self.cfg.parallelism;
        // Flat routing state. Messages in flight live in one arrival-ordered
        // staging buffer (`incoming`); each round the counting-sort fabric
        // ([`RouteArena::scatter`]) groups them by destination into the
        // arena's routing buffer, and every machine reads its inbox as a
        // contiguous `fabric.ranges[id]` slice of `fabric.buf`. Counting
        // sort is stable per destination by construction, so per-destination
        // arrival order — the only order a machine can observe — is exactly
        // what the old nested per-machine inboxes delivered. The staging
        // buffer and the arena double-buffer each other across rounds:
        // steady-state rounds reuse their spines and allocate nothing for
        // message plumbing.
        let mut incoming: Vec<Message> = Vec::with_capacity(initial.len());
        for msg in initial {
            if msg.to >= m {
                return Err(MpcError::UnknownMachine {
                    machine: msg.to,
                    count: m,
                });
            }
            incoming.push(msg);
        }
        let mut fabric = RouteArena::new(m);
        // Arena buffers reused across rounds: per-machine step results and
        // in-flight component tags. Like the routing spines above, these
        // reach steady-state capacity after a warm-up round and allocate
        // nothing afterwards at fixed topology.
        let mut stepped: Vec<Option<(Vec<Message>, usize)>> = Vec::new();
        let mut incoming_tags: Vec<Vec<ComponentId>> = vec![Vec::new(); m];
        // Transport coins (drop/duplication) come from the plan's seed, so
        // the same plan replays the same per-message faults.
        let mut rng = SplitMix64::new(plan.seed().derive(0xfa17));
        // Exec round (inclusive) through which each machine stalls.
        let mut straggle_until: Vec<usize> = vec![0; m];
        let mut pending_retransmit: Vec<Message> = Vec::new();
        // Messages held by an active partition, with the round at which
        // each becomes deliverable again.
        let mut partition_held: Vec<(usize, Message)> = Vec::new();
        let mut fired = vec![false; plan.events().len()];
        let mut retries_used = 0usize;
        let interval = self.cfg.checkpoint_interval.max(1);
        let use_checkpoints = matches!(
            policy,
            RecoveryPolicy::RestartFromCheckpoint { .. }
                | RecoveryPolicy::RestartWithBackoff { .. }
        );
        let mut checkpoint: Option<Checkpoint> = None;

        // Completed execution rounds. Distinct from the ledger's round
        // counter: a recovery rolls `exec` back to the checkpoint while the
        // ledger keeps growing (replayed rounds are paid for twice).
        let mut exec = 0usize;
        while exec < max_rounds {
            // An armed job deadline bounds the *ledger* rounds, which a
            // recovery replay keeps growing even as `exec` rolls back — so
            // a crash-looping execution cannot outrun its deadline.
            self.check_job_deadline()?;
            if use_checkpoints && exec.is_multiple_of(interval) {
                let timer = PhaseTimer::start();
                let cp = self.capture_checkpoint(
                    exec,
                    &incoming,
                    machines,
                    &rng,
                    &straggle_until,
                    &pending_retransmit,
                    &partition_held,
                    checkpoint.as_ref(),
                );
                checkpoint = Some(cp);
                self.stats.phase.checkpoint_ns = self
                    .stats
                    .phase
                    .checkpoint_ns
                    .saturating_add(timer.elapsed_ns());
            }
            let round_now = exec + 1;

            // Fault events scheduled for this execution round strike before
            // the round body runs. Each fires at most once per execution.
            // Events on quarantined machines are moot — a spare already
            // carries their state.
            let mut crashed: Vec<usize> = Vec::new();
            for (i, ev) in plan.events().iter().enumerate() {
                if fired[i] || ev.round != round_now {
                    continue;
                }
                fired[i] = true;
                if self.quarantined.contains(&ev.machine) {
                    continue;
                }
                self.faulted.insert(ev.machine);
                match ev.kind {
                    FaultKind::Straggle { rounds } => {
                        // A stall past the supervisor's deadline budget is
                        // clamped: a spare speculatively re-executes the
                        // machine from its snapshot, off the critical path.
                        // The spare's duplicated work and re-shipped state
                        // are charged below — speculation is never free.
                        let mut stall = rounds;
                        if let Some(sup) = self.supervisor {
                            if stall > sup.deadline_rounds {
                                let speculated = stall - sup.deadline_rounds;
                                stall = sup.deadline_rounds;
                                let reshipped = machines
                                    .get(ev.machine)
                                    .map_or(0, |p| p.snapshot().len())
                                    .max(1);
                                self.charge_words(reshipped, reshipped as u64);
                                self.stats.recovery_words =
                                    self.stats.recovery_words.saturating_add(reshipped as u64);
                                self.stats.speculative_rounds =
                                    self.stats.speculative_rounds.saturating_add(speculated);
                                self.failure_counts[ev.machine] += 1;
                                self.supervision_log.push(SupervisionEvent::Speculation {
                                    machine: ev.machine,
                                    round: round_now,
                                    stall_avoided: speculated,
                                    reshipped_words: reshipped,
                                });
                            }
                        }
                        if stall > 0 {
                            let until = round_now + stall - 1;
                            if let Some(slot) = straggle_until.get_mut(ev.machine) {
                                *slot = (*slot).max(until);
                            }
                        }
                    }
                    FaultKind::Crash => crashed.push(ev.machine),
                }
            }
            if !crashed.is_empty() {
                if crashed.len() * 2 > m {
                    // Lost quorum: a majority of machines went down in one
                    // round; no checkpoint protocol survives that.
                    return Err(MpcError::MachineFailed {
                        machine: crashed[0],
                        round: self.stats.rounds,
                    });
                }
                match policy {
                    RecoveryPolicy::FailFast => {
                        return Err(MpcError::MachineFailed {
                            machine: crashed[0],
                            round: self.stats.rounds,
                        });
                    }
                    RecoveryPolicy::RestartFromCheckpoint { max_retries }
                    | RecoveryPolicy::RestartWithBackoff { max_retries, .. } => {
                        // A crash that trips the quarantine threshold
                        // decommissions the machine (charged migration)
                        // instead of consuming a retry; the checkpoint is
                        // still restored once so its spare resumes from
                        // consistent state.
                        let mut retried: Vec<usize> = Vec::new();
                        for &machine in &crashed {
                            self.failure_counts[machine] += 1;
                            if self.should_quarantine(machine) {
                                self.quarantine_machine(machine);
                            } else {
                                retried.push(machine);
                            }
                        }
                        retries_used += retried.len();
                        if retries_used > max_retries {
                            return Err(MpcError::MachineFailed {
                                machine: retried[0],
                                round: self.stats.rounds,
                            });
                        }
                        if !retried.is_empty() {
                            self.charge_backoff(retried[0], policy, retries_used);
                        }
                        let cp = checkpoint
                            .as_ref()
                            .expect("restart policy always captures a round-0 checkpoint");
                        let timer = PhaseTimer::start();
                        let reshipped = self.restore_checkpoint(
                            cp,
                            machines,
                            &mut incoming,
                            &mut rng,
                            &mut straggle_until,
                            &mut pending_retransmit,
                            &mut partition_held,
                        );
                        self.stats.phase.checkpoint_ns = self
                            .stats
                            .phase
                            .checkpoint_ns
                            .saturating_add(timer.elapsed_ns());
                        for &machine in &crashed {
                            self.recovery_log.push(RecoveryEvent {
                                machine,
                                crash_round: round_now,
                                checkpoint_round: cp.round,
                                replayed_rounds: exec - cp.round,
                                reshipped_words: reshipped,
                            });
                        }
                        // Re-execute from the checkpoint; the replayed
                        // rounds charge the ledger a second time and are
                        // attributed to recovery overhead.
                        self.stats.recovery_rounds =
                            self.stats.recovery_rounds.saturating_add(exec - cp.round);
                        exec = cp.round;
                        continue;
                    }
                }
            }

            // Route phase: deliver transport retransmissions from last
            // round's dropped messages, plus traffic released by healed
            // partitions (each repeated transmission is charged again
            // below), then sort everything in flight by destination.
            let route_timer = PhaseTimer::start();
            let mut retransmit_words = 0u64;
            for msg in pending_retransmit.drain(..) {
                retransmit_words += msg.words.len() as u64;
                incoming.push(msg);
            }
            if partition_held.iter().any(|(heal, _)| *heal <= round_now) {
                for (heal, msg) in std::mem::take(&mut partition_held) {
                    if heal <= round_now {
                        retransmit_words += msg.words.len() as u64;
                        incoming.push(msg);
                    } else {
                        partition_held.push((heal, msg));
                    }
                }
            }
            // Counting-sort scatter: histogram over destinations, prefix
            // scan into per-machine ranges/cursors, payloads *moved* into
            // the routing buffer in arrival order — O(m + M), stable per
            // destination, allocation-free once the arena spines are warm.
            fabric.scatter(&mut incoming);
            self.stats.phase.route_ns = self
                .stats
                .phase
                .route_ns
                .saturating_add(route_timer.elapsed_ns());

            let round = self.stats.rounds + 1;
            // Intake phase (sequential, machine-index order): enforce the
            // receive cap on every machine participating this round.
            // Stragglers' slices stay untouched in the routing buffer —
            // they neither receive nor send this round; their backlog is
            // carried forward after the step.
            let intake_timer = PhaseTimer::start();
            for (id, &stalled_until) in straggle_until.iter().enumerate().take(m) {
                if round_now <= stalled_until {
                    continue;
                }
                let (lo, hi) = fabric.ranges[id];
                // In-round adversarial reordering: one coin per non-empty
                // inbox (drawn only when the fault class is armed, so the
                // coin stream is unchanged otherwise); a hit hands the
                // machine its messages in reversed arrival order.
                if plan.reorder_per_mille() > 0
                    && hi - lo > 1
                    && (rng.index(1000) as u16) < plan.reorder_per_mille()
                {
                    fabric.buf[lo..hi].reverse();
                }
                let received: usize = fabric.buf[lo..hi].iter().map(|m| m.words.len()).sum();
                if received > self.local_space {
                    return Err(MpcError::BandwidthExceeded {
                        machine: id,
                        words: received,
                        limit: self.local_space,
                        round,
                    });
                }
            }
            self.stats.phase.intake_ns = self
                .stats
                .phase
                .intake_ns
                .saturating_add(intake_timer.elapsed_ns());
            // Step phase (concurrent under `ParallelismMode::Parallel`):
            // every participating machine runs its round. A shard sees only
            // its own state and its own inbox slice — a pure per-machine
            // map — so the execution mode cannot influence any observable.
            let step_timer = PhaseTimer::start();
            let straggle_ref = &straggle_until;
            let route_ref = &fabric.buf;
            let ranges_ref = &fabric.ranges;
            par_map_mut_into(mode, machines, &mut stepped, |id, shard| {
                if round_now <= straggle_ref[id] {
                    return None;
                }
                let (lo, hi) = ranges_ref[id];
                let outs = shard.round(id, &route_ref[lo..hi]);
                let storage = shard.storage_words();
                Some((outs, storage))
            });
            self.stats.phase.step_ns = self
                .stats
                .phase
                .step_ns
                .saturating_add(step_timer.elapsed_ns());
            // Straggler carry (attributed to routing): a stalled machine's
            // undelivered slice moves back into the staging buffer *before*
            // this round's sends are merged, so next round's stable scatter
            // delivers the backlog ahead of newer traffic — exactly the
            // order the old per-machine inbox carry produced.
            let carry_timer = PhaseTimer::start();
            for (id, &stalled_until) in straggle_until.iter().enumerate().take(m) {
                if round_now <= stalled_until {
                    let (lo, hi) = fabric.ranges[id];
                    for slot in &mut fabric.buf[lo..hi] {
                        incoming.push(Message {
                            to: id,
                            words: std::mem::take(&mut slot.words),
                        });
                    }
                }
            }
            self.stats.phase.route_ns = self
                .stats
                .phase
                .route_ns
                .saturating_add(carry_timer.elapsed_ns());
            // Merge phase (sequential, fixed machine-index order): send
            // caps, storage charges, per-machine ledger deltas (absorbed
            // associatively into one round delta), component-tag
            // propagation, transport drop/duplication coins (consumed in
            // machine order — the same coin stream a sequential engine
            // draws), and staging of sends into the flat buffer.
            let merge_timer = PhaseTimer::start();
            // Component tags travel with messages: a delivery hands the
            // receiver every component tag the sender held. The reusable
            // per-destination buffers are sorted and deduplicated at merge
            // time, reproducing the set semantics (and visit order) of the
            // per-round `BTreeSet`s they replaced without their per-round
            // allocation.
            let mut any_sent = false;
            let mut round_delta = Stats {
                total_words: retransmit_words,
                ..Stats::default()
            };
            for (id, step) in stepped.drain(..).enumerate() {
                let Some((outs, storage)) = step else {
                    continue;
                };
                let (in_lo, in_hi) = fabric.ranges[id];
                let received: usize = fabric.buf[in_lo..in_hi].iter().map(|m| m.words.len()).sum();
                let sent: usize = outs.iter().map(|m| m.words.len()).sum();
                if sent > self.local_space {
                    return Err(MpcError::BandwidthExceeded {
                        machine: id,
                        words: sent,
                        limit: self.local_space,
                        round,
                    });
                }
                // Stamp the in-flight round (the ledger's counter advances
                // only once the round completes).
                if let Err(err) = self.charge_storage(id, storage) {
                    return Err(match err {
                        MpcError::SpaceExceeded {
                            machine,
                            words,
                            limit,
                            ..
                        } => MpcError::SpaceExceeded {
                            machine,
                            words,
                            limit,
                            round,
                        },
                        other => other,
                    });
                }
                round_delta.absorb(&Stats {
                    max_round_words: sent.max(received),
                    total_words: sent as u64,
                    ..Stats::default()
                });
                if !outs.is_empty() {
                    any_sent = true;
                }
                for msg in outs {
                    if msg.to >= m {
                        return Err(MpcError::UnknownMachine {
                            machine: msg.to,
                            count: m,
                        });
                    }
                    // Tags propagate at send time even if the transport
                    // delays the physical delivery: the words left the
                    // sender this round.
                    if msg.to != id && !msg.words.is_empty() {
                        incoming_tags[msg.to]
                            .extend_from_slice(self.machine_components.machine(id));
                    }
                    if plan.drop_per_mille() > 0 && (rng.index(1000) as u16) < plan.drop_per_mille()
                    {
                        // Lost in transit; the transport retransmits next
                        // round, charging the words a second time. The
                        // payload is moved, not cloned — it is already off
                        // the delivery path.
                        pending_retransmit.push(msg);
                        continue;
                    } else if plan.corrupt_per_mille() > 0
                        && !msg.words.is_empty()
                        && (rng.index(1000) as u16) < plan.corrupt_per_mille()
                    {
                        // Corrupted in transit: the adversary flips bits in
                        // one payload word of the sealed envelope. The
                        // receiver's checksum verification catches it and
                        // discards the envelope — a tampered payload is
                        // never handed to a machine — and the transport
                        // retransmits the original next round, charged.
                        // Both checksums are computed on the borrowed
                        // payload (zero-copy): the sealed one and the one
                        // the receiver would recompute after the flip.
                        let word = rng.index(msg.words.len());
                        let mask = rng.next_u64() | 1;
                        let sealed = Envelope::checksum_of(&msg);
                        let tampered = Envelope::tampered_checksum_of(&msg, word, mask);
                        debug_assert_ne!(
                            sealed, tampered,
                            "a nonzero payload flip must break the seal"
                        );
                        if sealed != tampered {
                            self.stats.corrupted_detected =
                                self.stats.corrupted_detected.saturating_add(1);
                            pending_retransmit.push(msg);
                            continue;
                        }
                        // (If the checksum improbably collided, the
                        // *original* message is delivered below — output
                        // can never silently differ.)
                    } else if plan.dup_per_mille() > 0
                        && (rng.index(1000) as u16) < plan.dup_per_mille()
                    {
                        // Duplicated in transit: the receiver deduplicates,
                        // but the extra transmission is paid for.
                        round_delta.total_words = round_delta
                            .total_words
                            .saturating_add(msg.words.len() as u64);
                    }
                    // An active partition cutting sender from receiver
                    // holds the message until the last such window heals;
                    // delivery then is charged like a retransmission.
                    let mut heal: Option<usize> = None;
                    for p in plan.partitions() {
                        if p.active_at(round_now) && p.cuts(id, msg.to) {
                            heal = Some(heal.map_or(p.heal_round(), |h| h.max(p.heal_round())));
                        }
                    }
                    match heal {
                        Some(h) => partition_held.push((h, msg)),
                        None => incoming.push(msg),
                    }
                }
            }
            // Merge propagated tags and record cross-component deliveries:
            // a machine already holding component `a` that receives words
            // tagged with component `b ≠ a` has observed a cross-component
            // flow.
            for (to, tags) in incoming_tags.iter_mut().enumerate() {
                if tags.is_empty() {
                    continue;
                }
                // Sorted + deduplicated, the visit order the old per-round
                // `BTreeSet` produced.
                tags.sort_unstable();
                tags.dedup();
                let fresh: Vec<ComponentId> = tags
                    .iter()
                    .copied()
                    .filter(|&c| !self.machine_components.contains(to, c))
                    .collect();
                for &from in &fresh {
                    for &held in self.machine_components.machine(to) {
                        self.provenance
                            .record("exact-engine message", round, from, held);
                    }
                }
                self.machine_components.extend(to, tags);
                tags.clear();
            }
            self.stats.rounds = self.stats.rounds.saturating_add(1);
            self.charge_words(round_delta.max_round_words, round_delta.total_words);
            self.stats.phase.merge_ns = self
                .stats
                .phase
                .merge_ns
                .saturating_add(merge_timer.elapsed_ns());
            // A stalled machine has not had the chance to speak yet, so the
            // computation cannot be declared quiescent around it.
            let work_pending = !pending_retransmit.is_empty()
                || !partition_held.is_empty()
                || !incoming.is_empty()
                || straggle_until.iter().any(|&u| u >= round_now);
            if !any_sent && !work_pending {
                return Ok(());
            }
            exec += 1;
        }
        Err(MpcError::RoundLimitExceeded { limit: max_rounds })
    }

    /// Captures a round-boundary recovery snapshot of the exact engine.
    ///
    /// Copy-on-write against the previous checkpoint: an inbox, program
    /// snapshot, the component-tag table, or the provenance log is shared
    /// (`Arc::clone`) when its content equals the previous capture, and
    /// deep-copied only when it changed. Sharing is gated on *content
    /// equality*, so a restore from a shared slot is value-identical to a
    /// restore from a deep copy — determinism cannot depend on which
    /// captures happened to share.
    #[allow(clippy::too_many_arguments)]
    fn capture_checkpoint<P: MachineProgram>(
        &self,
        exec_round: usize,
        incoming: &[Message],
        machines: &[P],
        rng: &SplitMix64,
        straggle_until: &[usize],
        pending_retransmit: &[Message],
        partition_held: &[(usize, Message)],
        prev: Option<&Checkpoint>,
    ) -> Checkpoint {
        // Group the flat in-flight buffer by destination. Per-destination
        // arrival order is preserved — the only order the routing sort
        // (stable per destination) can observe.
        let mut by_dest: Vec<Vec<Message>> = vec![Vec::new(); self.num_machines];
        for msg in incoming {
            by_dest[msg.to].push(msg.clone());
        }
        let inboxes: Vec<Arc<Vec<Message>>> = by_dest
            .into_iter()
            .enumerate()
            .map(|(i, inbox)| match prev.and_then(|p| p.inboxes.get(i)) {
                Some(shared) if **shared == inbox => Arc::clone(shared),
                _ => Arc::new(inbox),
            })
            .collect();
        let program: Vec<Arc<Vec<u64>>> = machines
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                let snap = shard.snapshot();
                match prev.and_then(|p| p.program.get(i)) {
                    Some(shared) if **shared == snap => Arc::clone(shared),
                    _ => Arc::new(snap),
                }
            })
            .collect();
        let machine_components = match prev {
            Some(p) if *p.machine_components == self.machine_components => {
                Arc::clone(&p.machine_components)
            }
            _ => Arc::new(self.machine_components.clone()),
        };
        let provenance = match prev {
            Some(p) if *p.provenance == self.provenance => Arc::clone(&p.provenance),
            _ => Arc::new(self.provenance.clone()),
        };
        Checkpoint {
            round: exec_round,
            inboxes,
            program,
            machine_components,
            provenance,
            rng: rng.clone(),
            straggle_until: straggle_until.to_vec(),
            pending_retransmit: pending_retransmit.to_vec(),
            partition_held: partition_held.to_vec(),
        }
    }

    /// Restores a [`Checkpoint`] after a crash and charges the recovery to
    /// the ledger: one synchronous restore round plus the re-shipped
    /// checkpoint words (at least one — recovery is never free). Returns
    /// the words charged.
    ///
    /// The per-destination inboxes are flattened back into the staging
    /// buffer in machine-id order; cross-destination order is immaterial
    /// (the routing sort is stable per destination), and per-destination
    /// order is exactly as captured.
    #[allow(clippy::too_many_arguments)]
    fn restore_checkpoint<P: MachineProgram>(
        &mut self,
        cp: &Checkpoint,
        machines: &mut [P],
        incoming: &mut Vec<Message>,
        rng: &mut SplitMix64,
        straggle_until: &mut Vec<usize>,
        pending_retransmit: &mut Vec<Message>,
        partition_held: &mut Vec<(usize, Message)>,
    ) -> usize {
        incoming.clear();
        for inbox in &cp.inboxes {
            incoming.extend(inbox.iter().cloned());
        }
        for (shard, snap) in machines.iter_mut().zip(&cp.program) {
            shard.restore(snap);
        }
        self.machine_components = (*cp.machine_components).clone();
        self.provenance = (*cp.provenance).clone();
        *rng = cp.rng.clone();
        *straggle_until = cp.straggle_until.clone();
        *pending_retransmit = cp.pending_retransmit.clone();
        *partition_held = cp.partition_held.clone();
        let reshipped = cp.words().max(1);
        self.charge_recovery(1, reshipped);
        reshipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds one program shard per machine.
    fn shards<T>(m: usize, build: impl Fn(usize) -> T) -> Vec<T> {
        (0..m).map(build).collect()
    }

    /// Each leaf machine sends its value toward machine 0 in one hop;
    /// machine 0 accumulates. (Deliberately ignores fan-in trees — small.)
    struct SumToZero {
        value: u64,
        acc: u64,
        sent: bool,
    }

    impl MachineProgram for SumToZero {
        fn round(&mut self, id: usize, inbox: &[Message]) -> Vec<Message> {
            if id == 0 {
                for m in inbox {
                    self.acc += m.words.iter().sum::<u64>();
                }
                Vec::new()
            } else if !self.sent {
                self.sent = true;
                vec![Message {
                    to: 0,
                    words: vec![self.value],
                }]
            } else {
                Vec::new()
            }
        }
        fn storage_words(&self) -> usize {
            2
        }
    }

    fn sum_to_zero(m: usize) -> Vec<SumToZero> {
        shards(m, |id| SumToZero {
            value: id as u64,
            acc: 0,
            sent: false,
        })
    }

    #[test]
    fn exact_engine_moves_words() {
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        let m = cluster.num_machines();
        let mut machines = sum_to_zero(m);
        cluster.run_program(&mut machines, Vec::new(), 10).unwrap();
        assert_eq!(machines[0].acc, (0..m as u64).sum::<u64>());
        assert!(cluster.stats().rounds >= 2);
    }

    /// A program that tries to send more than S words at once.
    struct Flooder {
        limit: usize,
        fired: bool,
    }

    impl MachineProgram for Flooder {
        fn round(&mut self, id: usize, _inbox: &[Message]) -> Vec<Message> {
            if id == 1 && !self.fired {
                self.fired = true;
                vec![Message {
                    to: 0,
                    words: vec![0; self.limit + 1],
                }]
            } else {
                Vec::new()
            }
        }
        fn storage_words(&self) -> usize {
            0
        }
    }

    #[test]
    fn bandwidth_cap_enforced() {
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        let s = cluster.local_space();
        let mut machines = shards(cluster.num_machines(), |_| Flooder {
            limit: s,
            fired: false,
        });
        let err = cluster
            .run_program(&mut machines, Vec::new(), 10)
            .unwrap_err();
        assert!(matches!(err, MpcError::BandwidthExceeded { .. }));
    }

    /// A program whose storage exceeds S on machine 0.
    struct Hoarder {
        words: usize,
    }

    impl MachineProgram for Hoarder {
        fn round(&mut self, _id: usize, _inbox: &[Message]) -> Vec<Message> {
            Vec::new()
        }
        fn storage_words(&self) -> usize {
            self.words
        }
    }

    fn hoarders(m: usize) -> Vec<Hoarder> {
        shards(m, |id| Hoarder {
            words: if id == 0 { 1_000_000 } else { 0 },
        })
    }

    #[test]
    fn storage_cap_enforced() {
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        let mut machines = hoarders(cluster.num_machines());
        let err = cluster
            .run_program(&mut machines, Vec::new(), 10)
            .unwrap_err();
        assert!(matches!(err, MpcError::SpaceExceeded { .. }));
    }

    #[test]
    fn stats_absorb_sums_rounds() {
        let mut a = Stats {
            rounds: 3,
            max_round_words: 10,
            max_storage_words: 20,
            total_words: 100,
            ..Stats::default()
        };
        let b = Stats {
            rounds: 2,
            max_round_words: 50,
            max_storage_words: 5,
            total_words: 7,
            ..Stats::default()
        };
        a.absorb(&b);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.max_round_words, 50);
        assert_eq!(a.max_storage_words, 20);
        assert_eq!(a.total_words, 107);
    }

    #[test]
    fn stats_absorb_default_is_identity() {
        let mut a = Stats {
            rounds: 4,
            max_round_words: 11,
            max_storage_words: 13,
            total_words: 99,
            ..Stats::default()
        };
        let before = a.clone();
        a.absorb(&Stats::default());
        assert_eq!(a, before);
    }

    #[test]
    fn stats_absorb_accumulates_across_sub_computations() {
        // Three absorbed sub-computations: rounds and total_words add up,
        // space figures take the running maximum.
        let mut main = Stats::default();
        let subs = [
            Stats {
                rounds: 2,
                max_round_words: 8,
                max_storage_words: 64,
                total_words: 100,
                ..Stats::default()
            },
            Stats {
                rounds: 0, // a free (local-only) sub-computation
                max_round_words: 0,
                max_storage_words: 0,
                total_words: 0,
                ..Stats::default()
            },
            Stats {
                rounds: 5,
                max_round_words: 32,
                max_storage_words: 16,
                total_words: 250,
                ..Stats::default()
            },
        ];
        for s in &subs {
            main.absorb(s);
        }
        assert_eq!(main.rounds, 7);
        assert_eq!(main.max_round_words, 32);
        assert_eq!(main.max_storage_words, 64);
        assert_eq!(main.total_words, 350);
    }

    #[test]
    fn absorbed_cluster_run_matches_own_ledger() {
        // Running a sub-computation on its own cluster and absorbing its
        // ledger must land the same totals as the sub-cluster reports.
        let cfg = MpcConfig::with_phi(0.5);
        let mut sub = Cluster::new(cfg, 100, 100, Seed(0));
        let m = sub.num_machines();
        let mut machines = sum_to_zero(m);
        sub.run_program(&mut machines, Vec::new(), 10).unwrap();
        let sub_stats = sub.stats().clone();
        assert!(sub_stats.total_words > 0);

        let mut main = Cluster::new(cfg, 100, 100, Seed(1));
        main.charge_rounds(3);
        main.charge_words(1, 5);
        let mut expect = main.stats().clone();
        expect.absorb(&sub_stats);
        let mut merged = main.stats().clone();
        merged.absorb(&sub_stats);
        assert_eq!(merged, expect);
        assert_eq!(merged.rounds, 3 + sub_stats.rounds);
        assert_eq!(merged.total_words, 5 + sub_stats.total_words);
    }

    /// Sends exactly `words` words from machine 1 to machine 0, once.
    struct ExactSender {
        words: usize,
        fired: bool,
    }

    impl MachineProgram for ExactSender {
        fn round(&mut self, id: usize, _inbox: &[Message]) -> Vec<Message> {
            if id == 1 && !self.fired {
                self.fired = true;
                vec![Message {
                    to: 0,
                    words: vec![7; self.words],
                }]
            } else {
                Vec::new()
            }
        }
        fn storage_words(&self) -> usize {
            0
        }
    }

    fn exact_senders(m: usize, words: usize) -> Vec<ExactSender> {
        shards(m, |_| ExactSender {
            words,
            fired: false,
        })
    }

    #[test]
    fn send_exactly_at_cap_is_legal() {
        // The cap is inclusive: moving exactly S words must succeed and be
        // recorded as the round high-water mark.
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        let s = cluster.local_space();
        let mut machines = exact_senders(cluster.num_machines(), s);
        cluster.run_program(&mut machines, Vec::new(), 10).unwrap();
        assert_eq!(cluster.stats().max_round_words, s);
        assert_eq!(cluster.stats().total_words, s as u64);
    }

    #[test]
    fn one_word_over_cap_is_rejected() {
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        let s = cluster.local_space();
        let mut machines = exact_senders(cluster.num_machines(), s + 1);
        let err = cluster
            .run_program(&mut machines, Vec::new(), 10)
            .unwrap_err();
        match err {
            MpcError::BandwidthExceeded {
                machine,
                words,
                limit,
                round,
            } => {
                assert_eq!(machine, 1);
                assert_eq!(words, s + 1);
                assert_eq!(limit, s);
                assert_eq!(round, 1, "violation must name the in-flight round");
            }
            other => panic!("expected BandwidthExceeded, got {other:?}"),
        }
    }

    /// Sends zero-word messages forever (up to the round limit).
    struct ZeroWordChatter {
        rounds_left: usize,
    }

    impl MachineProgram for ZeroWordChatter {
        fn round(&mut self, id: usize, _inbox: &[Message]) -> Vec<Message> {
            if id == 1 && self.rounds_left > 0 {
                self.rounds_left -= 1;
                vec![Message {
                    to: 0,
                    words: Vec::new(),
                }]
            } else {
                Vec::new()
            }
        }
        fn storage_words(&self) -> usize {
            0
        }
    }

    fn chatters(m: usize, rounds_left: usize) -> Vec<ZeroWordChatter> {
        shards(m, |_| ZeroWordChatter { rounds_left })
    }

    #[test]
    fn zero_word_rounds_count_rounds_but_no_words() {
        // Empty messages still cost a synchronous round (the barrier is the
        // resource) but move no words.
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        let mut machines = chatters(cluster.num_machines(), 3);
        cluster.run_program(&mut machines, Vec::new(), 10).unwrap();
        assert!(cluster.stats().rounds >= 3);
        assert_eq!(cluster.stats().max_round_words, 0);
        assert_eq!(cluster.stats().total_words, 0);
    }

    #[test]
    fn space_violation_in_engine_names_round_one() {
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        let mut machines = hoarders(cluster.num_machines());
        let err = cluster
            .run_program(&mut machines, Vec::new(), 10)
            .unwrap_err();
        match err {
            MpcError::SpaceExceeded { machine, round, .. } => {
                assert_eq!(machine, 0);
                assert_eq!(
                    round, 1,
                    "engine space violations stamp the in-flight round"
                );
            }
            other => panic!("expected SpaceExceeded, got {other:?}"),
        }
    }

    #[test]
    fn violation_display_includes_round() {
        let err = MpcError::BandwidthExceeded {
            machine: 2,
            words: 300,
            limit: 256,
            round: 4,
        };
        let s = err.to_string();
        assert!(s.contains("machine 2"), "{s}");
        assert!(s.contains("round 4"), "{s}");
    }

    #[test]
    fn unknown_machine_rejected() {
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        let mut machines = hoarders(cluster.num_machines());
        let err = cluster
            .run_program(
                &mut machines,
                vec![Message {
                    to: 10_000_000,
                    words: vec![],
                }],
                10,
            )
            .unwrap_err();
        assert!(matches!(err, MpcError::UnknownMachine { .. }));
    }

    /// Sends one message to a configurable address in round 1.
    struct AddressedSender {
        to: usize,
        fired: bool,
    }

    impl MachineProgram for AddressedSender {
        fn round(&mut self, id: usize, _inbox: &[Message]) -> Vec<Message> {
            if id == 0 && !self.fired {
                self.fired = true;
                vec![Message {
                    to: self.to,
                    words: vec![1],
                }]
            } else {
                Vec::new()
            }
        }
        fn storage_words(&self) -> usize {
            0
        }
    }

    fn addressed_senders(m: usize, to: usize) -> Vec<AddressedSender> {
        shards(m, |_| AddressedSender { to, fired: false })
    }

    #[test]
    fn unknown_machine_mid_round_rejected() {
        // The initial batch is validated eagerly; a mid-round bad address
        // must be caught by the per-message check inside the round loop.
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        let bad = cluster.num_machines() + 3;
        let mut machines = addressed_senders(cluster.num_machines(), bad);
        let err = cluster
            .run_program(&mut machines, Vec::new(), 10)
            .unwrap_err();
        match err {
            MpcError::UnknownMachine { machine, count } => {
                assert_eq!(machine, bad);
                assert_eq!(count, cluster.num_machines());
            }
            other => panic!("expected UnknownMachine, got {other:?}"),
        }
        // No round completed before the violation.
        assert_eq!(cluster.stats().rounds, 0);
    }

    #[test]
    fn self_addressed_messages_do_not_propagate_tags() {
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        cluster.tag_machine(0, 42);
        // Machine 0 talks only to itself; its tag must stay put and no
        // cross-component flow may be recorded.
        let mut machines = addressed_senders(cluster.num_machines(), 0);
        cluster.run_program(&mut machines, Vec::new(), 10).unwrap();
        assert_eq!(cluster.machine_components(0).len(), 1);
        for m in 1..cluster.num_machines() {
            assert!(
                cluster.machine_components(m).is_empty(),
                "machine {m} acquired a tag from a self-send"
            );
        }
        assert!(!cluster.provenance().has_cross_component_flow());
    }

    #[test]
    fn quiescence_exactly_at_max_rounds_is_ok() {
        // The program sends in rounds 1..=4 and quiesces in round 5; with
        // max_rounds = 5 the quiescing round is the last allowed one and
        // the run must succeed, not report RoundLimitExceeded.
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        let mut machines = chatters(cluster.num_machines(), 4);
        cluster.run_program(&mut machines, Vec::new(), 5).unwrap();
        assert_eq!(cluster.stats().rounds, 5);

        // One more round of chatter and the same cap must overflow.
        let mut cluster2 = Cluster::new(cfg, 100, 100, Seed(0));
        let mut machines2 = chatters(cluster2.num_machines(), 5);
        let err = cluster2
            .run_program(&mut machines2, Vec::new(), 5)
            .unwrap_err();
        assert!(matches!(err, MpcError::RoundLimitExceeded { limit: 5 }));
    }

    #[test]
    fn unattributed_space_violation_displays_cleanly() {
        // `require_fits` uses usize::MAX as a "no specific machine"
        // sentinel; the Display impl must not print that as an index.
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        let err = cluster.require_fits(10_000_000).unwrap_err();
        let s = err.to_string();
        assert!(
            s.contains("unattributed machine"),
            "sentinel must render as 'unattributed machine': {s}"
        );
        assert!(
            !s.contains(&usize::MAX.to_string()),
            "sentinel index must not leak into the message: {s}"
        );
        // Attributed violations keep naming their machine.
        let attributed = MpcError::SpaceExceeded {
            machine: 3,
            words: 10,
            limit: 5,
            round: 2,
        };
        assert!(attributed.to_string().contains("machine 3"));
    }

    #[test]
    fn reset_for_repetition_clears_provenance_and_tags() {
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        cluster.charge_rounds(5);
        cluster.tag_machine(0, 1);
        cluster.tag_machine(1, 2);
        let round = cluster.stats().rounds;
        cluster.provenance_mut().record("test", round, 1, 2);
        assert!(cluster.provenance().has_cross_component_flow());

        // reset_stats alone leaks tags and flows — the documented trap.
        cluster.reset_stats();
        assert!(cluster.provenance().has_cross_component_flow());
        assert!(!cluster.machine_components(0).is_empty());

        cluster.reset_for_repetition();
        assert_eq!(cluster.stats(), &Stats::default());
        assert!(!cluster.provenance().has_cross_component_flow());
        assert!(cluster.machine_components(0).is_empty());
        assert!(cluster.machine_components(1).is_empty());
        assert!(cluster.recovery_log().is_empty());
    }

    #[test]
    fn reset_for_repetition_rearms_fault_plan() {
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        cluster.arm_faults(
            FaultPlan::quiet(Seed(3)).crash(0, 1),
            RecoveryPolicy::restart(2),
        );
        cluster.advance_rounds(2).unwrap();
        assert_eq!(cluster.recovery_log().len(), 1);

        cluster.reset_for_repetition();
        assert!(cluster.recovery_log().is_empty());
        // The plan re-fires on the next repetition, identically.
        cluster.advance_rounds(2).unwrap();
        assert_eq!(cluster.recovery_log().len(), 1);
    }

    #[test]
    fn advance_rounds_without_plan_equals_charge_rounds() {
        let cfg = MpcConfig::with_phi(0.5);
        let mut a = Cluster::new(cfg, 100, 100, Seed(0));
        let mut b = Cluster::new(cfg, 100, 100, Seed(0));
        a.charge_rounds(7);
        b.advance_rounds(7).unwrap();
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn accounted_recovery_is_never_free() {
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        cluster.arm_faults(
            FaultPlan::quiet(Seed(3)).crash(4, 3),
            RecoveryPolicy::restart(2),
        );
        cluster.advance_rounds(5).unwrap();
        let ev = cluster.recovery_log()[0];
        assert_eq!(ev.machine, 4);
        assert!(ev.replayed_rounds >= 1, "at least one replayed round");
        assert!(ev.reshipped_words >= 1, "at least one re-shipped word");
        assert!(
            cluster.stats().rounds > 5,
            "ledger must include the replay: {}",
            cluster.stats().rounds
        );
        assert!(cluster.stats().total_words >= ev.reshipped_words as u64);
    }

    #[test]
    fn accounted_retry_budget_is_enforced() {
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        cluster.arm_faults(
            FaultPlan::quiet(Seed(3))
                .crash(0, 1)
                .crash(1, 2)
                .crash(2, 3),
            RecoveryPolicy::restart(2),
        );
        let err = cluster.advance_rounds(10).unwrap_err();
        assert!(matches!(err, MpcError::MachineFailed { .. }));
        assert_eq!(cluster.recovery_log().len(), 2, "two recoveries, then fail");
    }

    /// SumToZero with real snapshot/restore, for engine recovery tests.
    struct RecoverableSum {
        value: u64,
        acc: u64,
        sent: bool,
    }

    impl MachineProgram for RecoverableSum {
        fn round(&mut self, id: usize, inbox: &[Message]) -> Vec<Message> {
            if id == 0 {
                for m in inbox {
                    self.acc += m.words.iter().sum::<u64>();
                }
                Vec::new()
            } else if !self.sent {
                self.sent = true;
                vec![Message {
                    to: 0,
                    words: vec![self.value],
                }]
            } else {
                Vec::new()
            }
        }
        fn storage_words(&self) -> usize {
            2
        }
        fn snapshot(&self) -> Vec<u64> {
            vec![self.acc, u64::from(self.sent)]
        }
        fn restore(&mut self, snapshot: &[u64]) {
            self.acc = snapshot[0];
            self.sent = snapshot[1] != 0;
        }
    }

    fn recoverable_sum(m: usize) -> Vec<RecoverableSum> {
        shards(m, |id| RecoverableSum {
            value: id as u64,
            acc: 0,
            sent: false,
        })
    }

    fn engine_fault_run(
        plan: &FaultPlan,
        policy: RecoveryPolicy,
    ) -> Result<(u64, Stats, usize), MpcError> {
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        let m = cluster.num_machines();
        let mut machines = recoverable_sum(m);
        cluster.run_program_with_faults(&mut machines, Vec::new(), 100, plan, policy)?;
        Ok((
            machines[0].acc,
            cluster.stats().clone(),
            cluster.recovery_log().len(),
        ))
    }

    #[test]
    fn engine_crash_recovery_preserves_output_and_charges() {
        let quiet = FaultPlan::quiet(Seed(9));
        let (clean_sum, clean_stats, _) =
            engine_fault_run(&quiet, RecoveryPolicy::FailFast).unwrap();

        let plan = FaultPlan::quiet(Seed(9)).crash(1, 2);
        let (sum, stats, recoveries) = engine_fault_run(&plan, RecoveryPolicy::restart(3)).unwrap();
        assert_eq!(sum, clean_sum, "recovered run computes the same sum");
        assert_eq!(recoveries, 1);
        assert!(stats.rounds > clean_stats.rounds, "replay costs rounds");
        assert!(
            stats.total_words > clean_stats.total_words,
            "restore re-ships words"
        );
    }

    #[test]
    fn engine_crash_fail_fast_errors() {
        let plan = FaultPlan::quiet(Seed(9)).crash(1, 2);
        let err = engine_fault_run(&plan, RecoveryPolicy::FailFast).unwrap_err();
        assert!(matches!(err, MpcError::MachineFailed { machine: 1, .. }));
    }

    #[test]
    fn engine_lost_quorum_is_unrecoverable() {
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        let m = cluster.num_machines();
        let mut plan = FaultPlan::quiet(Seed(9));
        for machine in 0..(m / 2 + 1) {
            plan = plan.crash(machine, 1);
        }
        let mut machines = recoverable_sum(m);
        let err = cluster
            .run_program_with_faults(
                &mut machines,
                Vec::new(),
                100,
                &plan,
                RecoveryPolicy::restart(99),
            )
            .unwrap_err();
        assert!(
            matches!(err, MpcError::MachineFailed { .. }),
            "a majority crash is beyond any retry budget"
        );
    }

    #[test]
    fn engine_replay_is_deterministic() {
        // Same plan, same policy, twice: identical output, ledger, and
        // recovery count — the replicability guarantee.
        let plan = FaultPlan::quiet(Seed(11)).crash(2, 3).straggle(1, 2, 2);
        let a = engine_fault_run(&plan, RecoveryPolicy::restart(3)).unwrap();
        let b = engine_fault_run(&plan, RecoveryPolicy::restart(3)).unwrap();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
    }

    #[test]
    fn engine_straggler_delays_but_preserves_output() {
        let quiet = FaultPlan::quiet(Seed(9));
        let (clean_sum, clean_stats, _) =
            engine_fault_run(&quiet, RecoveryPolicy::FailFast).unwrap();

        let plan = FaultPlan::quiet(Seed(9)).straggle(1, 1, 4);
        let (sum, stats, recoveries) = engine_fault_run(&plan, RecoveryPolicy::FailFast).unwrap();
        assert_eq!(sum, clean_sum, "a straggler only delays, never corrupts");
        assert_eq!(recoveries, 0);
        assert!(
            stats.rounds > clean_stats.rounds,
            "the stalled machine's message lands late: {} vs {}",
            stats.rounds,
            clean_stats.rounds
        );
    }

    #[test]
    fn engine_message_drops_charge_retransmissions() {
        let quiet = FaultPlan::quiet(Seed(13));
        let (clean_sum, clean_stats, _) =
            engine_fault_run(&quiet, RecoveryPolicy::FailFast).unwrap();

        // Heavy drop rate: every dropped message is retransmitted a round
        // later, so the sum is intact but words are charged twice.
        let plan = FaultPlan::quiet(Seed(13)).with_message_faults(400, 0);
        let (sum, stats, _) = engine_fault_run(&plan, RecoveryPolicy::FailFast).unwrap();
        assert_eq!(sum, clean_sum, "drops delay delivery, never lose it");
        assert!(
            stats.total_words > clean_stats.total_words,
            "retransmissions must be charged: {} vs {}",
            stats.total_words,
            clean_stats.total_words
        );
    }

    #[test]
    fn engine_message_duplicates_charge_but_do_not_corrupt() {
        let quiet = FaultPlan::quiet(Seed(13));
        let (clean_sum, clean_stats, _) =
            engine_fault_run(&quiet, RecoveryPolicy::FailFast).unwrap();

        let plan = FaultPlan::quiet(Seed(13)).with_message_faults(0, 500);
        let (sum, stats, _) = engine_fault_run(&plan, RecoveryPolicy::FailFast).unwrap();
        assert_eq!(sum, clean_sum, "receivers deduplicate");
        assert!(
            stats.total_words > clean_stats.total_words,
            "duplicate transmissions must be charged"
        );
    }

    #[test]
    fn machine_failed_display_names_machine_and_round() {
        let err = MpcError::MachineFailed {
            machine: 6,
            round: 11,
        };
        let s = err.to_string();
        assert!(s.contains("machine 6"), "{s}");
        assert!(s.contains("round 11"), "{s}");
    }

    #[test]
    fn charge_words_saturates_instead_of_wrapping() {
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        cluster.charge_words(1, u64::MAX - 10);
        cluster.charge_words(1, 100);
        assert_eq!(cluster.stats().total_words, u64::MAX);
        // Further charges stay pinned at the ceiling.
        cluster.charge_words(1, 1);
        assert_eq!(cluster.stats().total_words, u64::MAX);
    }

    #[test]
    fn charge_rounds_saturates_instead_of_wrapping() {
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        cluster.charge_rounds(usize::MAX - 3);
        cluster.charge_rounds(10);
        assert_eq!(cluster.stats().rounds, usize::MAX);
        // advance_rounds without a plan goes through the same ledger.
        cluster.advance_rounds(5).unwrap();
        assert_eq!(cluster.stats().rounds, usize::MAX);
    }

    #[test]
    fn charge_replay_mirrors_charge_recovery_on_a_bare_ledger() {
        let mut s = Stats::default();
        s.charge_replay(1, 40);
        s.charge_replay(2, 8);
        assert_eq!(s.rounds, 3);
        assert_eq!(s.total_words, 48);
        assert_eq!(s.max_round_words, 40);
        assert_eq!(s.recovery_rounds, 3);
        assert_eq!(s.recovery_words, 48);
        // Saturates like every other charge path.
        s.charge_replay(usize::MAX, u64::MAX);
        assert_eq!(s.rounds, usize::MAX);
        assert_eq!(s.recovery_words, u64::MAX);
    }

    #[test]
    fn charge_storage_at_usize_max_reports_not_panics() {
        let cfg = MpcConfig::with_phi(0.5);
        let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
        let err = cluster.charge_storage(0, usize::MAX).unwrap_err();
        match err {
            MpcError::SpaceExceeded { words, .. } => assert_eq!(words, usize::MAX),
            other => panic!("expected SpaceExceeded, got {other:?}"),
        }
        assert_eq!(cluster.stats().max_storage_words, usize::MAX);
    }

    #[test]
    fn absorb_saturates_rounds_and_totals() {
        let mut a = Stats {
            rounds: usize::MAX - 1,
            max_round_words: 4,
            max_storage_words: 4,
            total_words: u64::MAX - 1,
            ..Stats::default()
        };
        let b = Stats {
            rounds: 7,
            max_round_words: 9,
            max_storage_words: 2,
            total_words: 7,
            ..Stats::default()
        };
        a.absorb(&b);
        assert_eq!(a.rounds, usize::MAX);
        assert_eq!(a.total_words, u64::MAX);
        assert_eq!(a.max_round_words, 9);
        assert_eq!(a.max_storage_words, 4);
    }

    #[test]
    fn engine_modes_agree_on_a_fault_free_run() {
        // Direct unit-level check; the cross-layer equivalence suite lives
        // in tests/parallel_equivalence.rs at the workspace root.
        let run = |mode: csmpc_parallel::ParallelismMode| {
            let cfg = MpcConfig {
                parallelism: mode,
                ..MpcConfig::with_phi(0.5)
            };
            let mut cluster = Cluster::new(cfg, 100, 100, Seed(0));
            let m = cluster.num_machines();
            let mut machines = sum_to_zero(m);
            cluster.run_program(&mut machines, Vec::new(), 10).unwrap();
            (machines[0].acc, cluster.stats().clone())
        };
        let seq = run(csmpc_parallel::ParallelismMode::Sequential);
        let par = run(csmpc_parallel::ParallelismMode::Parallel);
        assert_eq!(seq, par);
    }
}
