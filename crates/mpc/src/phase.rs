//! Phase-timing observability for the engine hot paths.
//!
//! The exact engine's round loop divides into *route* (sorting pending
//! messages into per-machine delivery ranges, plus straggler carry),
//! *intake* (receive-cap enforcement and reorder faults), *step* (the
//! per-machine round callbacks), *merge* (send caps, ledger deltas, tag
//! propagation, transport coins), and *checkpoint* (snapshot capture and
//! restore). [`PhaseTimes`] attributes wall-clock time to each so a perf
//! regression is attributable to a phase rather than a geomean.
//!
//! Timings are **observability only**: they are carried in
//! [`crate::Stats`] but deliberately excluded from its `PartialEq`, never
//! feed any algorithmic decision, and never touch the model's observables
//! (labels, charges, round counts). That is why the wall-clock reads below
//! carry conformance suppressions — replayability (Definition 9) concerns
//! the simulated execution, not how long the host took to run it.
//!
//! With the `alloc-count` feature a process-wide allocation counter is
//! also available (see [`counting_alloc`]); the `perf` binary installs it
//! to report allocations per workload.

use std::fmt;
// Wall-clock handle for phase attribution; see the module docs for why
// this is exempt from the replayability rule.
// conformance: allow(nondeterminism)
use std::time::Instant;

/// Cumulative wall-clock attribution of engine work, in nanoseconds.
///
/// Absorbed alongside [`crate::Stats`] ledgers; excluded from `Stats`
/// equality so bit-identity comparisons (seq vs par, replay determinism)
/// are unaffected by host timing noise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Sorting pending messages into per-machine delivery ranges,
    /// retransmission/partition-heal delivery, and straggler carry — plus,
    /// on the accounted layer, graph distribution.
    pub route_ns: u64,
    /// Inbox receive-cap enforcement and reorder-fault application.
    pub intake_ns: u64,
    /// Per-machine round callbacks — and, on the accounted layer, the
    /// per-vertex sweeps (ball collection, label updates).
    pub step_ns: u64,
    /// Send caps, storage charges, ledger-delta absorption, component-tag
    /// propagation, transport coins, and outbox staging.
    pub merge_ns: u64,
    /// Checkpoint capture and restore.
    pub checkpoint_ns: u64,
}

impl PhaseTimes {
    /// Sums another attribution into this one (saturating).
    pub fn absorb(&mut self, other: &PhaseTimes) {
        self.route_ns = self.route_ns.saturating_add(other.route_ns);
        self.intake_ns = self.intake_ns.saturating_add(other.intake_ns);
        self.step_ns = self.step_ns.saturating_add(other.step_ns);
        self.merge_ns = self.merge_ns.saturating_add(other.merge_ns);
        self.checkpoint_ns = self.checkpoint_ns.saturating_add(other.checkpoint_ns);
    }

    /// Total attributed nanoseconds across all phases.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.route_ns
            .saturating_add(self.intake_ns)
            .saturating_add(self.step_ns)
            .saturating_add(self.merge_ns)
            .saturating_add(self.checkpoint_ns)
    }

    /// `true` when no phase has recorded any time.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.total_ns() == 0
    }
}

impl fmt::Display for PhaseTimes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "route={}ns, intake={}ns, step={}ns, merge={}ns, checkpoint={}ns",
            self.route_ns, self.intake_ns, self.step_ns, self.merge_ns, self.checkpoint_ns
        )
    }
}

/// A started phase stopwatch; read it with [`PhaseTimer::elapsed_ns`].
#[derive(Debug, Clone, Copy)]
pub struct PhaseTimer {
    // conformance: allow(nondeterminism)
    started: Instant,
}

impl PhaseTimer {
    /// Starts timing now.
    #[must_use]
    pub fn start() -> Self {
        PhaseTimer {
            // conformance: allow(nondeterminism)
            started: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since [`PhaseTimer::start`], clamped to `u64`.
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Process-wide allocation counter, available behind the `alloc-count`
/// feature. A binary opts in by installing the allocator:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: csmpc_mpc::phase::counting_alloc::CountingAllocator =
///     csmpc_mpc::phase::counting_alloc::CountingAllocator;
/// ```
///
/// and then reads deltas of
/// [`allocations`](counting_alloc::allocations) around a workload.
#[cfg(feature = "alloc-count")]
pub mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    /// Pass-through system allocator that counts every allocation.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct CountingAllocator;

    // SAFETY: delegates directly to `System`; the counter has no effect on
    // the returned memory.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            // SAFETY: forwarded verbatim; caller upholds `GlobalAlloc`'s
            // contract for `layout`.
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            // SAFETY: forwarded verbatim; `ptr` was produced by the same
            // `System` allocator with this `layout`.
            unsafe { System.dealloc(ptr, layout) }
        }
    }

    /// Allocations observed so far, process-wide.
    #[must_use]
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_all_phases() {
        let mut a = PhaseTimes {
            route_ns: 1,
            intake_ns: 2,
            step_ns: 3,
            merge_ns: 4,
            checkpoint_ns: 5,
        };
        let b = PhaseTimes {
            route_ns: 10,
            intake_ns: 20,
            step_ns: 30,
            merge_ns: 40,
            checkpoint_ns: u64::MAX,
        };
        a.absorb(&b);
        assert_eq!(a.route_ns, 11);
        assert_eq!(a.intake_ns, 22);
        assert_eq!(a.step_ns, 33);
        assert_eq!(a.merge_ns, 44);
        assert_eq!(a.checkpoint_ns, u64::MAX, "saturates, never wraps");
        assert!(!a.is_zero());
        assert_eq!(PhaseTimes::default().total_ns(), 0);
        assert!(PhaseTimes::default().is_zero());
    }

    #[test]
    fn timer_is_monotone() {
        let t = PhaseTimer::start();
        let first = t.elapsed_ns();
        let second = t.elapsed_ns();
        assert!(second >= first);
    }
}
