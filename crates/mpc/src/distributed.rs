//! A graph distributed across the cluster, with accounted MPC primitives.
//!
//! The input graph's edges are spread over machines (the paper's "input is
//! arbitrarily distributed"); each node has a *home machine* responsible for
//! its output. Every primitive charges its textbook low-space round cost to
//! the cluster ledger and asserts space feasibility; see the module docs of
//! [`crate::cluster`] for the accounting philosophy.
//!
//! Round costs charged (with `d = ⌈log_S M⌉ = O(1/φ)` the aggregation-tree
//! depth):
//!
//! | primitive                   | rounds charged |
//! |-----------------------------|----------------|
//! | `distribute`                | 1              |
//! | `aggregate` / `broadcast`   | `d`            |
//! | `count_nodes`, `max_degree` | `d`            |
//! | `neighbor_reduce` (sort)    | `2d`           |
//! | `collect_balls(r)`          | `(⌈log₂ r⌉+1)·2d` |
//! | `cc_labels_pointer_jumping` | `O(log n)` measured iterations × 2 |

use crate::ball_cache::{self, BallSet};
use crate::cluster::{Cluster, MpcError};
use crate::phase::{PhaseTimer, PhaseTimes};
use crate::provenance::ComponentId;
use csmpc_graph::rng::{FastRange, SplitMix64};
use csmpc_graph::Graph;
use csmpc_parallel::par_map_range;

/// Words needed to describe a graph fragment: node records (id, name) plus
/// edge records (two endpoints).
#[must_use]
pub fn graph_words(g: &Graph) -> usize {
    2 * g.n() + 2 * g.m()
}

/// A graph whose edges and node records live on cluster machines.
#[derive(Debug)]
pub struct DistributedGraph<'a> {
    g: &'a Graph,
    node_home: Vec<usize>,
    edge_home: Vec<usize>,
    component_of: Vec<ComponentId>,
    /// Counting-sort partition of nodes by home machine: machine `mid`'s
    /// nodes are `part_nodes[part_offsets[mid]..part_offsets[mid + 1]]`,
    /// ascending. Precomputed once so [`DistributedGraph::nodes_on`] is an
    /// O(1) slice instead of an O(n) filter per call.
    part_offsets: Vec<usize>,
    part_nodes: Vec<usize>,
}

impl<'a> DistributedGraph<'a> {
    /// Distributes `g` over the cluster's machines: edges are placed
    /// pseudo-randomly (the "arbitrary initial distribution"), node records
    /// go to `hash(name) mod M`. Charges 1 round.
    ///
    /// # Errors
    ///
    /// [`MpcError::SpaceExceeded`] if any machine's share exceeds `S`.
    pub fn distribute(g: &'a Graph, cluster: &mut Cluster) -> Result<Self, MpcError> {
        let timer = PhaseTimer::start();
        let m = cluster.num_machines();
        let mode = cluster.config().parallelism;
        let mut rng = SplitMix64::new(cluster.shared_seed().derive(0xd157));
        // One prepared reducer for every `mod M` in the placement sweeps:
        // `FastRange` draws and reduces bit-identically to
        // `rng.index(m)` / `% m` but without the per-draw divisions.
        let machine_of = FastRange::index(m);
        let node_home: Vec<usize> = par_map_range(mode, g.n(), |v| {
            // Finalizer-quality hash so sequential names spread evenly
            // regardless of the machine count's factorization. Stateless
            // per node, so the sweep parallelizes without reordering.
            let mut z = g.name(v).0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            machine_of.rem(z ^ (z >> 31)) as usize
        });
        // Edge placement draws from a single sequential RNG stream; it must
        // stay a sequential loop to keep the stream (and so the placement)
        // independent of the parallelism mode. The per-machine edge
        // histogram (space check, and grouping in the fallback below) rides
        // along in the same pass.
        let mut edge_counts = vec![0usize; m];
        let edge_home: Vec<usize> = (0..g.m())
            .map(|_| {
                let h = machine_of.sample_index(&mut rng);
                edge_counts[h] += 1;
                h
            })
            .collect();
        // Connected-component labels, dense `0..k` numbered by smallest
        // node index — the `Graph::component_labels` numbering exactly,
        // computed by union-find over the edge stream instead of a DFS
        // chasing adjacency Vecs. Pointing the larger root at the smaller
        // keeps each set's root at its minimum element, so the ascending
        // label scan below reproduces the DFS numbering; path halving in
        // `find` keeps the forest shallow.
        fn find(parent: &mut [u32], mut v: u32) -> u32 {
            while parent[v as usize] != v {
                let gp = parent[parent[v as usize] as usize];
                parent[v as usize] = gp;
                v = gp;
            }
            v
        }
        let mut parent: Vec<u32> = (0..g.n() as u32).collect();
        // First endpoint of each edge in `g.edges()` order, captured during
        // the union walk so the provenance sweep below reads a flat array
        // instead of chasing the per-node adjacency Vecs a second time.
        let mut edge_src: Vec<u32> = Vec::with_capacity(g.m());
        for (u, w) in g.edges() {
            edge_src.push(u as u32);
            let (ru, rw) = (find(&mut parent, u as u32), find(&mut parent, w as u32));
            if ru < rw {
                parent[rw as usize] = ru;
            } else if rw < ru {
                parent[ru as usize] = rw;
            }
        }
        let mut component_of: Vec<ComponentId> = vec![0; g.n()];
        let mut components: ComponentId = 0;
        for v in 0..g.n() as u32 {
            let r = find(&mut parent, v);
            if r == v {
                component_of[v as usize] = components;
                components += 1;
            } else {
                // `r < v` (roots are set minima), so its label is final.
                component_of[v as usize] = component_of[r as usize];
            }
        }
        // Per-machine node histogram — the space check *and* the
        // partition's counting-sort offsets below. When the input has few
        // components the provenance bitmask sweep (see below) rides along
        // in the same pass instead of re-reading `node_home`.
        let masked = components > 1 && (components as usize) <= 64;
        let mut held: Vec<u64> = vec![0; if masked { m } else { 0 }];
        let mut node_counts = vec![0usize; m];
        if masked {
            for (v, &h) in node_home.iter().enumerate() {
                node_counts[h] += 1;
                held[h] |= 1u64 << component_of[v];
            }
        } else {
            for &h in &node_home {
                node_counts[h] += 1;
            }
        }
        cluster.advance_rounds(1)?;
        // Each record is 2 words, so machine `h` holds
        // `2 * (node_counts[h] + edge_counts[h])` words.
        let (argmax, max) = (0..m)
            .map(|h| node_counts[h] + edge_counts[h])
            .enumerate()
            .max_by_key(|&(_, w)| w)
            .unwrap_or((0, 0));
        cluster.charge_words(2 * max, graph_words(g) as u64);
        cluster.charge_storage(argmax, 2 * max)?;
        // Component-provenance seeding. Per-record ordered-set inserts —
        // 2(n+m) of them, almost all duplicate hits — dominated the route
        // phase of the accounted workloads; both replacements below do the
        // same work with flat array writes, and tag runs are
        // insertion-order-insensitive, so the provenance state is
        // bit-identical either way.
        if components == 1 && g.n() > 0 {
            // Connected input: every record carries component 0, so a
            // machine's tag run is `[0]` exactly when it received anything
            // — the histograms already know which did. No sweep at all.
            cluster.seed_machines_component_zero(
                (0..m).filter(|&h| node_counts[h] + edge_counts[h] > 0),
            );
        } else if masked {
            // Few components (benchmark inputs have 1–2): the distinct
            // component set of a machine fits a u64 bitmask, so the
            // histogram pass above OR-accumulated per-machine masks for
            // the node records; the edge records fold in here from the
            // flat `edge_src` copy, and bit iteration inside the bulk
            // seeding yields each machine's tag run already sorted — no
            // record buffer, no dedup stamp, no sort.
            for (e, &u) in edge_src.iter().enumerate() {
                held[edge_home[e]] |= 1u64 << component_of[u as usize];
            }
            cluster.seed_machine_tag_masks(&held);
        } else {
            // General fallback: group the (machine, component) records by
            // machine with the same counting-sort idiom as the engine's
            // message fabric, then deduplicate each group with a
            // component-stamp array. `group_counts` is scanned into
            // exclusive offsets and consumed as the scatter cursors: after
            // the scatter, `group_counts[h]` has advanced to the *end* of
            // group `h`.
            let mut group_counts: Vec<usize> =
                (0..m).map(|h| node_counts[h] + edge_counts[h]).collect();
            let mut lo = 0usize;
            for c in &mut group_counts {
                let len = *c;
                *c = lo;
                lo += len;
            }
            let mut tag_records: Vec<ComponentId> = vec![0; g.n() + g.m()];
            for (v, &h) in node_home.iter().enumerate() {
                tag_records[group_counts[h]] = component_of[v];
                group_counts[h] += 1;
            }
            for (e, &u) in edge_src.iter().enumerate() {
                let h = edge_home[e];
                tag_records[group_counts[h]] = component_of[u as usize];
                group_counts[h] += 1;
            }
            // Labels are dense `0..k`, so a flat per-component stamp of
            // the last machine that saw it deduplicates each group without
            // sorting.
            let mut stamped: Vec<usize> = vec![usize::MAX; components as usize];
            let mut distinct: Vec<ComponentId> = Vec::new();
            let mut group_lo = 0usize;
            for (mid, &group_hi) in group_counts.iter().enumerate() {
                distinct.clear();
                for &c in &tag_records[group_lo..group_hi] {
                    if stamped[c as usize] != mid {
                        stamped[c as usize] = mid;
                        distinct.push(c);
                    }
                }
                if !distinct.is_empty() {
                    distinct.sort_unstable();
                    cluster.seed_machine_tags(mid, &distinct);
                }
                group_lo = group_hi;
            }
        }
        // Counting sort of nodes by home machine (ascending node order
        // within each machine — the order the old per-call filter
        // produced). The node histogram is scanned into the exclusive
        // offsets in place and consumed as the scatter cursors.
        let mut part_offsets = vec![0usize; m + 1];
        let mut lo = 0usize;
        for (h, c) in node_counts.iter_mut().enumerate() {
            part_offsets[h] = lo;
            let len = *c;
            *c = lo;
            lo += len;
        }
        part_offsets[m] = lo;
        let mut part_nodes = vec![0usize; g.n()];
        for (v, &h) in node_home.iter().enumerate() {
            part_nodes[node_counts[h]] = v;
            node_counts[h] += 1;
        }
        cluster.record_phase(&PhaseTimes {
            route_ns: timer.elapsed_ns(),
            ..PhaseTimes::default()
        });
        Ok(DistributedGraph {
            g,
            node_home,
            edge_home,
            component_of,
            part_offsets,
            part_nodes,
        })
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        self.g
    }

    /// Home machine of node `v`.
    #[must_use]
    pub fn node_home(&self, v: usize) -> usize {
        self.node_home[v]
    }

    /// Home machine of edge `e` (by edge index in `g.edges()` order).
    #[must_use]
    pub fn edge_home(&self, e: usize) -> usize {
        self.edge_home[e]
    }

    /// Node indices homed on machine `mid`, ascending — a borrowed slice
    /// of the partition precomputed at distribution time (no per-call
    /// scan or allocation). Out-of-range `mid` yields the empty slice.
    #[must_use]
    pub fn nodes_on(&self, mid: usize) -> &[usize] {
        match (self.part_offsets.get(mid), self.part_offsets.get(mid + 1)) {
            (Some(&lo), Some(&hi)) => &self.part_nodes[lo..hi],
            _ => &[],
        }
    }

    /// Connected-component label of node `v` (provenance numbering).
    #[must_use]
    pub fn component_of(&self, v: usize) -> ComponentId {
        self.component_of[v]
    }

    /// `true` when the graph spans more than one connected component.
    #[must_use]
    pub fn is_multi_component(&self) -> bool {
        // Labels are numbered 0.. in order of first appearance, so any
        // nonzero label means a second component exists.
        self.component_of.iter().any(|&c| c != 0)
    }

    /// Exact node count via an aggregation tree. Charges `d` rounds.
    ///
    /// # Errors
    ///
    /// [`MpcError::MachineFailed`] from an armed fault plan.
    pub fn count_nodes(&self, cluster: &mut Cluster) -> Result<usize, MpcError> {
        let d = cluster
            .config()
            .tree_depth(cluster.input_n(), cluster.num_machines());
        cluster.advance_rounds(d)?;
        Ok(self.g.n())
    }

    /// Exact maximum degree via aggregation. Charges `2d` rounds (one
    /// neighbor count pass + one max pass).
    ///
    /// # Errors
    ///
    /// [`MpcError::MachineFailed`] from an armed fault plan.
    pub fn max_degree(&self, cluster: &mut Cluster) -> Result<usize, MpcError> {
        let d = cluster
            .config()
            .tree_depth(cluster.input_n(), cluster.num_machines());
        cluster.advance_rounds(2 * d)?;
        Ok(self.g.max_degree())
    }

    /// Broadcasts a value from one machine to all. Charges `d` rounds.
    ///
    /// A broadcast hands every machine — and therefore every component's
    /// home machines — a value of unrestricted origin, so on a
    /// multi-component input it records a global provenance mix. Use
    /// [`DistributedGraph::count_nodes`] / [`DistributedGraph::max_degree`]
    /// for the global quantities Definition 13 explicitly allows.
    ///
    /// # Errors
    ///
    /// [`MpcError::MachineFailed`] from an armed fault plan.
    pub fn broadcast<T: Clone>(&self, cluster: &mut Cluster, value: &T) -> Result<T, MpcError> {
        let d = cluster
            .config()
            .tree_depth(cluster.input_n(), cluster.num_machines());
        cluster.advance_rounds(d)?;
        let round = cluster.stats().rounds;
        cluster.provenance_mut().record_global_mix(
            "broadcast",
            round,
            self.component_of.iter().copied(),
        );
        Ok(value.clone())
    }

    /// Aggregates per-node values with a commutative, associative `op`.
    /// Charges `d` rounds. Returns `None` on an empty graph.
    ///
    /// The result mixes data from every component, so on a multi-component
    /// input this records a global provenance mix — aggregation over the
    /// whole input is exactly the kind of global read a component-stable
    /// algorithm (Definition 13) must not perform.
    ///
    /// # Errors
    ///
    /// [`MpcError::MachineFailed`] from an armed fault plan.
    pub fn aggregate<T: Clone>(
        &self,
        cluster: &mut Cluster,
        values: &[T],
        op: impl Fn(T, T) -> T,
    ) -> Result<Option<T>, MpcError> {
        assert_eq!(values.len(), self.g.n(), "one value per node expected");
        let d = cluster
            .config()
            .tree_depth(cluster.input_n(), cluster.num_machines());
        cluster.advance_rounds(d)?;
        let round = cluster.stats().rounds;
        cluster.provenance_mut().record_global_mix(
            "aggregate",
            round,
            self.component_of.iter().copied(),
        );
        Ok(values.iter().cloned().reduce(op))
    }

    /// Global winner selection over `candidates` — the accounted form of
    /// success amplification (Theorem 5): all repetitions are scored by a
    /// concurrent per-repetition aggregation (`d` rounds), a global argmax
    /// picks the winner (`d` rounds), and the winning labels are broadcast
    /// back (`d` rounds). Ties keep the earliest repetition.
    ///
    /// Selection depends on outcomes in *all* components simultaneously —
    /// the paper's canonical component-unstable step — so on a
    /// multi-component input this records a global provenance mix.
    ///
    /// Returns `(winner_index, winner_labels, scores)`.
    ///
    /// # Errors
    ///
    /// [`MpcError::MachineFailed`] from an armed fault plan.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    #[allow(clippy::type_complexity)]
    pub fn select_best_global<L: Clone>(
        &self,
        cluster: &mut Cluster,
        candidates: &[Vec<L>],
        score: impl Fn(&[L]) -> f64,
    ) -> Result<(usize, Vec<L>, Vec<f64>), MpcError> {
        assert!(!candidates.is_empty(), "need at least one candidate");
        let d = cluster
            .config()
            .tree_depth(cluster.input_n(), cluster.num_machines());
        // Concurrent per-repetition score aggregation, global argmax,
        // winner broadcast.
        cluster.advance_rounds(3 * d)?;
        let round = cluster.stats().rounds;
        cluster.provenance_mut().record_global_mix(
            "select-best-global",
            round,
            self.component_of.iter().copied(),
        );
        let scores: Vec<f64> = candidates.iter().map(|c| score(c)).collect();
        let mut winner = 0usize;
        for (i, &s) in scores.iter().enumerate() {
            if s > scores[winner] {
                winner = i;
            }
        }
        Ok((winner, candidates[winner].clone(), scores))
    }

    /// For each node, reduces `op` over the values of its *neighbors*
    /// (`None` for isolated nodes). Implemented in real MPC by sorting edge
    /// records keyed by endpoint and segmented reduction; charges `2d`
    /// rounds.
    ///
    /// # Errors
    ///
    /// [`MpcError::MachineFailed`] from an armed fault plan.
    pub fn neighbor_reduce<T: Clone + Send + Sync>(
        &self,
        cluster: &mut Cluster,
        values: &[T],
        op: impl Fn(T, T) -> T + Sync,
    ) -> Result<Vec<Option<T>>, MpcError> {
        assert_eq!(values.len(), self.g.n(), "one value per node expected");
        let mode = cluster.config().parallelism;
        let d = cluster
            .config()
            .tree_depth(cluster.input_n(), cluster.num_machines());
        cluster.advance_rounds(2 * d)?;
        // Per-vertex reduction over that vertex's own adjacency list: each
        // reduction folds left in neighbor order regardless of mode, so the
        // sweep parallelizes bit-identically.
        let timer = PhaseTimer::start();
        let out = par_map_range(mode, self.g.n(), |v| {
            self.g
                .neighbors(v)
                .iter()
                .map(|&w| values[w as usize].clone())
                .reduce(&op)
        });
        cluster.record_phase(&PhaseTimes {
            step_ns: timer.elapsed_ns(),
            ..PhaseTimes::default()
        });
        Ok(out)
    }

    /// Collects the `r`-radius ball of every node via graph exponentiation
    /// (doubling). Charges `(⌈log₂ r⌉ + 1) · 2d` rounds and asserts every
    /// ball fits in a machine (`graph_words(ball) ≤ S`).
    ///
    /// The host-side computation sweeps per-thread flat
    /// [`csmpc_graph::ball::BallWorkspace`]s over a CSR adjacency view and
    /// is memoized in the process-wide [`crate::BallCache`], keyed by exact
    /// graph content — repetition loops re-running the same input (e.g.
    /// success-probability trials) share one computed set behind the
    /// returned [`BallSet`] handle. The ledger cannot tell a hit from a
    /// miss: rounds, words, and the space assertion are charged
    /// identically either way (the *simulated* algorithm always performs
    /// the collection), and a fault-mutated graph never matches a stale
    /// key.
    ///
    /// # Errors
    ///
    /// [`MpcError::SpaceExceeded`] when some ball is too large — exactly the
    /// regime where the paper's `Δ^{O(T)} ≤ n^φ` side conditions fail.
    pub fn collect_balls(&self, cluster: &mut Cluster, r: usize) -> Result<BallSet, MpcError> {
        let doublings = if r <= 1 {
            1
        } else {
            (usize::BITS - (r - 1).leading_zeros()) as usize + 1
        };
        let d = cluster
            .config()
            .tree_depth(cluster.input_n(), cluster.num_machines());
        let mode = cluster.config().parallelism;
        cluster.advance_rounds(doublings * 2 * d)?;
        let timer = PhaseTimer::start();
        let (out, worst) = ball_cache::global().collect(self.g, r, mode);
        cluster.record_phase(&PhaseTimes {
            step_ns: timer.elapsed_ns(),
            ..PhaseTimes::default()
        });
        cluster.charge_words(worst, (self.g.n() * worst) as u64);
        cluster.require_fits(worst)?;
        Ok(out)
    }

    /// Connected-component labels (minimum node *name* in the component) via
    /// pointer jumping, the `O(log n)`-round technique matching the
    /// connectivity-conjecture baseline. Works for any graph; each
    /// iteration doubles the reach. Charges `2d` rounds per measured
    /// iteration and returns `(labels, iterations)`.
    ///
    /// # Errors
    ///
    /// [`MpcError::MachineFailed`] from an armed fault plan.
    pub fn cc_labels(&self, cluster: &mut Cluster) -> Result<(Vec<u64>, usize), MpcError> {
        let n = self.g.n();
        let mode = cluster.config().parallelism;
        let d = cluster
            .config()
            .tree_depth(cluster.input_n(), cluster.num_machines());
        // labels start as own name; pointer[v] = min name within current
        // reach. Each iteration: label[v] <- min(label[v], min over nbrs'
        // labels), then pointer-jump: label[v] <- label[argmin] — realized
        // here as doubling by composing the "min over my reach set" map.
        let mut label: Vec<u64> = (0..n).map(|v| self.g.name(v).0).collect();
        // Name-to-node lookup for the jump step; node names never change,
        // so this is loop-invariant.
        let by_name: std::collections::BTreeMap<u64, usize> =
            (0..n).map(|v| (self.g.name(v).0, v)).collect();
        let mut iterations = 0usize;
        let mut sweep_ns = 0u64;
        loop {
            iterations += 1;
            cluster.advance_rounds(2 * d)?;
            let timer = PhaseTimer::start();
            // Hook: take min over neighbors. Each vertex reads only the
            // previous iteration's labels, so the sweep is a pure map.
            let next: Vec<u64> = par_map_range(mode, n, |v| {
                let mut nv = label[v];
                for &w in self.g.neighbors(v) {
                    let lw = label[w as usize];
                    if lw < nv {
                        nv = lw;
                    }
                }
                nv
            });
            // Jump: label[v] <- label of the node whose name is next[v]
            // (pointer doubling through the current label map).
            let jumped: Vec<u64> = par_map_range(mode, n, |v| {
                let mut jv = next[v];
                if let Some(&rep) = by_name.get(&next[v]) {
                    jv = jv.min(label[rep]).min(next[rep]);
                }
                jv
            });
            sweep_ns = sweep_ns.saturating_add(timer.elapsed_ns());
            if jumped == label {
                break;
            }
            label = jumped;
        }
        cluster.record_phase(&PhaseTimes {
            step_ns: sweep_ns,
            ..PhaseTimes::default()
        });
        Ok((label, iterations))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpcConfig;
    use csmpc_graph::generators;
    use csmpc_graph::rng::Seed;

    fn cluster_for(g: &Graph) -> Cluster {
        Cluster::new(MpcConfig::with_phi(0.5), g.n(), graph_words(g), Seed(7))
    }

    #[test]
    fn distribute_counts_and_space() {
        let g = generators::cycle(64);
        let mut cl = cluster_for(&g);
        let dg = DistributedGraph::distribute(&g, &mut cl).unwrap();
        assert_eq!(cl.stats().rounds, 1);
        assert_eq!(dg.count_nodes(&mut cl).unwrap(), 64);
        assert!(cl.stats().rounds > 1);
    }

    #[test]
    fn max_degree_correct() {
        let g = generators::star(9);
        let mut cl = cluster_for(&g);
        let dg = DistributedGraph::distribute(&g, &mut cl).unwrap();
        assert_eq!(dg.max_degree(&mut cl).unwrap(), 9);
    }

    #[test]
    fn neighbor_reduce_min_on_path() {
        let g = generators::path(5);
        let mut cl = cluster_for(&g);
        let dg = DistributedGraph::distribute(&g, &mut cl).unwrap();
        let vals: Vec<u64> = (0..5).map(|v| v as u64 * 10).collect();
        let mins = dg.neighbor_reduce(&mut cl, &vals, std::cmp::min).unwrap();
        assert_eq!(mins[0], Some(10));
        assert_eq!(mins[2], Some(10));
        assert_eq!(mins[4], Some(30));
    }

    #[test]
    fn neighbor_reduce_isolated_none() {
        let g = csmpc_graph::GraphBuilder::with_sequential_nodes(3)
            .build()
            .unwrap();
        let mut cl = cluster_for(&g);
        let dg = DistributedGraph::distribute(&g, &mut cl).unwrap();
        let mins = dg
            .neighbor_reduce(&mut cl, &[1u64, 2, 3], std::cmp::min)
            .unwrap();
        assert!(mins.iter().all(Option::is_none));
    }

    #[test]
    fn collect_balls_small_radius() {
        let g = generators::cycle(32);
        let mut cl = cluster_for(&g);
        let dg = DistributedGraph::distribute(&g, &mut cl).unwrap();
        let balls = dg.collect_balls(&mut cl, 2).unwrap();
        assert!(balls.iter().all(|(b, _)| b.n() == 5));
    }

    #[test]
    fn collect_balls_space_violation() {
        // A big star: the ball around the center is the whole graph and
        // exceeds S = sqrt(n).
        let g = generators::star(400);
        let mut cl = cluster_for(&g);
        let dg = DistributedGraph::distribute(&g, &mut cl).unwrap();
        let err = dg.collect_balls(&mut cl, 1).unwrap_err();
        assert!(matches!(err, MpcError::SpaceExceeded { .. }));
    }

    #[test]
    fn cc_labels_cycle_vs_two_cycles() {
        let one = generators::cycle(64);
        let mut cl = cluster_for(&one);
        let dg = DistributedGraph::distribute(&one, &mut cl).unwrap();
        let (labels, _) = dg.cc_labels(&mut cl).unwrap();
        assert!(labels.iter().all(|&l| l == labels[0]));

        let two = generators::two_cycles(64);
        let mut cl2 = cluster_for(&two);
        let dg2 = DistributedGraph::distribute(&two, &mut cl2).unwrap();
        let (labels2, _) = dg2.cc_labels(&mut cl2).unwrap();
        let distinct: std::collections::HashSet<u64> = labels2.iter().copied().collect();
        assert_eq!(distinct.len(), 2);
    }

    #[test]
    fn cc_iterations_logarithmic() {
        // Pointer jumping converges in O(log n) iterations on a cycle.
        let g = generators::cycle(256);
        let mut cl = cluster_for(&g);
        let dg = DistributedGraph::distribute(&g, &mut cl).unwrap();
        let (_, iters) = dg.cc_labels(&mut cl).unwrap();
        assert!(
            iters <= 2 * (256f64).log2() as usize + 2,
            "iterations {iters} not logarithmic"
        );
        assert!(iters >= 4, "suspiciously fast: {iters}");
    }

    #[test]
    fn aggregate_sum() {
        let g = generators::path(10);
        let mut cl = cluster_for(&g);
        let dg = DistributedGraph::distribute(&g, &mut cl).unwrap();
        let total = dg
            .aggregate(&mut cl, &[1u64; 10], |a, b| a + b)
            .unwrap()
            .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn armed_fail_fast_crash_surfaces_from_primitive() {
        use crate::faults::{FaultPlan, RecoveryPolicy};
        let g = generators::cycle(64);
        let mut cl = cluster_for(&g);
        let dg = DistributedGraph::distribute(&g, &mut cl).unwrap();
        cl.arm_faults(
            FaultPlan::quiet(Seed(5)).crash(0, cl.stats().rounds + 1),
            RecoveryPolicy::FailFast,
        );
        let err = dg.count_nodes(&mut cl).unwrap_err();
        assert!(matches!(err, MpcError::MachineFailed { machine: 0, .. }));
    }

    #[test]
    fn armed_restart_crash_charges_and_recovers() {
        use crate::faults::{FaultPlan, RecoveryPolicy};
        let g = generators::cycle(64);

        let mut clean = cluster_for(&g);
        let dg = DistributedGraph::distribute(&g, &mut clean).unwrap();
        let (labels_clean, _) = dg.cc_labels(&mut clean).unwrap();
        let clean_stats = clean.stats().clone();

        let mut faulty = cluster_for(&g);
        let dg2 = DistributedGraph::distribute(&g, &mut faulty).unwrap();
        faulty.arm_faults(
            FaultPlan::quiet(Seed(5)).crash(2, faulty.stats().rounds + 3),
            RecoveryPolicy::restart(4),
        );
        let (labels_faulty, _) = dg2.cc_labels(&mut faulty).unwrap();

        assert_eq!(labels_clean, labels_faulty, "recovery preserves output");
        assert_eq!(faulty.recovery_log().len(), 1);
        assert!(
            faulty.stats().rounds > clean_stats.rounds,
            "recovery must cost rounds: {} vs {}",
            faulty.stats().rounds,
            clean_stats.rounds
        );
        assert!(
            faulty.stats().total_words > clean_stats.total_words,
            "recovery must cost words"
        );
    }

    #[test]
    fn armed_straggler_stalls_the_barrier() {
        use crate::faults::{FaultPlan, RecoveryPolicy};
        let g = generators::cycle(32);
        let mut cl = cluster_for(&g);
        let dg = DistributedGraph::distribute(&g, &mut cl).unwrap();
        let before = cl.stats().rounds;
        cl.arm_faults(
            FaultPlan::quiet(Seed(5)).straggle(1, before + 1, 7),
            RecoveryPolicy::FailFast,
        );
        dg.count_nodes(&mut cl).unwrap();
        let d = cl.config().tree_depth(cl.input_n(), cl.num_machines());
        assert_eq!(
            cl.stats().rounds,
            before + d + 7,
            "a 7-round straggler stalls the barrier for everyone"
        );
    }
}
