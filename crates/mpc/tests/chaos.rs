//! The chaos harness: seeded fault plans swept over real algorithms and
//! the exact engine.
//!
//! Three properties are enforced, per algorithm, across ≥20 seeded plans:
//!
//! 1. **Replay determinism** — the same seed and the same plan produce the
//!    identical output, `Stats` ledger, provenance log, and recovery log,
//!    run after run. Faults are part of the replayable execution, not
//!    outside it.
//! 2. **Recovery is never free** — whenever a crash is recovered, the
//!    ledger shows strictly more rounds *and* strictly more total words
//!    than the fault-free baseline.
//! 3. **Foreign-crash immunity** — crashing a machine whose
//!    `machine_components` tags are disjoint from a target component never
//!    changes a component-stable algorithm's output on that component
//!    (Definition 13 extended to the fault model).

use csmpc_algorithms::amplify::StableOneShotIs;
use csmpc_algorithms::api::MpcVertexAlgorithm;
use csmpc_algorithms::mpc_edge::BallGreedyColoringMpc;
use csmpc_core::stability::verify_crash_immunity;
use csmpc_graph::rng::Seed;
use csmpc_graph::{generators, ops, Graph};
use csmpc_mpc::{
    exact_aggregate_sum, exact_aggregate_sum_with_faults, Cluster, ComponentId, DistributedGraph,
    FaultPlan, MpcConfig, MpcError, RecoveryPolicy,
};
use std::collections::BTreeSet;

const PLANS_PER_ALGORITHM: u64 = 20;

/// Two components: a small target (nodes `0..8`) next to a much larger
/// rest, so that several machines hold *only* rest records — the foreign
/// machines the crash-immunity probes need.
fn chaos_graph() -> Graph {
    let target = generators::cycle(8);
    let rest = ops::with_fresh_names(&generators::cycle(40), 500);
    ops::disjoint_union(&[&target, &rest])
}

/// A deliberately tight cluster: a small space floor spreads the records
/// over several machines, so crashes can strike a real subset of state.
fn chaos_cluster(g: &Graph, seed: Seed) -> Cluster {
    let cfg = MpcConfig {
        min_space: 48,
        ..Default::default()
    };
    Cluster::new(cfg, g.n(), csmpc_mpc::graph_words(g), seed)
}

/// The swept algorithms, erased to a common label type.
struct ChaosAlgo {
    name: &'static str,
    run: fn(&Graph, &mut Cluster) -> Result<Vec<u64>, MpcError>,
}

fn run_luby_mis(g: &Graph, cluster: &mut Cluster) -> Result<Vec<u64>, MpcError> {
    let labels = StableOneShotIs.run(g, cluster)?;
    Ok(labels.into_iter().map(u64::from).collect())
}

fn run_coloring(g: &Graph, cluster: &mut Cluster) -> Result<Vec<u64>, MpcError> {
    let labels = BallGreedyColoringMpc { radius: 3 }.run(g, cluster)?;
    Ok(labels.into_iter().map(|c| c as u64).collect())
}

fn run_cc_labels(g: &Graph, cluster: &mut Cluster) -> Result<Vec<u64>, MpcError> {
    let dg = DistributedGraph::distribute(g, cluster)?;
    let (labels, _) = dg.cc_labels(cluster)?;
    Ok(labels)
}

const ALGORITHMS: &[ChaosAlgo] = &[
    ChaosAlgo {
        name: "one-shot-luby-mis",
        run: run_luby_mis,
    },
    ChaosAlgo {
        name: "ball-greedy-coloring",
        run: run_coloring,
    },
    ChaosAlgo {
        name: "cc-labels",
        run: run_cc_labels,
    },
];

/// One faulted execution: fresh cluster, armed plan, restart policy.
fn faulted_run(algo: &ChaosAlgo, g: &Graph, seed: Seed, plan: &FaultPlan) -> (Vec<u64>, Cluster) {
    let mut cluster = chaos_cluster(g, seed);
    cluster.arm_faults(plan.clone(), RecoveryPolicy::restart(8));
    let labels = (algo.run)(g, &mut cluster)
        .unwrap_or_else(|e| panic!("{}: faulted run failed: {e}", algo.name));
    (labels, cluster)
}

#[test]
fn chaos_sweep_replays_deterministically_and_charges_recovery() {
    let g = chaos_graph();
    let shared = Seed(0xC0DE);
    for algo in ALGORITHMS {
        let mut baseline_cluster = chaos_cluster(&g, shared);
        let baseline = (algo.run)(&g, &mut baseline_cluster)
            .unwrap_or_else(|e| panic!("{}: baseline failed: {e}", algo.name));
        let base_stats = baseline_cluster.stats().clone();
        let machines = baseline_cluster.num_machines();
        let mut crashes_fired = 0usize;

        for p in 0..PLANS_PER_ALGORITHM {
            // Horizon 3 keeps every event inside even the shortest run.
            let plan = FaultPlan::random(Seed(0xFA57).derive(p), machines, 3, 1, 1);
            let (la, ca) = faulted_run(algo, &g, shared, &plan);
            let (lb, cb) = faulted_run(algo, &g, shared, &plan);

            // (1) Replay determinism: output, ledger, provenance, and the
            // recovery history are all identical.
            assert_eq!(la, lb, "{} plan {p}: outputs diverged on replay", algo.name);
            assert_eq!(
                ca.stats(),
                cb.stats(),
                "{} plan {p}: ledgers diverged on replay",
                algo.name
            );
            assert_eq!(
                ca.provenance(),
                cb.provenance(),
                "{} plan {p}: provenance diverged on replay",
                algo.name
            );
            assert_eq!(
                ca.recovery_log(),
                cb.recovery_log(),
                "{} plan {p}: recovery logs diverged on replay",
                algo.name
            );

            // Accounted-layer recovery replays in-process state, so the
            // output must equal the fault-free baseline exactly.
            assert_eq!(
                la, baseline,
                "{} plan {p}: faults changed the output",
                algo.name
            );

            // (2) Recovery is never free.
            if !ca.recovery_log().is_empty() {
                crashes_fired += 1;
                assert!(
                    ca.stats().rounds > base_stats.rounds,
                    "{} plan {p}: recovery did not cost rounds",
                    algo.name
                );
                assert!(
                    ca.stats().total_words > base_stats.total_words,
                    "{} plan {p}: recovery did not cost words",
                    algo.name
                );
            }
        }
        assert!(
            crashes_fired > 0,
            "{}: no plan's crash ever fired; the sweep is vacuous",
            algo.name
        );
    }
}

#[test]
fn foreign_component_crashes_never_change_outputs() {
    // (3) directly on machine tags, for every swept algorithm: the target
    // is the first component (nodes 0..10); a machine is foreign when its
    // provenance tags are disjoint from the target's component labels.
    let g = chaos_graph();
    let shared = Seed(0xBEEF);
    let target_nodes = 8usize;
    for algo in ALGORITHMS {
        let mut baseline_cluster = chaos_cluster(&g, shared);
        let baseline = (algo.run)(&g, &mut baseline_cluster).unwrap();
        let target: BTreeSet<ComponentId> = g.component_labels()[..target_nodes]
            .iter()
            .map(|&c| c as ComponentId)
            .collect();
        let foreign: Vec<usize> = (0..baseline_cluster.num_machines())
            .filter(|&m| {
                let tags = baseline_cluster.machine_components(m);
                !tags.is_empty() && !tags.iter().any(|c| target.contains(c))
            })
            .collect();
        assert!(
            !foreign.is_empty(),
            "{}: no foreign-tagged machine; tighten the cluster",
            algo.name
        );
        let mut crashes_fired = 0usize;
        for p in 0..PLANS_PER_ALGORITHM {
            let victim = foreign[(p as usize) % foreign.len()];
            let round = 1 + (p as usize) % 3;
            let plan = FaultPlan::quiet(shared.derive(p)).crash(victim, round);
            let (labels, cluster) = faulted_run(algo, &g, shared, &plan);
            if !cluster.recovery_log().is_empty() {
                crashes_fired += 1;
            }
            assert_eq!(
                &labels[..target_nodes],
                &baseline[..target_nodes],
                "{} plan {p}: foreign crash of machine {victim} leaked into the component",
                algo.name
            );
        }
        assert!(crashes_fired > 0, "{}: no crash fired", algo.name);
    }
}

#[test]
fn stable_algorithms_pass_the_core_crash_immunity_verifier() {
    // The packaged verifier (baseline tags -> targeted foreign crash ->
    // compare component outputs) agrees with the direct sweep above.
    let comp = generators::cycle(12);
    let mis = verify_crash_immunity(&StableOneShotIs, &comp, 20, Seed(21)).unwrap();
    assert!(mis.immune(), "witnesses: {:?}", mis.witnesses);
    assert!(mis.crashes_recovered > 0);
    let coloring =
        verify_crash_immunity(&BallGreedyColoringMpc { radius: 4 }, &comp, 20, Seed(22)).unwrap();
    assert!(coloring.immune(), "witnesses: {:?}", coloring.witnesses);
    assert!(coloring.crashes_recovered > 0);
}

#[test]
fn engine_chaos_sweep_sums_survive_transport_and_crash_faults() {
    // The exact engine under the same discipline: message drops and
    // duplications plus one crash, across 20 seeded plans. The tree sum
    // must come out exact, replays identical, and recovery charged.
    let values: Vec<u64> = (1..=100).collect();
    let expected: u64 = values.iter().sum();
    let mk_cluster = || Cluster::new(MpcConfig::with_phi(0.5), 400, 800, Seed(7));
    let mut quiet_cl = mk_cluster();
    let (quiet_sum, _) = exact_aggregate_sum(&mut quiet_cl, &values).unwrap();
    assert_eq!(quiet_sum, expected);
    let quiet_stats = quiet_cl.stats().clone();

    let mut recoveries_seen = 0usize;
    for p in 0..PLANS_PER_ALGORITHM {
        let machines = mk_cluster().num_machines();
        let plan = FaultPlan::random(Seed(0x5EED).derive(p), machines, 3, 1, 1)
            .with_message_faults(100, 100);
        let run = |policy| {
            let mut cl = mk_cluster();
            let out = exact_aggregate_sum_with_faults(&mut cl, &values, &plan, policy);
            (out, cl.stats().clone(), cl.recovery_log().to_vec())
        };
        let (out_a, stats_a, rec_a) = run(RecoveryPolicy::restart(8));
        let (out_b, stats_b, rec_b) = run(RecoveryPolicy::restart(8));
        let (sum_a, _) = out_a.unwrap_or_else(|e| panic!("plan {p}: {e}"));
        let (sum_b, _) = out_b.unwrap();
        assert_eq!(sum_a, expected, "plan {p}: wrong sum under faults");
        assert_eq!(sum_b, expected);
        assert_eq!(stats_a, stats_b, "plan {p}: engine replay diverged");
        assert_eq!(rec_a, rec_b, "plan {p}: recovery logs diverged");
        if !rec_a.is_empty() {
            recoveries_seen += 1;
            assert!(
                stats_a.rounds > quiet_stats.rounds
                    && stats_a.total_words > quiet_stats.total_words,
                "plan {p}: engine recovery was free (faulted {stats_a:?} vs quiet {quiet_stats:?})"
            );
        }
    }
    assert!(recoveries_seen > 0, "no engine crash ever fired");
}

#[test]
fn engine_chaos_sweep_survives_adversarial_transport() {
    // The adversarial transport classes layered onto the classic sweep:
    // payload corruption, in-round reordering, and a round-scoped
    // partition, on top of drops, duplications, and a crash. The sum must
    // stay exact across every plan (corruption is detected and retried,
    // never applied), replays must be identical, and every detected strike
    // must show up in the ledger.
    let values: Vec<u64> = (1..=100).collect();
    let expected: u64 = values.iter().sum();
    let mk_cluster = || Cluster::new(MpcConfig::with_phi(0.5), 400, 800, Seed(7));

    let mut corruption_seen = 0usize;
    for p in 0..PLANS_PER_ALGORITHM {
        let machines = mk_cluster().num_machines();
        let plan = FaultPlan::random(Seed(0xADE5).derive(p), machines, 3, 1, 1)
            .with_message_faults(60, 60)
            .with_corruption(150)
            .with_reordering(150)
            .partition(1 + (p as usize) % 2, 2, vec![(p as usize) % machines]);
        let run = || {
            let mut cl = mk_cluster();
            let out = exact_aggregate_sum_with_faults(
                &mut cl,
                &values,
                &plan,
                RecoveryPolicy::restart(8),
            );
            (out, cl.stats().clone(), cl.recovery_log().to_vec())
        };
        let (out_a, stats_a, rec_a) = run();
        let (out_b, stats_b, rec_b) = run();
        let (sum_a, _) = out_a.unwrap_or_else(|e| panic!("plan {p}: {e}"));
        let (sum_b, _) = out_b.unwrap();
        assert_eq!(
            sum_a, expected,
            "plan {p}: adversarial transport changed the sum"
        );
        assert_eq!(sum_b, expected);
        assert_eq!(stats_a, stats_b, "plan {p}: adversarial replay diverged");
        assert_eq!(rec_a, rec_b, "plan {p}: recovery logs diverged");
        if stats_a.corrupted_detected > 0 {
            corruption_seen += 1;
        }
    }
    assert!(corruption_seen > 0, "no plan ever detected a corruption");
}
