//! Steady-state allocation accounting, behind the `alloc-count` feature:
//!
//! * the exact engine's route/intake/step/merge path allocates **nothing**
//!   per round once its arena buffers are warm — the only per-round
//!   allocations left are the ones the machine program itself makes;
//! * the scale workloads allocate **nothing** on a repetition at a fixed
//!   topology once the workspace is warm.
//!
//! Run with `cargo test -p csmpc-mpc --features alloc-count --test
//! steady_state_alloc`. Both measurements live in one `#[test]` so the
//! process-wide counter is never read while another test thread runs.
#![cfg(feature = "alloc-count")]

use csmpc_graph::rng::Seed;
use csmpc_graph::StreamFamily;
use csmpc_mpc::phase::counting_alloc::{allocations, CountingAllocator};
use csmpc_mpc::{scale, Cluster, MachineProgram, Message, MpcConfig, MpcError, ParallelismMode};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Each machine forwards one word to its successor every round — two heap
/// allocations per machine-round (the outbox `Vec` and its payload), and
/// nothing else.
struct RingForward {
    machines: usize,
}

impl MachineProgram for RingForward {
    fn round(&mut self, id: usize, _inbox: &[Message]) -> Vec<Message> {
        vec![Message {
            to: (id + 1) % self.machines,
            words: vec![id as u64],
        }]
    }

    fn storage_words(&self) -> usize {
        1
    }
}

fn sequential_cluster(n: usize, words: usize) -> Cluster {
    let cfg = MpcConfig {
        parallelism: ParallelismMode::Sequential,
        ..MpcConfig::with_phi(0.5)
    };
    Cluster::new(cfg, n, words, Seed(7))
}

/// Allocations for `rounds` engine rounds of the ring program on a fresh
/// cluster, along with the machine count used.
fn engine_allocs(rounds: usize) -> (u64, usize) {
    let mut cluster = sequential_cluster(64, 64);
    let m = cluster.num_machines();
    let mut machines: Vec<RingForward> = (0..m).map(|_| RingForward { machines: m }).collect();
    let initial = vec![Message {
        to: 0,
        words: vec![0],
    }];
    let before = allocations();
    let err = cluster
        .run_program(&mut machines, initial, rounds)
        .unwrap_err();
    assert!(matches!(err, MpcError::RoundLimitExceeded { .. }));
    (allocations() - before, m)
}

#[test]
fn steady_state_rounds_and_repetitions_do_not_allocate() {
    // Engine: the allocation difference between a 60-round and a 30-round
    // run is exactly the program's own sends (2 allocations per
    // machine-round). The engine's plumbing — counting-sort scatter,
    // step results, component-tag propagation — reuses warm arenas and
    // contributes zero.
    let (short, m) = engine_allocs(30);
    let (long, _) = engine_allocs(60);
    let per_round_program = (2 * m) as u64;
    assert_eq!(
        long - short,
        30 * per_round_program,
        "engine rounds must allocate only what the program allocates"
    );

    // Scale workloads: a second repetition at fixed topology, with a warm
    // workspace, performs zero heap allocations on the sweep path.
    let family = StreamFamily::Cycle { n: 2048 };
    let words = 2 * family.n() + 2 * family.m();
    let mut cluster = sequential_cluster(family.n(), words);
    let mut ws = scale::ScaleWorkspace::new();
    let csr = scale::ingest(family, &mut cluster).unwrap();
    // Warm repetition: grows every workspace buffer to capacity.
    scale::cc_labels(&mut cluster, &csr, &mut ws).unwrap();
    scale::luby_mis(&mut cluster, &csr, Seed(3), &mut ws).unwrap();
    scale::ball_coloring(&mut cluster, &csr, Seed(5), &mut ws).unwrap();
    cluster.reset_for_repetition();
    let before = allocations();
    scale::cc_labels(&mut cluster, &csr, &mut ws).unwrap();
    scale::luby_mis(&mut cluster, &csr, Seed(3), &mut ws).unwrap();
    scale::ball_coloring(&mut cluster, &csr, Seed(5), &mut ws).unwrap();
    cluster.reset_for_repetition();
    assert_eq!(
        allocations() - before,
        0,
        "a warm scale repetition must be allocation-free"
    );

    // Fabric arena in isolation: once `buf` and the histogram/cursor/range
    // spines are warm, refilling the staging buffer from the previous
    // delivery (the engine's double-buffer pattern) and scattering again
    // allocates nothing — the counting sort itself is zero-alloc in steady
    // state.
    let machines = 8usize;
    let mut arena = csmpc_mpc::RouteArena::new(machines);
    let mut staging: Vec<Message> = (0..32)
        .map(|i| Message {
            to: i % machines,
            words: vec![i as u64; 3],
        })
        .collect();
    arena.scatter(&mut staging);
    let before = allocations();
    for _ in 0..10 {
        // Reclaim every delivered payload block into the retained staging
        // spine, then scatter the same shape again.
        for slot in 0..arena.buf.len() {
            let to = arena.buf[slot].to;
            staging.push(Message {
                to,
                words: std::mem::take(&mut arena.buf[slot].words),
            });
        }
        arena.scatter(&mut staging);
    }
    assert_eq!(
        allocations() - before,
        0,
        "a warm RouteArena scatter cycle must be allocation-free"
    );
}
