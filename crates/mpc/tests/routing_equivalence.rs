//! Property proof that the counting-sort message fabric routes exactly
//! like the retired sort-based router.
//!
//! [`RouteArena::scatter`] replaced an index sort by `(to, index)` on the
//! engine's per-round hot path. Everything downstream — transport coin
//! draws, Envelope sequencing, corruption detection, checkpoint capture —
//! observes messages only through the grouped buffer and its per-machine
//! ranges, so *element-for-element* equality of `(buf, ranges)` against
//! the old router is the whole correctness obligation. These tests check
//! it over random machine counts and message multisets (duplicate
//! destinations, self-sends, empty rounds, single-machine clusters) plus
//! the structured edge cases, using [`reference::scatter`] as the oracle.

use csmpc_mpc::route::{reference, RouteArena};
use csmpc_mpc::Message;
use proptest::collection;
use proptest::prelude::*;

/// Builds a message batch from raw draws: destination reduced mod
/// `machines`, payload length and contents derived from the draw so
/// duplicates collide on `to` but still carry distinguishable words.
fn batch(machines: usize, raws: &[u64]) -> Vec<Message> {
    raws.iter()
        .enumerate()
        .map(|(i, &raw)| Message {
            to: (raw % machines as u64) as usize,
            words: (0..(raw % 4)).map(|k| raw ^ (i as u64) ^ k).collect(),
        })
        .collect()
}

/// Asserts the fabric and the oracle agree on `machines` × `raws`.
fn assert_equivalent(machines: usize, raws: &[u64]) {
    let msgs = batch(machines, raws);
    let mut arena = RouteArena::new(machines);
    let mut fabric_in = msgs.clone();
    arena.scatter(&mut fabric_in);
    assert!(
        fabric_in.is_empty(),
        "scatter must drain the staging buffer"
    );
    let mut oracle_in = msgs;
    let (oracle_buf, oracle_ranges) = reference::scatter(machines, &mut oracle_in);
    assert_eq!(arena.buf, oracle_buf, "grouped buffers diverged");
    assert_eq!(arena.ranges, oracle_ranges, "delivery ranges diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn fabric_matches_sort_oracle_on_random_multisets(
        machines in 1usize..12,
        raws in collection::vec(0u64..=u64::MAX, 0..64),
    ) {
        let msgs = batch(machines, &raws);
        let mut arena = RouteArena::new(machines);
        let mut fabric_in = msgs.clone();
        arena.scatter(&mut fabric_in);
        prop_assert!(fabric_in.is_empty());
        let mut oracle_in = msgs;
        let (oracle_buf, oracle_ranges) = reference::scatter(machines, &mut oracle_in);
        prop_assert_eq!(&arena.buf, &oracle_buf);
        prop_assert_eq!(&arena.ranges, &oracle_ranges);
    }

    #[test]
    fn warm_arena_reuse_matches_oracle_across_rounds(
        machines in 1usize..8,
        first in collection::vec(0u64..=u64::MAX, 0..32),
        second in collection::vec(0u64..=u64::MAX, 0..32),
    ) {
        // The engine reuses one arena across rounds; a stale histogram or
        // range from round 1 must not leak into round 2's grouping.
        let mut arena = RouteArena::new(machines);
        let mut warmup = batch(machines, &first);
        arena.scatter(&mut warmup);
        let msgs = batch(machines, &second);
        let mut fabric_in = msgs.clone();
        arena.scatter(&mut fabric_in);
        let mut oracle_in = msgs;
        let (oracle_buf, oracle_ranges) = reference::scatter(machines, &mut oracle_in);
        prop_assert_eq!(&arena.buf, &oracle_buf);
        prop_assert_eq!(&arena.ranges, &oracle_ranges);
    }
}

#[test]
fn empty_round_matches_oracle() {
    assert_equivalent(5, &[]);
}

#[test]
fn single_machine_cluster_funnels_everything_in_arrival_order() {
    assert_equivalent(1, &[3, 1, 4, 1, 5, 9, 2, 6]);
}

#[test]
fn all_messages_to_one_destination() {
    let raws: Vec<u64> = (0..20).map(|i| 7 + i * 11).collect();
    // dest = raw % 1 collapses every message onto machine 0 of 1; also
    // check the same multiset against a wider cluster where machine 3
    // gets everything (self-send shape: a machine routing to itself).
    assert_equivalent(1, &raws);
    let to_three: Vec<u64> = (0..20).map(|_| 3).collect();
    assert_equivalent(9, &to_three);
}

#[test]
fn duplicate_payloads_keep_arrival_order_per_destination() {
    // Identical (to, words) pairs are only distinguishable by arrival
    // order — exactly what stability must preserve.
    assert_equivalent(4, &[8, 8, 8, 4, 4, 8, 12, 0, 0, 12]);
}
