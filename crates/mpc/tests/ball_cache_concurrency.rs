//! The content-keyed caches under concurrent scheduling: hits from one
//! job must never perturb another job's charges or output, results stay
//! bit-identical from 2 to 8 scheduler threads, and the LRU bound holds
//! under contention. Covers both the ball-set cache ([`BallCache`]) and
//! its CSR-spine extension ([`ball_cache::csr_global`]'s `CsrCache`).

use csmpc_graph::rng::Seed;
use csmpc_graph::{generators, Graph};
use csmpc_mpc::ball_cache::{self, BallCache, CsrCache};
use csmpc_mpc::{Cluster, DistributedGraph, MpcConfig, ParallelismMode, Stats};
use std::sync::Arc;

fn roomy_cluster(g: &Graph, seed: Seed) -> Cluster {
    let cfg = MpcConfig {
        min_space: 512,
        ..MpcConfig::with_phi(0.5)
    };
    Cluster::new(cfg, g.n(), csmpc_mpc::graph_words(g), seed)
}

/// A collected ball set plus the `Stats` ledger the run charged.
type JobResult = (Vec<(Graph, usize)>, Stats);

/// One "job": distribute, collect balls (through the global cache), and
/// return the output bits plus the charged ledger.
fn collect_job(g: &Graph, r: usize, seed: Seed) -> JobResult {
    let mut cl = roomy_cluster(g, seed);
    let dg = DistributedGraph::distribute(g, &mut cl).unwrap();
    let balls = dg.collect_balls(&mut cl, r).unwrap();
    (balls.as_ref().clone(), cl.stats().clone())
}

#[test]
fn concurrent_jobs_share_hits_without_perturbing_charges_or_output() {
    let graphs: Vec<Graph> = vec![
        generators::cycle(24),
        generators::two_cycles(24),
        generators::random_tree(30, Seed(4)),
    ];
    // Solo baselines, computed sequentially.
    let solo: Vec<_> = graphs.iter().map(|g| collect_job(g, 2, Seed(9))).collect();

    for threads in [2, 4, 8] {
        let results: Vec<Vec<JobResult>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let graphs = &graphs;
                    scope.spawn(move || {
                        // Interleave graph order per thread so hits and
                        // misses race in different patterns.
                        (0..graphs.len())
                            .map(|i| {
                                let g = &graphs[(i + t) % graphs.len()];
                                collect_job(g, 2, Seed(9))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (t, per_thread) in results.iter().enumerate() {
            for (i, (balls, stats)) in per_thread.iter().enumerate() {
                let (base_balls, base_stats) = &solo[(i + t) % graphs.len()];
                assert_eq!(
                    balls, base_balls,
                    "thread {t} of {threads}: cached output diverged from solo"
                );
                assert_eq!(
                    stats, base_stats,
                    "thread {t} of {threads}: a cache hit changed the charges"
                );
            }
        }
    }
}

#[test]
fn lru_eviction_under_contention_keeps_the_bound_and_the_bits() {
    // A 2-entry cache hammered with 6 distinct keys from 8 threads:
    // capacity must hold at every observation point and every returned
    // set must equal a freshly computed one.
    let cache = BallCache::with_capacity(2);
    let graphs: Vec<Graph> = (0..6).map(|i| generators::cycle(10 + 2 * i)).collect();
    let fresh: Vec<_> = graphs
        .iter()
        .map(|g| {
            BallCache::with_capacity(1)
                .collect(g, 1, ParallelismMode::Sequential)
                .0
        })
        .collect();
    std::thread::scope(|scope| {
        for t in 0..8usize {
            let cache = &cache;
            let graphs = &graphs;
            let fresh = &fresh;
            scope.spawn(move || {
                for round in 0..12 {
                    let i = (t + round) % graphs.len();
                    let (balls, _) = cache.collect(&graphs[i], 1, ParallelismMode::Sequential);
                    assert_eq!(
                        balls.as_ref(),
                        fresh[i].as_ref(),
                        "evicted-and-recomputed set drifted"
                    );
                    assert!(cache.len() <= 2, "LRU bound violated under contention");
                }
            });
        }
    });
    assert!(cache.len() <= 2 && !cache.is_empty());
}

#[test]
fn csr_cache_shares_one_spine_per_topology_across_threads() {
    let cache = CsrCache::with_capacity(8);
    let g = generators::cycle(40);
    let spines: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = &cache;
                let g = &g;
                scope.spawn(move || cache.get(g))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Exactly one spine survives the insert race; all callers share it.
    assert_eq!(cache.len(), 1);
    for s in &spines[1..] {
        assert!(Arc::ptr_eq(&spines[0], s), "spine not shared");
    }
    assert_eq!(spines[0].n(), 40);
}

#[test]
fn csr_cache_keys_on_topology_not_identity() {
    // Same adjacency under relabeled IDs/names: one spine serves both,
    // because the CSR is pure index-space structure.
    let cache = CsrCache::with_capacity(4);
    let a = generators::cycle(16);
    let b = generators::shuffle_identity(&a, 1000, 5000, Seed(3));
    let sa = cache.get(&a);
    let sb = cache.get(&b);
    assert!(Arc::ptr_eq(&sa, &sb));
    assert_eq!(cache.len(), 1);
    // A genuinely different topology gets its own spine.
    let c = cache.get(&generators::path(16));
    assert!(!Arc::ptr_eq(&sa, &c));
    assert_eq!(cache.len(), 2);
}

#[test]
fn global_csr_cache_backs_ball_collection() {
    // BallCache::collect routes its CSR through the process-wide
    // csr_global cache, so a later direct lookup is the same spine.
    let g = generators::cycle(26);
    let local = BallCache::with_capacity(2);
    let _ = local.collect(&g, 1, ParallelismMode::Sequential);
    let before = ball_cache::csr_global().len();
    let spine = ball_cache::csr_global().get(&g);
    assert_eq!(
        ball_cache::csr_global().len(),
        before,
        "collect should have primed the spine"
    );
    assert_eq!(spine.n(), 26);
}
