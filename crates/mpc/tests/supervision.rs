//! The supervision suite: checksummed transport envelopes, adversarial
//! transport faults (corruption, reordering, partitions), straggler
//! speculation, quarantine, exponential backoff, and the
//! per-repetition reset regression — on both the accounted layer
//! (`advance_rounds`) and the exact engine
//! (`exact_aggregate_sum_with_faults`).

use csmpc_graph::rng::Seed;
use csmpc_mpc::{
    exact_aggregate_sum, exact_aggregate_sum_with_faults, Cluster, Envelope, FaultPlan, Message,
    MpcConfig, RecoveryPolicy, SupervisionEvent, SupervisorConfig,
};

// ---------------------------------------------------------------------------
// Envelope: corruption is detected, never silently applied
// ---------------------------------------------------------------------------

#[test]
fn envelope_roundtrips_and_detects_any_payload_flip() {
    let msg = Message {
        to: 3,
        words: vec![11, 22, 33],
    };
    let sealed = Envelope::seal(msg.clone());
    assert!(sealed.verify());
    assert_eq!(sealed.open(), Some(msg.clone()));

    // Every single-bit flip of every payload word breaks the seal.
    for word in 0..3 {
        for bit in 0..64 {
            let tampered = Envelope::seal(msg.clone()).tampered(word, 1u64 << bit);
            assert!(!tampered.verify(), "word {word} bit {bit} went undetected");
            assert_eq!(tampered.open(), None);
        }
    }
}

#[test]
fn envelope_checksum_binds_destination_and_length() {
    // Same payload, different destination: different checksum, so a
    // misrouted-but-byte-identical payload cannot masquerade.
    let a = Envelope::seal(Message {
        to: 0,
        words: vec![7, 7],
    });
    let b = Envelope::seal(Message {
        to: 1,
        words: vec![7, 7],
    });
    assert_ne!(a.checksum(), b.checksum());
    // Length is sealed too: [0] and [0, 0] must differ.
    let short = Envelope::seal(Message {
        to: 0,
        words: vec![0],
    });
    let long = Envelope::seal(Message {
        to: 0,
        words: vec![0, 0],
    });
    assert_ne!(short.checksum(), long.checksum());
}

// ---------------------------------------------------------------------------
// Exact engine under adversarial transport
// ---------------------------------------------------------------------------

fn engine_cluster() -> Cluster {
    Cluster::new(MpcConfig::with_phi(0.5), 400, 800, Seed(7))
}

fn quiet_engine_baseline(values: &[u64]) -> (u64, csmpc_mpc::Stats) {
    let mut cl = engine_cluster();
    let (sum, _) = exact_aggregate_sum(&mut cl, values).unwrap();
    (sum, cl.stats().clone())
}

#[test]
fn engine_corruption_is_always_detected_and_charged() {
    let values: Vec<u64> = (1..=100).collect();
    let expected: u64 = values.iter().sum();
    let (quiet_sum, quiet_stats) = quiet_engine_baseline(&values);
    assert_eq!(quiet_sum, expected);

    // Corrupt *every* non-empty message: the sum must still come out
    // exact (tampered payloads are discarded and retransmitted, never
    // applied), every strike must be counted, and the retransmissions
    // must show up as extra words and rounds.
    let plan = FaultPlan::quiet(Seed(0xC0)).with_corruption(1000);
    let run = || {
        let mut cl = engine_cluster();
        let (sum, _) =
            exact_aggregate_sum_with_faults(&mut cl, &values, &plan, RecoveryPolicy::restart(8))
                .unwrap();
        (sum, cl.stats().clone())
    };
    let (sum_a, stats_a) = run();
    let (sum_b, stats_b) = run();
    assert_eq!(sum_a, expected, "corruption silently changed the output");
    assert_eq!((sum_a, &stats_a), (sum_b, &stats_b), "replay diverged");
    assert!(
        stats_a.corrupted_detected > 0,
        "full-rate corruption never struck"
    );
    // Retransmits land in the round the original would have been
    // consumed, so corruption costs words (each payload paid twice),
    // not extra rounds.
    assert!(
        stats_a.total_words > quiet_stats.total_words,
        "corruption retransmissions were free"
    );
}

#[test]
fn engine_reordering_replays_bit_identically() {
    let values: Vec<u64> = (1..=100).collect();
    let expected: u64 = values.iter().sum();
    let plan = FaultPlan::quiet(Seed(0xD0)).with_reordering(1000);
    let run = || {
        let mut cl = engine_cluster();
        let (sum, _) =
            exact_aggregate_sum_with_faults(&mut cl, &values, &plan, RecoveryPolicy::restart(8))
                .unwrap();
        (sum, cl.stats().clone())
    };
    let (sum_a, stats_a) = run();
    let (sum_b, stats_b) = run();
    assert_eq!(sum_a, expected);
    assert_eq!((sum_a, &stats_a), (sum_b, &stats_b), "replay diverged");
    assert_eq!(stats_a.corrupted_detected, 0);
}

#[test]
fn engine_partition_holds_traffic_and_heals() {
    let values: Vec<u64> = (1..=100).collect();
    let expected: u64 = values.iter().sum();
    let (_, quiet_stats) = quiet_engine_baseline(&values);
    let m = engine_cluster().num_machines();
    assert!(m >= 2, "partition test needs at least two machines");

    // Cut machine 0 off for the first two rounds: its traffic is held
    // and delivered (re-charged) at the heal, so the sum is exact but
    // later and costlier.
    let plan = FaultPlan::quiet(Seed(0xE0)).partition(1, 2, vec![0]);
    let run = || {
        let mut cl = engine_cluster();
        let (sum, _) =
            exact_aggregate_sum_with_faults(&mut cl, &values, &plan, RecoveryPolicy::restart(8))
                .unwrap();
        (sum, cl.stats().clone())
    };
    let (sum_a, stats_a) = run();
    let (sum_b, stats_b) = run();
    assert_eq!(sum_a, expected, "partition lost words");
    assert_eq!((sum_a, &stats_a), (sum_b, &stats_b), "replay diverged");
    assert!(
        stats_a.total_words > quiet_stats.total_words,
        "held-and-healed deliveries were free"
    );
}

#[test]
fn engine_speculation_clamps_straggler_stall() {
    let values: Vec<u64> = (1..=100).collect();
    let expected: u64 = values.iter().sum();
    let plan = FaultPlan::quiet(Seed(0xF0)).straggle(0, 1, 12);
    let run = |supervised: bool| {
        let mut cl = engine_cluster();
        if supervised {
            cl.supervise(SupervisorConfig {
                deadline_rounds: 2,
                failure_threshold: 8,
            });
        }
        let (sum, _) =
            exact_aggregate_sum_with_faults(&mut cl, &values, &plan, RecoveryPolicy::restart(8))
                .unwrap();
        (sum, cl.stats().clone(), cl.supervision_log().to_vec())
    };
    let (plain_sum, plain_stats, plain_log) = run(false);
    let (sup_sum, sup_stats, sup_log) = run(true);
    assert_eq!(plain_sum, expected);
    assert_eq!(sup_sum, expected, "speculation changed the output");
    assert!(plain_log.is_empty());
    // The supervised run trades barrier rounds for charged speculative
    // machine-rounds and re-shipped snapshot words.
    assert!(
        sup_stats.rounds < plain_stats.rounds,
        "speculation did not shorten the critical path \
         (supervised {} vs plain {})",
        sup_stats.rounds,
        plain_stats.rounds
    );
    assert_eq!(sup_stats.speculative_rounds, 12 - 2);
    assert!(sup_stats.recovery_words > 0, "re-shipped state was free");
    assert!(matches!(
        sup_log.as_slice(),
        [SupervisionEvent::Speculation {
            machine: 0,
            stall_avoided: 10,
            ..
        }]
    ));
    // Determinism of the supervised path.
    let (again_sum, again_stats, again_log) = run(true);
    assert_eq!(
        (again_sum, &again_stats, &again_log),
        (sup_sum, &sup_stats, &sup_log)
    );
}

#[test]
fn engine_quarantine_spends_no_retries_and_keeps_the_sum() {
    let values: Vec<u64> = (1..=100).collect();
    let expected: u64 = values.iter().sum();
    // Threshold 0: the very first crash quarantines the machine. With a
    // retry budget of zero the run would fail if the crash consumed a
    // retry — surviving proves quarantine absorbed it.
    let plan = FaultPlan::quiet(Seed(0xAB)).crash(0, 2).crash(0, 4);
    let mut cl = engine_cluster();
    cl.supervise(SupervisorConfig {
        deadline_rounds: 2,
        failure_threshold: 0,
    });
    let (sum, _) =
        exact_aggregate_sum_with_faults(&mut cl, &values, &plan, RecoveryPolicy::restart(0))
            .unwrap();
    assert_eq!(sum, expected, "quarantine lost machine 0's words");
    assert_eq!(
        cl.quarantined_machines()
            .iter()
            .copied()
            .collect::<Vec<_>>(),
        vec![0]
    );
    assert!(cl.faulted_machines().contains(&0));
    assert!(matches!(
        cl.supervision_log(),
        [SupervisionEvent::Quarantine { machine: 0, .. }]
    ));
    // Quarantine migration is charged as recovery overhead.
    assert!(cl.stats().recovery_words > 0);
    // The second crash on the quarantined machine was moot: one
    // quarantine, no further supervision or failure.
    assert_eq!(cl.supervision_log().len(), 1);
}

// ---------------------------------------------------------------------------
// Accounted layer: speculation, quarantine, backoff, partitions
// ---------------------------------------------------------------------------

fn accounted_cluster() -> Cluster {
    Cluster::new(MpcConfig::with_phi(0.5), 256, 512, Seed(3))
}

#[test]
fn accounted_straggler_speculation_clamps_the_barrier() {
    let plan = FaultPlan::quiet(Seed(1)).straggle(0, 1, 10);

    let mut plain = accounted_cluster();
    plain.arm_faults(plan.clone(), RecoveryPolicy::restart(4));
    plain.advance_rounds(3).unwrap();
    assert_eq!(plain.stats().rounds, 3 + 10, "unsupervised stall wrong");
    assert!(plain.supervision_log().is_empty());

    let mut sup = accounted_cluster();
    sup.arm_faults(plan, RecoveryPolicy::restart(4));
    sup.supervise(SupervisorConfig {
        deadline_rounds: 2,
        failure_threshold: 4,
    });
    sup.advance_rounds(3).unwrap();
    assert_eq!(sup.stats().rounds, 3 + 2, "deadline clamp wrong");
    assert_eq!(sup.stats().speculative_rounds, 8);
    assert!(sup.stats().recovery_words > 0, "re-shipped state was free");
    assert!(matches!(
        sup.supervision_log(),
        [SupervisionEvent::Speculation {
            machine: 0,
            stall_avoided: 8,
            ..
        }]
    ));
    assert!(sup.faulted_machines().contains(&0));
}

#[test]
fn accounted_backoff_idles_exponentially_and_is_charged() {
    let plan = FaultPlan::quiet(Seed(2)).crash(0, 1).crash(1, 2);

    let mut flat = accounted_cluster();
    flat.arm_faults(plan.clone(), RecoveryPolicy::restart(4));
    flat.advance_rounds(4).unwrap();

    let mut backed = accounted_cluster();
    backed.arm_faults(plan, RecoveryPolicy::restart_with_backoff(4, 2));
    backed.advance_rounds(4).unwrap();

    // Retry 1 idles 2 rounds, retry 2 idles 4: at least 6 extra rounds
    // versus the same plan without backoff (the idling also lengthens
    // the checkpoint replays, which may add more), all attributed to
    // recovery overhead.
    assert!(backed.stats().rounds >= flat.stats().rounds + 6);
    assert!(backed.stats().recovery_rounds >= flat.stats().recovery_rounds + 6);
    let backoffs: Vec<(usize, usize)> = backed
        .supervision_log()
        .iter()
        .filter_map(|ev| match ev {
            SupervisionEvent::Backoff {
                retry,
                stall_rounds,
                ..
            } => Some((*retry, *stall_rounds)),
            _ => None,
        })
        .collect();
    assert_eq!(backoffs, vec![(1, 2), (2, 4)]);
}

#[test]
fn accounted_quarantine_stops_consuming_retries() {
    // Three crashes on machine 0 under a retry budget of 1: the first is
    // recovered (retry 1), the second trips the threshold and
    // quarantines instead of blowing the budget, the third is moot.
    let plan = FaultPlan::quiet(Seed(4))
        .crash(0, 1)
        .crash(0, 2)
        .crash(0, 3);
    let mut cl = accounted_cluster();
    cl.arm_faults(plan, RecoveryPolicy::restart(1));
    cl.supervise(SupervisorConfig {
        deadline_rounds: 2,
        failure_threshold: 1,
    });
    cl.advance_rounds(5).unwrap();
    assert_eq!(cl.recovery_log().len(), 1, "only the first crash retries");
    assert_eq!(
        cl.quarantined_machines()
            .iter()
            .copied()
            .collect::<Vec<_>>(),
        vec![0]
    );
    let quarantines = cl
        .supervision_log()
        .iter()
        .filter(|ev| matches!(ev, SupervisionEvent::Quarantine { .. }))
        .count();
    assert_eq!(quarantines, 1);
    assert!(cl.stats().recovery_words > 0, "migration was free");
}

#[test]
fn accounted_partition_charges_its_stall_exactly_once() {
    let plan = FaultPlan::quiet(Seed(5)).partition(2, 3, vec![0]);
    let mut cl = accounted_cluster();
    cl.arm_faults(plan, RecoveryPolicy::restart(4));
    cl.advance_rounds(5).unwrap();
    // 5 computation rounds plus the 3-round partition window.
    assert_eq!(cl.stats().rounds, 5 + 3);
    // Re-advancing must not re-charge the window.
    cl.advance_rounds(2).unwrap();
    assert_eq!(cl.stats().rounds, 5 + 3 + 2);
}

// ---------------------------------------------------------------------------
// Satellite: reset_for_repetition regression for supervision-era state
// ---------------------------------------------------------------------------

#[test]
fn reset_for_repetition_rearms_faults_and_clears_supervision_state() {
    let plan = FaultPlan::quiet(Seed(6))
        .crash(0, 1)
        .crash(0, 2)
        .straggle(1, 3, 9);
    let mut cl = accounted_cluster();
    cl.arm_faults(plan, RecoveryPolicy::restart_with_backoff(4, 1));
    cl.supervise(SupervisorConfig {
        deadline_rounds: 2,
        failure_threshold: 1,
    });

    let run = |cl: &mut Cluster| {
        cl.advance_rounds(5).unwrap();
        (
            cl.stats().clone(),
            cl.recovery_log().to_vec(),
            cl.supervision_log().to_vec(),
            cl.quarantined_machines().clone(),
            cl.faulted_machines().clone(),
        )
    };
    let first = run(&mut cl);
    assert!(
        !first.2.is_empty(),
        "plan fired no supervision events; the regression test is vacuous"
    );

    cl.reset_for_repetition();
    assert_eq!(cl.stats(), &csmpc_mpc::Stats::default());
    assert!(cl.recovery_log().is_empty(), "recovery log leaked");
    assert!(cl.supervision_log().is_empty(), "supervision log leaked");
    assert!(cl.quarantined_machines().is_empty(), "quarantine leaked");
    assert!(cl.faulted_machines().is_empty(), "fault record leaked");

    // With the cursor re-armed and the failure counts cleared, the
    // repetition replays the first run bit-for-bit. A leaked failure
    // count would quarantine earlier; a stale cursor would fire nothing.
    let second = run(&mut cl);
    assert_eq!(first, second, "repetition diverged after reset");
}

#[test]
fn reset_for_repetition_leaks_no_per_execution_field() {
    // The full-audit companion to the two targeted regressions around
    // it: dirty *every* per-execution field the PR 7/8 era added —
    // ledger (including recovery and phase columns), provenance flows,
    // per-machine component tags, recovery log, supervision log and its
    // failure/quarantine/taint bookkeeping, deadline marker — then
    // check the reset cluster is observationally identical to a freshly
    // built one on every public accessor. A field added to `Cluster`
    // without a `reset_for_repetition` line should fail here.
    let dirty = |cl: &mut Cluster| {
        cl.arm_faults(
            FaultPlan::quiet(Seed(6)).crash(0, 1).straggle(1, 2, 6),
            RecoveryPolicy::restart_with_backoff(3, 1),
        );
        cl.supervise(SupervisorConfig {
            deadline_rounds: 2,
            failure_threshold: 1,
        });
        cl.arm_job_deadline(64);
        cl.advance_rounds(4).unwrap();
        cl.charge_recovery(2, 128);
        cl.provenance_mut().record_global_mix("audit", 0, [0, 1]);
        cl.record_phase(&csmpc_mpc::PhaseTimes::default());
    };
    let mut cl = accounted_cluster();
    dirty(&mut cl);
    assert!(
        cl.stats().recovery_rounds > 0
            && cl.provenance().has_cross_component_flow()
            && !cl.supervision_log().is_empty()
            && !cl.faulted_machines().is_empty(),
        "the dirtying run left fields clean; the audit is vacuous"
    );

    cl.reset_for_repetition();
    let fresh = accounted_cluster();
    assert_eq!(cl.stats(), fresh.stats(), "stats ledger leaked");
    assert_eq!(
        cl.provenance().flows(),
        fresh.provenance().flows(),
        "provenance flows leaked"
    );
    for m in 0..cl.num_machines() {
        assert_eq!(
            cl.machine_components(m),
            fresh.machine_components(m),
            "machine {m} component tags leaked"
        );
    }
    assert_eq!(
        cl.recovery_log(),
        fresh.recovery_log(),
        "recovery log leaked"
    );
    assert_eq!(
        cl.supervision_log(),
        fresh.supervision_log(),
        "supervision log leaked"
    );
    assert_eq!(
        cl.quarantined_machines(),
        fresh.quarantined_machines(),
        "quarantine set leaked"
    );
    assert_eq!(
        cl.faulted_machines(),
        fresh.faulted_machines(),
        "faulted set leaked"
    );
    assert_eq!(
        cl.deadline_tripped(),
        fresh.deadline_tripped(),
        "deadline marker leaked"
    );
    // Policies deliberately survive (plan, supervisor, armed deadline):
    // the repetition replays the same dirtying run bit-for-bit, which a
    // leaked failure count or stale fault cursor would break.
    assert_eq!(cl.job_deadline(), Some(64));
    let first_stats = {
        let mut again = accounted_cluster();
        dirty(&mut again);
        again.stats().clone()
    };
    dirty(&mut cl);
    assert_eq!(cl.stats(), &first_stats, "repetition diverged after reset");
}

// ---------------------------------------------------------------------------
// Job-level deadlines (service layer): enforcement and per-repetition reset
// ---------------------------------------------------------------------------

#[test]
fn job_deadline_trips_at_the_barrier_and_counts_recovery_stalls() {
    // Quiet run inside the budget: no error, no tripped marker.
    let mut cl = accounted_cluster();
    cl.arm_job_deadline(10);
    cl.advance_rounds(10).unwrap();
    assert!(!cl.deadline_tripped());

    // One more barrier advance goes past the budget.
    let err = cl.advance_rounds(1).unwrap_err();
    assert_eq!(err, csmpc_mpc::MpcError::RoundLimitExceeded { limit: 10 });
    assert!(cl.deadline_tripped());

    // Recovery overhead consumes the same budget: a straggler stall that
    // pushes the ledger past the deadline trips it even though the caller
    // asked for rounds well inside the budget.
    let mut stalled = accounted_cluster();
    stalled.arm_job_deadline(8);
    stalled.arm_faults(
        FaultPlan::quiet(Seed(2)).straggle(0, 2, 20),
        RecoveryPolicy::restart(4),
    );
    let err = stalled.advance_rounds(3).unwrap_err();
    assert_eq!(err, csmpc_mpc::MpcError::RoundLimitExceeded { limit: 8 });
    assert!(stalled.deadline_tripped());
    assert!(
        stalled.stats().rounds > 8,
        "the stall itself must be what overran the budget"
    );
}

#[test]
fn reset_for_repetition_clears_deadline_bookkeeping_but_keeps_the_policy() {
    // Mirrors the supervision-state leak regression above for the
    // service-era per-job state: the tripped marker is per-execution and
    // must not leak into the next repetition, while the armed deadline
    // (the policy) survives like the fault plan does.
    let mut cl = accounted_cluster();
    cl.arm_job_deadline(4);
    let first = cl.advance_rounds(5).unwrap_err();
    assert_eq!(first, csmpc_mpc::MpcError::RoundLimitExceeded { limit: 4 });
    assert!(cl.deadline_tripped());

    cl.reset_for_repetition();
    assert!(
        !cl.deadline_tripped(),
        "deadline-tripped marker leaked across reset_for_repetition"
    );
    assert_eq!(
        cl.job_deadline(),
        Some(4),
        "the armed deadline policy must survive the reset"
    );

    // The repetition replays bit-for-bit: same budget, same trip point.
    cl.advance_rounds(4).unwrap();
    assert!(!cl.deadline_tripped(), "fresh ledger must fit the budget");
    let second = cl.advance_rounds(1).unwrap_err();
    assert_eq!(second, first, "repetition diverged after reset");

    // Disarming clears both the policy and the marker.
    let _ = cl.advance_rounds(1);
    cl.disarm_job_deadline();
    assert!(cl.job_deadline().is_none());
    assert!(!cl.deadline_tripped());
    cl.advance_rounds(100).unwrap();
}
