//! Property tests for the merge algebra of [`Stats::absorb`].
//!
//! The parallel engine reduces per-machine `Stats` deltas into the round
//! ledger; the claim that the merged ledger is independent of machine
//! *grouping* (and would be independent of order, were the merge ever
//! reordered) rests on `absorb` being associative and commutative —
//! including at the saturation boundary, where `saturating_add` clamps.
//! These tests exercise exactly that algebra over randomized delta sets
//! with boundary values mixed in.

use csmpc_mpc::Stats;
use proptest::collection;
use proptest::prelude::*;

/// Builds a delta from four raw draws, stretching a fraction of them to
/// the saturation boundary so the clamped arms are covered too.
fn delta(raw: (u64, u64, u64, u64)) -> Stats {
    fn stretch(x: u64) -> u64 {
        if x.is_multiple_of(13) {
            u64::MAX - (x % 3)
        } else {
            x
        }
    }
    Stats {
        rounds: stretch(raw.0) as usize,
        max_round_words: stretch(raw.1) as usize,
        max_storage_words: stretch(raw.2) as usize,
        total_words: stretch(raw.3),
        // The overlay counters obey the same saturating-add algebra; fold
        // the same draws back in (rotated) so they hit the boundary too.
        recovery_rounds: stretch(raw.3) as usize,
        recovery_words: stretch(raw.0.rotate_left(7)),
        speculative_rounds: stretch(raw.1.rotate_left(3)) as usize,
        corrupted_detected: stretch(raw.2.rotate_left(5)),
        // Phase timings are observability-only and excluded from Stats
        // equality, so the algebra tests leave them zero.
        ..Stats::default()
    }
}

/// Left fold of `absorb` over `deltas` starting from the zero ledger.
fn fold(deltas: &[Stats]) -> Stats {
    let mut acc = Stats::default();
    for d in deltas {
        acc.absorb(d);
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn absorb_is_commutative(
        a in (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000),
        b in (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000),
    ) {
        let (da, db) = (delta(a), delta(b));
        let mut ab = da.clone();
        ab.absorb(&db);
        let mut ba = db.clone();
        ba.absorb(&da);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn absorb_is_associative(
        a in (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000),
        b in (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000),
        c in (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000),
    ) {
        let (da, db, dc) = (delta(a), delta(b), delta(c));
        // (a ⊕ b) ⊕ c
        let mut left = da.clone();
        left.absorb(&db);
        left.absorb(&dc);
        // a ⊕ (b ⊕ c)
        let mut bc = db.clone();
        bc.absorb(&dc);
        let mut right = da.clone();
        right.absorb(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn shuffled_merge_orders_agree(
        raws in collection::vec(
            (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000),
            0..12,
        ),
        swaps in collection::vec((0u64..64, 0u64..64), 0..24),
    ) {
        let deltas: Vec<Stats> = raws.into_iter().map(delta).collect();
        let forward = fold(&deltas);

        // Reversed order.
        let reversed: Vec<Stats> = deltas.iter().rev().cloned().collect();
        prop_assert_eq!(&forward, &fold(&reversed));

        // Arbitrary transposition-shuffled order.
        let mut shuffled = deltas.clone();
        if !shuffled.is_empty() {
            let n = shuffled.len() as u64;
            for &(i, j) in &swaps {
                shuffled.swap((i % n) as usize, (j % n) as usize);
            }
        }
        prop_assert_eq!(&forward, &fold(&shuffled));

        // Pairwise tree-shaped grouping (the reduction shape a parallel
        // reducer would use).
        let mut level = deltas;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                let mut merged = pair[0].clone();
                if let Some(rhs) = pair.get(1) {
                    merged.absorb(rhs);
                }
                next.push(merged);
            }
            level = next;
        }
        let tree = level.into_iter().next().unwrap_or_default();
        prop_assert_eq!(&forward, &tree);
    }

    #[test]
    fn absorb_saturates_without_wrapping(
        a in (0u64..10, 0u64..10, 0u64..10, 0u64..10),
    ) {
        let maxed = Stats {
            rounds: usize::MAX,
            max_round_words: usize::MAX,
            max_storage_words: usize::MAX,
            total_words: u64::MAX,
            recovery_rounds: usize::MAX,
            recovery_words: u64::MAX,
            speculative_rounds: usize::MAX,
            corrupted_detected: u64::MAX,
            ..Stats::default()
        };
        let mut out = maxed.clone();
        out.absorb(&delta(a));
        prop_assert_eq!(out, maxed);
    }
}
