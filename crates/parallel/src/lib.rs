//! Deterministic parallel execution for the simulators.
//!
//! Every parallelizable sweep in the workspace (machine steps within an MPC
//! round, vertex sweeps in the LOCAL engines, seeded repetition loops in the
//! verifiers) goes through the helpers in this crate. They enforce one
//! contract:
//!
//! > **A parallel sweep is a pure per-item map whose results are
//! > materialized in item-index order.** Any cross-item merging (ledger
//! > absorption, message routing, witness collection, RNG consumption)
//! > happens afterwards, sequentially, in a fixed order.
//!
//! Under that contract [`ParallelismMode::Parallel`] is observationally
//! *bit-identical* to [`ParallelismMode::Sequential`] — the toggle only
//! changes wall-clock time — which is what keeps the replay, provenance,
//! and chaos-recovery guarantees intact. The `determinism` conformance lint
//! (crate `csmpc-conformance`) holds the simulator crates to the contract
//! by rejecting raw `par_iter` chains that do not end in an order-fixing
//! `collect`; the helpers here are the approved entry points.

#![warn(missing_docs)]

use rayon::prelude::*;

/// How a simulator executes its internally parallelizable sweeps.
///
/// Both modes produce bit-identical results (outputs, `Stats` ledger,
/// provenance log, recovery log) for the same seed; the mode only affects
/// wall-clock time. Defaults to [`ParallelismMode::auto`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelismMode {
    /// Plain index-order loops on the calling thread.
    Sequential,
    /// Chunked fork/join sweeps via the (deterministic, order-preserving)
    /// vendored `rayon` subset.
    Parallel,
}

impl ParallelismMode {
    /// [`ParallelismMode::Parallel`] when more than one worker thread is
    /// available (`RAYON_NUM_THREADS` / `CSMPC_WORKERS` /
    /// `available_parallelism`), else [`ParallelismMode::Sequential`].
    #[must_use]
    pub fn auto() -> Self {
        if rayon::current_num_threads() > 1 {
            ParallelismMode::Parallel
        } else {
            ParallelismMode::Sequential
        }
    }

    /// `true` for [`ParallelismMode::Parallel`].
    #[must_use]
    pub fn is_parallel(self) -> bool {
        self == ParallelismMode::Parallel
    }
}

impl Default for ParallelismMode {
    fn default() -> Self {
        ParallelismMode::auto()
    }
}

/// Items below this count run inline even in parallel mode — results are
/// identical either way (the parallel path is order-preserving); this only
/// avoids paying thread overhead on trivial sweeps.
const INLINE_CUTOFF: usize = 4;

/// Maps `f(i, &items[i])` over the slice, returning results in index order.
///
/// In parallel mode the sweep is chunked across worker threads; `f` must
/// therefore be pure with respect to sweep order (it sees only its own
/// item). Result index `i` always corresponds to input index `i`.
pub fn par_map<T, R, F>(mode: ParallelismMode, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if mode.is_parallel() && items.len() >= INLINE_CUTOFF {
        items
            .par_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect()
    } else {
        items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect()
    }
}

/// Like [`par_map`] but with exclusive access to each item: `f(i, &mut
/// items[i])` may mutate its item in place and additionally returns a value
/// collected in index order.
pub fn par_map_mut<T, R, F>(mode: ParallelismMode, items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    if mode.is_parallel() && items.len() >= INLINE_CUTOFF {
        items
            .par_iter_mut()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect()
    } else {
        items
            .iter_mut()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect()
    }
}

/// Maps `f(i)` over `0..n`, returning results in index order. The workhorse
/// for vertex sweeps and seeded repetition loops.
pub fn par_map_range<R, F>(mode: ParallelismMode, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if mode.is_parallel() && n >= INLINE_CUTOFF {
        (0..n).into_par_iter().map(&f).collect()
    } else {
        (0..n).map(f).collect()
    }
}

/// Like [`par_map_range`] but writes the results into `out`, reusing its
/// allocation (`out` is cleared first). At a fixed `n` a warm `out` makes
/// the sweep allocation-free in sequential mode, which is what the
/// steady-state `alloc-count` gate measures; in parallel mode the pool
/// dispatch itself costs O(1) small control allocations per sweep.
pub fn par_map_range_into<R, F>(mode: ParallelismMode, n: usize, out: &mut Vec<R>, f: F)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if mode.is_parallel() && n >= INLINE_CUTOFF {
        (0..n).into_par_iter().map(&f).collect_into_vec(out);
    } else {
        out.clear();
        out.reserve(n);
        out.extend((0..n).map(f));
    }
}

/// Like [`par_map_mut`] but writes the returned values into `out`, reusing
/// its allocation (`out` is cleared first).
pub fn par_map_mut_into<T, R, F>(mode: ParallelismMode, items: &mut [T], out: &mut Vec<R>, f: F)
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    if mode.is_parallel() && items.len() >= INLINE_CUTOFF {
        items
            .par_iter_mut()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect_into_vec(out);
    } else {
        let n = items.len();
        out.clear();
        out.reserve(n);
        out.extend(items.iter_mut().enumerate().map(|(i, item)| f(i, item)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_agree_on_par_map() {
        let items: Vec<u64> = (0..257).collect();
        let seq = par_map(ParallelismMode::Sequential, &items, |i, x| x * 2 + i as u64);
        let par = par_map(ParallelismMode::Parallel, &items, |i, x| x * 2 + i as u64);
        assert_eq!(seq, par);
        assert_eq!(seq[3], 9);
    }

    #[test]
    fn modes_agree_on_par_map_mut() {
        let mut a: Vec<u64> = (0..100).collect();
        let mut b = a.clone();
        let ra = par_map_mut(ParallelismMode::Sequential, &mut a, |i, x| {
            *x += i as u64;
            *x
        });
        let rb = par_map_mut(ParallelismMode::Parallel, &mut b, |i, x| {
            *x += i as u64;
            *x
        });
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }

    #[test]
    fn modes_agree_on_par_map_range() {
        let seq = par_map_range(ParallelismMode::Sequential, 1000, |i| i * i);
        let par = par_map_range(ParallelismMode::Parallel, 1000, |i| i * i);
        assert_eq!(seq, par);
    }

    #[test]
    fn modes_agree_on_par_map_range_into_and_buffer_is_reused() {
        let mut seq: Vec<u64> = Vec::new();
        let mut par: Vec<u64> = Vec::new();
        par_map_range_into(ParallelismMode::Sequential, 1000, &mut seq, |i| {
            (i as u64) * 3 + 1
        });
        par_map_range_into(ParallelismMode::Parallel, 1000, &mut par, |i| {
            (i as u64) * 3 + 1
        });
        assert_eq!(seq, par);
        // Refilling at the same size must reuse the allocation.
        let ptr = par.as_ptr();
        par_map_range_into(ParallelismMode::Parallel, 1000, &mut par, |i| i as u64);
        assert_eq!(ptr, par.as_ptr());
        assert_eq!(par[999], 999);
    }

    #[test]
    fn modes_agree_on_par_map_mut_into() {
        let mut a: Vec<u64> = (0..300).collect();
        let mut b = a.clone();
        let (mut ra, mut rb) = (Vec::new(), Vec::new());
        par_map_mut_into(ParallelismMode::Sequential, &mut a, &mut ra, |i, x| {
            *x += i as u64;
            *x
        });
        par_map_mut_into(ParallelismMode::Parallel, &mut b, &mut rb, |i, x| {
            *x += i as u64;
            *x
        });
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }

    #[test]
    fn empty_sweeps_are_fine() {
        let out: Vec<u8> = par_map_range(ParallelismMode::Parallel, 0, |_| 0u8);
        assert!(out.is_empty());
    }

    #[test]
    fn auto_matches_worker_count() {
        let mode = ParallelismMode::auto();
        assert_eq!(mode.is_parallel(), rayon::current_num_threads() > 1);
        assert_eq!(ParallelismMode::default(), mode);
    }
}
