//! Ball-collection semantics of the LOCAL model.
//!
//! A `T`-round LOCAL algorithm's output at a node is a function of the
//! node's `T`-radius ball (topology, IDs, shared seed, global parameters) —
//! this is the *definition* of LOCAL complexity used in all indistinguish-
//! ability arguments, and the semantics the paper's Lemma 25 simulates from
//! inside MPC. This module evaluates algorithms expressed directly in that
//! form, which is also how MPC simulates LOCAL after graph exponentiation.

use crate::params::LocalParams;
use csmpc_graph::ball::with_thread_workspace;
use csmpc_graph::{CsrAdjacency, Graph};
use csmpc_parallel::{par_map_range, ParallelismMode};

/// A LOCAL algorithm in ball form: output at a node is computed from its
/// `radius()`-ball.
pub trait BallAlgorithm {
    /// Final per-node output.
    type Output: Clone;

    /// The locality radius `T(N, Δ)` given the global parameters.
    fn radius(&self, params: &LocalParams) -> usize;

    /// Computes the output of the ball's center. `ball` is the induced
    /// subgraph on nodes within distance `radius()` of the center; IDs are
    /// preserved, names must not be used (a LOCAL node cannot see names).
    fn evaluate(&self, ball: &Graph, center: usize, params: &LocalParams) -> Self::Output;
}

/// Runs a [`BallAlgorithm`] on every node of `g`, returning per-node outputs.
///
/// The cost of the corresponding LOCAL execution is `radius()` rounds; the
/// engine in [`crate::engine`] can be used when adaptive halting matters.
///
/// Evaluates with [`ParallelismMode::default`]; use
/// [`run_ball_algorithm_with_mode`] to force a mode. Results are identical
/// either way: each node's output depends only on its own ball.
pub fn run_ball_algorithm<A: BallAlgorithm + Sync>(
    g: &Graph,
    alg: &A,
    params: &LocalParams,
) -> Vec<A::Output>
where
    A::Output: Send,
{
    run_ball_algorithm_with_mode(g, alg, params, ParallelismMode::default())
}

/// [`run_ball_algorithm`] with an explicit [`ParallelismMode`].
///
/// The per-node evaluation is a pure map — ball extraction and evaluation
/// read only the shared graph — so both modes produce bit-identical output
/// vectors (index `v` always holds node `v`'s output).
pub fn run_ball_algorithm_with_mode<A: BallAlgorithm + Sync>(
    g: &Graph,
    alg: &A,
    params: &LocalParams,
    mode: ParallelismMode,
) -> Vec<A::Output>
where
    A::Output: Send,
{
    let r = alg.radius(params);
    // One CSR adjacency view shared by the whole sweep; each worker thread
    // extracts balls through its reusable flat workspace (no per-node map
    // allocations). Output is bit-identical to the reference extraction.
    let csr = CsrAdjacency::from_graph(g);
    par_map_range(mode, g.n(), |v| {
        // csmpc-allow(par-closure-race): the workspace is thread_local! — each worker mutates only its own RefCell, never shared state
        let (b, c) = with_thread_workspace(|ws| {
            let (b, c, _) = ws.ball_csr(g, &csr, v, r);
            (b, c)
        });
        alg.evaluate(&b, c, params)
    })
}

/// Verifies that an algorithm really is `r`-local: evaluating it on the
/// `r`-ball and on any larger ball gives the same answer.
///
/// Returns the indices of nodes where outputs differ (empty = consistent).
pub fn locality_violations<A: BallAlgorithm + Sync>(
    g: &Graph,
    alg: &A,
    params: &LocalParams,
    extra: usize,
) -> Vec<usize>
where
    A::Output: PartialEq,
{
    let r = alg.radius(params);
    let mode = ParallelismMode::default();
    let csr = CsrAdjacency::from_graph(g);
    // Per-node check is pure; collect the verdicts in index order, then
    // filter sequentially so violation indices come out sorted. Both ball
    // extractions share the worker thread's flat workspace.
    let differs: Vec<bool> = par_map_range(mode, g.n(), |v| {
        // csmpc-allow(par-closure-race): the workspace is thread_local! — each worker mutates only its own RefCell, never shared state
        with_thread_workspace(|ws| {
            let (b1, c1, _) = ws.ball_csr(g, &csr, v, r);
            let (b2, c2, _) = ws.ball_csr(g, &csr, v, r + extra);
            alg.evaluate(&b1, c1, params) != alg.evaluate(&b2, c2, params)
        })
    });
    differs
        .into_iter()
        .enumerate()
        .filter_map(|(v, bad)| bad.then_some(v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmpc_graph::generators;
    use csmpc_graph::rng::Seed;

    /// Outputs the number of nodes within distance r (r = 2 here).
    struct BallSize;

    impl BallAlgorithm for BallSize {
        type Output = usize;
        fn radius(&self, _p: &LocalParams) -> usize {
            2
        }
        fn evaluate(&self, ball: &Graph, _center: usize, _p: &LocalParams) -> usize {
            ball.n()
        }
    }

    #[test]
    fn ball_size_on_cycle() {
        let g = generators::cycle(10);
        let params = LocalParams::exact(10, 2, Seed(0));
        let out = run_ball_algorithm(&g, &BallSize, &params);
        assert!(out.iter().all(|&x| x == 5)); // 2 on each side + self
    }

    #[test]
    fn ball_size_on_path_boundary() {
        let g = generators::path(10);
        let params = LocalParams::exact(10, 2, Seed(0));
        let out = run_ball_algorithm(&g, &BallSize, &params);
        assert_eq!(out[0], 3);
        assert_eq!(out[5], 5);
    }

    /// Not actually local: reads the whole ball it is given.
    struct CheatingAlgorithm;

    impl BallAlgorithm for CheatingAlgorithm {
        type Output = usize;
        fn radius(&self, _p: &LocalParams) -> usize {
            1
        }
        fn evaluate(&self, ball: &Graph, _center: usize, _p: &LocalParams) -> usize {
            ball.n() // depends on how big a ball we are handed
        }
    }

    #[test]
    fn locality_violation_detected() {
        let g = generators::path(8);
        let params = LocalParams::exact(8, 2, Seed(0));
        let bad = locality_violations(&g, &CheatingAlgorithm, &params, 2);
        assert!(!bad.is_empty());
    }

    #[test]
    fn genuine_algorithm_passes_locality_check() {
        // min ID within radius 2 is genuinely 2-local.
        struct MinId2;
        impl BallAlgorithm for MinId2 {
            type Output = u64;
            fn radius(&self, _p: &LocalParams) -> usize {
                2
            }
            fn evaluate(&self, ball: &Graph, center: usize, _p: &LocalParams) -> u64 {
                let dist = ball.bfs_distances(center);
                (0..ball.n())
                    .filter(|&v| dist[v] <= 2)
                    .map(|v| ball.id(v).0)
                    .min()
                    .unwrap()
            }
        }
        let g = generators::random_tree(20, Seed(5));
        let params = LocalParams::exact(20, g.max_degree(), Seed(0));
        assert!(locality_violations(&g, &MinId2, &params, 3).is_empty());
    }
}
