//! Input parameters handed to LOCAL algorithms (paper Section 2.4.1).
//!
//! LOCAL algorithms receive the exact maximum degree `Δ`, an input-size
//! estimate `N` with `n ≤ N ≤ poly(n)` (some lower bounds, e.g. the
//! large-IS bound of KKSS20, only hold when `n` is not known exactly), and —
//! for randomized algorithms — a shared random seed.

use csmpc_graph::rng::{Seed, SplitMix64};
use csmpc_graph::NodeId;

/// Global knowledge available to every node of a LOCAL execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalParams {
    /// Input-size estimate `N`, with `n ≤ N ≤ poly(n)`.
    pub n_estimate: usize,
    /// The exact maximum degree `Δ` of the input graph.
    pub max_degree: usize,
    /// The shared random seed `S` (unbounded in the paper; a generator seed
    /// here). Deterministic algorithms must ignore it.
    pub shared_seed: Seed,
}

impl LocalParams {
    /// Parameters with an exact size estimate (`N = n`), the common case for
    /// most LOCAL lower bounds.
    #[must_use]
    pub fn exact(n: usize, max_degree: usize, shared_seed: Seed) -> Self {
        LocalParams {
            n_estimate: n,
            max_degree,
            shared_seed,
        }
    }

    /// A per-node random generator derived from the shared seed and the
    /// node's ID.
    ///
    /// Under *shared* randomness each node can read the entire seed, so
    /// "private" coins are simply the portion of the shared randomness
    /// indexed by the node's ID — which is exactly how the paper's model
    /// subsumes private randomness.
    #[must_use]
    pub fn node_rng(&self, id: NodeId, stream: u64) -> SplitMix64 {
        SplitMix64::new(self.shared_seed.derive(id.0).derive(stream))
    }

    /// A generator over the shared seed itself (identical at every node).
    #[must_use]
    pub fn shared_rng(&self, stream: u64) -> SplitMix64 {
        SplitMix64::new(self.shared_seed.derive(stream))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_rngs_differ_across_ids() {
        let p = LocalParams::exact(10, 3, Seed(1));
        let a = p.node_rng(NodeId(1), 0).next_u64();
        let b = p.node_rng(NodeId(2), 0).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn shared_rng_identical_everywhere() {
        let p = LocalParams::exact(10, 3, Seed(1));
        assert_eq!(p.shared_rng(7).next_u64(), p.shared_rng(7).next_u64());
    }

    #[test]
    fn node_rng_reproducible() {
        let p = LocalParams::exact(10, 3, Seed(2));
        assert_eq!(
            p.node_rng(NodeId(5), 3).next_u64(),
            p.node_rng(NodeId(5), 3).next_u64()
        );
    }
}
