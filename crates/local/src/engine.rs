//! Synchronous message-passing engine for the LOCAL model.
//!
//! Nodes are the computational entities; in each round every live node
//! receives the messages sent to it in the previous round, performs
//! arbitrary local computation, and either sends one (unbounded) message per
//! incident edge or halts with an output. The engine counts rounds — the
//! only resource the LOCAL model measures.

use crate::params::LocalParams;
use csmpc_graph::{Graph, NodeId};
use csmpc_parallel::{par_map_mut, ParallelismMode};

/// What a node sees of itself and its surroundings: its ID, degree, and the
/// IDs at the far ends of its edges (known from the start, per the paper's
/// model), plus the global parameters.
#[derive(Debug, Clone)]
pub struct NodeView<'a> {
    /// This node's component-unique ID.
    pub id: NodeId,
    /// IDs of the neighbors, indexed by *port* (the position of the edge in
    /// the node's adjacency list).
    pub neighbor_ids: Vec<NodeId>,
    /// Global knowledge: `N`, `Δ`, shared seed.
    pub params: &'a LocalParams,
}

impl NodeView<'_> {
    /// The node's degree.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.neighbor_ids.len()
    }
}

/// A message received this round: the port it arrived on and its payload.
#[derive(Debug, Clone)]
pub struct Incoming<M> {
    /// Port (index into this node's adjacency list) the message arrived on.
    pub port: usize,
    /// The payload.
    pub msg: M,
}

/// A node's decision at the end of a round.
#[derive(Debug, Clone)]
pub enum Action<M, O> {
    /// Keep running, sending `(port, message)` pairs along chosen edges.
    Send(Vec<(usize, M)>),
    /// Keep running and broadcast the same message on every port.
    Broadcast(M),
    /// Halt with a final output; the node neither sends nor receives after.
    Halt(O),
}

/// A LOCAL algorithm: per-node state machine run synchronously.
///
/// `init` is called once before round 1; `round` is called once per round
/// with the inbox of messages that arrived. Round numbering starts at 1.
pub trait LocalAlgorithm {
    /// Per-node mutable state.
    type State;
    /// Message payload type.
    type Message: Clone;
    /// Final per-node output.
    type Output: Clone;

    /// Initializes a node's state from its initial view.
    fn init(&self, view: &NodeView<'_>) -> Self::State;

    /// One synchronous round; `round` starts at 1.
    fn round(
        &self,
        state: &mut Self::State,
        view: &NodeView<'_>,
        round: usize,
        inbox: &[Incoming<Self::Message>],
    ) -> Action<Self::Message, Self::Output>;
}

/// Result of running a [`LocalAlgorithm`] to quiescence.
#[derive(Debug, Clone)]
pub struct LocalRun<O> {
    /// Output per node index.
    pub outputs: Vec<O>,
    /// Rounds elapsed until the last node halted.
    pub rounds: usize,
    /// Total messages sent over the whole execution.
    pub messages_sent: usize,
}

/// Error from the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocalError {
    /// A node exceeded the round cap without halting.
    RoundLimitExceeded {
        /// The cap that was hit.
        limit: usize,
    },
    /// A node sent on a port it does not have.
    BadPort {
        /// Offending node index.
        node: usize,
        /// Offending port.
        port: usize,
    },
}

impl std::fmt::Display for LocalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LocalError::RoundLimitExceeded { limit } => {
                write!(f, "round limit {limit} exceeded before all nodes halted")
            }
            LocalError::BadPort { node, port } => {
                write!(f, "node {node} sent on nonexistent port {port}")
            }
        }
    }
}

impl std::error::Error for LocalError {}

/// Runs `alg` on `g` under `params`, up to `max_rounds` rounds.
///
/// Executes with [`ParallelismMode::default`]; use [`run_local_with_mode`]
/// to force a mode. Both modes are bit-identical in every observable.
///
/// # Errors
///
/// [`LocalError::RoundLimitExceeded`] if some node never halts within the
/// cap; [`LocalError::BadPort`] on a malformed send.
pub fn run_local<A: LocalAlgorithm + Sync>(
    g: &Graph,
    alg: &A,
    params: &LocalParams,
    max_rounds: usize,
) -> Result<LocalRun<A::Output>, LocalError>
where
    A::State: Send,
    A::Message: Send + Sync,
    A::Output: Send,
{
    run_local_with_mode(g, alg, params, max_rounds, ParallelismMode::default())
}

/// [`run_local`] with an explicit [`ParallelismMode`].
///
/// Each round splits into a *step* phase — every live node's
/// [`LocalAlgorithm::round`] call, a pure per-node map over (state, view,
/// inbox) that parallelizes freely — and a sequential *merge* phase that
/// replays the resulting actions in node-index order: halting, port
/// validation, delivery to still-live nodes, and the message counter all
/// happen in exactly the order the sequential engine uses, so outputs,
/// round counts, message counts, and errors are bit-identical in both
/// modes.
///
/// # Errors
///
/// [`LocalError::RoundLimitExceeded`] if some node never halts within the
/// cap; [`LocalError::BadPort`] on a malformed send.
pub fn run_local_with_mode<A: LocalAlgorithm + Sync>(
    g: &Graph,
    alg: &A,
    params: &LocalParams,
    max_rounds: usize,
    mode: ParallelismMode,
) -> Result<LocalRun<A::Output>, LocalError>
where
    A::State: Send,
    A::Message: Send + Sync,
    A::Output: Send,
{
    let n = g.n();
    let views: Vec<NodeView<'_>> = (0..n)
        .map(|v| NodeView {
            id: g.id(v),
            neighbor_ids: g.neighbors(v).iter().map(|&w| g.id(w as usize)).collect(),
            params,
        })
        .collect();
    let mut states: Vec<A::State> = views.iter().map(|view| alg.init(view)).collect();
    let mut halted: Vec<Option<A::Output>> = vec![None; n];
    let mut inboxes: Vec<Vec<Incoming<A::Message>>> = vec![Vec::new(); n];
    let mut messages_sent = 0usize;
    // Port lookup: reverse_port[v][k] = the port index at neighbor on edge k.
    let reverse_port: Vec<Vec<usize>> = (0..n)
        .map(|v| {
            g.neighbors(v)
                .iter()
                .map(|&w| {
                    g.neighbors(w as usize)
                        .binary_search(&(v as u32))
                        .expect("adjacency is symmetric")
                })
                .collect()
        })
        .collect();

    let mut rounds = 0usize;
    for round in 1..=max_rounds {
        if halted.iter().all(Option::is_some) {
            break;
        }
        rounds = round;
        let mut next_inboxes: Vec<Vec<Incoming<A::Message>>> = vec![Vec::new(); n];
        // Step phase: every live node computes its action from its own
        // (state, view, inbox). `alg.round` never observes other nodes'
        // liveness or actions, so this is a pure per-node map.
        let taken: Vec<Vec<Incoming<A::Message>>> = (0..n)
            .map(|v| {
                if halted[v].is_none() {
                    std::mem::take(&mut inboxes[v])
                } else {
                    Vec::new()
                }
            })
            .collect();
        let halted_mask: Vec<bool> = halted.iter().map(Option::is_some).collect();
        let actions: Vec<Option<Action<A::Message, A::Output>>> =
            par_map_mut(mode, &mut states, |v, state| {
                if halted_mask[v] {
                    return None;
                }
                Some(alg.round(state, &views[v], round, &taken[v]))
            });
        // Merge phase: replay the actions in node-index order. Halting and
        // delivery interleave exactly as in a single sequential pass — a
        // node that halts here stops receiving from higher-indexed senders
        // within the same round.
        for (v, action) in actions.into_iter().enumerate() {
            let Some(action) = action else { continue };
            let sends: Vec<(usize, A::Message)> = match action {
                Action::Halt(out) => {
                    halted[v] = Some(out);
                    continue;
                }
                Action::Send(s) => s,
                Action::Broadcast(m) => (0..g.degree(v)).map(|p| (p, m.clone())).collect(),
            };
            for (port, msg) in sends {
                if port >= g.degree(v) {
                    return Err(LocalError::BadPort { node: v, port });
                }
                let w = g.neighbors(v)[port] as usize;
                // Deliver only to live nodes; halted nodes ignore messages.
                if halted[w].is_none() {
                    next_inboxes[w].push(Incoming {
                        port: reverse_port[v][port],
                        msg,
                    });
                }
                messages_sent += 1;
            }
        }
        inboxes = next_inboxes;
    }
    if halted.iter().any(Option::is_none) {
        return Err(LocalError::RoundLimitExceeded { limit: max_rounds });
    }
    let outputs = halted.into_iter().map(Option::unwrap).collect();
    Ok(LocalRun {
        outputs,
        rounds,
        messages_sent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmpc_graph::generators;
    use csmpc_graph::rng::Seed;

    /// Flood the maximum ID for `r` rounds; output the max seen.
    struct MaxIdFlood {
        r: usize,
    }

    impl LocalAlgorithm for MaxIdFlood {
        type State = u64;
        type Message = u64;
        type Output = u64;

        fn init(&self, view: &NodeView<'_>) -> u64 {
            view.id.0
        }

        fn round(
            &self,
            state: &mut u64,
            _view: &NodeView<'_>,
            round: usize,
            inbox: &[Incoming<u64>],
        ) -> Action<u64, u64> {
            for m in inbox {
                *state = (*state).max(m.msg);
            }
            if round > self.r {
                Action::Halt(*state)
            } else {
                Action::Broadcast(*state)
            }
        }
    }

    #[test]
    fn flood_on_path_reaches_distance_r() {
        let g = generators::path(7); // IDs 0..7 along the path
        let params = LocalParams::exact(7, 2, Seed(0));
        let run = run_local(&g, &MaxIdFlood { r: 3 }, &params, 100).unwrap();
        // Node 0 sees max ID within distance 3 = 3.
        assert_eq!(run.outputs[0], 3);
        // Node 6 already holds the max.
        assert_eq!(run.outputs[6], 6);
        assert_eq!(run.rounds, 4); // r broadcast rounds + 1 halting round
    }

    #[test]
    fn flood_respects_components() {
        let g = generators::two_cycles(12); // IDs 0..6 and 6..12
        let params = LocalParams::exact(12, 2, Seed(0));
        let run = run_local(&g, &MaxIdFlood { r: 12 }, &params, 100).unwrap();
        assert!(run.outputs[..6].iter().all(|&x| x == 5));
        assert!(run.outputs[6..].iter().all(|&x| x == 11));
    }

    #[test]
    fn round_limit_enforced() {
        let g = generators::path(4);
        let params = LocalParams::exact(4, 2, Seed(0));
        let err = run_local(&g, &MaxIdFlood { r: 50 }, &params, 10).unwrap_err();
        assert_eq!(err, LocalError::RoundLimitExceeded { limit: 10 });
    }

    /// Halts immediately with the node's degree.
    struct DegreeOutput;

    impl LocalAlgorithm for DegreeOutput {
        type State = ();
        type Message = ();
        type Output = usize;
        fn init(&self, _v: &NodeView<'_>) {}
        fn round(
            &self,
            _s: &mut (),
            view: &NodeView<'_>,
            _round: usize,
            _inbox: &[Incoming<()>],
        ) -> Action<(), usize> {
            Action::Halt(view.degree())
        }
    }

    #[test]
    fn zero_round_algorithm() {
        let g = generators::star(4);
        let params = LocalParams::exact(5, 4, Seed(0));
        let run = run_local(&g, &DegreeOutput, &params, 5).unwrap();
        assert_eq!(run.outputs[0], 4);
        assert!(run.outputs[1..].iter().all(|&d| d == 1));
        assert_eq!(run.messages_sent, 0);
    }

    #[test]
    fn message_count_on_cycle() {
        let g = generators::cycle(5);
        let params = LocalParams::exact(5, 2, Seed(0));
        let run = run_local(&g, &MaxIdFlood { r: 1 }, &params, 10).unwrap();
        // Round 1 broadcasts 2 messages per node = 5*2 = 10; round 2 halts.
        assert_eq!(run.messages_sent, 10);
    }
}
