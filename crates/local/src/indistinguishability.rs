//! Indistinguishability — the engine of every LOCAL lower bound.
//!
//! If two (graph, node) pairs have identical `r`-radius balls (topology and
//! IDs), then *every* `r`-round LOCAL algorithm outputs the same at the two
//! nodes under the same shared seed. This module makes that argument
//! executable: a generic checker that any [`BallAlgorithm`] provably
//! satisfies (it is evaluated on the ball), plus a witness builder that
//! quantifies how many rounds a problem forces, which experiments E1/E4
//! use to exhibit the `n − 1` and `T(N, Δ)` obstructions.

use crate::ball_eval::BallAlgorithm;
use crate::params::LocalParams;
use csmpc_graph::ball::{ball, radius_identical};
use csmpc_graph::Graph;

/// A pair of instances indistinguishable to radius `r` but requiring
/// different outputs at the observed nodes — a *lower-bound witness*: no
/// `r`-round LOCAL algorithm can be correct on both.
#[derive(Debug, Clone)]
pub struct LowerBoundWitness {
    /// First instance.
    pub g1: Graph,
    /// Observed node in `g1`.
    pub v1: usize,
    /// Second instance.
    pub g2: Graph,
    /// Observed node in `g2`.
    pub v2: usize,
    /// Largest radius at which the balls around the observed nodes are
    /// identical.
    pub identical_radius: usize,
}

impl LowerBoundWitness {
    /// Builds a witness from two instances, measuring the identical radius.
    /// Returns `None` if the balls differ already at radius 0.
    #[must_use]
    pub fn measure(g1: Graph, v1: usize, g2: Graph, v2: usize) -> Option<Self> {
        if !radius_identical(&g1, v1, &g2, v2, 0) {
            return None;
        }
        let cap = g1.n().max(g2.n());
        let mut identical_radius = 0usize;
        for r in 1..=cap {
            if radius_identical(&g1, v1, &g2, v2, r) {
                identical_radius = r;
            } else {
                break;
            }
        }
        Some(LowerBoundWitness {
            g1,
            v1,
            g2,
            v2,
            identical_radius,
        })
    }

    /// The round lower bound this witness certifies for any algorithm whose
    /// outputs at the two nodes must differ: `identical_radius + 1`.
    #[must_use]
    pub fn certified_rounds(&self) -> usize {
        self.identical_radius + 1
    }

    /// Checks the indistinguishability law on a concrete algorithm: for
    /// every radius `r ≤ identical_radius`, an `r`-round algorithm (here:
    /// `alg` truncated to its declared radius, required `≤ r`) produces
    /// equal outputs at the two nodes. Returns the offending radius if the
    /// law is violated (which would indicate a non-local algorithm).
    pub fn check_indistinguishable<A>(&self, alg: &A, params: &LocalParams) -> Result<(), usize>
    where
        A: BallAlgorithm,
        A::Output: PartialEq,
    {
        let r = alg.radius(params);
        if r > self.identical_radius {
            return Ok(()); // the algorithm is allowed to distinguish
        }
        let (b1, c1, _) = ball(&self.g1, self.v1, r);
        let (b2, c2, _) = ball(&self.g2, self.v2, r);
        if alg.evaluate(&b1, c1, params) == alg.evaluate(&b2, c2, params) {
            Ok(())
        } else {
            Err(r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmpc_graph::generators;
    use csmpc_graph::rng::Seed;

    #[test]
    fn consecutive_path_witness_certifies_n_minus_one() {
        // The Section 2.1 obstruction: YES and broken instances are
        // identical around node 0 up to radius n−2.
        let n = 12;
        let w = LowerBoundWitness::measure(
            generators::consecutive_id_path(n),
            0,
            generators::consecutive_id_path_broken(n),
            0,
        )
        .expect("balls agree at radius 0");
        assert_eq!(w.identical_radius, n - 2);
        assert_eq!(w.certified_rounds(), n - 1);
    }

    #[test]
    fn identical_pair_witness() {
        let (g, c, gp, cp) = csmpc_graph::ball::identical_ball_path_pair(4, 3);
        let w = LowerBoundWitness::measure(g, c, gp, cp).unwrap();
        assert_eq!(w.identical_radius, 4);
    }

    #[test]
    fn ball_algorithms_obey_indistinguishability() {
        // Any BallAlgorithm must agree within the identical radius.
        struct MinId {
            r: usize,
        }
        impl BallAlgorithm for MinId {
            type Output = u64;
            fn radius(&self, _p: &LocalParams) -> usize {
                self.r
            }
            fn evaluate(&self, ball: &Graph, _c: usize, _p: &LocalParams) -> u64 {
                ball.ids().iter().map(|i| i.0).min().unwrap()
            }
        }
        let (g, c, gp, cp) = csmpc_graph::ball::identical_ball_path_pair(3, 5);
        let w = LowerBoundWitness::measure(g, c, gp, cp).unwrap();
        let params = LocalParams::exact(20, 2, Seed(0));
        for r in 0..=w.identical_radius {
            assert!(w.check_indistinguishable(&MinId { r }, &params).is_ok());
        }
    }

    #[test]
    fn distinguishing_needs_radius_beyond_identical() {
        // A whole-ball max-ID algorithm distinguishes exactly when its
        // radius exceeds the identical radius.
        struct MaxId {
            r: usize,
        }
        impl BallAlgorithm for MaxId {
            type Output = u64;
            fn radius(&self, _p: &LocalParams) -> usize {
                self.r
            }
            fn evaluate(&self, ball: &Graph, _c: usize, _p: &LocalParams) -> u64 {
                ball.ids().iter().map(|i| i.0).max().unwrap()
            }
        }
        let (g, c, gp, cp) = csmpc_graph::ball::identical_ball_path_pair(2, 1);
        let w = LowerBoundWitness::measure(g.clone(), c, gp.clone(), cp).unwrap();
        let params = LocalParams::exact(g.n(), 2, Seed(0));
        // Within the identical radius: agreement.
        assert!(w
            .check_indistinguishable(
                &MaxId {
                    r: w.identical_radius
                },
                &params
            )
            .is_ok());
        // Beyond: outputs genuinely differ (the IDs diverge).
        let r = w.identical_radius + 1;
        let (b1, c1, _) = ball(&g, c, r);
        let (b2, c2, _) = ball(&gp, cp, r);
        let a1 = MaxId { r }.evaluate(&b1, c1, &params);
        let a2 = MaxId { r }.evaluate(&b2, c2, &params);
        assert_ne!(a1, a2);
    }

    #[test]
    fn mismatched_centers_yield_no_witness() {
        let g1 = generators::path(5);
        let g2 = generators::cycle(5);
        // Different center IDs at radius 0 → no witness.
        assert!(LowerBoundWitness::measure(g1, 0, g2, 2,).is_none());
    }
}
