//! # csmpc-local
//!
//! A simulator for the **LOCAL model** of distributed computing, as used by
//! the PODC 2021 paper *"Component Stability in Low-Space Massively Parallel
//! Computation"* (Section 2.4.1).
//!
//! Two complementary execution semantics are provided and cross-checked:
//!
//! * [`engine`] — an explicit synchronous message-passing engine (nodes,
//!   ports, unbounded messages, per-node halting) that *counts rounds*;
//! * [`ball_eval`] — the equivalent ball-collection semantics: a `T`-round
//!   algorithm's output at a node is a function of its `T`-radius ball,
//!   which is the form all indistinguishability arguments (and the MPC
//!   simulation of LOCAL after graph exponentiation) use.
//!
//! Randomness follows the paper's *shared randomness* convention: every node
//! reads the same seed ([`params::LocalParams::shared_rng`]); private coins
//! are the seed portion indexed by the node's ID
//! ([`params::LocalParams::node_rng`]).
//!
//! ```
//! use csmpc_graph::{generators, rng::Seed};
//! use csmpc_local::params::LocalParams;
//! use csmpc_local::ball_eval::{BallAlgorithm, run_ball_algorithm};
//!
//! struct MinIdWithin1;
//! impl BallAlgorithm for MinIdWithin1 {
//!     type Output = u64;
//!     fn radius(&self, _p: &LocalParams) -> usize { 1 }
//!     fn evaluate(&self, ball: &csmpc_graph::Graph, _c: usize, _p: &LocalParams) -> u64 {
//!         ball.ids().iter().map(|i| i.0).min().unwrap()
//!     }
//! }
//!
//! let g = generators::cycle(6);
//! let params = LocalParams::exact(6, 2, Seed(0));
//! let out = run_ball_algorithm(&g, &MinIdWithin1, &params);
//! assert_eq!(out[0], 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ball_eval;
pub mod engine;
pub mod indistinguishability;
pub mod params;

pub use ball_eval::{run_ball_algorithm, run_ball_algorithm_with_mode, BallAlgorithm};
pub use csmpc_parallel::ParallelismMode;
pub use engine::{
    run_local, run_local_with_mode, Action, Incoming, LocalAlgorithm, LocalError, LocalRun,
    NodeView,
};
pub use params::LocalParams;
