//! Minimum vertex cover, in the `O(1)`-approximation form the paper's
//! Theorem 28 lower bound concerns ("a constant approximation of vertex
//! cover"). The complement of the matching-based 2-approximation provides
//! the standard witness.

use crate::problem::{GraphProblem, Violation};
use csmpc_graph::Graph;

/// Is `in_cover` a vertex cover (every edge has a covered endpoint)?
#[must_use]
pub fn is_vertex_cover(g: &Graph, in_cover: &[bool]) -> bool {
    g.edges().all(|(u, v)| in_cover[u] || in_cover[v])
}

/// The classical 2-approximation: both endpoints of a greedy maximal
/// matching.
#[must_use]
pub fn matching_two_approx_cover(g: &Graph) -> Vec<bool> {
    let matching = crate::matching::greedy_maximal_matching(g);
    let mut cover = vec![false; g.n()];
    for (i, (u, v)) in g.edges().enumerate() {
        if matching[i] {
            cover[u] = true;
            cover[v] = true;
        }
    }
    cover
}

/// A lower bound on the optimum: any maximal matching's size (each matched
/// edge needs a distinct cover node).
#[must_use]
pub fn optimum_lower_bound(g: &Graph) -> usize {
    crate::matching::greedy_maximal_matching(g)
        .iter()
        .filter(|&&b| b)
        .count()
}

/// `ratio`-approximate minimum vertex cover: a cover of size at most
/// `ratio ×` the optimum. The optimum is bounded below by a maximal
/// matching, so the check `|C| ≤ ratio · 2 · |M|` is used with a documented
/// 2-factor slack (exact on graphs where the matching bound is tight).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxVertexCover {
    /// Required approximation ratio `≥ 1`.
    pub ratio: f64,
}

impl GraphProblem for ApproxVertexCover {
    type Label = bool;

    fn name(&self) -> &str {
        "approx-vertex-cover"
    }

    fn validate(&self, g: &Graph, labels: &[bool]) -> Result<(), Violation> {
        if labels.len() != g.n() {
            return Err(Violation::global("label count mismatch"));
        }
        if let Some((u, v)) = g.edges().find(|&(u, v)| !labels[u] && !labels[v]) {
            return Err(Violation::at(u, format!("edge ({u},{v}) uncovered")));
        }
        let have = labels.iter().filter(|&&b| b).count();
        // optimum ∈ [|M|, 2|M|]; accept when |C| ≤ ratio·2·|M| (and always
        // accept covers no larger than the trivial 2-approximation bound).
        let m = optimum_lower_bound(g);
        let allowed = (self.ratio * 2.0 * m as f64).ceil() as usize;
        if m > 0 && have > allowed {
            return Err(Violation::global(format!(
                "cover of size {have} above {allowed} (= {} × 2 × matching bound {m})",
                self.ratio
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmpc_graph::generators;
    use csmpc_graph::rng::Seed;

    #[test]
    fn matching_cover_covers() {
        for s in 0..10 {
            let g = generators::random_gnp(25, 0.2, Seed(s));
            let cover = matching_two_approx_cover(&g);
            assert!(is_vertex_cover(&g, &cover), "seed {s}");
        }
    }

    #[test]
    fn two_approx_validates() {
        let p = ApproxVertexCover { ratio: 1.0 };
        for s in 0..10 {
            let g = generators::random_gnp(25, 0.2, Seed(100 + s));
            let cover = matching_two_approx_cover(&g);
            assert!(p.is_valid(&g, &cover), "seed {s}");
        }
    }

    #[test]
    fn uncovered_edge_rejected() {
        let g = generators::path(3);
        let p = ApproxVertexCover { ratio: 2.0 };
        let err = p.validate(&g, &[false, false, true]).unwrap_err();
        assert!(err.reason.contains("uncovered"));
    }

    #[test]
    fn bloated_cover_rejected() {
        // A star: matching bound 1, so covers bigger than ratio·2 fail.
        let g = generators::star(20);
        let p = ApproxVertexCover { ratio: 1.0 };
        assert!(p.validate(&g, &[true; 21]).is_err());
        // Center alone is optimal.
        let mut opt = vec![false; 21];
        opt[0] = true;
        assert!(p.is_valid(&g, &opt));
    }

    #[test]
    fn empty_graph_trivially_covered() {
        let g = csmpc_graph::GraphBuilder::with_sequential_nodes(4)
            .build()
            .unwrap();
        let p = ApproxVertexCover { ratio: 1.0 };
        assert!(p.is_valid(&g, &[false; 4]));
    }

    #[test]
    fn replicability_of_approx_cover() {
        // O(1)-approx vertex cover is O(1)-replicable (Lemma 12's sibling).
        use crate::replicability::probe;
        let p = ApproxVertexCover { ratio: 1.5 };
        for s in 0..10 {
            let g = generators::random_gnp(5, 0.5, Seed(s));
            let cover = matching_two_approx_cover(&g);
            let pr = probe(&p, &g, &cover, &false, 2);
            assert!(pr.holds(), "seed {s}: {pr:?}");
        }
    }
}
